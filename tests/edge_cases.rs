//! Edge-case and failure-injection tests across the public API.
//!
//! These check that the system rejects malformed input cleanly and behaves sensibly at
//! boundaries, rather than panicking or returning wrong answers.

use graphitti::core::{CoreError, DataType, Graphitti, Marker, ObjectId};
use graphitti::query::{parse_query, Executor, Query, ReferentFilter, Target};
use graphitti::xml::{parse_document, PathExpr, XmlError};

#[test]
fn empty_annotation_is_rejected() {
    let mut sys = Graphitti::new();
    assert_eq!(sys.annotate().title("nothing").commit(), Err(CoreError::EmptyAnnotation));
}

#[test]
fn wrong_marker_kind_is_rejected() {
    let mut sys = Graphitti::new();
    let seq = sys.register_sequence("s", DataType::DnaSequence, 100, "chr1");
    let err = sys.annotate().mark(seq, Marker::region(0.0, 0.0, 1.0, 1.0)).commit();
    assert!(matches!(err, Err(CoreError::MarkerKindMismatch { .. })));
}

#[test]
fn annotating_unknown_object_is_rejected() {
    let mut sys = Graphitti::new();
    let err = sys.annotate().mark(ObjectId(42), Marker::interval(0, 10)).commit();
    assert_eq!(err, Err(CoreError::UnknownObject(ObjectId(42))));
}

#[test]
fn query_on_empty_system_is_empty() {
    let sys = Graphitti::new();
    let q = Query::new(Target::AnnotationContents).with_phrase("anything");
    let res = Executor::new(&sys).run(&q);
    assert!(res.is_empty());
    let q2 = Query::new(Target::Referents).with_referent(ReferentFilter::OfType(DataType::Image));
    assert!(Executor::new(&sys).run(&q2).is_empty());
}

#[test]
fn malformed_xml_errors_cleanly() {
    assert!(matches!(parse_document("<a><b></a>"), Err(XmlError::MismatchedTag { .. })));
    assert!(matches!(parse_document("<a>"), Err(XmlError::UnexpectedEof { .. })));
    assert_eq!(parse_document("   "), Err(XmlError::NoRootElement));
    assert!(parse_document("<a>&bogus;</a>").is_err());
}

#[test]
fn malformed_path_expression_errors() {
    for bad in ["", "//", "/a/[1]", "/a[unterminated", "not-a-path"] {
        assert!(PathExpr::parse(bad).is_err(), "expected error for {bad:?}");
    }
}

#[test]
fn malformed_query_dsl_errors() {
    for bad in [
        "",
        "SELECT",
        "SELECT wrongtarget",
        "SELECT graphs content contains \"x\"", // missing WHERE
        "SELECT graphs WHERE referent type notatype",
        "SELECT graphs WHERE constraint consecutive notanumber 5",
    ] {
        assert!(parse_query(bad).is_err(), "expected parse error for {bad:?}");
    }
}

#[test]
fn zero_length_interval_marker_is_handled() {
    let mut sys = Graphitti::new();
    let seq = sys.register_sequence("s", DataType::DnaSequence, 100, "chr1");
    // an empty interval [10,10) is a valid (if degenerate) marker; it simply never
    // overlaps anything
    let ann = sys.annotate().comment("point").mark(seq, Marker::interval(10, 10)).commit();
    assert!(ann.is_ok());
    assert!(sys
        .overlapping_intervals("chr1", graphitti::intervals::Interval::new(0, 100))
        .is_empty());
}

#[test]
fn constraint_with_impossible_count_returns_empty() {
    let mut sys = Graphitti::new();
    let seq = sys.register_sequence("s", DataType::DnaSequence, 1_000, "chr1");
    sys.annotate().comment("protease").mark(seq, Marker::interval(0, 50)).commit().unwrap();
    let q = Query::new(Target::Referents).with_phrase("protease").with_constraint(
        graphitti::query::GraphConstraint::ConsecutiveIntervals { count: 100, max_gap: 10 },
    );
    assert!(Executor::new(&sys).run(&q).objects.is_empty());
}

#[test]
fn snapshot_of_empty_system_roundtrips() {
    let sys = Graphitti::new();
    let rebuilt = Graphitti::from_json(&sys.to_json()).unwrap();
    assert_eq!(rebuilt.object_count(), 0);
    assert_eq!(rebuilt.annotation_count(), 0);
}

#[test]
fn duplicate_object_names_are_allowed() {
    // the paper does not require unique names; two objects may share a name
    let mut sys = Graphitti::new();
    let a = sys.register_sequence("dup", DataType::DnaSequence, 100, "chr1");
    let b = sys.register_sequence("dup", DataType::DnaSequence, 200, "chr1");
    assert_ne!(a, b);
    assert_eq!(sys.object_ids_of_type(DataType::DnaSequence).len(), 2);
}
