//! Cross-crate integration tests: the full annotate → index → query pipeline.
//!
//! These exercise the public `graphitti` facade the way an application would, spanning
//! the core system, all substrate stores and the query engine.

use graphitti::core::{DataType, Graphitti, Marker};
use graphitti::query::{
    parse_query, Executor, GraphConstraint, OntologyFilter, Query, ReferentFilter, Target,
};
use graphitti::spatial::Rect;

/// Build a small mixed system: one sequence and one image, each annotated.
fn mixed_system() -> Graphitti {
    let mut sys = Graphitti::new();
    let seq = sys.register_sequence("seg4", DataType::DnaSequence, 2_000, "chr-flu");
    let img = sys.register_image("brain", 1_000, 1_000, "confocal", "cs");
    let dcn = sys.ontology_mut().add_concept("DeepCerebellarNuclei");

    sys.annotate()
        .title("cleavage")
        .comment("polybasic protease cleavage site")
        .creator("condit")
        .mark(seq, Marker::interval(1_000, 1_050))
        .commit()
        .unwrap();

    sys.annotate()
        .title("region")
        .comment("strong staining for protein TP53")
        .creator("martone")
        .mark(img, Marker::region(100.0, 100.0, 200.0, 200.0))
        .cite_term(dcn)
        .commit()
        .unwrap();

    sys
}

#[test]
fn annotate_then_query_contents() {
    let sys = mixed_system();
    let q = Query::new(Target::AnnotationContents).with_phrase("protease cleavage");
    let res = Executor::new(&sys).run(&q);
    assert_eq!(res.annotations.len(), 1);
}

#[test]
fn referent_type_filter_spans_stores() {
    let sys = mixed_system();
    let q = Query::new(Target::Referents).with_referent(ReferentFilter::OfType(DataType::Image));
    let res = Executor::new(&sys).run(&q);
    assert_eq!(res.referents.len(), 1);
    let q2 =
        Query::new(Target::Referents).with_referent(ReferentFilter::OfType(DataType::DnaSequence));
    assert_eq!(Executor::new(&sys).run(&q2).referents.len(), 1);
}

#[test]
fn q1_tp53_end_to_end() {
    let mut sys = Graphitti::new();
    let img = sys.register_image("brain", 1_000, 1_000, "confocal", "cs");
    let dcn = sys.ontology_mut().add_concept("DeepCerebellarNuclei");
    // two DCN regions + one TP53 annotation on the same image
    for i in 0..2 {
        let x = (i as f64) * 300.0;
        sys.annotate()
            .comment("region")
            .mark(img, Marker::region(x, 0.0, x + 100.0, 100.0))
            .cite_term(dcn)
            .commit()
            .unwrap();
    }
    sys.annotate()
        .comment("strong staining for protein TP53 here")
        .mark(img, Marker::region(0.0, 0.0, 50.0, 50.0))
        .cite_term(dcn)
        .commit()
        .unwrap();

    let canvas = Rect::rect2(0.0, 0.0, 1_000.0, 1_000.0);
    let q = Query::new(Target::ConnectionGraphs)
        .with_phrase("protein TP53")
        .with_ontology(OntologyFilter::CitesTerm(dcn))
        .with_constraint(GraphConstraint::MinRegionCount {
            count: 2,
            within: canvas,
            system: "cs".into(),
        });
    let res = Executor::new(&sys).run(&q);
    assert_eq!(res.objects, vec![img]);
}

#[test]
fn q2_protease_end_to_end() {
    let mut sys = Graphitti::new();
    let seq = sys.register_sequence("seq", DataType::ProteinSequence, 5_000, "chrP");
    for i in 0..4 {
        let start = i * 200;
        sys.annotate()
            .comment("contains protease cleavage site")
            .mark(seq, Marker::interval(start, start + 80))
            .commit()
            .unwrap();
    }
    let q = Query::new(Target::Referents)
        .with_phrase("protease")
        .with_constraint(GraphConstraint::ConsecutiveIntervals { count: 4, max_gap: 200 });
    let res = Executor::new(&sys).run(&q);
    assert_eq!(res.objects, vec![seq]);
}

#[test]
fn textual_dsl_matches_builder() {
    let sys = mixed_system();
    let parsed =
        parse_query(r#"SELECT contents WHERE content contains "protease cleavage""#).unwrap();
    let built = Query::new(Target::AnnotationContents).with_phrase("protease cleavage");
    let r1 = Executor::new(&sys).run(&parsed);
    let r2 = Executor::new(&sys).run(&built);
    assert_eq!(r1.annotations, r2.annotations);
}

#[test]
fn connection_graph_has_witness_structure() {
    let sys = mixed_system();
    let q = Query::new(Target::ConnectionGraphs).with_phrase("protease");
    let res = Executor::new(&sys).run(&q);
    assert!(res.page_count() >= 1);
    // the page should contain the annotation, its referent and the sequence object
    let page = &res.pages[0];
    assert!(!page.annotations.is_empty());
    assert!(!page.referents.is_empty());
    assert!(!page.objects.is_empty());
}

#[test]
fn exploration_correlates_annotations() {
    let mut sys = Graphitti::new();
    let seq = sys.register_sequence("seq", DataType::DnaSequence, 1_000, "chr1");
    let a1 = sys.annotate().comment("first").mark(seq, Marker::interval(0, 50)).commit().unwrap();
    let a2 =
        sys.annotate().comment("second").mark(seq, Marker::interval(60, 110)).commit().unwrap();
    let on_obj = sys.annotations_of_object(seq);
    assert_eq!(on_obj, vec![a1, a2]);
}

#[test]
fn shared_referent_creates_related_annotations() {
    let mut sys = Graphitti::new();
    let seq = sys.register_sequence("seq", DataType::DnaSequence, 1_000, "chr1");
    let a1 = sys.annotate().comment("first").mark(seq, Marker::interval(0, 50)).commit().unwrap();
    let rid = sys.annotation(a1).unwrap().referents[0];
    let a2 = sys.annotate().comment("second view").mark_existing(rid).commit().unwrap();
    assert_eq!(sys.related_annotations(a1), vec![a2]);
    assert_eq!(sys.related_annotations(a2), vec![a1]);
}
