//! Scenario tests over generated workloads: integrity, the two example queries, and
//! snapshot round-trips on realistic data.

use graphitti::core::Graphitti;
use graphitti::query::{Executor, GraphConstraint, OntologyFilter, Query, Target};
use graphitti::spatial::Rect;
use graphitti::workloads::influenza::{self, InfluenzaConfig};
use graphitti::workloads::neuro::{self, NeuroConfig};
use graphitti::workloads::unified::{self, UnifiedConfig};

#[test]
fn influenza_workload_is_consistent() {
    let sys = influenza::build(&InfluenzaConfig::small());
    assert!(sys.verify_integrity().is_empty(), "{:?}", sys.verify_integrity());
}

#[test]
fn neuro_workload_is_consistent() {
    let w = neuro::build(&NeuroConfig::small());
    assert!(w.system.verify_integrity().is_empty());
}

#[test]
fn unified_workload_is_consistent() {
    let w = unified::build(&UnifiedConfig::small());
    assert!(w.system.verify_integrity().is_empty());
}

#[test]
fn q2_on_generated_influenza() {
    let sys = influenza::build(&InfluenzaConfig {
        seed: 5,
        sequences: 60,
        annotations: 600,
        protease_prob: 0.5,
        ..InfluenzaConfig::default()
    });
    let q = Query::new(Target::Referents)
        .with_phrase("protease")
        .with_constraint(GraphConstraint::ConsecutiveIntervals { count: 2, max_gap: 5_000 });
    let res = Executor::new(&sys).run(&q);
    // every returned object actually has protease annotations
    for obj in &res.objects {
        let anns = sys.annotations_of_object(*obj);
        let has_protease = anns.iter().any(|&a| {
            sys.annotation(a)
                .and_then(|x| x.comment())
                .map(|c| c.contains("protease"))
                .unwrap_or(false)
        });
        assert!(has_protease);
    }
}

#[test]
fn q1_on_generated_neuro() {
    let mut cfg = NeuroConfig::small();
    cfg.images = 30;
    cfg.dcn_prob = 0.8;
    cfg.tp53_prob = 0.6;
    let w = neuro::build(&cfg);
    let canvas = Rect::rect2(0.0, 0.0, cfg.canvas, cfg.canvas);
    let q = Query::new(Target::ConnectionGraphs)
        .with_phrase("protein TP53")
        .with_ontology(OntologyFilter::CitesTerm(w.concepts.deep_cerebellar_nuclei))
        .with_constraint(GraphConstraint::MinRegionCount {
            count: 2,
            within: canvas,
            system: w.systems[0].clone(),
        });
    let res = Executor::new(&w.system).run(&q);
    // result is well-formed: every page is internally non-empty
    for page in &res.pages {
        assert!(!page.subgraph.subgraph.is_empty());
    }
}

#[test]
fn snapshot_roundtrip_on_generated_workload() {
    let sys = influenza::build(&InfluenzaConfig::small());
    let rebuilt = Graphitti::from_json(&sys.to_json()).unwrap();
    assert_eq!(rebuilt.study_snapshot(), sys.study_snapshot());
    assert!(rebuilt.verify_integrity().is_empty());
}

#[test]
fn connection_discovery_parity_direct_vs_transitive() {
    let sys = influenza::build(&InfluenzaConfig {
        seed: 9,
        annotations: 300,
        shared_referent_prob: 0.6,
        ..InfluenzaConfig::small()
    });
    for ann in sys.annotations().iter().take(50) {
        let direct = sys.related_annotations(ann.id);
        let transitive = sys.transitively_related_annotations(ann.id);
        // transitive closure contains every directly-related annotation
        for d in &direct {
            assert!(transitive.contains(d));
        }
    }
}
