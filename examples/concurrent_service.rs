//! Concurrent query serving against a live, mutating system.
//!
//! Run with `cargo run --release --example concurrent_service`.
//!
//! Builds a neuroscience workload, starts a [`QueryService`] worker pool over a
//! snapshot of it, then drives it from several client threads while the writer keeps
//! annotating and publishing new epochs. Shows the three service properties end to
//! end: parallel independent queries, snapshot isolation under a live writer, and the
//! canonical-form result cache.

use std::sync::Arc;

use graphitti::core::Marker;
use graphitti::query::{OntologyFilter, Query, QueryService, ServiceConfig, Target};
use graphitti::workloads::neuro::{self, NeuroConfig};

fn main() {
    let mut workload = neuro::build(&NeuroConfig {
        seed: 42,
        images: 60,
        regions_per_image: 6,
        coordinate_systems: 3,
        dcn_prob: 0.4,
        tp53_prob: 0.25,
        canvas: 1_000.0,
    });
    let dcn = workload.concepts.deep_cerebellar_nuclei;
    println!(
        "workload: {} images, {} annotations",
        workload.images.len(),
        workload.system.annotation_count()
    );

    let service = Arc::new(QueryService::new(
        workload.system.snapshot(),
        ServiceConfig::default().with_workers(4).with_cache_capacity(64),
    ));
    println!("service: {} workers, epoch {}", service.worker_count(), service.current_epoch());

    // Two semantically equal queries written differently — one cache entry.
    let tp53_a = Query::new(Target::ConnectionGraphs)
        .with_keywords(["TP53", "protein"])
        .with_ontology(OntologyFilter::CitesTerm(dcn));
    let tp53_b = Query::new(Target::ConnectionGraphs)
        .with_ontology(OntologyFilter::CitesTerm(dcn))
        .with_keywords(["protein", "tp53"]);
    let browse = Query::new(Target::ConnectionGraphs).with_ontology(OntologyFilter::CitesTerm(dcn));

    // Client threads hammer the service while the writer publishes new epochs.
    std::thread::scope(|scope| {
        for client in 0..3 {
            let service = Arc::clone(&service);
            let mix = [tp53_a.clone(), tp53_b.clone(), browse.clone()];
            scope.spawn(move || {
                for round in 0..40 {
                    let q = mix[(client + round) % mix.len()].clone();
                    let result = service.run(q).unwrap();
                    std::hint::black_box(result);
                }
            });
        }

        // The writer: annotate a fresh region citing the DCN term, publish, repeat.
        let img = workload.images[0];
        for i in 0..5 {
            let x = 10.0 * i as f64;
            workload
                .system
                .annotate()
                .comment(format!("protein TP53 follow-up {i}"))
                .mark(img, Marker::region(x, 0.0, x + 8.0, 8.0))
                .cite_term(dcn)
                .commit()
                .expect("annotation commits");
            service.publish(workload.system.snapshot()).unwrap();
        }
    });

    let final_result = service.run(tp53_a).unwrap();
    let metrics = service.metrics();
    println!(
        "served {} queries: {} cache hits, {} misses, {} publishes",
        metrics.completed, metrics.cache_hits, metrics.cache_misses, metrics.publishes
    );
    println!(
        "final epoch {}: {} matching objects across {} pages",
        service.current_epoch(),
        final_result.objects.len(),
        final_result.page_count()
    );
    assert_eq!(service.current_epoch(), workload.system.epoch());
    println!("readers observed only published epochs — snapshot isolation held.");
}
