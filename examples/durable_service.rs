//! Durable annotation serving: WAL → power cut → recovery → query service.
//!
//! Run with `cargo run --release --example durable_service`.
//!
//! Walks the durability subsystem end to end: a [`DurableSystem`] journals every
//! published batch to a write-ahead log with group commit and periodic
//! checkpoints, a fault-injected storage "pulls the plug" mid-append, recovery
//! replays checkpoint-then-tail to the exact prefix of published batches, and
//! the recovered WAL is attached to a [`QueryService`] so later publishes are
//! durable before they are visible — with the WAL counters surfaced through the
//! service metrics.

use graphitti::core::{
    CrashPoint, DataType, DurabilityMode, DurableSystem, FaultStorage, LogOp, LogReferent, Marker,
    MemStorage, ObjectId,
};
use graphitti::query::{Query, QueryService, ServiceConfig, Target};
use graphitti::xml::DublinCore;

/// One published batch: a registration plus an interval annotation on an
/// earlier sequence.
fn batch(step: u64) -> Vec<LogOp> {
    let start = (step * 113) % 1_400;
    vec![
        LogOp::register_sequence(
            format!("H5N1-seg-{step}"),
            DataType::DnaSequence,
            1_800,
            "chr-demo",
        ),
        LogOp::Annotate {
            content: DublinCore::new()
                .field("title", format!("site {step}"))
                .field("description", format!("observed cleavage signal {step}"))
                .user_tag("curator", "condit"),
            referents: vec![LogReferent::New {
                object: ObjectId(step / 2),
                marker: Marker::interval(start, start + 42),
            }],
            terms: vec![],
        },
    ]
}

fn main() {
    // A durable system over fault-injected storage, planned to lose power while
    // appending the record for batch 6 (0-based): the record's frame is cut
    // short on disk, exactly as a real crash mid-write would leave it.
    let (storage, handle) = FaultStorage::with_plan(CrashPoint::TornAppend { record: 6, keep: 19 });
    let mut durable =
        DurableSystem::create(Box::new(storage), DurabilityMode::Sync).with_checkpoint_every(4);

    for step in 0..8 {
        durable.apply(&batch(step)).expect("durable publish");
    }
    let stats = durable.wal().stats();
    println!(
        "journaled {} batches: {} records, {} fsyncs, {} checkpoint(s) — then the power died",
        durable.version(),
        stats.records_appended,
        stats.fsyncs,
        stats.checkpoints,
    );

    // Everything after the crash point silently went nowhere; the frozen image
    // is what a restart would find on disk.
    let image = handle.crash_image().expect("the planned crash fired");
    println!(
        "crash image: checkpoint {} bytes, log {} bytes (last frame torn)",
        image.checkpoint.as_ref().map_or(0, Vec::len),
        image.log.len()
    );

    // Recovery: load the checkpoint snapshot, replay the intact tail, truncate
    // the torn frame.  The system lands on batch 6 — the last batch whose
    // record fully reached the log — never a torn or reordered state.
    let (recovered, report) =
        DurableSystem::open(Box::new(MemStorage::from_image(image)), DurabilityMode::Sync)
            .expect("recovery");
    println!(
        "recovered to version {}: checkpoint @ {}, {} tail record(s) replayed, torn tail dropped: {}",
        report.recovered_version, report.checkpoint_version, report.replayed_records, report.torn_tail
    );
    assert_eq!(report.recovered_version, 6);
    assert_eq!(recovered.system().annotation_count(), 6);

    // Serve the recovered state.  Attaching the WAL makes every later publish
    // durable-before-visible: the service flushes the log before the new
    // snapshot becomes queryable.
    let service = QueryService::new(
        recovered.system().snapshot(),
        ServiceConfig::default().with_workers(2).with_cache_capacity(32),
    );
    service.attach_wal(recovered.wal());

    let phrase = Query::new(Target::AnnotationContents).with_phrase("cleavage");
    let before = service.run_now(&phrase).unwrap();
    println!(
        "\nquery \"cleavage\": {} annotations from the recovered prefix",
        before.annotations.len()
    );

    // Publish the two batches the crash swallowed — journaled again, flushed,
    // then visible.
    let mut recovered = recovered;
    for step in 6..8 {
        recovered.apply(&batch(step)).expect("redo lost batch");
    }
    service.publish(recovered.system().snapshot()).unwrap();
    let after = service.run_now(&phrase).unwrap();
    assert_eq!(after.annotations.len(), before.annotations.len() + 2);

    let metrics = service.metrics();
    println!(
        "republished lost batches: {} annotations now; WAL {} records / {} fsyncs, {} recovery replay(s)",
        after.annotations.len(),
        metrics.wal_records_appended,
        metrics.wal_fsyncs,
        metrics.recovery_replays
    );
}
