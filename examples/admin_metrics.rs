//! The admin tab: structural metrics over the a-graph.
//!
//! Run with `cargo run --example admin_metrics`.
//!
//! The demo's third tab is system administration. This example reports the kind of
//! aggregate health metrics an administrator would inspect: a-graph size, component
//! structure, degree distribution, the busiest referents (hubs), and the index grouping.

use graphitti::agraph;
use graphitti::workloads::influenza::{self, InfluenzaConfig};

fn main() {
    let sys = influenza::build(&InfluenzaConfig {
        seed: 2008,
        sequences: 80,
        annotations: 600,
        shared_referent_prob: 0.4,
        ..InfluenzaConfig::default()
    });

    let m = agraph::metrics(sys.agraph());
    println!("a-graph metrics:");
    println!("  nodes              : {}", m.nodes);
    println!("  edges              : {}", m.edges);
    println!("  components         : {}", m.components);
    println!("  largest component  : {}", m.largest_component);
    println!("  max degree         : {}", m.max_degree);
    println!("  content nodes      : {}", m.kind_counts[&agraph::NodeKind::Content]);
    println!("  referent nodes     : {}", m.kind_counts[&agraph::NodeKind::Referent]);
    println!("  object nodes       : {}", m.kind_counts[&agraph::NodeKind::Object]);

    let (intervals, spatial) = sys.index_structure_count();
    println!("\nindex structures: {intervals} interval tree(s), {spatial} R-tree(s)");

    println!("\ndegree distribution (degree: count):");
    let mut dist: Vec<(usize, usize)> =
        agraph::degree_distribution(sys.agraph()).into_iter().collect();
    dist.sort();
    for (deg, count) in dist.iter().take(8) {
        println!("  {deg}: {count}");
    }

    println!("\ntop referent hubs (most-annotated substructures):");
    for (node, degree) in agraph::top_hubs(sys.agraph(), 5) {
        if let Some(rec) = sys.agraph().node(node) {
            println!("  {} (degree {degree})", rec.key);
        }
    }

    println!("\nadmin metrics example complete.");
}
