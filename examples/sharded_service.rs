//! Sharded scatter-gather query serving.
//!
//! Run with `cargo run --release --example sharded_service`.
//!
//! Builds an influenza study, re-materialises it as a 4-shard
//! [`ShardedSystem`] *and* an equivalent unsharded oracle from the same study
//! snapshot, then serves queries scatter-gather over a consistent
//! [`ShardCut`](graphitti::core::ShardCut) while a writer keeps publishing
//! batches.  Shows the four sharding properties end to end: hash partitioning
//! with global ids, byte-identical answers vs the unsharded system, pruning an
//! id-pinned query to its owning shard, and the cut-level cache surviving a
//! footprint-disjoint (ingest-only) publish.

use graphitti::core::{DataType, Graphitti, Marker, ObjectId, ShardedSystem};
use graphitti::query::{
    Executor, Query, ReferentFilter, ShardedQueryService, ShardedServiceConfig, Target,
};
use graphitti::workloads::influenza::{self, InfluenzaConfig};

fn main() {
    // One corpus, two materialisations: the study snapshot replays into an
    // unsharded oracle and a 4-shard system with identical global ids — and
    // identical a-graph node ids, because the sharded router maintains a global
    // collation mirror in the unsharded system's exact creation order.
    let base = influenza::build(&InfluenzaConfig::small().with_annotations(300));
    let study = base.study_snapshot();
    let oracle = Graphitti::from_study_snapshot(&study).expect("oracle replay");
    let mut sharded = ShardedSystem::from_study_snapshot(&study, 4).expect("sharded replay");

    println!(
        "corpus: {} objects (replicated), {} annotations partitioned over {} shards:",
        sharded.object_count(),
        sharded.annotation_count(),
        sharded.shard_count()
    );
    for i in 0..sharded.shard_count() {
        println!(
            "  shard {i}: {} annotations, {} referents (epoch {})",
            sharded.shard(i).annotation_count(),
            sharded.shard(i).referent_count(),
            sharded.shard(i).epoch()
        );
    }

    // Serve over a consistent cut: one snapshot per shard, captured atomically.
    let service = ShardedQueryService::new(
        sharded.capture_cut(),
        ShardedServiceConfig::default().with_cache_capacity(64).with_shard_parallel(true),
    );

    // A content query scatters to every shard; the per-shard candidate runs are
    // disjoint sorted global-id sets, merged by a k-way galloping union, and the
    // answer is byte-identical to the unsharded executor — pages, ordering and
    // node ids included.
    let phrase = Query::new(Target::AnnotationContents).with_phrase("protease");
    let served = service.run(&phrase).unwrap();
    let expected = Executor::new(&oracle).run(&phrase);
    assert_eq!(served.to_json(), expected.to_json());
    println!(
        "\nscatter-gather \"protease\": {} annotations, byte-identical to the unsharded oracle",
        served.annotations.len()
    );

    // An id-pinned query prunes: the cut knows which shards hold an object's
    // referents, so the referent family visits exactly those (usually one).
    let pinned = Query::new(Target::Referents).with_referent(ReferentFilter::OnObject(ObjectId(0)));
    let mask = service.cut().object_referent_shards(ObjectId(0));
    let on_object = service.run(&pinned).unwrap();
    assert_eq!(on_object.to_json(), Executor::new(&oracle).run(&pinned).to_json());
    println!(
        "id-pinned OnObject(0): {} referents, referent scatter pruned to shard mask {mask:#06b}",
        on_object.referents.len()
    );

    // A footprint-disjoint publish: registrations replicate object metadata but
    // move no shard's annotation-path epochs, so the cut cache keeps both cached
    // answers — the publish evicts nothing.
    service.run(&phrase).unwrap(); // warm: this one is a hit already
    let before = service.metrics();
    let mut batch = sharded.batch();
    for i in 0..5 {
        batch.register_sequence(format!("ingest-{i}"), DataType::DnaSequence, 900, "chr-new");
    }
    batch.commit();
    service.publish(sharded.capture_cut()).unwrap();
    let after = service.metrics();
    assert_eq!(after.cache_entries_evicted, before.cache_entries_evicted);
    let hits_before = service.metrics().cache_hits;
    assert_eq!(service.run(&phrase).unwrap().to_json(), expected.to_json());
    assert_eq!(service.metrics().cache_hits, hits_before + 1);
    println!(
        "ingest publish: cut version {} installed, 0 evictions, \"protease\" still a cache hit",
        service.current_version()
    );

    // An annotation commit dirties what every footprint reads: the entries go,
    // and the next answers reflect the new state — still byte-identical.
    sharded
        .annotate()
        .comment("novel protease cleavage site")
        .mark(ObjectId(0), Marker::interval(40, 80))
        .commit()
        .expect("sharded annotate");
    service.publish(sharded.capture_cut()).unwrap();
    let grown = service.run(&phrase).unwrap();
    assert_eq!(grown.annotations.len(), expected.annotations.len() + 1);
    println!(
        "annotation publish: \"protease\" now {} annotations (cache refilled on miss)",
        grown.annotations.len()
    );
    println!("\nmetrics: {:?}", service.metrics());
}
