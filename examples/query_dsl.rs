//! Driving Graphitti through the textual query DSL.
//!
//! Run with `cargo run --example query_dsl`.
//!
//! The demo's GUI query form "translates directly to a query expression"; this example
//! writes those expressions in the textual DSL, parses them, shows the feasible plan and
//! runs them against a small influenza workload.

use graphitti::query::{parse_query, Executor};
use graphitti::workloads::influenza::{self, InfluenzaConfig};

fn main() {
    let sys = influenza::build(&InfluenzaConfig {
        seed: 7,
        sequences: 60,
        annotations: 300,
        protease_prob: 0.4,
        ..InfluenzaConfig::default()
    });
    let exec = Executor::new(&sys);

    let queries = [
        r#"SELECT contents WHERE content contains "protease""#,
        r#"SELECT referents WHERE referent type dna"#,
        r#"SELECT graphs WHERE content keywords protease cleavage AND constraint consecutive 2 2000"#,
        r#"SELECT contents WHERE content path "//dc:subject[contains(text(), 'protease')]""#,
    ];

    for q in queries {
        println!("query: {q}");
        match parse_query(q) {
            Ok(query) => {
                let plan = exec.plan(&query);
                let result = exec.run(&query);
                println!(
                    "  -> {} annotation(s), {} referent(s), {} object(s), {} page(s)",
                    result.annotations.len(),
                    result.referents.len(),
                    result.objects.len(),
                    result.page_count()
                );
                print!("{}", indent(&plan.explain()));
            }
            Err(e) => println!("  parse error: {e}"),
        }
        println!();
    }

    println!("query DSL example complete.");
}

fn indent(s: &str) -> String {
    s.lines().map(|l| format!("  {l}\n")).collect()
}
