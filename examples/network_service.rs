//! Serving queries over TCP: the network tier end to end.
//!
//! Run with `cargo run --release --example network_service`.
//!
//! Builds an influenza study, puts a worker-pool [`QueryService`] behind a
//! [`NetServer`] on an ephemeral loopback port, and walks the wire contract:
//! query DSL text in, streamed result pages out (byte-identical to the
//! in-process answer), typed error frames for bad queries, connection-level
//! shedding at the acceptor's ceiling, and the plaintext `/health` +
//! `/metrics` endpoint a load balancer would probe.

use std::sync::Arc;
use std::time::{Duration, Instant};

use graphitti::net::{http_get, Backend, Client, NetError, NetServer, ServerConfig, WireBudget};
use graphitti::query::{parse_query, QueryService, ReferenceExecutor, ServiceConfig};
use graphitti::workloads::influenza::{self, InfluenzaConfig};

fn main() {
    let sys = influenza::build(&InfluenzaConfig::small().with_annotations(300));
    println!("corpus: {} objects, {} annotations", sys.object_count(), sys.annotation_count());

    // ── Act 1: bind the front door ─────────────────────────────────────────
    let backend = Backend::Pool(Arc::new(QueryService::new(
        sys.snapshot(),
        ServiceConfig::default().with_workers(2),
    )));
    let mut server = NetServer::bind(
        "127.0.0.1:0",
        backend,
        ServerConfig::default().with_max_connections(2).with_window(4),
    )
    .expect("bind an ephemeral loopback port");
    println!(
        "act 1: serving on {} (health endpoint on {})",
        server.local_addr(),
        server.health_addr()
    );

    // ── Act 2: DSL text in, streamed pages out, byte-identical ─────────────
    let reference = ReferenceExecutor::new(&sys);
    let mut client = Client::connect(server.local_addr()).expect("connect");
    for text in [
        r#"SELECT contents WHERE content contains "protease cleavage""#,
        "SELECT referents WHERE content keywords protease",
        "SELECT graphs WHERE content contains \"protease\" AND constraint path 3",
    ] {
        let over_wire = client.query(text, &WireBudget::unbounded()).expect("query completes");
        let in_process = reference.run(&parse_query(text).expect("example query parses"));
        assert_eq!(
            format!("{over_wire:?}"),
            format!("{in_process:?}"),
            "the wire answer is the in-process answer"
        );
        println!(
            "act 2: {} page(s), {} annotation(s) over the wire — byte-identical: {text}",
            over_wire.pages.len(),
            over_wire.annotations.len()
        );
    }

    // ── Act 3: failures are typed frames, not hangs ────────────────────────
    match client.query("SELECT nonsense", &WireBudget::unbounded()) {
        Err(NetError::BadQuery(message)) => println!("act 3: typed rejection: {message}"),
        other => panic!("expected a typed BadQuery frame, got {other:?}"),
    }
    // The connection survives a rejected query.
    client.query("SELECT contents", &WireBudget::unbounded()).expect("connection still serves");

    // ── Act 4: the acceptor's ceiling sheds whole connections ──────────────
    let _second = Client::connect(server.local_addr()).expect("second connection admitted");
    // max_connections = 2: client + _second fill the house (poll: admission is
    // on the acceptor thread).
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.live_connections() < 2 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(2));
    }
    let mut refused = Client::connect(server.local_addr()).expect("TCP connect still succeeds");
    match refused.recv() {
        Err(NetError::ConnectionShed { live }) => {
            println!("act 4: third connection refused with a typed frame ({live} live)")
        }
        other => panic!("expected a typed ConnectionShed frame, got {other:?}"),
    }

    // ── Act 5: what the load balancer sees ─────────────────────────────────
    let health = http_get(server.health_addr(), "/health").expect("health answers");
    print!("act 5: GET /health → {health}");
    let metrics = http_get(server.health_addr(), "/metrics").expect("metrics answers");
    let mut shown = 0;
    for line in metrics.lines() {
        if line.starts_with("net_") {
            println!("act 5: {line}");
            shown += 1;
        }
    }
    assert!(shown > 0, "wire counters must be dumped");
    let m = server.metrics();
    assert_eq!(m.shed + m.completed + m.failed, m.submitted, "the wire books balance: {m:?}");

    server.shutdown();
    println!(
        "done: served {} requests, {} completed, {} failed typed",
        m.submitted, m.completed, m.failed
    );
}
