//! Heterogeneous cross-type annotations (the scenario the paper's intro motivates).
//!
//! Run with `cargo run --example cross_type_correlations`.
//!
//! Builds a unified system containing protein sequences and expression images, with
//! annotations that link a sequence interval to an image region. It then follows the
//! a-graph from a correlation annotation to both referents and their objects — the
//! "newly discovered correlation between two different pieces of data".

use graphitti::core::DataType;
use graphitti::workloads::unified::{self, UnifiedConfig};

fn main() {
    let workload = unified::build(&UnifiedConfig {
        seed: 2008,
        sequences: 30,
        images: 30,
        annotations: 150,
        cross_annotations: 30,
    });
    let sys = &workload.system;

    println!("Unified heterogeneous workload:");
    println!("  sequences    : {}", workload.sequences.len());
    println!("  images       : {}", workload.images.len());
    println!("  annotations  : {}", sys.annotation_count());
    let (intervals, spatial) = sys.index_structure_count();
    println!("  interval trees: {intervals}, R-trees: {spatial}");

    // Find a correlation annotation and walk its heterogeneous referents.
    let correlation = sys
        .annotations()
        .iter()
        .find(|a| a.terms.contains(&workload.correlation_concept))
        .expect("at least one correlation annotation");

    println!("\ncorrelation annotation {:?}:", correlation.id);
    println!("  comment: {}", correlation.comment().unwrap_or(""));
    for &rid in &correlation.referents {
        if let Some(r) = sys.referent(rid) {
            if let Some(obj) = sys.object(r.object) {
                let kind = match obj.data_type {
                    DataType::ProteinSequence => "protein sequence",
                    DataType::Image => "expression image",
                    other => return println!("unexpected type {other:?}"),
                };
                println!("  links {kind} '{}' at {}", obj.name, r.marker.key());
            }
        }
    }

    // The two objects are now indirectly related through this annotation.
    let related = sys.transitively_related_annotations(correlation.id);
    println!("\nannotations transitively connected to this correlation: {}", related.len());

    println!("\ncross-type correlation example complete.");
}
