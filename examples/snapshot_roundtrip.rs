//! Export a study to JSON and reload it.
//!
//! Run with `cargo run --example snapshot_roundtrip`.
//!
//! Builds an influenza workload, serialises the whole system to a JSON snapshot, rebuilds
//! an equivalent system from it, and verifies the rebuilt system answers queries
//! identically — including preserving the a-graph's shared-referent connection structure.

use graphitti::core::Graphitti;
use graphitti::query::{Executor, Query, Target};
use graphitti::workloads::influenza::{self, InfluenzaConfig};

fn main() {
    let sys = influenza::build(&InfluenzaConfig {
        seed: 11,
        sequences: 40,
        annotations: 200,
        protease_prob: 0.4,
        shared_referent_prob: 0.4,
        ..InfluenzaConfig::default()
    });
    println!(
        "original: {} objects, {} annotations, {} referents",
        sys.object_count(),
        sys.annotation_count(),
        sys.referent_count()
    );

    // Export to JSON.
    let json = sys.to_json();
    println!("snapshot JSON size: {} bytes", json.len());

    // Rebuild.
    let rebuilt = Graphitti::from_json(&json).expect("rebuild from json");
    println!(
        "rebuilt : {} objects, {} annotations, {} referents",
        rebuilt.object_count(),
        rebuilt.annotation_count(),
        rebuilt.referent_count()
    );

    // Verify query parity.
    let q = Query::new(Target::AnnotationContents).with_phrase("protease");
    let before = Executor::new(&sys).run(&q).annotations.len();
    let after = Executor::new(&rebuilt).run(&q).annotations.len();
    println!("\nprotease annotations — original: {before}, rebuilt: {after}");
    assert_eq!(before, after);

    // Study snapshots must be identical.
    assert_eq!(sys.study_snapshot(), rebuilt.study_snapshot());
    println!("study snapshots are identical — round-trip verified.");
}
