//! Overload- and failure-resilient query serving.
//!
//! Run with `cargo run --release --example resilient_service`.
//!
//! Builds an influenza study and walks the resilience contract end to end,
//! using the chaos harness to inject each failure deterministically: a
//! per-query deadline expiring mid-execution, admission control shedding
//! typed errors under 2× overload (and every admitted query still
//! completing), a shard outage served as an exactly-marked partial answer,
//! and a dying worker being respawned without dropping the pool. Every
//! query ends in exactly one of: a complete answer, a marked degraded
//! subset, or a typed [`ServiceError`].

use std::time::Duration;

use graphitti::core::ShardedSystem;
use graphitti::query::{
    ChaosConfig, Query, QueryBudget, QueryService, RetryPolicy, ServiceConfig, ServiceError,
    ShardedExecutor, ShardedQueryService, ShardedServiceConfig, Target,
};
use graphitti::workloads::influenza::{self, InfluenzaConfig};

fn main() {
    let sys = influenza::build(&InfluenzaConfig::small().with_annotations(300));
    println!("corpus: {} objects, {} annotations", sys.object_count(), sys.annotation_count());
    let protease = Query::new(Target::AnnotationContents).with_phrase("protease cleavage");
    let browse = Query::new(Target::ConnectionGraphs).with_phrase("protease");

    // ── Act 1: a deadline expires mid-query ────────────────────────────────
    // Chaos wedges the first execution for 60ms; the query carries a 10ms
    // deadline, so the cancel token trips at a pipeline checkpoint and the
    // ticket resolves with a typed error instead of a stale answer.
    let service = QueryService::new(
        sys.snapshot(),
        ServiceConfig::default()
            .with_workers(1)
            .with_chaos(ChaosConfig::new().with_stuck_query_on(1, Duration::from_millis(60))),
    );
    let ticket = service
        .submit_with_budget(
            protease.clone(),
            QueryBudget::unbounded().with_deadline(Duration::from_millis(10)),
        )
        .expect("an idle queue admits the query");
    match ticket.wait() {
        Err(ServiceError::DeadlineExceeded) => {
            println!("\nact 1: {}", ServiceError::DeadlineExceeded)
        }
        other => panic!("expected a deadline miss, got {other:?}"),
    }
    let unimpeded = service.run(protease.clone()).expect("chaos spent, query completes");
    println!(
        "act 1: retry without chaos served {} result page(s); deadline_misses = {}",
        unimpeded.pages.len(),
        service.metrics().deadline_misses
    );

    // ── Act 2: admission control under 2× overload ─────────────────────────
    // One worker is wedged for 80ms while a burst arrives. The bounded queue
    // admits up to its capacity and refuses the rest at the door with
    // `Overloaded { depth }` — and every *admitted* ticket still completes
    // once the stuck query clears: overload sheds, it does not wedge.
    let capacity = 2usize;
    let service = QueryService::new(
        sys.snapshot(),
        ServiceConfig::default()
            .with_workers(1)
            .with_queue_capacity(capacity)
            .with_chaos(ChaosConfig::new().with_stuck_query_on(1, Duration::from_millis(80))),
    );
    let mut admitted = Vec::new();
    let mut shed = 0u64;
    for i in 0..(2 * capacity + 2) {
        let q = if i % 2 == 0 { protease.clone() } else { browse.clone() };
        match service.submit(q) {
            Ok(ticket) => admitted.push(ticket),
            Err(ServiceError::Overloaded { depth }) => {
                shed += 1;
                println!("act 2: shed at the door (queue depth {depth})");
            }
            Err(e) => panic!("unexpected submit error: {e}"),
        }
    }
    for ticket in admitted {
        ticket.wait().expect("every admitted query completes after the stall");
    }
    let m = service.metrics();
    assert_eq!(m.shed, shed);
    assert_eq!(m.shed + m.completed + m.failed, m.submitted, "the books balance: {m:?}");
    println!(
        "act 2: submitted {} → completed {}, shed {}, failed {}",
        m.submitted, m.completed, m.shed, m.failed
    );

    // ── Act 3: a shard outage, served as a marked partial answer ───────────
    // The same corpus re-materialised over 4 shards, with shard 3 permanently
    // down. A strict query exhausts its retries into `ShardUnavailable`; with
    // `allow_partial` the scatter completes over the live shards and the
    // answer is *marked* — and byte-identical to the same query executed with
    // the dead shard masked out, not a best-effort approximation.
    let study = sys.study_snapshot();
    let sharded = ShardedSystem::from_study_snapshot(&study, 4).expect("sharded replay");
    let down = 3usize;
    let cut = sharded.capture_cut();
    let service = ShardedQueryService::new(
        sharded.capture_cut(),
        ShardedServiceConfig::default()
            .with_shard_timeout(Duration::from_millis(5))
            .with_retry(
                RetryPolicy::default()
                    .with_max_attempts(2)
                    .with_base_delay(Duration::from_micros(200))
                    .with_max_delay(Duration::from_millis(2)),
            )
            .with_chaos(ChaosConfig::new().with_shard_outage(down, u64::MAX)),
    );
    match service.run(&browse) {
        Err(ServiceError::ShardUnavailable { shard, attempts }) => {
            println!(
                "\nact 3: strict query failed typed: shard {shard} down after {attempts} attempts"
            );
        }
        other => panic!("expected ShardUnavailable, got {other:?}"),
    }
    let partial = service
        .run_with_budget(&browse, QueryBudget::unbounded().with_allow_partial(true))
        .expect("allow_partial rides out the outage");
    assert!(partial.is_degraded());
    let masked = ShardedExecutor::new(&cut)
        .with_allow_partial(true)
        .with_shard_mask(!(1u64 << down))
        .run(&browse);
    assert_eq!(
        format!("{partial:?}"),
        format!("{masked:?}"),
        "a degraded answer equals the masked-shard oracle"
    );
    println!(
        "act 3: degraded answer over live shards: {} page(s), missing shards {:?} (== masked oracle)",
        partial.pages.len(),
        partial.missing_shards
    );

    // ── Act 4: the pool heals itself ───────────────────────────────────────
    // Chaos aborts a worker outright on its first execution (the panic
    // message on stderr below is the injected fault escaping the worker's
    // catch — expected). The victim's ticket resolves with `WorkerPanicked`,
    // a replacement thread is registered before the dying one exits, and the
    // pool keeps serving.
    let service = QueryService::new(
        sys.snapshot(),
        ServiceConfig::default()
            .with_workers(2)
            .with_chaos(ChaosConfig::new().with_worker_abort_on(1)),
    );
    match service.run(protease.clone()) {
        Err(ServiceError::WorkerPanicked) => println!("\nact 4: victim query failed typed"),
        other => panic!("expected WorkerPanicked, got {other:?}"),
    }
    for _ in 0..4 {
        service.run(browse.clone()).expect("the healed pool keeps serving");
    }
    // The respawn guard registers the replacement as the dying thread exits —
    // an instant after the victim's ticket resolves, so poll briefly.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while service.metrics().workers_respawned == 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(2));
    }
    let m = service.metrics();
    println!(
        "act 4: live workers {}/{}, respawned {}, completed {} after the abort",
        service.live_workers(),
        service.worker_count(),
        m.workers_respawned,
        m.completed
    );
    assert_eq!(service.live_workers(), service.worker_count());
}
