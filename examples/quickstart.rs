//! Quickstart: register a sequence, annotate an interval, query it back.
//!
//! Run with `cargo run --example quickstart`.
//!
//! This mirrors the smallest meaningful Graphitti workflow: register one heterogeneous
//! data object, attach an annotation to a marked substructure of it, then run a query
//! and explore the resulting connection structure.

use graphitti::core::{DataType, Graphitti, Marker};
use graphitti::query::{Executor, Query, Target};

fn main() {
    // 1. Create the system and register a DNA sequence under a coordinate domain.
    let mut sys = Graphitti::new();
    let ha_segment = sys.register_sequence(
        "H5N1-HA-segment4",
        DataType::DnaSequence,
        1_800,
        "influenza-segment-4",
    );
    println!("registered object {:?}", ha_segment);

    // 2. Annotate the polybasic cleavage site (an interval of the sequence) and cite an
    //    ontology term.
    let protease = sys.ontology_mut().add_concept("Protease");
    let annotation = sys
        .annotate()
        .title("polybasic cleavage site")
        .comment("multiple basic residues — a marker of high pathogenicity; protease target")
        .creator("condit")
        .subject("protease")
        .mark(ha_segment, Marker::interval(1_020, 1_062))
        .cite_term(protease)
        .commit()
        .expect("commit annotation");
    println!("committed annotation {:?}", annotation);

    // 3. A second scientist annotates an overlapping region — now the object carries two
    //    annotations.
    sys.annotate()
        .title("conserved motif")
        .comment("conserved across the H5 clade")
        .creator("gupta")
        .mark(ha_segment, Marker::interval(1_040, 1_080))
        .commit()
        .unwrap();

    // 4. Query: connection graphs for annotations mentioning "protease".
    let query = Query::new(Target::ConnectionGraphs).with_phrase("protease");
    let result = Executor::new(&sys).run(&query);
    println!(
        "\nquery 'protease' -> {} result page(s), {} total node(s)",
        result.page_count(),
        result.total_nodes()
    );
    for (i, page) in result.pages.iter().enumerate() {
        println!(
            "  page {}: {} annotation(s), {} referent(s), {} object(s), {} term(s)",
            i + 1,
            page.annotations.len(),
            page.referents.len(),
            page.objects.len(),
            page.terms.len()
        );
    }

    // 5. Explore: what other annotations touch this sequence?
    let others = sys.annotations_of_object(ha_segment);
    println!("\nannotations on H5N1-HA-segment4: {:?}", others);
    assert_eq!(others.len(), 2);

    println!("\nquickstart complete.");
}
