//! Index ablation: indexed interval lookup vs. linear scan.
//!
//! Run with `cargo run --example index_ablation`.
//!
//! Demonstrates the design choice DESIGN.md calls out (A1): the interval tree answers
//! overlap queries in `O(log n + k)` where the naive baseline scans all referents. The
//! example populates both with the same referents and checks they return identical
//! answers, then times a batch of queries on each.

use std::time::Instant;

use graphitti::baselines::NaiveReferentIndex;
use graphitti::intervals::{DomainIntervals, Interval};

fn main() {
    const N: u64 = 50_000;
    const DOMAIN: &str = "chr-demo";

    let mut indexed = DomainIntervals::new();
    let mut naive = NaiveReferentIndex::new();
    for i in 0..N {
        let start = (i * 7) % 1_000_000;
        let iv = Interval::new(start, start + 40);
        indexed.insert(DOMAIN, iv, i);
        naive.insert_interval(DOMAIN, iv, i);
    }
    println!("populated {N} interval referents into both structures");

    // Correctness: identical answers.
    let probe = Interval::new(500_000, 500_050);
    let mut a: Vec<u64> = indexed.overlapping(DOMAIN, probe).iter().map(|e| e.payload).collect();
    let mut b: Vec<u64> = naive.overlapping_intervals(DOMAIN, probe);
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(a, b, "indexed and naive must agree");
    println!("both return the same {} overlap hit(s) — correctness confirmed", a.len());

    // Timing: a batch of overlap queries.
    let queries: Vec<Interval> = (0..2_000)
        .map(|i| {
            let s = (i * 523) % 1_000_000;
            Interval::new(s, s + 50)
        })
        .collect();

    let t0 = Instant::now();
    let mut sink = 0usize;
    for q in &queries {
        sink += indexed.overlapping(DOMAIN, *q).len();
    }
    let indexed_time = t0.elapsed();

    let t1 = Instant::now();
    let mut sink2 = 0usize;
    for q in &queries {
        sink2 += naive.overlapping_intervals(DOMAIN, *q).len();
    }
    let naive_time = t1.elapsed();

    assert_eq!(sink, sink2);
    println!("\n{} overlap queries:", queries.len());
    println!("  interval tree : {indexed_time:?}");
    println!("  linear scan   : {naive_time:?}");
    let speedup = naive_time.as_secs_f64() / indexed_time.as_secs_f64().max(1e-9);
    println!("  speedup       : {speedup:.1}x");

    println!("\nindex ablation example complete.");
}
