//! The Avian-Influenza interdisciplinary study (Figure 1 scenario).
//!
//! Run with `cargo run --example influenza_study`.
//!
//! Builds a synthetic influenza workload — sequences, alignments, trees, interaction
//! graphs and relational records annotated by several scientists with shared referents —
//! then runs the protease example query (Q2) and reports the indirectly-related
//! annotations that the a-graph surfaces.

use graphitti::query::{Executor, GraphConstraint, Query, Target};
use graphitti::workloads::influenza::{self, InfluenzaConfig};

fn main() {
    let config = InfluenzaConfig {
        seed: 2008,
        sequences: 150,
        annotations: 800,
        segments: 8,
        shared_referent_prob: 0.35,
        protease_prob: 0.3,
        ..InfluenzaConfig::default()
    };
    let sys = influenza::build(&config);

    println!("Influenza study workload:");
    println!("  objects      : {}", sys.object_count());
    println!("  annotations  : {}", sys.annotation_count());
    println!("  referents    : {}", sys.referent_count());
    let (interval_domains, _) = sys.index_structure_count();
    println!("  interval trees (one per segment): {interval_domains}");

    // Indirectly-related annotations: pairs sharing a referent.
    let mut related_pairs = 0usize;
    for ann in sys.annotations() {
        related_pairs += sys.related_annotations(ann.id).len();
    }
    println!("\nindirectly-related annotation links (shared referents): {}", related_pairs / 2);

    // Q2: annotated sequences where 4 consecutive non-overlapping intervals each carry a
    // "protease" annotation.
    let q = Query::new(Target::Referents)
        .with_phrase("protease")
        .with_constraint(GraphConstraint::ConsecutiveIntervals { count: 2, max_gap: 2_000 });
    let result = Executor::new(&sys).run(&q);
    println!(
        "\nQ2 (protease, >=2 consecutive intervals): {} object(s) match",
        result.objects.len()
    );

    // Show the feasible plan the processor built.
    let plan = Executor::new(&sys).plan(&q);
    println!("\n{}", plan.explain());

    println!("influenza study example complete.");
}
