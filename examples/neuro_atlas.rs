//! The neuroscience brain-atlas application (query tab, TP53 example query).
//!
//! Run with `cargo run --example neuro_atlas`.
//!
//! Builds a synthetic brain-atlas workload — many images sharing a coordinate system,
//! with region annotations citing anatomy ontology terms — then runs the TP53 example
//! query (Q1): annotations mentioning "protein TP53" whose images have at least two
//! regions annotated with the "Deep Cerebellar nuclei" term.

use graphitti::query::{Executor, GraphConstraint, OntologyFilter, Query, Target};
use graphitti::spatial::Rect;
use graphitti::workloads::neuro::{self, NeuroConfig};

fn main() {
    let config = NeuroConfig {
        seed: 2008,
        images: 80,
        regions_per_image: 8,
        coordinate_systems: 3,
        dcn_prob: 0.45,
        tp53_prob: 0.25,
        canvas: 1_000.0,
    };
    let workload = neuro::build(&config);
    let sys = &workload.system;

    println!("Neuroscience atlas workload:");
    println!("  images       : {}", workload.images.len());
    println!("  annotations  : {}", sys.annotation_count());
    println!("  referents    : {}", sys.referent_count());
    let (_, r_trees) = sys.index_structure_count();
    println!("  R-trees (one per coordinate system): {r_trees}");

    // Q1: the TP53 example query.
    let canvas = Rect::rect2(0.0, 0.0, config.canvas, config.canvas);
    let q = Query::new(Target::ConnectionGraphs)
        .with_phrase("protein TP53")
        .with_ontology(OntologyFilter::CitesTerm(workload.concepts.deep_cerebellar_nuclei))
        .with_constraint(GraphConstraint::MinRegionCount {
            count: 2,
            within: canvas,
            system: workload.systems[0].clone(),
        });
    let result = Executor::new(sys).run(&q);
    println!(
        "\nQ1 (protein TP53 + >=2 DCN regions): {} object(s), {} result page(s)",
        result.objects.len(),
        result.page_count()
    );

    // Correlated-data viewing: for the first matching image, show its other annotations.
    if let Some(&obj) = result.objects.first() {
        let anns = sys.annotations_of_object(obj);
        println!("\ncorrelated data for {:?}: {} annotation(s) on this image", obj, anns.len());
    }

    println!("\n{}", Executor::new(sys).plan(&q).explain());
    println!("neuro atlas example complete.");
}
