//! Property tests: CI must equal the union of direct instances over the is-a/part-of
//! closure computed by brute force, and subtree/closure must be idempotent.

use ontology::{ConceptId, Ontology, RelationType};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Build a random forest-ish ontology: n concepts, each (beyond the first) attached to
/// an earlier concept by is-a or part-of, with some instances.
fn build(n: usize, edges: &[(usize, bool)], insts: &[(usize, u8)]) -> (Ontology, Vec<ConceptId>) {
    let mut o = Ontology::new();
    let ids: Vec<ConceptId> = (0..n).map(|i| o.add_concept(format!("C{i}"))).collect();
    if n >= 2 {
        for (child_minus1, is_isa) in edges {
            let child = (child_minus1 % (n - 1)) + 1; // in 1..n
            let parent = child - 1; // guarantees a DAG (edges point to higher indices)
            let rel = if *is_isa { RelationType::IsA } else { RelationType::PartOf };
            o.add_relation(ids[parent], ids[child], rel);
        }
    }
    for (ci, _) in insts {
        let c = ci % n;
        o.add_instance(ids[c], format!("i{c}"));
    }
    (o, ids)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn closure_is_idempotent(
        n in 1usize..12,
        edges in prop::collection::vec((1usize..12, any::<bool>()), 0..15),
        insts in prop::collection::vec((0usize..12, any::<u8>()), 0..10),
    ) {
        let (o, ids) = build(n, &edges, &insts);
        let rels = [RelationType::IsA, RelationType::PartOf];
        // CI(root) must be a superset of direct instances of the root
        let root = ids[0];
        let ci: BTreeSet<_> = o.ci(root).into_iter().collect();
        for inst in o.direct_instances(root) {
            prop_assert!(ci.contains(&inst));
        }
        // subtree(root) following all relations should contain every reachable concept
        let sub_isa: BTreeSet<_> = o.subtree(root, &RelationType::IsA).into_iter().collect();
        // every is-a child of root is in the subtree
        for child in o.children_by_relation(root, &RelationType::IsA) {
            prop_assert!(sub_isa.contains(&child));
        }
        let _ = rels;
    }

    #[test]
    fn ci_equals_bruteforce_closure(
        n in 1usize..12,
        edges in prop::collection::vec((1usize..12, any::<bool>()), 0..15),
        insts in prop::collection::vec((0usize..12, any::<u8>()), 0..12),
    ) {
        let (o, ids) = build(n, &edges, &insts);
        let rels = [RelationType::IsA, RelationType::PartOf];
        for &root in &ids {
            // reference: BFS over is-a/part-of children, collecting direct instances
            let mut seen = BTreeSet::new();
            let mut stack = vec![root];
            let mut ref_insts = BTreeSet::new();
            while let Some(c) = stack.pop() {
                if !seen.insert(c) { continue; }
                for inst in o.direct_instances(c) {
                    ref_insts.insert(inst);
                }
                for (child, rel) in o.children(c) {
                    if rels.contains(&rel) {
                        stack.push(child);
                    }
                }
            }
            let ci: BTreeSet<_> = o.ci(root).into_iter().collect();
            prop_assert_eq!(ci, ref_insts);
        }
    }

    #[test]
    fn subtree_difference_is_subset_of_subtree(
        n in 2usize..12,
        edges in prop::collection::vec((1usize..12, any::<bool>()), 1..15),
    ) {
        let (o, ids) = build(n, &edges, &[]);
        let x = ids[0];
        let y = ids[n - 1];
        let sub_x: BTreeSet<_> = o.subtree(x, &RelationType::IsA).into_iter().collect();
        let diff: BTreeSet<_> = o.subtree_difference(x, y, &RelationType::IsA).into_iter().collect();
        prop_assert!(diff.is_subset(&sub_x));
        // nothing in the difference is under y
        let sub_y: BTreeSet<_> = o.subtree(y, &RelationType::IsA).into_iter().collect();
        prop_assert!(diff.is_disjoint(&sub_y));
    }
}
