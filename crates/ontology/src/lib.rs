//! # ontology — an OntoQuest-style ontology store
//!
//! "In Graphitti we use OntoQuest where ontologies are modeled as graphs whose nodes
//! correspond to terms and edges are domain-specific quantified binary relationships
//! between term pairs.  An annotation only points to ontology nodes."
//!
//! This crate reimplements the published OntoQuest operation set over an in-memory
//! labelled graph of concepts, instances and relations:
//!
//! * `CI(c)` — all instances of a concept;
//! * `CRI(c, r)` — instances of a concept reachable by relation `r`;
//! * `CmRI(c, R⁺)` — instances of `c` restricted to a set of relation types;
//! * `mCmRI(C⁺, R⁺)` — instances reachable from a set of concepts using only edges in
//!   `R⁺`;
//! * `SubTree(X, R)` — the subtree under `X` restricted to relation `R`;
//! * `SubTree(X, R) − SubTree(Y, R)` — subtree difference.
//!
//! ```
//! use ontology::{Ontology, RelationType};
//!
//! let mut o = Ontology::new();
//! let anatomy = o.add_concept("BrainRegion");
//! let cerebellum = o.add_concept("Cerebellum");
//! o.add_relation(anatomy, cerebellum, RelationType::IsA);
//! let img = o.add_instance(cerebellum, "image-42");
//! assert_eq!(o.ci(anatomy), vec![img]); // instances flow up the is-a hierarchy
//! ```

pub mod graph;
pub mod ops;

pub use graph::{ConceptId, InstanceId, Ontology, RelationType};
