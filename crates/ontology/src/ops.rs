//! The OntoQuest operation set.
//!
//! Every operation is defined over the concept closure computed in [`crate::graph`].
//! Instances of a concept include the instances of every concept reachable from it
//! along the chosen relations — so `CI` of a high-level class returns the instances of
//! all its subclasses, exactly as the paper's `CI : C ↦ I⁺` requires.

use std::collections::BTreeSet;

use crate::graph::{ConceptId, InstanceId, Ontology, RelationType};

impl Ontology {
    /// `CI(c)` — the set of all instances of a concept, following the default
    /// hierarchical relations (`is-a` and `part-of`).
    pub fn ci(&self, concept: ConceptId) -> Vec<InstanceId> {
        self.cm_ri(&[concept], &[RelationType::IsA, RelationType::PartOf])
    }

    /// `CRI(c, r)` — the set of all instances of a concept reachable by a single
    /// relation type `r`.
    pub fn cri(&self, concept: ConceptId, rel: &RelationType) -> Vec<InstanceId> {
        self.cm_ri(&[concept], std::slice::from_ref(rel))
    }

    /// `CmRI(c, R⁺)` — instances of a concept restricted to a set of relation types.
    pub fn cm_ri(&self, concepts: &[ConceptId], relations: &[RelationType]) -> Vec<InstanceId> {
        self.m_cm_ri(concepts, relations)
    }

    /// `mCmRI(C⁺, R⁺)` — all instances reachable from any concept in the set using only
    /// edges from `R⁺`.
    pub fn m_cm_ri(&self, concepts: &[ConceptId], relations: &[RelationType]) -> Vec<InstanceId> {
        let closure = self.closure(concepts, relations);
        let mut out: BTreeSet<InstanceId> = BTreeSet::new();
        for c in &closure {
            for inst in self.direct_instances(*c) {
                out.insert(inst);
            }
        }
        out.into_iter().collect()
    }

    /// `SubTree(X, R)` — the set of concepts in the subtree under `X` following relation
    /// `R` (including `X` itself), in sorted order.
    pub fn subtree(&self, root: ConceptId, rel: &RelationType) -> Vec<ConceptId> {
        self.closure(&[root], std::slice::from_ref(rel)).into_iter().collect()
    }

    /// `SubTree(X, R) − SubTree(Y, R)` — the concepts under `X` that are not under `Y`,
    /// following relation `R`.  (In a tree this is well-defined when `Y` is a descendant
    /// of `X`; in a DAG it is simply the set difference, which is the natural
    /// generalisation.)
    pub fn subtree_difference(
        &self,
        x: ConceptId,
        y: ConceptId,
        rel: &RelationType,
    ) -> Vec<ConceptId> {
        let under_x = self.closure(&[x], std::slice::from_ref(rel));
        let under_y = self.closure(&[y], std::slice::from_ref(rel));
        under_x.difference(&under_y).copied().collect()
    }

    /// Whether `descendant` is reachable from `ancestor` following `rel` (used to
    /// validate subtree-difference preconditions).
    pub fn is_descendant(
        &self,
        ancestor: ConceptId,
        descendant: ConceptId,
        rel: &RelationType,
    ) -> bool {
        self.closure(&[ancestor], std::slice::from_ref(rel)).contains(&descendant)
    }

    /// All ancestors of a concept under a relation (concepts from which `concept` is
    /// reachable), excluding `concept` itself. `O(V + E)` — scans parents transitively.
    pub fn ancestors(&self, concept: ConceptId, rel: &RelationType) -> Vec<ConceptId> {
        use std::collections::BTreeSet;
        // build reverse reachability by repeatedly scanning edges
        let mut ancestors: BTreeSet<ConceptId> = BTreeSet::new();
        let mut frontier = vec![concept];
        while let Some(c) = frontier.pop() {
            for parent in (0..self.concept_count() as u32).map(ConceptId) {
                if self.children_by_relation(parent, rel).contains(&c) && ancestors.insert(parent) {
                    frontier.push(parent);
                }
            }
        }
        ancestors.into_iter().collect()
    }

    /// The depth of a concept: the length of the longest `rel`-path from any root (a
    /// concept with no `rel`-parent) down to it. Roots have depth 0.
    pub fn depth(&self, concept: ConceptId, rel: &RelationType) -> usize {
        let parents: Vec<ConceptId> = (0..self.concept_count() as u32)
            .map(ConceptId)
            .filter(|&p| self.children_by_relation(p, rel).contains(&concept))
            .collect();
        if parents.is_empty() {
            0
        } else {
            1 + parents.iter().map(|&p| self.depth(p, rel)).max().unwrap_or(0)
        }
    }

    /// The lowest common ancestor of two concepts under a relation, if one exists: the
    /// deepest concept that is an ancestor (or self) of both.
    pub fn lowest_common_ancestor(
        &self,
        a: ConceptId,
        b: ConceptId,
        rel: &RelationType,
    ) -> Option<ConceptId> {
        use std::collections::BTreeSet;
        let mut anc_a: BTreeSet<ConceptId> = self.ancestors(a, rel).into_iter().collect();
        anc_a.insert(a);
        let mut anc_b: BTreeSet<ConceptId> = self.ancestors(b, rel).into_iter().collect();
        anc_b.insert(b);
        let common: Vec<ConceptId> = anc_a.intersection(&anc_b).copied().collect();
        // the "lowest" common ancestor is the one with the greatest depth
        common.into_iter().max_by_key(|&c| self.ancestors(c, rel).len())
    }

    /// Instances in the subtree difference `SubTree(X, R) − SubTree(Y, R)` — the
    /// instance-level analogue used by queries that exclude a sub-hierarchy.
    pub fn subtree_difference_instances(
        &self,
        x: ConceptId,
        y: ConceptId,
        rel: &RelationType,
    ) -> Vec<InstanceId> {
        let concepts = self.subtree_difference(x, y, rel);
        let mut out: BTreeSet<InstanceId> = BTreeSet::new();
        for c in concepts {
            for inst in self.direct_instances(c) {
                out.insert(inst);
            }
        }
        out.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small anatomy ontology:
    /// BrainRegion -is-a-> Cerebellum -part-of-> DeepCerebellarNuclei
    ///                   -is-a-> Cerebrum
    fn anatomy() -> (Ontology, [ConceptId; 4], Vec<InstanceId>) {
        let mut o = Ontology::new();
        let region = o.add_concept("BrainRegion");
        let cerebellum = o.add_concept("Cerebellum");
        let dcn = o.add_concept("DeepCerebellarNuclei");
        let cerebrum = o.add_concept("Cerebrum");
        o.add_relation(region, cerebellum, RelationType::IsA);
        o.add_relation(region, cerebrum, RelationType::IsA);
        o.add_relation(cerebellum, dcn, RelationType::PartOf);
        let i_cereb = o.add_instance(cerebellum, "img-cereb");
        let i_dcn = o.add_instance(dcn, "img-dcn");
        let i_cerebrum = o.add_instance(cerebrum, "img-cerebrum");
        (o, [region, cerebellum, dcn, cerebrum], vec![i_cereb, i_dcn, i_cerebrum])
    }

    #[test]
    fn ci_collects_descendant_instances() {
        let (o, [region, cerebellum, dcn, _], insts) = anatomy();
        // all three instances are under BrainRegion
        assert_eq!(o.ci(region), insts);
        // under Cerebellum: its own instance plus DCN (part-of)
        assert_eq!(o.ci(cerebellum), vec![insts[0], insts[1]]);
        assert_eq!(o.ci(dcn), vec![insts[1]]);
    }

    #[test]
    fn cri_single_relation() {
        let (o, [region, cerebellum, _, _], insts) = anatomy();
        // is-a from region reaches cerebellum and cerebrum, but not DCN (part-of)
        let by_isa = o.cri(region, &RelationType::IsA);
        assert_eq!(by_isa, vec![insts[0], insts[2]]);
        // part-of from region reaches nothing below (region has no part-of children)
        assert!(o.cri(region, &RelationType::PartOf).is_empty());
        // part-of from cerebellum reaches DCN
        assert_eq!(o.cri(cerebellum, &RelationType::PartOf), vec![insts[0], insts[1]]);
    }

    #[test]
    fn cm_ri_restricts_relations() {
        let (o, [region, _, _, _], insts) = anatomy();
        let isa_only = o.cm_ri(&[region], &[RelationType::IsA]);
        assert_eq!(isa_only, vec![insts[0], insts[2]]);
        let both = o.cm_ri(&[region], &[RelationType::IsA, RelationType::PartOf]);
        assert_eq!(both, insts);
    }

    #[test]
    fn m_cm_ri_multiple_roots() {
        let (o, [_, cerebellum, _, cerebrum], insts) = anatomy();
        let reached = o.m_cm_ri(&[cerebellum, cerebrum], &[RelationType::PartOf]);
        // cerebellum -part-of-> DCN gives its instance + cerebellum's own, plus cerebrum's own
        let mut expected = vec![insts[0], insts[1], insts[2]];
        expected.sort();
        assert_eq!(reached, expected);
    }

    #[test]
    fn subtree_and_difference() {
        let (o, [region, cerebellum, dcn, cerebrum], _) = anatomy();
        let under_region_isa = o.subtree(region, &RelationType::IsA);
        assert_eq!(under_region_isa, vec![region, cerebellum, cerebrum]);
        // region minus cerebellum along is-a: region and cerebrum remain
        let diff = o.subtree_difference(region, cerebellum, &RelationType::IsA);
        let mut diff_sorted = diff.clone();
        diff_sorted.sort();
        assert_eq!(diff_sorted, vec![region, cerebrum]);
        assert!(o.is_descendant(region, cerebellum, &RelationType::IsA));
        assert!(!o.is_descendant(region, dcn, &RelationType::IsA)); // dcn is part-of
        assert!(o.is_descendant(cerebellum, dcn, &RelationType::PartOf));
    }

    #[test]
    fn subtree_difference_instances_excludes_subhierarchy() {
        let (o, [_, cerebellum, dcn, _], insts) = anatomy();
        // instances under cerebellum (part-of) minus those under dcn
        let diff = o.subtree_difference_instances(cerebellum, dcn, &RelationType::PartOf);
        assert_eq!(diff, vec![insts[0]]); // only the cerebellum image, not the DCN image
    }

    #[test]
    fn operations_on_leaf_concept() {
        let (o, [_, _, dcn, _], insts) = anatomy();
        assert_eq!(o.subtree(dcn, &RelationType::PartOf), vec![dcn]);
        assert_eq!(o.ci(dcn), vec![insts[1]]);
    }

    #[test]
    fn ancestors_and_depth() {
        let (o, [region, cerebellum, dcn, cerebrum], _) = anatomy();
        // dcn's ancestors under part-of: just cerebellum
        assert_eq!(o.ancestors(dcn, &RelationType::PartOf), vec![cerebellum]);
        // cerebellum's ancestors under is-a: region
        assert_eq!(o.ancestors(cerebellum, &RelationType::IsA), vec![region]);
        // region is a root
        assert!(o.ancestors(region, &RelationType::IsA).is_empty());
        assert_eq!(o.depth(region, &RelationType::IsA), 0);
        assert_eq!(o.depth(cerebellum, &RelationType::IsA), 1);
        assert_eq!(o.depth(cerebrum, &RelationType::IsA), 1);
        assert_eq!(o.depth(dcn, &RelationType::PartOf), 1);
    }

    #[test]
    fn lowest_common_ancestor_queries() {
        let (o, [region, cerebellum, _, cerebrum], _) = anatomy();
        // cerebellum and cerebrum share region under is-a
        assert_eq!(
            o.lowest_common_ancestor(cerebellum, cerebrum, &RelationType::IsA),
            Some(region)
        );
        // a concept with itself
        assert_eq!(
            o.lowest_common_ancestor(cerebellum, cerebellum, &RelationType::IsA),
            Some(cerebellum)
        );
    }
}
