//! The ontology graph: concepts, instances and quantified binary relations.

use std::collections::{BTreeSet, HashMap};

use serde::{Deserialize, Serialize};

/// Dense identifier of a concept (a class / term node).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ConceptId(pub u32);

/// Dense identifier of an instance (an individual belonging to a concept).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct InstanceId(pub u32);

/// The type of a binary relation between two concepts.
///
/// The paper's ontologies use "domain-specific quantified binary relationships"; we
/// model the common biomedical-ontology relations plus a catch-all named relation.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RelationType {
    /// Subsumption (`Cerebellum is-a BrainRegion`): instances of the child are also
    /// instances of the parent.
    IsA,
    /// Mereology (`DeepCerebellarNuclei part-of Cerebellum`).
    PartOf,
    /// Developmental / derivation relation.
    DevelopsFrom,
    /// Regulatory relation (used by molecular ontologies).
    Regulates,
    /// A user-named relation.
    Named(String),
}

impl RelationType {
    /// A stable display string.
    pub fn as_str(&self) -> &str {
        match self {
            RelationType::IsA => "is-a",
            RelationType::PartOf => "part-of",
            RelationType::DevelopsFrom => "develops-from",
            RelationType::Regulates => "regulates",
            RelationType::Named(n) => n,
        }
    }

    /// Whether this relation is transitive (instances and subtrees propagate along it).
    pub fn is_transitive(&self) -> bool {
        matches!(self, RelationType::IsA | RelationType::PartOf | RelationType::DevelopsFrom)
    }
}

impl std::fmt::Display for RelationType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ConceptNode {
    name: String,
    /// Outgoing relations: `(child concept, relation)` — e.g. BrainRegion --is-a--> Cerebellum
    /// means Cerebellum is-a BrainRegion (child is the more specific term).
    children: Vec<(ConceptId, RelationType)>,
    /// Direct instances of this concept.
    instances: Vec<InstanceId>,
}

/// An ontology: a labelled graph of concepts with attached instances.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Ontology {
    concepts: Vec<ConceptNode>,
    instance_names: Vec<String>,
    instance_concept: Vec<ConceptId>,
    name_index: HashMap<String, ConceptId>,
}

impl Ontology {
    /// Create an empty ontology.
    pub fn new() -> Self {
        Ontology::default()
    }

    /// Number of concepts.
    pub fn concept_count(&self) -> usize {
        self.concepts.len()
    }

    /// Number of instances.
    pub fn instance_count(&self) -> usize {
        self.instance_names.len()
    }

    /// Add a concept (term) and return its id. Names need not be unique, but the name
    /// index resolves to the most recently added concept of a given name.
    pub fn add_concept(&mut self, name: impl Into<String>) -> ConceptId {
        let name = name.into();
        let id = ConceptId(self.concepts.len() as u32);
        self.concepts.push(ConceptNode {
            name: name.clone(),
            children: Vec::new(),
            instances: Vec::new(),
        });
        self.name_index.insert(name, id);
        id
    }

    /// Add a directed relation `parent --rel--> child` (the child is the more specific
    /// term for hierarchical relations).
    pub fn add_relation(&mut self, parent: ConceptId, child: ConceptId, rel: RelationType) {
        assert!(self.is_concept(parent) && self.is_concept(child), "unknown concept");
        self.concepts[parent.0 as usize].children.push((child, rel));
    }

    /// Attach an instance to a concept and return its id.
    pub fn add_instance(&mut self, concept: ConceptId, name: impl Into<String>) -> InstanceId {
        assert!(self.is_concept(concept), "unknown concept");
        let id = InstanceId(self.instance_names.len() as u32);
        self.instance_names.push(name.into());
        self.instance_concept.push(concept);
        self.concepts[concept.0 as usize].instances.push(id);
        id
    }

    /// The name of a concept.
    pub fn concept_name(&self, id: ConceptId) -> Option<&str> {
        self.concepts.get(id.0 as usize).map(|c| c.name.as_str())
    }

    /// The name of an instance.
    pub fn instance_name(&self, id: InstanceId) -> Option<&str> {
        self.instance_names.get(id.0 as usize).map(String::as_str)
    }

    /// The concept a given instance directly belongs to.
    pub fn instance_concept(&self, id: InstanceId) -> Option<ConceptId> {
        self.instance_concept.get(id.0 as usize).copied()
    }

    /// Look a concept up by name.
    pub fn concept_by_name(&self, name: &str) -> Option<ConceptId> {
        self.name_index.get(name).copied()
    }

    /// Whether a concept id is valid.
    pub fn is_concept(&self, id: ConceptId) -> bool {
        (id.0 as usize) < self.concepts.len()
    }

    /// Direct instances of a concept (not its descendants).
    pub fn direct_instances(&self, concept: ConceptId) -> Vec<InstanceId> {
        self.concepts.get(concept.0 as usize).map(|c| c.instances.clone()).unwrap_or_default()
    }

    /// Direct children of a concept with the connecting relation.
    pub fn children(&self, concept: ConceptId) -> Vec<(ConceptId, RelationType)> {
        self.concepts.get(concept.0 as usize).map(|c| c.children.clone()).unwrap_or_default()
    }

    /// Direct children reached by a specific relation.
    pub fn children_by_relation(&self, concept: ConceptId, rel: &RelationType) -> Vec<ConceptId> {
        self.concepts
            .get(concept.0 as usize)
            .map(|c| c.children.iter().filter(|(_, r)| r == rel).map(|(child, _)| *child).collect())
            .unwrap_or_default()
    }

    /// All concepts reachable from `root` (including `root`) following edges whose
    /// relation is in `relations`.  This is the concept-set backbone shared by every
    /// operation; returns ids in a deterministic sorted order.
    pub(crate) fn closure(
        &self,
        roots: &[ConceptId],
        relations: &[RelationType],
    ) -> BTreeSet<ConceptId> {
        let mut seen: BTreeSet<ConceptId> = BTreeSet::new();
        let mut stack: Vec<ConceptId> =
            roots.iter().copied().filter(|c| self.is_concept(*c)).collect();
        while let Some(c) = stack.pop() {
            if !seen.insert(c) {
                continue;
            }
            for (child, rel) in &self.concepts[c.0 as usize].children {
                if relations.iter().any(|r| r == rel) {
                    stack.push(*child);
                }
            }
        }
        seen
    }

    /// All relation types used in the ontology (sorted, deduplicated).
    pub fn relation_types(&self) -> Vec<RelationType> {
        let mut set: BTreeSet<RelationType> = BTreeSet::new();
        for c in &self.concepts {
            for (_, r) in &c.children {
                set.insert(r.clone());
            }
        }
        set.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query_structure() {
        let mut o = Ontology::new();
        let region = o.add_concept("BrainRegion");
        let cerebellum = o.add_concept("Cerebellum");
        o.add_relation(region, cerebellum, RelationType::IsA);
        let img = o.add_instance(cerebellum, "img-1");

        assert_eq!(o.concept_count(), 2);
        assert_eq!(o.instance_count(), 1);
        assert_eq!(o.concept_name(region), Some("BrainRegion"));
        assert_eq!(o.instance_name(img), Some("img-1"));
        assert_eq!(o.instance_concept(img), Some(cerebellum));
        assert_eq!(o.concept_by_name("Cerebellum"), Some(cerebellum));
        assert_eq!(o.direct_instances(cerebellum), vec![img]);
        assert_eq!(o.children(region), vec![(cerebellum, RelationType::IsA)]);
    }

    #[test]
    fn children_by_relation_filters() {
        let mut o = Ontology::new();
        let a = o.add_concept("A");
        let b = o.add_concept("B");
        let c = o.add_concept("C");
        o.add_relation(a, b, RelationType::IsA);
        o.add_relation(a, c, RelationType::PartOf);
        assert_eq!(o.children_by_relation(a, &RelationType::IsA), vec![b]);
        assert_eq!(o.children_by_relation(a, &RelationType::PartOf), vec![c]);
    }

    #[test]
    fn closure_follows_only_given_relations() {
        let mut o = Ontology::new();
        let a = o.add_concept("A");
        let b = o.add_concept("B");
        let c = o.add_concept("C");
        o.add_relation(a, b, RelationType::IsA);
        o.add_relation(b, c, RelationType::PartOf);
        let isa_only = o.closure(&[a], &[RelationType::IsA]);
        assert_eq!(isa_only.len(), 2); // a, b
        let both = o.closure(&[a], &[RelationType::IsA, RelationType::PartOf]);
        assert_eq!(both.len(), 3);
    }

    #[test]
    fn relation_type_properties() {
        assert_eq!(RelationType::IsA.as_str(), "is-a");
        assert_eq!(RelationType::Named("x".into()).to_string(), "x");
        assert!(RelationType::IsA.is_transitive());
        assert!(!RelationType::Regulates.is_transitive());
    }

    #[test]
    fn relation_types_listing() {
        let mut o = Ontology::new();
        let a = o.add_concept("A");
        let b = o.add_concept("B");
        o.add_relation(a, b, RelationType::IsA);
        o.add_relation(a, b, RelationType::PartOf);
        assert_eq!(o.relation_types().len(), 2);
    }

    #[test]
    #[should_panic(expected = "unknown concept")]
    fn relation_requires_valid_concepts() {
        let mut o = Ontology::new();
        let a = o.add_concept("A");
        o.add_relation(a, ConceptId(999), RelationType::IsA);
    }
}
