//! End-to-end battery for the network tier: a real [`NetServer`] on an
//! ephemeral loopback port, real [`Client`] connections, and the serving
//! contract asserted across the wire:
//!
//! * **Correctness** — streamed pages reassembled client-side are byte-identical
//!   (under the result's JSON form) to the in-process [`ReferenceExecutor`]
//!   answer, on the unsharded pool backend and on sharded cuts at 1 and 4
//!   shards — including under connection churn and behind a slow reader.
//! * **Liveness** — a stalled reader never wedges the server: concurrent
//!   clients keep completing, per-connection decoded-but-unresolved requests
//!   stay bounded by the in-flight window, and the stalled client still gets
//!   every response intact when it finally reads.
//! * **Typed failure** — backend overload, unparseable queries, and
//!   connection-ceiling refusals all arrive as typed error frames, never as a
//!   hang or a torn stream; framing violations kill only their own connection.
//! * **Conservation** — once connections drain, the wire counters satisfy
//!   `shed + completed + failed == submitted`, mirroring the in-process
//!   serving invariant.

use std::sync::Arc;
use std::time::{Duration, Instant};

use graphitti_core::{DataType, Graphitti, Marker, ObjectId, ShardedSystem};
use graphitti_net::{Backend, Client, NetError, NetServer, ServerConfig, WireBudget};
use graphitti_query::{
    parse_query, ChaosConfig, QueryResult, QueryService, ReferenceExecutor, ServiceConfig,
    ServiceError, ShardedQueryService, ShardedServiceConfig,
};

fn result_bytes(result: &QueryResult) -> Vec<u8> {
    serde_json::to_string(result).expect("result serializes").into_bytes()
}

/// The same corpus built into an unsharded oracle and an N-shard system by
/// identical incremental replay (ids coincide — see the sharded equivalence
/// battery).  Returns the ontology term id for DSL queries.
fn dual_corpus(shards: usize, n: u64) -> (Graphitti, ShardedSystem, u32) {
    let mut oracle = Graphitti::new();
    let mut sharded = ShardedSystem::new(shards);
    let term = oracle.ontology_mut().add_concept("Motif");
    sharded.ontology_edit(|o| {
        o.add_concept("Motif");
    });
    for i in 0..6u64 {
        oracle.register_sequence(format!("s{i}"), DataType::DnaSequence, 100_000, "chr1");
        sharded.register_sequence(format!("s{i}"), DataType::DnaSequence, 100_000, "chr1");
    }
    for i in 0..n {
        let obj = ObjectId(i % 6);
        let marker = Marker::interval(i * 90, i * 90 + 40);
        let comment = if i % 2 == 0 {
            format!("protease motif {i}")
        } else {
            format!("quiet background note {i}")
        };
        let mut a = oracle.annotate().comment(comment.clone()).mark(obj, marker.clone());
        let mut b = sharded.annotate().comment(comment).mark(obj, marker);
        if i % 3 == 0 {
            a = a.cite_term(term);
            b = b.cite_term(term);
        }
        a.commit().unwrap();
        b.commit().unwrap();
    }
    (oracle, sharded, term.0)
}

/// A representative DSL mix: every target, content/referent/ontology clauses,
/// and a graph constraint.
fn query_mix(term: u32) -> Vec<String> {
    vec![
        "SELECT contents".to_string(),
        r#"SELECT contents WHERE content contains "protease motif""#.to_string(),
        "SELECT referents WHERE content keywords quiet background".to_string(),
        format!("SELECT graphs WHERE ontology term {term}"),
        "SELECT referents WHERE referent interval chr1 0 5000".to_string(),
        r#"SELECT graphs WHERE content contains "protease" AND constraint path 3"#.to_string(),
    ]
}

fn pool_backend(sys: &Graphitti, workers: usize) -> Backend {
    Backend::Pool(Arc::new(QueryService::new(
        sys.snapshot(),
        ServiceConfig::default().with_workers(workers).with_cache_capacity(0),
    )))
}

fn start_server(backend: Backend, config: ServerConfig) -> NetServer {
    NetServer::bind("127.0.0.1:0", backend, config).expect("bind ephemeral loopback")
}

fn poll_until(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while !cond() {
        assert!(Instant::now() < deadline, "not reached within 5s: {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Streamed pages reassembled by the client are byte-identical to the
/// [`ReferenceExecutor`] answer — over the pool backend and over sharded cuts
/// at 1 and 4 shards.
#[test]
fn streamed_pages_reassemble_byte_identical_to_reference() {
    let (oracle, _, term) = dual_corpus(1, 30);
    let reference = ReferenceExecutor::new(&oracle);

    // Unsharded pool backend.
    let server = start_server(pool_backend(&oracle, 2), ServerConfig::default());
    let mut client = Client::connect(server.local_addr()).expect("connect");
    for text in query_mix(term) {
        let over_wire = client.query(&text, &WireBudget::unbounded()).expect("query completes");
        let in_process = reference.run(&parse_query(&text).expect("mix parses"));
        assert_eq!(result_bytes(&over_wire), result_bytes(&in_process), "pool: {text}");
    }
    drop(client);

    // Sharded backends: the clean scatter-gather answer equals the oracle's.
    for shards in [1usize, 4] {
        let (oracle, sharded, term) = dual_corpus(shards, 30);
        let reference = ReferenceExecutor::new(&oracle);
        let backend = Backend::Sharded(Arc::new(ShardedQueryService::new(
            sharded.capture_cut(),
            ShardedServiceConfig::default().with_cache_capacity(0),
        )));
        let server = start_server(backend, ServerConfig::default());
        let mut client = Client::connect(server.local_addr()).expect("connect");
        for text in query_mix(term) {
            let over_wire = client.query(&text, &WireBudget::unbounded()).expect("query completes");
            assert!(over_wire.missing_shards.is_empty(), "clean run never degrades");
            let in_process = reference.run(&parse_query(&text).expect("mix parses"));
            assert_eq!(
                result_bytes(&over_wire),
                result_bytes(&in_process),
                "shards={shards}: {text}"
            );
        }
    }
}

/// Connection churn: many short-lived connections, overlapping across threads,
/// every response reference-exact — and after the dust settles the wire
/// counters conserve: `shed + completed + failed == submitted`.
#[test]
fn connection_churn_conserves_and_stays_reference_exact() {
    let (oracle, _, term) = dual_corpus(1, 30);
    let reference = ReferenceExecutor::new(&oracle);
    let mix = query_mix(term);
    let expected: Vec<Vec<u8>> = mix
        .iter()
        .map(|text| result_bytes(&reference.run(&parse_query(text).expect("mix parses"))))
        .collect();

    let server = start_server(pool_backend(&oracle, 2), ServerConfig::default());
    let addr = server.local_addr();
    let threads = 4usize;
    let connections_each = 6usize;
    std::thread::scope(|scope| {
        for t in 0..threads {
            let mix = &mix;
            let expected = &expected;
            scope.spawn(move || {
                for c in 0..connections_each {
                    let mut client = Client::connect(addr).expect("connect");
                    // Each connection runs a rotating slice of the mix, then drops.
                    for k in 0..3 {
                        let i = (t + c + k) % mix.len();
                        let got = client
                            .query(&mix[i], &WireBudget::unbounded())
                            .expect("churned query completes");
                        assert_eq!(result_bytes(&got), expected[i], "thread {t} conn {c}");
                    }
                }
            });
        }
    });

    let total_connections = (threads * connections_each) as u64;
    let total_queries = total_connections * 3;
    poll_until("all connections retired", || server.live_connections() == 0);
    let m = server.metrics();
    assert_eq!(m.connections_accepted, total_connections);
    assert_eq!(m.completed, total_queries);
    assert_eq!(m.shed + m.completed + m.failed, m.submitted, "wire conservation after churn");
    assert_eq!(m.submitted, total_queries);
}

/// A slow reader throttles only itself: while it stalls with responses parked,
/// (a) its decoded-but-unresolved requests stay bounded by the in-flight
/// window, (b) a concurrent client keeps completing, and (c) when it finally
/// reads, every parked response arrives byte-identical.
#[test]
fn slow_reader_bounded_and_concurrent_clients_unaffected() {
    let (oracle, _, term) = dual_corpus(1, 200);
    let reference = ReferenceExecutor::new(&oracle);
    let window = 2usize;
    let server =
        start_server(pool_backend(&oracle, 2), ServerConfig::default().with_window(window));

    // The slow reader: pipeline a burst of requests, read nothing yet.
    let heavy = "SELECT contents";
    let heavy_expected = result_bytes(&reference.run(&parse_query(heavy).expect("parses")));
    let burst = 8usize;
    let mut slow = Client::connect(server.local_addr()).expect("connect slow");
    for _ in 0..burst {
        slow.send(heavy, &WireBudget::unbounded()).expect("pipelined send");
    }

    // Give the server time to drain what it can into the socket, then check the
    // bound: whatever is decoded but not yet resolved fits the window (+1 in
    // the writer's hand, +1 decoded in the reader's hand).
    std::thread::sleep(Duration::from_millis(150));
    let m = server.metrics();
    let unresolved = m.submitted - (m.completed + m.shed + m.failed);
    assert!(
        unresolved <= (window + 2) as u64,
        "slow reader must not queue unboundedly: {unresolved} unresolved > window {window} + 2"
    );

    // Liveness: a concurrent client is not behind the stalled one.
    let mut brisk = Client::connect(server.local_addr()).expect("connect brisk");
    for text in query_mix(term) {
        let got = brisk.query(&text, &WireBudget::unbounded()).expect("brisk query completes");
        let want = result_bytes(&reference.run(&parse_query(&text).expect("parses")));
        assert_eq!(result_bytes(&got), want, "brisk client behind a slow reader: {text}");
    }
    drop(brisk);

    // The slow reader finally reads: every parked response intact, in order.
    for i in 0..burst {
        let got = slow.recv().unwrap_or_else(|e| panic!("parked response #{i} lost: {e}"));
        assert_eq!(result_bytes(&got), heavy_expected, "parked response #{i}");
    }
    drop(slow);

    poll_until("all connections retired", || server.live_connections() == 0);
    let m = server.metrics();
    assert_eq!(m.completed, m.submitted, "everything sent was ultimately served");
    assert_eq!(m.shed + m.completed + m.failed, m.submitted, "wire conservation");
}

/// Backend overload surfaces on the wire as a typed [`ServiceError::Overloaded`]
/// error frame among otherwise-correct responses — and the wire counters
/// account every request as exactly one of completed / shed / failed.
#[test]
fn overload_arrives_typed_and_wire_counters_conserve() {
    let (oracle, _, _) = dual_corpus(1, 24);
    let q = r#"SELECT contents WHERE content contains "protease motif""#;
    let expected =
        result_bytes(&ReferenceExecutor::new(&oracle).run(&parse_query(q).expect("parses")));
    // One worker, one queue slot, first execution stuck: admission must shed.
    let backend = Backend::Pool(Arc::new(QueryService::new(
        oracle.snapshot(),
        ServiceConfig::default()
            .with_workers(1)
            .with_queue_capacity(1)
            .with_cache_capacity(0)
            .with_chaos(ChaosConfig::new().with_stuck_query_on(1, Duration::from_millis(150))),
    )));
    let burst = 10usize;
    let server = start_server(backend, ServerConfig::default().with_window(burst));
    let mut client = Client::connect(server.local_addr()).expect("connect");
    for _ in 0..burst {
        client.send(q, &WireBudget::unbounded()).expect("pipelined send");
    }
    let mut completed = 0u64;
    let mut shed = 0u64;
    for i in 0..burst {
        match client.recv() {
            Ok(result) => {
                assert_eq!(result_bytes(&result), expected, "response #{i}");
                completed += 1;
            }
            Err(NetError::Service(ServiceError::Overloaded { depth })) => {
                assert_eq!(depth, 1, "shed depth is the full queue");
                shed += 1;
            }
            Err(e) => panic!("response #{i}: expected Ok or typed Overloaded, got {e}"),
        }
    }
    assert!(shed >= 1, "the stuck single-slot queue must have shed at least once");
    assert_eq!(completed + shed, burst as u64);
    drop(client);

    poll_until("all connections retired", || server.live_connections() == 0);
    let m = server.metrics();
    assert_eq!(m.completed, completed);
    assert_eq!(m.shed, shed);
    assert_eq!(m.failed, 0);
    assert_eq!(m.shed + m.completed + m.failed, m.submitted, "wire conservation under overload");
}

/// The acceptor's connection ceiling: a full house is refused with a typed
/// `ConnectionShed` error frame before any request is read, and capacity
/// freed by a departing client is immediately reusable.
#[test]
fn connection_ceiling_sheds_typed_and_recovers() {
    let (oracle, _, term) = dual_corpus(1, 24);
    let server =
        start_server(pool_backend(&oracle, 1), ServerConfig::default().with_max_connections(1));
    let mix = query_mix(term);
    let first = mix.first().expect("non-empty mix");

    let mut resident = Client::connect(server.local_addr()).expect("connect resident");
    resident.query(first, &WireBudget::unbounded()).expect("resident query completes");

    // The house is full: the next connection gets a typed refusal.
    let mut refused = Client::connect(server.local_addr()).expect("tcp connect still succeeds");
    match refused.recv() {
        Err(NetError::ConnectionShed { live }) => assert_eq!(live, 1),
        other => panic!("expected a typed ConnectionShed frame, got {other:?}"),
    }

    // Capacity frees when the resident leaves, and a newcomer is served.
    drop(resident);
    poll_until("resident connection retired", || server.live_connections() == 0);
    let mut newcomer = Client::connect(server.local_addr()).expect("connect newcomer");
    newcomer.query(first, &WireBudget::unbounded()).expect("newcomer query completes");
    drop(newcomer);

    poll_until("all connections retired", || server.live_connections() == 0);
    let m = server.metrics();
    assert_eq!(m.connections_accepted, 2);
    assert!(m.connections_shed >= 1, "the ceiling must have refused at least once");
    assert_eq!(m.shed + m.completed + m.failed, m.submitted, "wire conservation at the ceiling");
}

/// Unparseable query text comes back as a typed `BadQuery` error frame and the
/// connection stays usable; a corrupted frame (bad CRC) kills only its own
/// connection and is counted, never crashing the server.
#[test]
fn bad_queries_and_bad_frames_fail_typed_without_collateral() {
    let (oracle, _, term) = dual_corpus(1, 24);
    let server = start_server(pool_backend(&oracle, 1), ServerConfig::default());
    let reference = ReferenceExecutor::new(&oracle);
    let mix = query_mix(term);
    let good = mix.first().expect("non-empty mix");

    // A bad query is a typed per-request failure, not a connection failure.
    let mut client = Client::connect(server.local_addr()).expect("connect");
    match client.query("SELECT nonsense", &WireBudget::unbounded()) {
        Err(NetError::BadQuery(message)) => {
            assert!(message.contains("unknown target"), "parser detail travels: {message}")
        }
        other => panic!("expected a typed BadQuery frame, got {other:?}"),
    }
    let got = client.query(good, &WireBudget::unbounded()).expect("connection survives BadQuery");
    let want = result_bytes(&reference.run(&parse_query(good).expect("parses")));
    assert_eq!(result_bytes(&got), want);
    drop(client);

    // A frame with a corrupt CRC kills that connection (typed at the metrics
    // level), while the server keeps serving everyone else.
    {
        use std::io::Write as _;
        let mut raw = std::net::TcpStream::connect(server.local_addr()).expect("raw connect");
        let garbage = [4u8, 0, 0, 0, 0xEF, 0xBE, 0xAD, 0xDE, 1, 2, 3, 4];
        raw.write_all(&garbage).expect("write corrupt frame");
        raw.flush().expect("flush");
    }
    poll_until("corrupt frame counted", || server.metrics().bad_frames >= 1);
    let mut after = Client::connect(server.local_addr()).expect("connect after corruption");
    after.query(good, &WireBudget::unbounded()).expect("server survives a corrupt frame");
    drop(after);

    poll_until("all connections retired", || server.live_connections() == 0);
    let m = server.metrics();
    assert_eq!(m.shed + m.completed + m.failed, m.submitted, "wire conservation with bad input");
    assert_eq!(m.failed, 1, "exactly the BadQuery request failed");
}

/// The plaintext health endpoint: `/health` answers ok, `/metrics` dumps both
/// the wire counters and the backend's [`ServiceMetrics`], unknown paths 404.
#[test]
fn health_and_metrics_endpoints_respond() {
    let (oracle, _, term) = dual_corpus(1, 24);
    let server = start_server(pool_backend(&oracle, 1), ServerConfig::default());
    let mix = query_mix(term);
    let first = mix.first().expect("non-empty mix");

    assert_eq!(
        graphitti_net::http_get(server.health_addr(), "/health").expect("health answers"),
        "ok\n"
    );

    let mut client = Client::connect(server.local_addr()).expect("connect");
    client.query(first, &WireBudget::unbounded()).expect("query completes");
    let metrics = graphitti_net::http_get(server.health_addr(), "/metrics").expect("metrics");
    for line in ["net_submitted 1", "net_completed 1", "net_connections_accepted 1"] {
        assert!(metrics.contains(line), "metrics dump missing `{line}`:\n{metrics}");
    }
    assert!(
        metrics.contains("service_submitted"),
        "backend ServiceMetrics must be dumped too:\n{metrics}"
    );

    match graphitti_net::http_get(server.health_addr(), "/nope") {
        Err(NetError::Protocol(what)) => assert!(what.contains("404"), "status travels: {what}"),
        other => panic!("expected a 404 protocol error, got {other:?}"),
    }
}
