//! # graphitti-net — the network serving tier
//!
//! The front door the ROADMAP's production-scale direction calls for: a TCP
//! acceptor on `std::net` feeding the in-process serving layers
//! ([`graphitti_query::QueryService`] worker pool or
//! [`graphitti_query::ShardedQueryService`] scatter-gather), speaking a
//! length-framed binary protocol CRC-framed exactly like the WAL
//! (`[len u32 LE][crc32 u32 LE][payload]`, the same [`graphitti_core::wal::crc32`]).
//!
//! * [`protocol`] — the wire format: a request frame carries query DSL text plus
//!   the [`graphitti_query::QueryBudget`] (relative deadline + `allow_partial`);
//!   the response is **streamed result pages** (one frame per
//!   [`graphitti_query::ResultPage`], then a tail frame with the flat lists) —
//!   never a whole-result materialised blob — and every
//!   [`graphitti_query::ServiceError`] maps to a typed wire error frame;
//! * [`server`] — [`server::NetServer`]: thread-per-connection acceptor with
//!   connection-level shedding (a full house refuses with a typed error frame,
//!   extending PR 7's `Overloaded` admission path to the transport), a bounded
//!   per-connection in-flight window, slow readers throttled by the blocking
//!   page-write path (results are fully materialised before streaming, so a
//!   stalled socket never holds a snapshot open), and a plaintext `/health` +
//!   `/metrics` endpoint dumping the backend's
//!   [`graphitti_query::ServiceMetrics`] and the wire counters;
//! * [`client`] — the client library: framed send/receive with pipelining, page
//!   reassembly via [`graphitti_query::QueryResult::from_stream`] (byte-identical
//!   under `to_json` to the in-process answer), and a tiny HTTP getter for the
//!   health endpoint.  Used by the `bench/serving` client-replay bench and
//!   `examples/network_service.rs`.

pub mod client;
pub mod protocol;
pub mod server;

pub use client::{http_get, Client, NetError};
pub use protocol::{WireBudget, MAX_FRAME_LEN};
pub use server::{Backend, NetMetrics, NetServer, ServerConfig};
