//! Client side of the wire protocol: framed send/receive with pipelining,
//! page reassembly, and a tiny HTTP getter for the health endpoint.
//!
//! [`Client::query`] is the one-shot path; [`Client::send`] + [`Client::recv`]
//! decouple the halves so a caller can keep several requests in flight on one
//! connection (responses come back in submission order).  Received pages are
//! reassembled with [`QueryResult::from_stream`], so the client-side result is
//! byte-identical under `to_json` to the in-process answer.

use std::fmt;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use graphitti_query::resilience::ServiceError;
use graphitti_query::result::QueryResult;

use crate::protocol::{
    decode_failure, decode_page, decode_tail, encode_request, frame_kind, read_frame,
    wire_error_of, write_frame, WireBudget, WireFailure, KIND_ERROR, KIND_PAGE, KIND_TAIL,
    MAX_FRAME_LEN,
};

/// Everything a query over the wire can come back as, short of a result.
#[derive(Debug)]
pub enum NetError {
    /// The transport failed (connect, read, or write).
    Io(io::Error),
    /// The peer violated the wire protocol (bad CRC, truncated frame,
    /// unexpected frame kind, or the connection closed mid-response).
    Protocol(String),
    /// The server answered with a typed serving error.
    Service(ServiceError),
    /// The server could not parse the query text.
    BadQuery(String),
    /// The acceptor refused the connection at its ceiling (`live` connections).
    ConnectionShed {
        /// Live connections observed when this one was refused.
        live: u64,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "transport error: {e}"),
            NetError::Protocol(what) => write!(f, "protocol violation: {what}"),
            NetError::Service(e) => write!(f, "service error: {e}"),
            NetError::BadQuery(what) => write!(f, "rejected query: {what}"),
            NetError::ConnectionShed { live } => {
                write!(f, "connection shed: server at its ceiling ({live} live)")
            }
        }
    }
}

impl std::error::Error for NetError {}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        // Framing violations travel as `InvalidData` wrapping a `WireError`;
        // surface those as protocol errors, everything else as transport.
        match wire_error_of(&e) {
            Some(wire) => NetError::Protocol(wire.0.clone()),
            None => NetError::Io(e),
        }
    }
}

impl From<crate::protocol::WireError> for NetError {
    fn from(e: crate::protocol::WireError) -> Self {
        NetError::Protocol(e.0)
    }
}

impl From<WireFailure> for NetError {
    fn from(failure: WireFailure) -> Self {
        match failure {
            WireFailure::Service(e) => NetError::Service(e),
            WireFailure::BadQuery(what) => NetError::BadQuery(what),
            WireFailure::ConnectionShed { live } => NetError::ConnectionShed { live },
        }
    }
}

/// A connection to a [`NetServer`](crate::server::NetServer).
pub struct Client {
    stream: TcpStream,
    max_frame_len: u32,
}

impl Client {
    /// Connect to a server's protocol endpoint.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        // Request frames must leave immediately, not sit behind Nagle waiting
        // for the ACK of a previous request on a pipelined connection.
        stream.set_nodelay(true)?;
        Ok(Client { stream, max_frame_len: MAX_FRAME_LEN })
    }

    /// Cap the frame size this client will accept (default [`MAX_FRAME_LEN`]).
    pub fn with_max_frame_len(mut self, len: u32) -> Client {
        self.max_frame_len = len;
        self
    }

    /// Bound how long [`recv`](Client::recv) blocks between frames.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Send one request without waiting for its response.  Responses to
    /// pipelined sends come back in submission order.
    pub fn send(&mut self, query: &str, budget: &WireBudget) -> Result<(), NetError> {
        write_frame(&mut self.stream, &encode_request(query, budget))?;
        self.stream.flush()?;
        Ok(())
    }

    /// Receive the next response: page frames reassembled through
    /// [`QueryResult::from_stream`], or the typed error the server sent.
    pub fn recv(&mut self) -> Result<QueryResult, NetError> {
        let mut pages = Vec::new();
        loop {
            let payload = match read_frame(&mut self.stream, self.max_frame_len)? {
                Some(payload) => payload,
                None => {
                    return Err(NetError::Protocol(format!(
                        "connection closed mid-response after {} pages",
                        pages.len()
                    )))
                }
            };
            match frame_kind(&payload)? {
                KIND_PAGE => pages.push(decode_page(&payload)?),
                KIND_TAIL => {
                    let (streamed, tail) = decode_tail(&payload)?;
                    if streamed as usize != pages.len() {
                        return Err(NetError::Protocol(format!(
                            "tail frame claims {streamed} pages but {} were streamed",
                            pages.len()
                        )));
                    }
                    return Ok(QueryResult::from_stream(pages, tail));
                }
                KIND_ERROR => return Err(decode_failure(&payload)?.into()),
                other => {
                    return Err(NetError::Protocol(format!(
                        "unexpected frame kind {other} in a response stream"
                    )))
                }
            }
        }
    }

    /// One-shot request/response.
    pub fn query(&mut self, query: &str, budget: &WireBudget) -> Result<QueryResult, NetError> {
        self.send(query, budget)?;
        self.recv()
    }

    /// Half-close the send side so the server sees a clean end of requests.
    pub fn finish_sending(&self) -> io::Result<()> {
        self.stream.shutdown(std::net::Shutdown::Write)
    }
}

/// Fetch a path from the plaintext health endpoint; returns the response body.
/// A non-`200` status comes back as an error carrying the status line.
pub fn http_get(addr: SocketAddr, path: &str) -> Result<String, NetError> {
    let mut stream = TcpStream::connect(addr).map_err(NetError::Io)?;
    let request = format!("GET {path} HTTP/1.0\r\nConnection: close\r\n\r\n");
    stream.write_all(request.as_bytes()).map_err(NetError::Io)?;
    let mut response = String::new();
    stream.read_to_string(&mut response).map_err(NetError::Io)?;
    let (head, body) = match response.split_once("\r\n\r\n") {
        Some(split) => split,
        None => return Err(NetError::Protocol("health response had no header/body split".into())),
    };
    let status_line = head.lines().next().unwrap_or("");
    if status_line.split_whitespace().nth(1) != Some("200") {
        return Err(NetError::Protocol(format!("health endpoint answered: {status_line}")));
    }
    Ok(body.to_string())
}
