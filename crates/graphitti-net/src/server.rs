//! The TCP front door: acceptor, per-connection pipeline, health endpoint.
//!
//! One OS thread pair per connection: a **reader** decodes request frames and
//! feeds the backend, a **writer** streams response frames back.  Between them
//! sits a bounded channel of at most [`ServerConfig::window`] in-flight
//! responses — the whole backpressure story:
//!
//! * a slow reader stalls the writer inside the socket `write_all`, the full
//!   channel then stalls the reader, and the client's own send buffer fills —
//!   per-connection memory is bounded by `window` materialised results, and no
//!   snapshot is ever held open for a stalled socket (results are fully
//!   materialised by the backend *before* the write path touches them);
//! * the acceptor sheds whole connections past
//!   [`ServerConfig::max_connections`] with a typed error frame, extending the
//!   admission-control `Overloaded` path to the transport;
//! * every request decoded off the wire resolves to exactly one of
//!   completed / shed / failed in [`NetMetrics`] — the same conservation
//!   invariant the in-process services keep.
//!
//! A second listener serves plaintext `GET /health` and `GET /metrics`
//! (the backend's [`ServiceMetrics`] plus the wire counters) for probes that
//! speak HTTP, not the binary protocol.

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Duration;

use graphitti_query::parse_query;
use graphitti_query::resilience::{QueryBudget, ServiceError};
use graphitti_query::result::QueryResult;
use graphitti_query::service::{QueryService, ServiceMetrics, Ticket};
use graphitti_query::sharded::ShardedQueryService;

use crate::protocol::{
    decode_request, encode_failure, encode_page, encode_tail, frame_kind, read_frame, write_frame,
    WireBudget, WireFailure, KIND_REQUEST, MAX_FRAME_LEN,
};

/// Which in-process serving layer the front door feeds.
#[derive(Clone)]
pub enum Backend {
    /// The unsharded worker pool: requests are submitted as tickets, so one
    /// connection's queries execute concurrently across the pool.
    Pool(Arc<QueryService>),
    /// Scatter-gather over a shard cut: queries execute on the connection's
    /// reader thread (the service's calling-thread contract).
    Sharded(Arc<ShardedQueryService>),
}

impl Backend {
    /// The backend's own serving metrics (dumped by `/metrics`).
    pub fn service_metrics(&self) -> ServiceMetrics {
        match self {
            Backend::Pool(service) => service.metrics(),
            Backend::Sharded(service) => service.metrics(),
        }
    }
}

/// Tunables for [`NetServer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Connection ceiling: the acceptor sheds past this with a typed error frame.
    pub max_connections: usize,
    /// Per-connection in-flight response window (bounded channel capacity).
    pub window: usize,
    /// Largest frame payload either direction will accept.
    pub max_frame_len: u32,
    /// Socket read-timeout slice: how often a blocked reader rechecks shutdown.
    pub poll_interval: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_connections: 64,
            window: 4,
            max_frame_len: MAX_FRAME_LEN,
            poll_interval: Duration::from_millis(100),
        }
    }
}

impl ServerConfig {
    /// Builder: set the connection ceiling (min 1).
    pub fn with_max_connections(mut self, max: usize) -> Self {
        self.max_connections = max.max(1);
        self
    }

    /// Builder: set the per-connection in-flight window (min 1).
    pub fn with_window(mut self, window: usize) -> Self {
        self.window = window.max(1);
        self
    }

    /// Builder: set the largest accepted frame payload.
    pub fn with_max_frame_len(mut self, len: u32) -> Self {
        self.max_frame_len = len;
        self
    }
}

/// Snapshot of the wire-level counters.  The request counters keep the serving
/// conservation invariant: once every connection has drained,
/// `shed + completed + failed == submitted`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetMetrics {
    /// Request frames decoded off the wire.
    pub submitted: u64,
    /// Responses fully streamed (pages + tail flushed).
    pub completed: u64,
    /// Requests refused by backend admission control (`Overloaded`), reported
    /// to the client as a typed error frame.
    pub shed: u64,
    /// Requests that ended in any other typed error frame, could not be parsed,
    /// or whose response could not be delivered (client gone mid-stream).
    pub failed: u64,
    /// Connections the acceptor admitted.
    pub connections_accepted: u64,
    /// Connections refused at the ceiling with a `ConnectionShed` error frame.
    pub connections_shed: u64,
    /// Page frames streamed to clients.
    pub pages_streamed: u64,
    /// Connections killed by a framing violation (bad CRC, oversized frame,
    /// unknown kind).
    pub bad_frames: u64,
}

#[derive(Default)]
struct Counters {
    submitted: AtomicU64,
    completed: AtomicU64,
    shed: AtomicU64,
    failed: AtomicU64,
    connections_accepted: AtomicU64,
    connections_shed: AtomicU64,
    pages_streamed: AtomicU64,
    bad_frames: AtomicU64,
}

impl Counters {
    fn note_submitted(&self) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
    }

    fn note_completed(&self) {
        self.completed.fetch_add(1, Ordering::Relaxed);
    }

    fn note_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    fn note_failed(&self) {
        self.failed.fetch_add(1, Ordering::Relaxed);
    }

    fn note_connection_accepted(&self) {
        self.connections_accepted.fetch_add(1, Ordering::Relaxed);
    }

    fn note_connection_shed(&self) {
        self.connections_shed.fetch_add(1, Ordering::Relaxed);
    }

    fn note_page_streamed(&self) {
        self.pages_streamed.fetch_add(1, Ordering::Relaxed);
    }

    fn note_bad_frame(&self) {
        self.bad_frames.fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> NetMetrics {
        NetMetrics {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            connections_accepted: self.connections_accepted.load(Ordering::Relaxed),
            connections_shed: self.connections_shed.load(Ordering::Relaxed),
            pages_streamed: self.pages_streamed.load(Ordering::Relaxed),
            bad_frames: self.bad_frames.load(Ordering::Relaxed),
        }
    }
}

struct Shared {
    backend: Backend,
    config: ServerConfig,
    counters: Counters,
    live: AtomicUsize,
    shutdown: AtomicBool,
}

/// One request's resolution handle, queued from reader to writer.  The result
/// is (or will be) fully materialised by the backend — the writer only moves
/// bytes, so a stalled socket holds at most `window` of these, never a snapshot.
enum Pending {
    /// Sharded execution (or an admission error): already resolved.
    Done(Result<QueryResult, ServiceError>),
    /// Pool execution in flight; the writer redeems the ticket in order.
    Pool(Ticket),
    /// The query text did not parse.
    Bad(String),
}

/// The network front door: a listening acceptor plus a health listener.
/// Dropping the server stops accepting and wakes both listeners; established
/// connections finish on their own threads.
pub struct NetServer {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    health_addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    health: Option<JoinHandle<()>>,
}

impl NetServer {
    /// Bind the protocol listener on `addr` (use port 0 for an ephemeral port)
    /// and the health listener on the same interface, then start accepting.
    pub fn bind(addr: &str, backend: Backend, config: ServerConfig) -> io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let health_listener = TcpListener::bind(SocketAddr::new(local_addr.ip(), 0))?;
        let health_addr = health_listener.local_addr()?;
        let shared = Arc::new(Shared {
            backend,
            config,
            counters: Counters::default(),
            live: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
        });
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("graphitti-net-accept".to_string())
                .spawn(move || accept_loop(&listener, &shared))?
        };
        let health = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("graphitti-net-health".to_string())
                .spawn(move || health_loop(&health_listener, &shared))?
        };
        Ok(NetServer {
            shared,
            local_addr,
            health_addr,
            acceptor: Some(acceptor),
            health: Some(health),
        })
    }

    /// The protocol endpoint clients connect to.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The plaintext `/health` + `/metrics` endpoint.
    pub fn health_addr(&self) -> SocketAddr {
        self.health_addr
    }

    /// Snapshot of the wire-level counters.
    pub fn metrics(&self) -> NetMetrics {
        self.shared.counters.snapshot()
    }

    /// The backend's own serving metrics.
    pub fn backend_metrics(&self) -> ServiceMetrics {
        self.shared.backend.service_metrics()
    }

    /// Live protocol connections right now.
    pub fn live_connections(&self) -> usize {
        self.shared.live.load(Ordering::Relaxed)
    }

    /// Stop accepting and wake both listeners.  Idempotent; also run by `Drop`.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        // Poke both blocking accept loops so they observe the flag.
        let _ = TcpStream::connect(self.local_addr);
        let _ = TcpStream::connect(self.health_addr);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.health.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

// --- acceptor --------------------------------------------------------------

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for incoming in listener.incoming() {
        if shared.shutdown.load(Ordering::Relaxed) {
            return;
        }
        let Ok(stream) = incoming else { continue };
        let live = shared.live.load(Ordering::Relaxed);
        if live >= shared.config.max_connections {
            // Connection-level shedding: a typed error frame, then close — the
            // transport analogue of `ServiceError::Overloaded`.
            shared.counters.note_connection_shed();
            let shed = WireFailure::ConnectionShed { live: live as u64 };
            let _ = write_frame(&mut &stream, &encode_failure(&shed));
            let _ = stream.shutdown(Shutdown::Both);
            continue;
        }
        if spawn_connection(stream, shared).is_err() {
            shared.counters.note_connection_shed();
        }
    }
}

fn spawn_connection(stream: TcpStream, shared: &Arc<Shared>) -> io::Result<()> {
    // The reader polls this timeout slice so shutdown is always observed.
    stream.set_read_timeout(Some(shared.config.poll_interval))?;
    // Request-response traffic: Nagle + delayed ACK would stall every
    // multi-frame response ~40ms waiting for the previous segment's ACK.
    stream.set_nodelay(true)?;
    let reader_stream = stream.try_clone()?;
    shared.live.fetch_add(1, Ordering::Relaxed);
    shared.counters.note_connection_accepted();
    let conn_shared = Arc::clone(shared);
    let spawned =
        std::thread::Builder::new().name("graphitti-net-conn".to_string()).spawn(move || {
            let (tx, rx) = mpsc::sync_channel::<Pending>(conn_shared.config.window);
            let reader = {
                let shared = Arc::clone(&conn_shared);
                std::thread::Builder::new()
                    .name("graphitti-net-read".to_string())
                    .spawn(move || read_loop(&reader_stream, &shared, &tx))
            };
            write_loop(&stream, &conn_shared, &rx);
            // Force the reader off its socket, then account the connection done.
            let _ = stream.shutdown(Shutdown::Both);
            if let Ok(handle) = reader {
                let _ = handle.join();
            }
            conn_shared.live.fetch_sub(1, Ordering::Relaxed);
        });
    match spawned {
        Ok(_) => Ok(()),
        Err(e) => {
            // Roll the admission back: the connection never ran.
            shared.live.fetch_sub(1, Ordering::Relaxed);
            Err(e)
        }
    }
}

// --- per-connection reader -------------------------------------------------

/// `Read` adapter that rides out read-timeout ticks (rechecking shutdown) so
/// the framing layer never observes a torn frame across a poll boundary.
struct PatientReader<'a> {
    stream: &'a TcpStream,
    shared: &'a Shared,
}

impl Read for PatientReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        loop {
            match (&mut &*self.stream).read(buf) {
                Err(e)
                    if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) =>
                {
                    if self.shared.shutdown.load(Ordering::Relaxed) {
                        return Err(e);
                    }
                }
                other => return other,
            }
        }
    }
}

fn read_loop(stream: &TcpStream, shared: &Arc<Shared>, tx: &mpsc::SyncSender<Pending>) {
    let mut reader = PatientReader { stream, shared };
    loop {
        let payload = match read_frame(&mut reader, shared.config.max_frame_len) {
            Ok(Some(payload)) => payload,
            // Clean EOF at a frame boundary: the client is done.
            Ok(None) => return,
            Err(e) => {
                if e.kind() == io::ErrorKind::InvalidData {
                    shared.counters.note_bad_frame();
                }
                return;
            }
        };
        let pending = match frame_kind(&payload).map(|k| k == KIND_REQUEST) {
            Ok(true) => match decode_request(&payload) {
                Ok(request) => {
                    shared.counters.note_submitted();
                    dispatch(shared, request.query, &request.budget)
                }
                Err(_) => {
                    shared.counters.note_bad_frame();
                    return;
                }
            },
            _ => {
                shared.counters.note_bad_frame();
                return;
            }
        };
        // Backpressure: a full window blocks here, which stops reading, which
        // fills the client's send buffer.  `Err` means the writer is gone.
        if tx.send(pending).is_err() {
            return;
        }
    }
}

/// Parse and hand one request to the backend.  Pool submissions pipeline (the
/// ticket resolves on a worker); sharded execution runs here, on the
/// connection's reader thread — its calling-thread contract.
fn dispatch(shared: &Arc<Shared>, query_text: String, wire: &WireBudget) -> Pending {
    let query = match parse_query(&query_text) {
        Ok(query) => query,
        Err(e) => return Pending::Bad(e.to_string()),
    };
    let mut budget = QueryBudget::unbounded().with_allow_partial(wire.allow_partial);
    if let Some(deadline) = wire.deadline {
        budget = budget.with_deadline(deadline);
    }
    match &shared.backend {
        Backend::Pool(service) => match service.submit_with_budget(query, budget) {
            Ok(ticket) => Pending::Pool(ticket),
            Err(e) => Pending::Done(Err(e)),
        },
        Backend::Sharded(service) => Pending::Done(service.run_with_budget(&query, budget)),
    }
}

// --- per-connection writer -------------------------------------------------

fn write_loop(stream: &TcpStream, shared: &Arc<Shared>, rx: &mpsc::Receiver<Pending>) {
    while let Ok(pending) = rx.recv() {
        if respond(&mut &*stream, shared, pending).is_err() {
            // The socket is gone: stop reading new requests, then drain what the
            // reader already queued — every decoded request must still land on
            // exactly one outcome counter (here: failed, delivery impossible).
            let _ = stream.shutdown(Shutdown::Both);
            while let Ok(undeliverable) = rx.recv() {
                abandon(shared, undeliverable);
            }
            return;
        }
    }
}

/// Resolve one pending request and stream its response: page frames in result
/// order, then the tail — or one typed error frame.  `Err` only for transport
/// failures (the request itself is always accounted before returning).
fn respond(w: &mut impl Write, shared: &Arc<Shared>, pending: Pending) -> io::Result<()> {
    let resolved = match pending {
        Pending::Bad(message) => {
            shared.counters.note_failed();
            let frame = encode_failure(&WireFailure::BadQuery(message));
            write_frame(w, &frame)?;
            return w.flush();
        }
        Pending::Done(resolved) => resolved,
        Pending::Pool(ticket) => ticket.wait(),
    };
    match resolved {
        Err(error) => {
            // Admission-control refusals are sheds, every other error failed.
            if matches!(error, ServiceError::Overloaded { .. }) {
                shared.counters.note_shed();
            } else {
                shared.counters.note_failed();
            }
            let frame = encode_failure(&WireFailure::Service(error));
            write_frame(w, &frame)?;
            w.flush()
        }
        Ok(result) => {
            let (pages, tail) = result.into_stream();
            let mut streamed = 0u32;
            let deliver = || -> io::Result<()> {
                for page in pages {
                    write_frame(w, &encode_page(&page))?;
                    shared.counters.note_page_streamed();
                    streamed += 1;
                }
                write_frame(w, &encode_tail(streamed, &tail))?;
                w.flush()
            };
            match deliver() {
                Ok(()) => {
                    shared.counters.note_completed();
                    Ok(())
                }
                Err(e) => {
                    // The backend answered but the client never got it.
                    shared.counters.note_failed();
                    Err(e)
                }
            }
        }
    }
}

/// Account a queued request whose connection died before its response could be
/// written.  Pool tickets are cancelled so an abandoned query stops burning its
/// worker; the wire outcome is uniformly `failed` (delivery was impossible).
fn abandon(shared: &Arc<Shared>, pending: Pending) {
    if let Pending::Pool(ticket) = &pending {
        ticket.cancel();
    }
    shared.counters.note_failed();
}

// --- health / metrics endpoint ---------------------------------------------

fn health_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for incoming in listener.incoming() {
        if shared.shutdown.load(Ordering::Relaxed) {
            return;
        }
        let Ok(stream) = incoming else { continue };
        let _ = serve_health(&stream, shared);
        let _ = stream.shutdown(Shutdown::Both);
    }
}

fn serve_health(stream: &TcpStream, shared: &Arc<Shared>) -> io::Result<()> {
    stream.set_read_timeout(Some(shared.config.poll_interval))?;
    let mut request = [0u8; 512];
    let n = (&mut &*stream).read(&mut request)?;
    let text = String::from_utf8_lossy(request.get(..n).unwrap_or_default());
    let path = text.split_whitespace().nth(1).unwrap_or("").to_string();
    let (status, body) = match path.as_str() {
        "/health" => ("200 OK", "ok\n".to_string()),
        "/metrics" => ("200 OK", metrics_text(shared)),
        _ => ("404 Not Found", "unknown path (try /health or /metrics)\n".to_string()),
    };
    let response = format!(
        "HTTP/1.0 {status}\r\nContent-Type: text/plain\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    (&mut &*stream).write_all(response.as_bytes())?;
    (&mut &*stream).flush()
}

/// `/metrics` body: `name value` lines — the wire counters (`net_` prefix) and
/// the backend's full [`ServiceMetrics`] (`service_` prefix).
fn metrics_text(shared: &Arc<Shared>) -> String {
    let n = shared.counters.snapshot();
    let s = shared.backend.service_metrics();
    let mut out = String::new();
    let mut line = |name: &str, value: u64| {
        out.push_str(name);
        out.push(' ');
        out.push_str(&value.to_string());
        out.push('\n');
    };
    line("net_submitted", n.submitted);
    line("net_completed", n.completed);
    line("net_shed", n.shed);
    line("net_failed", n.failed);
    line("net_connections_accepted", n.connections_accepted);
    line("net_connections_shed", n.connections_shed);
    line("net_pages_streamed", n.pages_streamed);
    line("net_bad_frames", n.bad_frames);
    line("service_submitted", s.submitted);
    line("service_completed", s.completed);
    line("service_shed", s.shed);
    line("service_failed", s.failed);
    line("service_deadline_misses", s.deadline_misses);
    line("service_cancelled", s.cancelled);
    line("service_worker_panics", s.worker_panics);
    line("service_workers_respawned", s.workers_respawned);
    line("service_degraded", s.degraded);
    line("service_wal_flush_failures", s.wal_flush_failures);
    line("service_cache_hits", s.cache_hits);
    line("service_cache_misses", s.cache_misses);
    line("service_publishes", s.publishes);
    line("service_cache_invalidations", s.cache_invalidations);
    line("service_cache_partial_invalidations", s.cache_partial_invalidations);
    line("service_cache_full_invalidations", s.cache_full_invalidations);
    line("service_cache_entries_evicted", s.cache_entries_evicted);
    line("service_wal_records_appended", s.wal_records_appended);
    line("service_wal_fsyncs", s.wal_fsyncs);
    line("service_recovery_replays", s.recovery_replays);
    out
}
