//! The wire protocol: WAL-style CRC frames carrying a tagged binary payload.
//!
//! Every frame is `[len u32 LE][crc32 u32 LE][payload]` — the same header and the
//! same [`crc32`] as the WAL's on-disk format, so a torn or corrupted frame is
//! detected before a single payload byte is interpreted.  The first payload byte
//! is the frame kind:
//!
//! | kind | frame | body |
//! |------|-------|------|
//! | 1 | request | `deadline_ms u64` (`u64::MAX` = unbounded) · `flags u8` (bit 0 = `allow_partial`) · query DSL text |
//! | 2 | page | one binary-encoded [`ResultPage`] |
//! | 3 | tail | page count + the flat annotation/referent/object lists + `missing_shards` |
//! | 4 | error | a typed [`ServiceError`] / parse / shed error |
//!
//! A response is a stream: zero or more page frames followed by exactly one tail
//! frame, or one error frame.  Ids are plain `u64`/`u32` newtypes end to end, so
//! the page codec is a deterministic length-prefixed integer layout — two
//! faithful endpoints reassemble a [`QueryResult`](graphitti_query::QueryResult)
//! byte-identical under `to_json`.

use std::io::{self, Read, Write};
use std::time::Duration;

use agraph::{ConnectionSubgraph, EdgeId, NodeId, Subgraph};
use graphitti_core::wal::crc32;
use graphitti_core::{AnnotationId, ObjectId, ReferentId};
use graphitti_query::resilience::ServiceError;
use graphitti_query::result::{ResultPage, ResultTail};
use ontology::ConceptId;

/// Frame header: payload length + CRC, both little-endian u32 (the WAL's layout).
pub const FRAME_HEADER: usize = 8;

/// Upper bound on a single frame payload — a decode-side guard so a corrupt or
/// hostile length prefix cannot ask either endpoint to allocate unboundedly.
pub const MAX_FRAME_LEN: u32 = 64 * 1024 * 1024;

/// Frame kind tags (first payload byte).
pub const KIND_REQUEST: u8 = 1;
/// One streamed result page.
pub const KIND_PAGE: u8 = 2;
/// End of a successful response stream.
pub const KIND_TAIL: u8 = 3;
/// Typed failure, terminal for its request.
pub const KIND_ERROR: u8 = 4;

/// Wire error codes (first byte of an error frame body).
const ERR_OVERLOADED: u8 = 1;
const ERR_DEADLINE: u8 = 2;
const ERR_CANCELLED: u8 = 3;
const ERR_WORKER_PANICKED: u8 = 4;
const ERR_SHARD_UNAVAILABLE: u8 = 5;
const ERR_ALREADY_TAKEN: u8 = 6;
const ERR_WAL_FLUSH: u8 = 7;
const ERR_BAD_QUERY: u8 = 8;
const ERR_CONNECTION_SHED: u8 = 9;

/// A protocol violation observed while decoding: bad CRC, truncated payload,
/// oversized length prefix, unknown tag.  Always terminal for the connection —
/// after a framing error there is no trustworthy resynchronisation point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(pub String);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire protocol violation: {}", self.0)
    }
}

impl std::error::Error for WireError {}

fn truncated(what: &str) -> WireError {
    WireError(format!("truncated {what}"))
}

/// The request side of a [`QueryBudget`](graphitti_query::QueryBudget), carried
/// relative on the wire: the server rebuilds the absolute deadline at decode
/// time, so clocks never need to agree.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireBudget {
    /// Time allowed from server-side decode, `None` = unbounded.
    pub deadline: Option<Duration>,
    /// Accept shard-degraded partial answers (the sharded backend's opt-in).
    pub allow_partial: bool,
}

impl WireBudget {
    /// Unbounded, complete-answer budget.
    pub fn unbounded() -> Self {
        WireBudget::default()
    }

    /// Builder: allow `timeout` from server-side decode.
    pub fn with_deadline(mut self, timeout: Duration) -> Self {
        self.deadline = Some(timeout);
        self
    }

    /// Builder: accept shard-degraded partial answers.
    pub fn with_allow_partial(mut self, allow: bool) -> Self {
        self.allow_partial = allow;
        self
    }
}

/// A decoded request frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The query, as DSL text (parsed server-side by `graphitti_query::parse`).
    pub query: String,
    /// The budget to execute it under.
    pub budget: WireBudget,
}

/// An error frame's decoded content: a typed service error, a query-text
/// rejection, or transport-level connection shedding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireFailure {
    /// A [`ServiceError`] from the backend, round-tripped losslessly.
    Service(ServiceError),
    /// The server could not parse the query DSL text.
    BadQuery(String),
    /// The acceptor refused the connection: the house is full (`live`
    /// connections at the configured ceiling) — the transport-level analogue of
    /// [`ServiceError::Overloaded`].
    ConnectionShed {
        /// Live connections observed at refusal.
        live: u64,
    },
}

// --- primitive codec -------------------------------------------------------

/// Append-only payload builder (little-endian integers, length-prefixed lists).
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// Start a payload with its kind tag.
    pub fn tagged(kind: u8) -> Self {
        WireWriter { buf: vec![kind] }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    fn u64_list(&mut self, items: impl ExactSizeIterator<Item = u64>) {
        self.u32(items.len() as u32);
        for v in items {
            self.u64(v);
        }
    }

    fn u32_list(&mut self, items: impl ExactSizeIterator<Item = u32>) {
        self.u32(items.len() as u32);
        for v in items {
            self.u32(v);
        }
    }

    /// The finished payload.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Cursor over a received payload; every read is bounds-checked into a
/// [`WireError`] — a truncated or lying frame can never panic an endpoint.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or_else(|| truncated(what))?;
        let slice = self.buf.get(self.pos..end).ok_or_else(|| truncated(what))?;
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self, what: &str) -> Result<u8, WireError> {
        let b = self.take(1, what)?;
        b.first().copied().ok_or_else(|| truncated(what))
    }

    fn u32(&mut self, what: &str) -> Result<u32, WireError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes(b.try_into().map_err(|_| truncated(what))?))
    }

    fn u64(&mut self, what: &str) -> Result<u64, WireError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes(b.try_into().map_err(|_| truncated(what))?))
    }

    fn str(&mut self, what: &str) -> Result<String, WireError> {
        let len = self.u32(what)? as usize;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError(format!("non-UTF-8 {what}")))
    }

    fn list_len(&mut self, what: &str) -> Result<usize, WireError> {
        let len = self.u32(what)? as usize;
        // A list cannot be longer than the bytes remaining in the frame — reject
        // before reserving, so a lying count cannot drive a huge allocation.
        if len > self.buf.len().saturating_sub(self.pos) {
            return Err(WireError(format!("{what} count exceeds frame")));
        }
        Ok(len)
    }

    fn u64_list<T>(&mut self, what: &str, wrap: impl Fn(u64) -> T) -> Result<Vec<T>, WireError> {
        let len = self.list_len(what)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(wrap(self.u64(what)?));
        }
        Ok(out)
    }

    fn u32_list<T>(&mut self, what: &str, wrap: impl Fn(u32) -> T) -> Result<Vec<T>, WireError> {
        let len = self.list_len(what)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(wrap(self.u32(what)?));
        }
        Ok(out)
    }

    /// Whether every payload byte was consumed (a well-formed frame leaves none).
    pub fn exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }
}

// --- framing ---------------------------------------------------------------

/// Write one CRC frame around `payload` (header + body in one vectored buffer,
/// one `write_all` — the transport never observes a torn header).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(payload).to_le_bytes());
    frame.extend_from_slice(payload);
    w.write_all(&frame)
}

/// Read one CRC frame; `Ok(None)` on clean EOF at a frame boundary.  CRC or
/// length violations come back as [`WireError`] via `io::ErrorKind::InvalidData`
/// — see [`wire_error_of`] to recover the typed form.
pub fn read_frame(r: &mut impl Read, max_len: u32) -> io::Result<Option<Vec<u8>>> {
    let mut header = [0u8; FRAME_HEADER];
    match read_full(r, &mut header) {
        Ok(true) => {}
        Ok(false) => return Ok(None),
        Err(e) => return Err(e),
    }
    let (len_bytes, crc_bytes) = header.split_at(4);
    let len = u32::from_le_bytes(len_bytes.try_into().map_err(|_| short_header())?);
    let expect_crc = u32::from_le_bytes(crc_bytes.try_into().map_err(|_| short_header())?);
    if len > max_len {
        return Err(invalid(WireError(format!("frame length {len} exceeds cap {max_len}"))));
    }
    let mut payload = vec![0u8; len as usize];
    if !read_full(r, &mut payload)? {
        return Err(invalid(truncated("frame payload")));
    }
    if crc32(&payload) != expect_crc {
        return Err(invalid(WireError("frame CRC mismatch".to_string())));
    }
    Ok(Some(payload))
}

fn short_header() -> io::Error {
    invalid(truncated("frame header"))
}

fn invalid(err: WireError) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, err)
}

/// The [`WireError`] carried by an `InvalidData` io error from this module.
pub fn wire_error_of(err: &io::Error) -> Option<WireError> {
    if err.kind() != io::ErrorKind::InvalidData {
        return None;
    }
    err.get_ref().and_then(|e| e.downcast_ref::<WireError>()).cloned()
}

/// Fill `buf` completely; `Ok(false)` on EOF before the first byte.  Unlike
/// `read_exact`, a timeout-induced partial read resumes where it left off, so a
/// socket read timeout (the server's shutdown poll) never tears a frame.
fn read_full(r: &mut impl Read, buf: &mut [u8]) -> io::Result<bool> {
    let mut filled = 0usize;
    while filled < buf.len() {
        let Some(rest) = buf.get_mut(filled..) else {
            return Ok(true);
        };
        match r.read(rest) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(false);
                }
                return Err(invalid(truncated("frame (mid-read EOF)")));
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

// --- request ---------------------------------------------------------------

/// Encode a request payload (frame it with [`write_frame`]).
pub fn encode_request(query: &str, budget: &WireBudget) -> Vec<u8> {
    let mut w = WireWriter::tagged(KIND_REQUEST);
    let deadline_ms = match budget.deadline {
        Some(d) => (d.as_millis() as u64).min(u64::MAX - 1),
        None => u64::MAX,
    };
    w.u64(deadline_ms);
    w.u8(u8::from(budget.allow_partial));
    w.str(query);
    w.finish()
}

/// Decode a request payload (tag byte included).
pub fn decode_request(payload: &[u8]) -> Result<Request, WireError> {
    let mut r = WireReader::new(payload);
    expect_tag(&mut r, KIND_REQUEST, "request")?;
    let deadline_ms = r.u64("request deadline")?;
    let flags = r.u8("request flags")?;
    let query = r.str("request query")?;
    let deadline =
        if deadline_ms == u64::MAX { None } else { Some(Duration::from_millis(deadline_ms)) };
    Ok(Request { query, budget: WireBudget { deadline, allow_partial: flags & 1 != 0 } })
}

fn expect_tag(r: &mut WireReader<'_>, want: u8, what: &str) -> Result<(), WireError> {
    let tag = r.u8(what)?;
    if tag != want {
        return Err(WireError(format!("expected {what} frame (kind {want}), got kind {tag}")));
    }
    Ok(())
}

// --- pages & tail ----------------------------------------------------------

/// Encode one result page as a page frame payload.
pub fn encode_page(page: &ResultPage) -> Vec<u8> {
    let mut w = WireWriter::tagged(KIND_PAGE);
    w.u64_list(page.subgraph.terminals.iter().map(|n| n.0));
    w.u64_list(page.subgraph.subgraph.nodes.iter().map(|n| n.0));
    w.u64_list(page.subgraph.subgraph.edges.iter().map(|e| e.0));
    w.u64_list(page.annotations.iter().map(|a| a.0));
    w.u64_list(page.referents.iter().map(|r| r.0));
    w.u64_list(page.objects.iter().map(|o| o.0));
    w.u32_list(page.terms.iter().map(|t| t.0));
    w.finish()
}

/// Decode a page frame payload.
pub fn decode_page(payload: &[u8]) -> Result<ResultPage, WireError> {
    let mut r = WireReader::new(payload);
    expect_tag(&mut r, KIND_PAGE, "page")?;
    let terminals = r.u64_list("page terminals", NodeId)?;
    let nodes = r.u64_list("page nodes", NodeId)?;
    let edges = r.u64_list("page edges", EdgeId)?;
    let annotations = r.u64_list("page annotations", AnnotationId)?;
    let referents = r.u64_list("page referents", ReferentId)?;
    let objects = r.u64_list("page objects", ObjectId)?;
    let terms = r.u32_list("page terms", ConceptId)?;
    if !r.exhausted() {
        return Err(WireError("trailing bytes after page".to_string()));
    }
    Ok(ResultPage {
        subgraph: ConnectionSubgraph { terminals, subgraph: Subgraph { nodes, edges } },
        annotations,
        referents,
        objects,
        terms,
    })
}

/// Encode the response tail: the page count the client must have seen, plus the
/// flat lists of the [`ResultTail`].
pub fn encode_tail(pages_streamed: u32, tail: &ResultTail) -> Vec<u8> {
    let mut w = WireWriter::tagged(KIND_TAIL);
    w.u32(pages_streamed);
    w.u64_list(tail.annotations.iter().map(|a| a.0));
    w.u64_list(tail.referents.iter().map(|r| r.0));
    w.u64_list(tail.objects.iter().map(|o| o.0));
    w.u64_list(tail.missing_shards.iter().map(|&s| s as u64));
    w.finish()
}

/// Decode a tail frame payload into `(expected page count, tail)`.
pub fn decode_tail(payload: &[u8]) -> Result<(u32, ResultTail), WireError> {
    let mut r = WireReader::new(payload);
    expect_tag(&mut r, KIND_TAIL, "tail")?;
    let pages = r.u32("tail page count")?;
    let annotations = r.u64_list("tail annotations", AnnotationId)?;
    let referents = r.u64_list("tail referents", ReferentId)?;
    let objects = r.u64_list("tail objects", ObjectId)?;
    let missing_shards = r.u64_list("tail missing shards", |v| v as usize)?;
    if !r.exhausted() {
        return Err(WireError("trailing bytes after tail".to_string()));
    }
    Ok((pages, ResultTail { annotations, referents, objects, missing_shards }))
}

// --- errors ----------------------------------------------------------------

/// Encode a failure as an error frame payload.
pub fn encode_failure(failure: &WireFailure) -> Vec<u8> {
    let mut w = WireWriter::tagged(KIND_ERROR);
    match failure {
        WireFailure::Service(err) => match err {
            ServiceError::Overloaded { depth } => {
                w.u8(ERR_OVERLOADED);
                w.u64(*depth as u64);
            }
            ServiceError::DeadlineExceeded => w.u8(ERR_DEADLINE),
            ServiceError::Cancelled => w.u8(ERR_CANCELLED),
            ServiceError::WorkerPanicked => w.u8(ERR_WORKER_PANICKED),
            ServiceError::ShardUnavailable { shard, attempts } => {
                w.u8(ERR_SHARD_UNAVAILABLE);
                w.u64(*shard as u64);
                w.u64(u64::from(*attempts));
            }
            ServiceError::AlreadyTaken => w.u8(ERR_ALREADY_TAKEN),
            ServiceError::WalFlush(msg) => {
                w.u8(ERR_WAL_FLUSH);
                w.str(msg);
            }
        },
        WireFailure::BadQuery(msg) => {
            w.u8(ERR_BAD_QUERY);
            w.str(msg);
        }
        WireFailure::ConnectionShed { live } => {
            w.u8(ERR_CONNECTION_SHED);
            w.u64(*live);
        }
    }
    w.finish()
}

/// Decode an error frame payload.
pub fn decode_failure(payload: &[u8]) -> Result<WireFailure, WireError> {
    let mut r = WireReader::new(payload);
    expect_tag(&mut r, KIND_ERROR, "error")?;
    let code = r.u8("error code")?;
    let failure = match code {
        ERR_OVERLOADED => WireFailure::Service(ServiceError::Overloaded {
            depth: r.u64("overloaded depth")? as usize,
        }),
        ERR_DEADLINE => WireFailure::Service(ServiceError::DeadlineExceeded),
        ERR_CANCELLED => WireFailure::Service(ServiceError::Cancelled),
        ERR_WORKER_PANICKED => WireFailure::Service(ServiceError::WorkerPanicked),
        ERR_SHARD_UNAVAILABLE => {
            let shard = r.u64("shard index")? as usize;
            let attempts = r.u64("shard attempts")? as u32;
            WireFailure::Service(ServiceError::ShardUnavailable { shard, attempts })
        }
        ERR_ALREADY_TAKEN => WireFailure::Service(ServiceError::AlreadyTaken),
        ERR_WAL_FLUSH => WireFailure::Service(ServiceError::WalFlush(r.str("wal message")?)),
        ERR_BAD_QUERY => WireFailure::BadQuery(r.str("parse message")?),
        ERR_CONNECTION_SHED => WireFailure::ConnectionShed { live: r.u64("live connections")? },
        other => return Err(WireError(format!("unknown error code {other}"))),
    };
    Ok(failure)
}

/// The kind tag of a received payload (its first byte).
pub fn frame_kind(payload: &[u8]) -> Result<u8, WireError> {
    payload.first().copied().ok_or_else(|| truncated("frame kind"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_page() -> ResultPage {
        ResultPage {
            subgraph: ConnectionSubgraph {
                terminals: vec![NodeId(4), NodeId(9)],
                subgraph: Subgraph {
                    nodes: vec![NodeId(4), NodeId(7), NodeId(9)],
                    edges: vec![EdgeId(1), EdgeId(2)],
                },
            },
            annotations: vec![AnnotationId(11)],
            referents: vec![ReferentId(3), ReferentId(5)],
            objects: vec![ObjectId(0)],
            terms: vec![ConceptId(2)],
        }
    }

    #[test]
    fn request_roundtrip() {
        for budget in [
            WireBudget::unbounded(),
            WireBudget::unbounded().with_deadline(Duration::from_millis(250)),
            WireBudget::unbounded().with_allow_partial(true),
        ] {
            let payload = encode_request("SELECT referents WHERE phrase \"x\"", &budget);
            let req = decode_request(&payload).unwrap();
            assert_eq!(req.query, "SELECT referents WHERE phrase \"x\"");
            assert_eq!(req.budget, budget);
        }
    }

    #[test]
    fn page_and_tail_roundtrip() {
        let page = sample_page();
        assert_eq!(decode_page(&encode_page(&page)).unwrap(), page);
        let tail = ResultTail {
            annotations: vec![AnnotationId(1), AnnotationId(2)],
            referents: vec![ReferentId(9)],
            objects: vec![],
            missing_shards: vec![1, 3],
        };
        let (pages, decoded) = decode_tail(&encode_tail(7, &tail)).unwrap();
        assert_eq!(pages, 7);
        assert_eq!(decoded, tail);
    }

    #[test]
    fn every_failure_roundtrips() {
        let failures = [
            WireFailure::Service(ServiceError::Overloaded { depth: 12 }),
            WireFailure::Service(ServiceError::DeadlineExceeded),
            WireFailure::Service(ServiceError::Cancelled),
            WireFailure::Service(ServiceError::WorkerPanicked),
            WireFailure::Service(ServiceError::ShardUnavailable { shard: 3, attempts: 2 }),
            WireFailure::Service(ServiceError::AlreadyTaken),
            WireFailure::Service(ServiceError::WalFlush("disk gone".to_string())),
            WireFailure::BadQuery("expected SELECT".to_string()),
            WireFailure::ConnectionShed { live: 64 },
        ];
        for f in failures {
            assert_eq!(decode_failure(&encode_failure(&f)).unwrap(), f);
        }
    }

    #[test]
    fn framing_roundtrips_and_rejects_corruption() {
        let payload = encode_page(&sample_page());
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        write_frame(&mut buf, &payload).unwrap();
        let mut cursor = io::Cursor::new(buf.clone());
        assert_eq!(read_frame(&mut cursor, MAX_FRAME_LEN).unwrap().as_deref(), Some(&payload[..]));
        assert_eq!(read_frame(&mut cursor, MAX_FRAME_LEN).unwrap().as_deref(), Some(&payload[..]));
        assert_eq!(read_frame(&mut cursor, MAX_FRAME_LEN).unwrap(), None, "clean EOF");

        // Flip one payload byte: the CRC catches it, typed.
        let mut corrupt = buf.clone();
        *corrupt.last_mut().unwrap() ^= 0x40;
        let mut cursor = io::Cursor::new(corrupt);
        let _first = read_frame(&mut cursor, MAX_FRAME_LEN).unwrap();
        let err = read_frame(&mut cursor, MAX_FRAME_LEN).unwrap_err();
        assert!(wire_error_of(&err).unwrap().0.contains("CRC"));

        // A lying length prefix is rejected before allocation.
        let mut hostile = Vec::new();
        hostile.extend_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        hostile.extend_from_slice(&0u32.to_le_bytes());
        let err = read_frame(&mut io::Cursor::new(hostile), MAX_FRAME_LEN).unwrap_err();
        assert!(wire_error_of(&err).unwrap().0.contains("exceeds cap"));

        // Truncation mid-payload is typed, not a hang or a panic.
        let cut = buf.get(..buf.len() - 3).unwrap().to_vec();
        let mut cursor = io::Cursor::new(cut);
        let _first = read_frame(&mut cursor, MAX_FRAME_LEN).unwrap();
        let err = read_frame(&mut cursor, MAX_FRAME_LEN).unwrap_err();
        assert!(wire_error_of(&err).is_some());
    }

    #[test]
    fn truncated_payloads_decode_to_typed_errors() {
        let page = encode_page(&sample_page());
        for cut in 0..page.len() {
            let sliced = page.get(..cut).unwrap();
            assert!(decode_page(sliced).is_err(), "cut at {cut} must not decode");
        }
        // A lying list count inside a frame is rejected before allocation.
        let mut w = WireWriter::tagged(KIND_PAGE);
        w.u32(u32::MAX);
        assert!(decode_page(&w.finish()).is_err());
    }
}
