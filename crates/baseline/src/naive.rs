//! A linear-scan referent index — the ablation baseline for the interval / R-tree
//! indexes.
//!
//! It stores referents in a flat vector and answers overlap / next / region queries by
//! scanning every entry.  Functionally identical results to the indexed version, but
//! `O(n)` per query, so the ablation benchmark can show the index speedup.

use interval_index::Interval;
use spatial_index::Rect;

/// A stored interval entry.
#[derive(Debug, Clone, Copy)]
struct IntervalEntry {
    domain_hash: u64,
    interval: Interval,
    payload: u64,
}

/// A stored region entry.
#[derive(Debug, Clone, Copy)]
struct RegionEntry {
    system_hash: u64,
    rect: Rect,
    payload: u64,
}

/// A flat, unindexed referent store that scans linearly.
#[derive(Debug, Clone, Default)]
pub struct NaiveReferentIndex {
    intervals: Vec<IntervalEntry>,
    regions: Vec<RegionEntry>,
    // keep the display names for parity with the indexed collections
    domains: Vec<String>,
    systems: Vec<String>,
}

/// A cheap deterministic string hash (FNV-1a) so domain comparison is a u64 compare in
/// the hot scan loop, matching the indexed version's per-domain routing cost model.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl NaiveReferentIndex {
    /// Create an empty index.
    pub fn new() -> Self {
        NaiveReferentIndex::default()
    }

    /// Number of stored interval entries.
    pub fn interval_len(&self) -> usize {
        self.intervals.len()
    }

    /// Number of stored region entries.
    pub fn region_len(&self) -> usize {
        self.regions.len()
    }

    /// Total stored entries.
    pub fn len(&self) -> usize {
        self.intervals.len() + self.regions.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Insert an interval referent.
    pub fn insert_interval(&mut self, domain: &str, interval: Interval, payload: u64) {
        if !self.domains.iter().any(|d| d == domain) {
            self.domains.push(domain.to_string());
        }
        self.intervals.push(IntervalEntry { domain_hash: fnv1a(domain), interval, payload });
    }

    /// Insert a region referent.
    pub fn insert_region(&mut self, system: &str, rect: Rect, payload: u64) {
        if !self.systems.iter().any(|s| s == system) {
            self.systems.push(system.to_string());
        }
        self.regions.push(RegionEntry { system_hash: fnv1a(system), rect, payload });
    }

    /// Overlap query by linear scan within a domain; returns payloads sorted ascending.
    pub fn overlapping_intervals(&self, domain: &str, query: Interval) -> Vec<u64> {
        let dh = fnv1a(domain);
        let mut out: Vec<u64> = self
            .intervals
            .iter()
            .filter(|e| e.domain_hash == dh && e.interval.if_overlap(&query))
            .map(|e| e.payload)
            .collect();
        out.sort_unstable();
        out
    }

    /// `next` by linear scan within a domain.
    pub fn next_interval(&self, domain: &str, after: Interval) -> Option<u64> {
        let dh = fnv1a(domain);
        self.intervals
            .iter()
            .filter(|e| e.domain_hash == dh && e.interval.start >= after.end)
            .min_by_key(|e| (e.interval.start, e.interval.end, e.payload))
            .map(|e| e.payload)
    }

    /// Region overlap query by linear scan within a coordinate system.
    pub fn overlapping_regions(&self, system: &str, query: Rect) -> Vec<u64> {
        let sh = fnv1a(system);
        let mut out: Vec<u64> = self
            .regions
            .iter()
            .filter(|e| e.system_hash == sh && e.rect.if_overlap(&query))
            .map(|e| e.payload)
            .collect();
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn populated() -> NaiveReferentIndex {
        let mut n = NaiveReferentIndex::new();
        n.insert_interval("chr1", Interval::new(0, 100), 1);
        n.insert_interval("chr1", Interval::new(50, 150), 2);
        n.insert_interval("chr2", Interval::new(0, 100), 3);
        n.insert_region("cs", Rect::rect2(0.0, 0.0, 10.0, 10.0), 10);
        n.insert_region("cs", Rect::rect2(5.0, 5.0, 15.0, 15.0), 11);
        n
    }

    #[test]
    fn counts() {
        let n = populated();
        assert_eq!(n.interval_len(), 3);
        assert_eq!(n.region_len(), 2);
        assert_eq!(n.len(), 5);
        assert!(!n.is_empty());
    }

    #[test]
    fn overlap_matches_domain() {
        let n = populated();
        assert_eq!(n.overlapping_intervals("chr1", Interval::new(60, 70)), vec![1, 2]);
        assert_eq!(n.overlapping_intervals("chr2", Interval::new(60, 70)), vec![3]);
        assert!(n.overlapping_intervals("chrX", Interval::new(0, 10)).is_empty());
    }

    #[test]
    fn next_scan() {
        let mut n = populated();
        n.insert_interval("chr1", Interval::new(200, 260), 4);
        // after [0,100): entries starting at >= 100 are only payload 4 ([200,260))
        assert_eq!(n.next_interval("chr1", Interval::new(0, 100)), Some(4));
        assert!(n.next_interval("chr1", Interval::new(0, 300)).is_none());
    }

    #[test]
    fn region_scan() {
        let n = populated();
        assert_eq!(n.overlapping_regions("cs", Rect::rect2(6.0, 6.0, 7.0, 7.0)), vec![10, 11]);
        assert!(n.overlapping_regions("other", Rect::rect2(0.0, 0.0, 1.0, 1.0)).is_empty());
    }
}
