//! # baseline — comparators for the Graphitti evaluation
//!
//! The paper positions Graphitti against prior relational-annotation systems (Bhagwat et
//! al. VLDB'04, MONDRIAN ICDE'06) which store annotations in flat relational tables and
//! answer queries by joins and scans, with no a-graph join index and no substructure
//! indexes.  To measure what the a-graph and the interval / R-tree indexes buy, this
//! crate provides two comparators:
//!
//! * [`relational`] — a [`relational::RelationalAnnotationStore`]: annotations and their
//!   referents live in plain relational tables, and the paper's example queries are
//!   answered by predicate scans and manual joins;
//! * [`naive`] — a [`naive::NaiveReferentIndex`]: a Graphitti-shaped referent lookup that
//!   linear-scans instead of using the interval / R-tree indexes (the index ablation).

pub mod naive;
pub mod relational;

pub use naive::NaiveReferentIndex;
pub use relational::{RelAnnotationId, RelationalAnnotationStore};
