//! A relational-only annotation store — the prior-art comparator.
//!
//! Annotations, their interval referents and their cited terms live in three flat
//! relational tables.  Queries are answered the way a relational annotation system would:
//! predicate scans plus manual joins, with no a-graph join index and no substructure
//! indexes.  It returns the *same answers* as Graphitti for the example queries, so the
//! baseline benchmark measures only the difference in machinery.

use relstore::{Catalog, Column, ColumnType, Predicate, RowId, Schema, Value};

/// Identifier of an annotation in the relational baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RelAnnotationId(pub u64);

/// A relational-only annotation store.
#[derive(Debug)]
pub struct RelationalAnnotationStore {
    catalog: Catalog,
    next_ann: u64,
}

impl Default for RelationalAnnotationStore {
    fn default() -> Self {
        Self::new()
    }
}

impl RelationalAnnotationStore {
    /// Create an empty store with its three tables.
    pub fn new() -> Self {
        let mut catalog = Catalog::new();
        catalog
            .create_table(
                "annotation",
                Schema::new(vec![
                    Column::new("id", ColumnType::Int),
                    Column::new("title", ColumnType::Text),
                    Column::new("comment", ColumnType::Text),
                    Column::new("creator", ColumnType::Text),
                ]),
            )
            .expect("create annotation table");
        catalog
            .create_table(
                "referent",
                Schema::new(vec![
                    Column::new("ann_id", ColumnType::Int),
                    Column::new("object_id", ColumnType::Int),
                    Column::new("start", ColumnType::Int),
                    Column::new("end", ColumnType::Int),
                ]),
            )
            .expect("create referent table");
        catalog
            .create_table(
                "ann_term",
                Schema::new(vec![
                    Column::new("ann_id", ColumnType::Int),
                    Column::new("concept_id", ColumnType::Int),
                ]),
            )
            .expect("create ann_term table");
        RelationalAnnotationStore { catalog, next_ann: 0 }
    }

    /// Number of stored annotations.
    pub fn annotation_count(&self) -> usize {
        self.catalog.table("annotation").map(|t| t.len()).unwrap_or(0)
    }

    /// Number of referent rows.
    pub fn referent_count(&self) -> usize {
        self.catalog.table("referent").map(|t| t.len()).unwrap_or(0)
    }

    /// Insert an annotation and its interval referents / cited terms. Returns its id.
    pub fn insert(
        &mut self,
        title: &str,
        comment: &str,
        creator: &str,
        referents: &[(u64, u64, u64)], // (object_id, start, end)
        terms: &[u64],
    ) -> RelAnnotationId {
        let id = RelAnnotationId(self.next_ann);
        self.next_ann += 1;
        self.catalog
            .table_mut("annotation")
            .unwrap()
            .insert(vec![
                Value::Int(id.0 as i64),
                Value::text(title),
                Value::text(comment),
                Value::text(creator),
            ])
            .unwrap();
        for &(object, start, end) in referents {
            self.catalog
                .table_mut("referent")
                .unwrap()
                .insert(vec![
                    Value::Int(id.0 as i64),
                    Value::Int(object as i64),
                    Value::Int(start as i64),
                    Value::Int(end as i64),
                ])
                .unwrap();
        }
        for &term in terms {
            self.catalog
                .table_mut("ann_term")
                .unwrap()
                .insert(vec![Value::Int(id.0 as i64), Value::Int(term as i64)])
                .unwrap();
        }
        id
    }

    /// Create a secondary index on the referent table's object_id (so the baseline can
    /// optionally be given the same indexing the query planner would use — off by
    /// default to model the naive prior art).
    pub fn index_referent_object(&mut self) {
        let _ = self.catalog.table_mut("referent").unwrap().create_index("by_object", "object_id");
    }

    /// Annotations whose comment contains a phrase (case-insensitive substring) — by a
    /// full scan of the annotation table.
    pub fn annotations_containing(&self, phrase: &str) -> Vec<RelAnnotationId> {
        let t = self.catalog.table("annotation").unwrap();
        t.scan(&Predicate::contains("comment", phrase))
            .into_iter()
            .filter_map(|rid| t.get_value(rid, "id").and_then(Value::as_int))
            .map(|i| RelAnnotationId(i as u64))
            .collect()
    }

    /// Annotations citing a specific term — by a scan of the ann_term table.
    pub fn annotations_citing(&self, term: u64) -> Vec<RelAnnotationId> {
        let t = self.catalog.table("ann_term").unwrap();
        t.scan(&Predicate::eq("concept_id", Value::Int(term as i64)))
            .into_iter()
            .filter_map(|rid| t.get_value(rid, "ann_id").and_then(Value::as_int))
            .map(|i| RelAnnotationId(i as u64))
            .collect()
    }

    /// Objects that have at least `count` consecutive, non-overlapping intervals (within
    /// `max_gap`) each annotated by an annotation whose comment contains `phrase`.
    ///
    /// This is the relational-baseline evaluation of the protease example query: it
    /// joins annotation ⋈ referent by scanning, groups referents by object, and computes
    /// the chain — all without the a-graph or an interval tree.
    pub fn objects_with_consecutive_intervals(
        &self,
        phrase: &str,
        count: usize,
        max_gap: u64,
    ) -> Vec<u64> {
        use std::collections::BTreeMap;
        // 1. find qualifying annotation ids (scan).
        let qualifying: std::collections::HashSet<u64> =
            self.annotations_containing(phrase).into_iter().map(|a| a.0).collect();
        // 2. join with referents (scan) grouping intervals by object.
        let referent = self.catalog.table("referent").unwrap();
        let mut by_object: BTreeMap<u64, Vec<(u64, u64)>> = BTreeMap::new();
        for rid in referent.scan(&Predicate::True) {
            let row = referent.get(rid).unwrap();
            let ann = row[0].as_int().unwrap() as u64;
            if !qualifying.contains(&ann) {
                continue;
            }
            let object = row[1].as_int().unwrap() as u64;
            let start = row[2].as_int().unwrap() as u64;
            let end = row[3].as_int().unwrap() as u64;
            by_object.entry(object).or_default().push((start, end));
        }
        // 3. per object, compute the longest consecutive chain.
        by_object
            .into_iter()
            .filter(|(_, ivs)| longest_chain(ivs, max_gap) >= count)
            .map(|(obj, _)| obj)
            .collect()
    }

    /// Transitively related annotations: all annotations reachable from `start` by
    /// repeatedly hopping "shares a referent object+interval" — the relational-baseline
    /// evaluation of the a-graph's connection structure.
    ///
    /// With no a-graph join index, the baseline must compute this with an **iterative
    /// self-join** over the referent table: at each round it finds referents of the
    /// current annotation frontier, then finds other annotations on those same referents,
    /// until the set stops growing. This is the machinery the a-graph replaces with a
    /// single BFS.
    pub fn transitively_related(&self, start: RelAnnotationId) -> Vec<RelAnnotationId> {
        use std::collections::HashSet;
        let referent = self.catalog.table("referent").unwrap();
        // materialise referent rows once (object, start, end, ann)
        let rows: Vec<(u64, u64, u64, u64)> = referent
            .scan(&Predicate::True)
            .into_iter()
            .map(|rid| {
                let r = referent.get(rid).unwrap();
                (
                    r[1].as_int().unwrap() as u64,
                    r[2].as_int().unwrap() as u64,
                    r[3].as_int().unwrap() as u64,
                    r[0].as_int().unwrap() as u64,
                )
            })
            .collect();

        let mut seen: HashSet<u64> = HashSet::new();
        seen.insert(start.0);
        let mut frontier = vec![start.0];
        while let Some(ann) = frontier.pop() {
            // referents of `ann` (self-join pass 1: scan)
            let my_refs: Vec<(u64, u64, u64)> = rows
                .iter()
                .filter(|(_, _, _, a)| *a == ann)
                .map(|(o, s, e, _)| (*o, *s, *e))
                .collect();
            // other annotations on those same referents (self-join pass 2: scan)
            for (o, s, e) in my_refs {
                for (ro, rs, re, a) in &rows {
                    if *ro == o && *rs == s && *re == e && !seen.contains(a) {
                        seen.insert(*a);
                        frontier.push(*a);
                    }
                }
            }
        }
        seen.remove(&start.0);
        let mut out: Vec<RelAnnotationId> = seen.into_iter().map(RelAnnotationId).collect();
        out.sort();
        out
    }

    /// Direct access to the underlying catalogue (for diagnostics / parity checks).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Row id of an annotation in the annotation table (for join verification in tests).
    pub fn annotation_row(&self, id: RelAnnotationId) -> Option<RowId> {
        let t = self.catalog.table("annotation")?;
        t.scan(&Predicate::eq("id", Value::Int(id.0 as i64))).into_iter().next()
    }
}

fn longest_chain(intervals: &[(u64, u64)], max_gap: u64) -> usize {
    if intervals.is_empty() {
        return 0;
    }
    let mut ivs: Vec<(u64, u64)> = intervals.to_vec();
    ivs.sort_by_key(|&(s, e)| (e, s));
    let mut best = 0;
    for start in 0..ivs.len() {
        let mut chain = 1;
        let mut last_end = ivs[start].1;
        for &(s, e) in ivs.iter().skip(start + 1) {
            if s >= last_end && s - last_end <= max_gap {
                chain += 1;
                last_end = e;
            }
        }
        best = best.max(chain);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> RelationalAnnotationStore {
        let mut s = RelationalAnnotationStore::new();
        // object 1: four consecutive protease intervals
        for i in 0..4u64 {
            let start = i * 100;
            s.insert(
                &format!("a{i}"),
                "contains protease motif",
                "gupta",
                &[(1, start, start + 50)],
                &[7],
            );
        }
        // object 2: one protease + one non-protease
        s.insert("b0", "protease here", "x", &[(2, 0, 50)], &[]);
        s.insert("b1", "nothing special", "x", &[(2, 100, 150)], &[]);
        s
    }

    #[test]
    fn counts() {
        let s = store();
        assert_eq!(s.annotation_count(), 6);
        assert_eq!(s.referent_count(), 6);
    }

    #[test]
    fn phrase_scan() {
        let s = store();
        assert_eq!(s.annotations_containing("protease").len(), 5);
        assert_eq!(s.annotations_containing("motif").len(), 4);
        assert!(s.annotations_containing("zzz").is_empty());
    }

    #[test]
    fn cites_term_scan() {
        let s = store();
        assert_eq!(s.annotations_citing(7).len(), 4);
        assert!(s.annotations_citing(99).is_empty());
    }

    #[test]
    fn consecutive_interval_join() {
        let s = store();
        // object 1 has 4 consecutive protease intervals
        assert_eq!(s.objects_with_consecutive_intervals("protease", 4, 60), vec![1]);
        // requiring 5 finds none
        assert!(s.objects_with_consecutive_intervals("protease", 5, 60).is_empty());
        // object 2 has only one protease interval
        assert_eq!(s.objects_with_consecutive_intervals("protease", 1, 60), vec![1, 2]);
    }

    #[test]
    fn optional_index_does_not_change_answers() {
        let mut s = store();
        let before = s.objects_with_consecutive_intervals("protease", 4, 60);
        s.index_referent_object();
        let after = s.objects_with_consecutive_intervals("protease", 4, 60);
        assert_eq!(before, after);
    }

    #[test]
    fn annotation_row_lookup() {
        let s = store();
        assert!(s.annotation_row(RelAnnotationId(0)).is_some());
        assert!(s.annotation_row(RelAnnotationId(999)).is_none());
    }

    #[test]
    fn transitive_related_via_shared_referents() {
        // a0 -- (obj1,0,10) -- a1 -- (obj1,20,30) -- a2 ; a3 is unrelated
        let mut s = RelationalAnnotationStore::new();
        let a0 = s.insert("a0", "c", "x", &[(1, 0, 10)], &[]);
        let a1 = s.insert("a1", "c", "x", &[(1, 0, 10), (1, 20, 30)], &[]);
        let a2 = s.insert("a2", "c", "x", &[(1, 20, 30)], &[]);
        let _a3 = s.insert("a3", "c", "x", &[(2, 0, 10)], &[]);
        assert_eq!(s.transitively_related(a0), vec![a1, a2]);
        assert_eq!(s.transitively_related(a2), vec![a0, a1]);
        // a3 relates to nobody
        assert!(s.transitively_related(_a3).is_empty());
    }
}
