//! graphitti-lint: repo-invariant static analysis for the Graphitti workspace.
//!
//! The workspace's correctness claims rest on manually maintained invariant
//! pairs: a mutation's declared `ComponentSet` must cover what it actually
//! dirties (else partial cache invalidation is unsound), every AST shape needs a
//! `Plan::read_footprint` rule and a `ReferenceExecutor` mirror, and the serving
//! path must not panic.  This crate lexes the workspace sources (comments,
//! strings and `#[cfg(test)]` items stripped or flagged) and runs six
//! token-stream rules over them — see [`rules`] for the catalog.
//!
//! ## Suppression contract
//!
//! A finding is suppressed only by an in-source annotation on the same line or
//! the line directly above:
//!
//! ```text
//! // lint: allow(<rule-id>) -- <reason>
//! ```
//!
//! The reason is mandatory (a reasonless allow is itself a finding), the rule id
//! must be real (`unknown-rule` otherwise), and an allow that suppresses nothing
//! is flagged `unused-allow` so stale annotations can't accumulate.

pub mod lexer;
pub mod rules;

use lexer::LexedFile;

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id (one of [`rules::RULES`] or a meta rule).
    pub rule: &'static str,
    /// Path the finding is in (as given to [`analyze_sources`]).
    pub path: String,
    /// 1-based line.
    pub line: u32,
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.path, self.line, self.rule, self.message)
    }
}

/// A lexed source file, path retained for the path-scoped rules.
pub struct SourceFile {
    pub path: String,
    pub lexed: LexedFile,
}

/// Meta rule: `lint: allow` without a `-- <reason>`.
pub const META_NO_REASON: &str = "allow-without-reason";
/// Meta rule: `lint: allow` naming a rule that does not exist.
pub const META_UNKNOWN_RULE: &str = "unknown-rule";
/// Meta rule: `lint: allow` that suppressed nothing.
pub const META_UNUSED: &str = "unused-allow";

/// Run every rule over `(path, source)` pairs, apply the suppression contract,
/// and return the surviving findings sorted by `(path, line, rule)`.
pub fn analyze_sources(sources: &[(String, String)]) -> Vec<Finding> {
    let files: Vec<SourceFile> = sources
        .iter()
        .map(|(path, text)| SourceFile { path: path.clone(), lexed: lexer::lex(text) })
        .collect();

    let mut raw: Vec<Finding> = Vec::new();
    raw.extend(rules::dirty_set_soundness(&files));
    raw.extend(rules::footprint_exhaustiveness(&files));
    raw.extend(rules::metrics_conservation(&files));
    for file in &files {
        raw.extend(rules::no_panic_serving(file));
        raw.extend(rules::lock_discipline(file));
        raw.extend(rules::shim_compat(file));
    }

    // Apply suppressions: an allow on line L covers findings of its rule on L
    // (trailing comment) and L+1 (annotation on its own line above the code).
    let mut used: Vec<Vec<bool>> =
        files.iter().map(|f| vec![false; f.lexed.suppressions.len()]).collect();
    let mut findings: Vec<Finding> = Vec::new();
    for finding in raw {
        let Some(fi) = files.iter().position(|f| f.path == finding.path) else {
            findings.push(finding);
            continue;
        };
        let suppressed = files[fi].lexed.suppressions.iter().position(|s| {
            s.rule == finding.rule && (s.line == finding.line || s.line + 1 == finding.line)
        });
        match suppressed {
            Some(si) => used[fi][si] = true,
            None => findings.push(finding),
        }
    }

    // Meta rules keep the annotations themselves honest (and are never
    // suppressible).
    for (fi, file) in files.iter().enumerate() {
        for (si, s) in file.lexed.suppressions.iter().enumerate() {
            if !rules::RULES.contains(&s.rule.as_str()) {
                findings.push(Finding {
                    rule: META_UNKNOWN_RULE,
                    path: file.path.clone(),
                    line: s.line,
                    message: format!("`lint: allow({})` names no known rule", s.rule),
                });
                continue;
            }
            if !s.has_reason {
                findings.push(Finding {
                    rule: META_NO_REASON,
                    path: file.path.clone(),
                    line: s.line,
                    message: format!(
                        "`lint: allow({})` needs a justification: `-- <reason>`",
                        s.rule
                    ),
                });
            }
            if !used[fi][si] {
                findings.push(Finding {
                    rule: META_UNUSED,
                    path: file.path.clone(),
                    line: s.line,
                    message: format!(
                        "`lint: allow({})` suppresses nothing — remove the stale annotation",
                        s.rule
                    ),
                });
            }
        }
    }

    findings
        .sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    findings
}
