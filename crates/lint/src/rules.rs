//! The six repo-invariant rules.
//!
//! Every rule works on the lexed token stream (comments/strings stripped,
//! `#[cfg(test)]` flagged) plus a little shared structure: function items and
//! balanced-delimiter matching.  The rules deliberately hardcode repo facts —
//! the `SystemView` field → `Component` map, the AST enum names, the serving-path
//! file list, the service lock names — and each hardcoded table has a staleness
//! guard that fires when the source grows past what the table knows.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

use crate::lexer::{CommentKind, Token, TokenKind};
use crate::{Finding, SourceFile};

pub const R1: &str = "dirty-set-soundness";
pub const R2: &str = "footprint-exhaustiveness";
pub const R3: &str = "no-panic-serving";
pub const R4: &str = "lock-discipline";
pub const R5: &str = "metrics-conservation";
pub const R6: &str = "shim-compat";

/// Every suppressible rule id.
pub const RULES: &[&str] = &[R1, R2, R3, R4, R5, R6];

// ---------------------------------------------------------------------------
// Shared token-stream structure
// ---------------------------------------------------------------------------

/// One `fn` item: name, parameter and body token ranges (file-token indices).
struct FnItem {
    name: String,
    line: u32,
    is_test: bool,
    /// `None` for bodiless declarations (trait methods).
    body: Option<(usize, usize)>,
}

/// Index of the token closing the delimiter opened at `open` (`(`/`[`/`{`), or
/// `tokens.len()` if unbalanced.
fn matching(tokens: &[Token], open: usize) -> usize {
    let (o, c) = match tokens[open].text.as_str() {
        "(" => ("(", ")"),
        "[" => ("[", "]"),
        "{" => ("{", "}"),
        _ => return tokens.len(),
    };
    let mut depth = 0usize;
    let mut i = open;
    while i < tokens.len() {
        if tokens[i].is(o) {
            depth += 1;
        } else if tokens[i].is(c) {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    tokens.len()
}

/// Extract every `fn` item (including ones nested in `#[cfg(test)]` modules,
/// flagged via `is_test`).
fn fn_items(tokens: &[Token]) -> Vec<FnItem> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i + 1 < tokens.len() {
        if !(tokens[i].is("fn") && tokens[i + 1].kind == TokenKind::Ident) {
            i += 1;
            continue;
        }
        let name = tokens[i + 1].text.clone();
        let line = tokens[i].line;
        let is_test = tokens[i].in_test;
        let mut j = i + 2;
        // Skip generic parameters between the name and the parameter list.
        if j < tokens.len() && tokens[j].is("<") {
            let mut angle = 0i32;
            while j < tokens.len() {
                match tokens[j].text.as_str() {
                    "<" => angle += 1,
                    "<<" => angle += 2,
                    ">" => angle -= 1,
                    ">>" => angle -= 2,
                    _ => {}
                }
                j += 1;
                if angle <= 0 {
                    break;
                }
            }
        }
        if j >= tokens.len() || !tokens[j].is("(") {
            i += 1;
            continue;
        }
        let close_p = matching(tokens, j);
        if close_p >= tokens.len() {
            break;
        }
        // Return type / where clause carry no braces; the first `{` is the body.
        let mut k = close_p + 1;
        while k < tokens.len() && !tokens[k].is("{") && !tokens[k].is(";") {
            k += 1;
        }
        let body = if k < tokens.len() && tokens[k].is("{") {
            let close_b = matching(tokens, k);
            Some((k + 1, close_b.min(tokens.len())))
        } else {
            None
        };
        out.push(FnItem { name, line, is_test, body });
        i = k + 1;
    }
    out
}

fn file_with_suffix<'a>(files: &'a [SourceFile], suffix: &str) -> Option<&'a SourceFile> {
    files.iter().find(|f| f.path.ends_with(suffix))
}

// ---------------------------------------------------------------------------
// R1 · dirty-set-soundness
// ---------------------------------------------------------------------------

/// `SystemView` field → `Component` variant.  `nodes` maps to `NodeMaps` (the one
/// name mismatch); `view` is the whole-view `Arc` inside `view_mut` itself, not a
/// component.
const FIELD_COMPONENTS: &[(&str, &str)] = &[
    ("catalog", "Catalog"),
    ("content", "Content"),
    ("intervals", "Intervals"),
    ("spatial", "Spatial"),
    ("ontology", "Ontology"),
    ("agraph", "Agraph"),
    ("objects", "Objects"),
    ("referents", "Referents"),
    ("annotations", "Annotations"),
    ("nodes", "NodeMaps"),
    ("object_referents", "ObjectReferents"),
    ("indexes", "Indexes"),
];

/// Fields that hold `Arc`s but are not components.
const FIELD_WHITELIST: &[&str] = &["view"];

const COMPONENTS: &[&str] = &[
    "Catalog",
    "Content",
    "Intervals",
    "Spatial",
    "Ontology",
    "Agraph",
    "Objects",
    "Referents",
    "Annotations",
    "NodeMaps",
    "ObjectReferents",
    "Indexes",
];

/// Collect `Component::X` mentions (known variants only) in a token range.
fn components_in(tokens: &[Token]) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let mut i = 0usize;
    while i + 2 < tokens.len() {
        if tokens[i].is("Component")
            && tokens[i + 1].is("::")
            && COMPONENTS.contains(&tokens[i + 2].text.as_str())
        {
            out.insert(tokens[i + 2].text.clone());
        }
        i += 1;
    }
    out
}

/// Every `(field, token-index)` of an `Arc::make_mut(&mut self.<field>)` in a range.
fn make_mut_fields(tokens: &[Token]) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i + 8 < tokens.len() {
        let pat = ["Arc", "::", "make_mut", "(", "&", "mut", "self", "."];
        if pat.iter().enumerate().all(|(k, p)| tokens[i + k].is(p))
            && tokens[i + 8].kind == TokenKind::Ident
        {
            out.push((tokens[i + 8].text.clone(), i + 8));
        }
        i += 1;
    }
    out
}

/// Rule R1: every `view_mut(dirty)` call's declared `ComponentSet` must cover every
/// component the invoked method (transitively, within the file) `Arc::make_mut`s.
pub fn dirty_set_soundness(files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for suffix in ["graphitti-core/src/system.rs", "graphitti-core/src/batch.rs"] {
        let Some(file) = file_with_suffix(files, suffix) else { continue };
        findings.extend(check_dirty_sets(file));
    }
    findings
}

fn check_dirty_sets(file: &SourceFile) -> Vec<Finding> {
    let tokens = &file.lexed.tokens;
    let mut findings = Vec::new();
    let fns = fn_items(tokens);
    let mut by_name: HashMap<&str, Vec<usize>> = HashMap::new();
    for (idx, f) in fns.iter().enumerate() {
        by_name.entry(f.name.as_str()).or_default().push(idx);
    }

    // Staleness guard A: every make_mut'd SystemView field must be in the map.
    for f in &fns {
        let Some((b0, b1)) = f.body else { continue };
        for (field, tok) in make_mut_fields(&tokens[b0..b1]) {
            let known = FIELD_COMPONENTS.iter().any(|(name, _)| *name == field)
                || FIELD_WHITELIST.contains(&field.as_str());
            if !known {
                findings.push(Finding {
                    rule: R1,
                    path: file.path.clone(),
                    line: tokens[b0 + tok].line,
                    message: format!(
                        "Arc::make_mut on unmapped SystemView field `{field}` — add it to the \
                         lint's field→Component map and to the dirty-set declarations"
                    ),
                });
            }
        }
    }
    // Staleness guard B: unknown `Component::X` variant mentions (outside tests).
    let mut i = 0usize;
    while i + 2 < tokens.len() {
        if tokens[i].is("Component") && tokens[i + 1].is("::") && !tokens[i].in_test {
            let name = tokens[i + 2].text.as_str();
            let camel = name.starts_with(|c: char| c.is_ascii_uppercase())
                && name.contains(|c: char| c.is_ascii_lowercase());
            if camel && !COMPONENTS.contains(&name) {
                findings.push(Finding {
                    rule: R1,
                    path: file.path.clone(),
                    line: tokens[i + 2].line,
                    message: format!(
                        "unknown Component variant `{name}` — update the lint's component table"
                    ),
                });
            }
        }
        i += 1;
    }

    // Per-fn direct make_mut components, then the transitive closure over the
    // file-local call graph (by name; same-name definitions union).
    let direct: Vec<BTreeSet<String>> = fns
        .iter()
        .map(|f| {
            let Some((b0, b1)) = f.body else { return BTreeSet::new() };
            make_mut_fields(&tokens[b0..b1])
                .into_iter()
                .filter_map(|(field, _)| {
                    FIELD_COMPONENTS
                        .iter()
                        .find(|(name, _)| *name == field)
                        .map(|(_, c)| (*c).to_string())
                })
                .collect()
        })
        .collect();
    let callees: Vec<BTreeSet<&str>> = fns
        .iter()
        .map(|f| {
            let mut out = BTreeSet::new();
            let Some((b0, b1)) = f.body else { return out };
            let body = &tokens[b0..b1];
            let mut j = 0usize;
            while j + 1 < body.len() {
                if body[j].kind == TokenKind::Ident
                    && body[j + 1].is("(")
                    && by_name.contains_key(body[j].text.as_str())
                {
                    let (name, _) = by_name.get_key_value(body[j].text.as_str()).unwrap();
                    out.insert(*name);
                }
                j += 1;
            }
            out
        })
        .collect();
    let closure = |entry: &str| -> BTreeSet<String> {
        let mut seen: HashSet<&str> = HashSet::new();
        let mut stack = vec![entry];
        let mut components = BTreeSet::new();
        while let Some(name) = stack.pop() {
            if !seen.insert(name) {
                continue;
            }
            for &idx in by_name.get(name).map(|v| v.as_slice()).unwrap_or(&[]) {
                components.extend(direct[idx].iter().cloned());
                stack.extend(callees[idx].iter().copied());
            }
        }
        components
    };

    // The view_mut call sites themselves.
    for f in &fns {
        if f.is_test || f.name == "view_mut" {
            continue;
        }
        let Some((b0, b1)) = f.body else { continue };
        let mut j = b0;
        while j + 1 < b1 {
            if !(tokens[j].is("view_mut") && tokens[j + 1].is("(")) {
                j += 1;
                continue;
            }
            let line = tokens[j].line;
            let open = j + 1;
            let close = matching(tokens, open);
            if close >= b1 {
                break;
            }
            let declared = declared_components(tokens, open + 1, close, (b0, b1), &fns, &by_name);
            let Some(declared) = declared else {
                findings.push(Finding {
                    rule: R1,
                    path: file.path.clone(),
                    line,
                    message: format!(
                        "`{}`: cannot statically resolve the ComponentSet passed to view_mut — \
                         use an inline `ComponentSet::of([...])`, a file-level const, or a local \
                         `let` bound to one",
                        f.name
                    ),
                });
                j = close + 1;
                continue;
            };
            // The method invoked on the returned view.
            if close + 2 >= b1 || !tokens[close + 1].is(".") {
                findings.push(Finding {
                    rule: R1,
                    path: file.path.clone(),
                    line,
                    message: format!(
                        "`{}`: view_mut's result must be consumed by a direct method call so the \
                         lint can trace which components the mutation touches",
                        f.name
                    ),
                });
                j = close + 1;
                continue;
            }
            let entry = tokens[close + 2].text.clone();
            if !by_name.contains_key(entry.as_str()) {
                findings.push(Finding {
                    rule: R1,
                    path: file.path.clone(),
                    line,
                    message: format!(
                        "`{}`: view_mut target method `{entry}` is not defined in this file — \
                         the lint cannot trace its component accesses",
                        f.name
                    ),
                });
                j = close + 1;
                continue;
            }
            let accessed = closure(&entry);
            let missing: Vec<&str> =
                accessed.iter().filter(|c| !declared.contains(*c)).map(|s| s.as_str()).collect();
            if !missing.is_empty() {
                findings.push(Finding {
                    rule: R1,
                    path: file.path.clone(),
                    line,
                    message: format!(
                        "`{}` declares dirty set {{{}}} but `{entry}` transitively \
                         Arc::make_muts {{{}}} — undeclared: {{{}}}",
                        f.name,
                        join(&declared),
                        join(&accessed),
                        missing.join(", ")
                    ),
                });
            }
            j = close + 1;
        }
    }
    findings
}

fn join(set: &BTreeSet<String>) -> String {
    set.iter().map(|s| s.as_str()).collect::<Vec<_>>().join(", ")
}

/// Resolve the `ComponentSet` expression in `tokens[start..end]` (the view_mut
/// argument): inline `Component::X` mentions, file-level consts, local `let`
/// bindings (whose right-hand side may call a file-local helper such as
/// `annotation_dirty`), and direct helper calls.  `None` when nothing resolves.
fn declared_components(
    tokens: &[Token],
    start: usize,
    end: usize,
    enclosing_body: (usize, usize),
    fns: &[FnItem],
    by_name: &HashMap<&str, Vec<usize>>,
) -> Option<BTreeSet<String>> {
    let mut declared = components_in(&tokens[start..end]);
    let expand_calls = |range: &[Token], declared: &mut BTreeSet<String>| {
        let mut j = 0usize;
        while j + 1 < range.len() {
            if range[j].kind == TokenKind::Ident && range[j + 1].is("(") {
                if let Some(idxs) = by_name.get(range[j].text.as_str()) {
                    for &idx in idxs {
                        if let Some((b0, b1)) = fns[idx].body {
                            declared.extend(components_in(&tokens[b0..b1]));
                        }
                    }
                }
            }
            j += 1;
        }
    };
    expand_calls(&tokens[start..end], &mut declared);
    // Bare identifiers: a file-level const or a local `let`.
    let mut j = start;
    while j < end {
        if tokens[j].kind == TokenKind::Ident && (j + 1 >= end || !tokens[j + 1].is("(")) {
            let name = tokens[j].text.as_str();
            if let Some(range) = const_init(tokens, name) {
                declared.extend(components_in(&tokens[range.0..range.1]));
            } else if let Some(range) = let_init(tokens, enclosing_body, name) {
                declared.extend(components_in(&tokens[range.0..range.1]));
                expand_calls(&tokens[range.0..range.1], &mut declared);
            }
        }
        j += 1;
    }
    if declared.is_empty() {
        None
    } else {
        Some(declared)
    }
}

/// Token range of `const NAME ... = <init>;`'s initializer, anywhere in the file.
fn const_init(tokens: &[Token], name: &str) -> Option<(usize, usize)> {
    let mut i = 0usize;
    while i + 1 < tokens.len() {
        if tokens[i].is("const") && tokens[i + 1].text == name {
            let mut j = i + 2;
            while j < tokens.len() && !tokens[j].is("=") {
                j += 1;
            }
            let start = j + 1;
            let mut k = start;
            while k < tokens.len() && !tokens[k].is(";") {
                k += 1;
            }
            return Some((start, k));
        }
        i += 1;
    }
    None
}

/// Token range of `let [mut] NAME = <init>;`'s initializer within a body.
fn let_init(tokens: &[Token], body: (usize, usize), name: &str) -> Option<(usize, usize)> {
    let mut i = body.0;
    while i + 2 < body.1 {
        if tokens[i].is("let") {
            let mut j = i + 1;
            if tokens[j].is("mut") {
                j += 1;
            }
            if tokens[j].text == name && j + 1 < body.1 && tokens[j + 1].is("=") {
                let start = j + 2;
                let mut k = start;
                while k < body.1 && !tokens[k].is(";") {
                    k += 1;
                }
                return Some((start, k));
            }
        }
        i += 1;
    }
    None
}

// ---------------------------------------------------------------------------
// R2 · footprint-exhaustiveness
// ---------------------------------------------------------------------------

/// The AST enums whose variants must be handled exhaustively downstream.
const AST_ENUMS: &[&str] =
    &["Target", "ContentFilter", "ReferentFilter", "OntologyFilter", "GraphConstraint"];

/// Parse `pub enum NAME { ... }` variant names out of a token stream.
fn enum_variants(tokens: &[Token], name: &str) -> Vec<String> {
    let mut i = 0usize;
    while i + 2 < tokens.len() {
        if tokens[i].is("enum") && tokens[i + 1].text == name && tokens[i + 2].is("{") {
            let close = matching(tokens, i + 2);
            let mut variants = Vec::new();
            let mut j = i + 3;
            while j < close {
                // Skip attributes on the variant.
                if tokens[j].is("#") && j + 1 < close && tokens[j + 1].is("[") {
                    j = matching(tokens, j + 1) + 1;
                    continue;
                }
                if tokens[j].kind == TokenKind::Ident {
                    variants.push(tokens[j].text.clone());
                    j += 1;
                    // Skip the variant's payload, then the separating comma.
                    if j < close && (tokens[j].is("(") || tokens[j].is("{")) {
                        j = matching(tokens, j) + 1;
                    }
                    if j < close && tokens[j].is("=") {
                        // Discriminant: skip to the comma.
                        while j < close && !tokens[j].is(",") {
                            j += 1;
                        }
                    }
                    if j < close && tokens[j].is(",") {
                        j += 1;
                    }
                    continue;
                }
                j += 1;
            }
            return variants;
        }
        i += 1;
    }
    Vec::new()
}

/// Rule R2: every AST variant must appear by name in `Plan::read_footprint`
/// (referent filters), in the `ReferenceExecutor`, and in the plan executor; and
/// no match over an AST enum in those files may hide variants behind `_`.
pub fn footprint_exhaustiveness(files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let Some(ast) = file_with_suffix(files, "graphitti-query/src/ast.rs") else {
        return findings;
    };
    let mut enums: Vec<(&str, Vec<String>)> = Vec::new();
    for name in AST_ENUMS {
        enums.push((name, enum_variants(&ast.lexed.tokens, name)));
    }

    // Requirement A: read_footprint names every ReferentFilter variant.
    if let Some(plan) = file_with_suffix(files, "graphitti-query/src/plan.rs") {
        let fns = fn_items(&plan.lexed.tokens);
        let rf: Vec<&FnItem> = fns.iter().filter(|f| f.name == "read_footprint").collect();
        let referent_variants =
            enums.iter().find(|(n, _)| *n == "ReferentFilter").map(|(_, v)| v.clone());
        if let Some(variants) = referent_variants {
            if rf.is_empty() && !variants.is_empty() {
                findings.push(Finding {
                    rule: R2,
                    path: plan.path.clone(),
                    line: 1,
                    message: "no `read_footprint` function found — the lint cannot check \
                              footprint exhaustiveness"
                        .to_string(),
                });
            }
            for v in &variants {
                let named = rf.iter().any(|f| {
                    f.body.is_some_and(|(b0, b1)| {
                        plan.lexed.tokens[b0..b1].iter().any(|t| t.text == *v)
                    })
                });
                if !named {
                    if let Some(f) = rf.first() {
                        findings.push(Finding {
                            rule: R2,
                            path: plan.path.clone(),
                            line: f.line,
                            message: format!(
                                "ReferentFilter::{v} has no arm in Plan::read_footprint — a \
                                 query using it would invalidate (and cache) unsoundly"
                            ),
                        });
                    }
                }
            }
        }
        findings.extend(wildcard_arms(plan, &enums));
    }

    // Requirement B: the reference executor and the plan executor each mention
    // every variant of every AST enum somewhere in a function body.
    for suffix in ["graphitti-query/src/reference.rs", "graphitti-query/src/exec.rs"] {
        let Some(file) = file_with_suffix(files, suffix) else { continue };
        let fns = fn_items(&file.lexed.tokens);
        for (enum_name, variants) in &enums {
            for v in variants {
                let named = fns.iter().any(|f| {
                    !f.is_test
                        && f.body.is_some_and(|(b0, b1)| {
                            file.lexed.tokens[b0..b1].iter().any(|t| t.text == *v)
                        })
                });
                if !named {
                    findings.push(Finding {
                        rule: R2,
                        path: file.path.clone(),
                        line: 1,
                        message: format!(
                            "{enum_name}::{v} is never handled by name in this executor — \
                             add an arm (wildcards don't count) or the variant silently \
                             falls through"
                        ),
                    });
                }
            }
        }
        findings.extend(wildcard_arms(file, &enums));
    }
    findings
}

/// Flag `_` arms in matches whose sibling patterns name an AST enum (outside tests).
fn wildcard_arms(file: &SourceFile, enums: &[(&str, Vec<String>)]) -> Vec<Finding> {
    let tokens = &file.lexed.tokens;
    let mut findings = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !(tokens[i].is("match") && tokens[i].kind == TokenKind::Ident && !tokens[i].in_test) {
            i += 1;
            continue;
        }
        // Scrutinee: up to the `{` at zero paren/bracket depth.
        let mut j = i + 1;
        let mut depth = 0i32;
        while j < tokens.len() {
            match tokens[j].text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
        if j >= tokens.len() {
            break;
        }
        let body_close = matching(tokens, j);
        // Split arms: pattern tokens up to `=>` at depth 1.
        let mut arm_patterns: Vec<(usize, usize)> = Vec::new();
        let mut k = j + 1;
        while k < body_close {
            let pat_start = k;
            let mut d = 0i32;
            while k < body_close {
                match tokens[k].text.as_str() {
                    "(" | "[" | "{" => d += 1,
                    ")" | "]" | "}" => d -= 1,
                    "=>" if d == 0 => break,
                    _ => {}
                }
                k += 1;
            }
            if k >= body_close {
                break;
            }
            arm_patterns.push((pat_start, k));
            // Skip the arm value: a block, or an expression up to `,` at depth 0.
            k += 1;
            if k < body_close && tokens[k].is("{") {
                k = matching(tokens, k) + 1;
            } else {
                let mut d = 0i32;
                while k < body_close {
                    match tokens[k].text.as_str() {
                        "(" | "[" | "{" => d += 1,
                        ")" | "]" | "}" => d -= 1,
                        "," if d == 0 => break,
                        _ => {}
                    }
                    k += 1;
                }
            }
            if k < body_close && tokens[k].is(",") {
                k += 1;
            }
        }
        let names_ast_enum = arm_patterns.iter().any(|&(s, e)| {
            let mut m = s;
            while m + 1 < e {
                if tokens[m + 1].is("::") && enums.iter().any(|(n, _)| tokens[m].text == **n) {
                    return true;
                }
                m += 1;
            }
            false
        });
        if names_ast_enum {
            for &(s, e) in &arm_patterns {
                if e - s == 1 && tokens[s].is("_") {
                    findings.push(Finding {
                        rule: R2,
                        path: file.path.clone(),
                        line: tokens[s].line,
                        message: "wildcard `_` arm in a match over an AST enum — a newly added \
                                  variant would silently fall through; spell the variants out"
                            .to_string(),
                    });
                }
            }
        }
        i = j + 1;
    }
    findings
}

// ---------------------------------------------------------------------------
// R3 · no-panic-serving
// ---------------------------------------------------------------------------

/// The serving path: code on these files must not panic.
const SERVING_FILES: &[&str] = &[
    "graphitti-query/src/exec.rs",
    "graphitti-query/src/service.rs",
    "graphitti-query/src/sharded.rs",
    "graphitti-query/src/resilience.rs",
    "graphitti-core/src/wal.rs",
    "graphitti-core/src/recovery.rs",
    "graphitti-net/src/protocol.rs",
    "graphitti-net/src/server.rs",
    "graphitti-net/src/client.rs",
];

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Keywords that can directly precede `[` without it being an indexing expression.
const NON_INDEX_PREV: &[&str] = &[
    "if", "else", "match", "return", "in", "mut", "ref", "move", "loop", "while", "for", "break",
    "continue", "as", "dyn", "impl", "where", "let", "static", "const", "crate", "pub", "use",
    "fn", "enum", "struct", "trait", "type", "mod", "unsafe", "await", "async", "box", "yield",
];

/// Rule R3: no `unwrap`/`expect`/panic macros/slice indexing in serving-path files
/// outside `#[cfg(test)]`.
pub fn no_panic_serving(file: &SourceFile) -> Vec<Finding> {
    if !SERVING_FILES.iter().any(|s| file.path.ends_with(s)) {
        return Vec::new();
    }
    let tokens = &file.lexed.tokens;
    let mut findings = Vec::new();
    let mut push = |line: u32, message: String| {
        findings.push(Finding { rule: R3, path: file.path.clone(), line, message });
    };
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].in_test {
            i += 1;
            continue;
        }
        let t = &tokens[i];
        if t.is(".")
            && i + 2 < tokens.len()
            && (tokens[i + 1].is("unwrap") || tokens[i + 1].is("expect"))
            && tokens[i + 2].is("(")
        {
            push(
                tokens[i + 1].line,
                format!(
                    "`.{}()` on the serving path — return a typed error instead, or annotate \
                     the invariant that makes it unreachable",
                    tokens[i + 1].text
                ),
            );
            i += 2;
            continue;
        }
        if t.kind == TokenKind::Ident
            && PANIC_MACROS.contains(&t.text.as_str())
            && i + 1 < tokens.len()
            && tokens[i + 1].is("!")
        {
            push(t.line, format!("`{}!` on the serving path", t.text));
            i += 2;
            continue;
        }
        if t.is("[") && i > 0 {
            let prev = &tokens[i - 1];
            let indexing = prev.is(")")
                || prev.is("]")
                || (prev.kind == TokenKind::Ident && !NON_INDEX_PREV.contains(&prev.text.as_str()));
            if indexing {
                push(
                    t.line,
                    "slice/array indexing on the serving path can panic — use `.get()` or \
                     annotate the bound that holds"
                        .to_string(),
                );
            }
        }
        i += 1;
    }
    findings
}

// ---------------------------------------------------------------------------
// R4 · lock-discipline
// ---------------------------------------------------------------------------

/// The named service locks whose nesting we track.
const LOCK_NAMES: &[&str] = &["queue", "cache", "snapshot", "cut", "wal", "handles", "slot"];

struct Acquisition {
    idx: usize,
    name: String,
    line: u32,
    /// Token index (within the body) past which the guard is dead.
    end: usize,
}

/// Rule R4: flag acquiring one named service lock while another's guard is live in
/// the same scope, and `thread::sleep` outside tests/benches.
pub fn lock_discipline(file: &SourceFile) -> Vec<Finding> {
    let relevant = file.path.contains("graphitti-query/src/")
        || file.path.contains("graphitti-core/src/")
        || file.path.contains("graphitti-net/src/");
    if !relevant {
        return Vec::new();
    }
    let tokens = &file.lexed.tokens;
    let mut findings = Vec::new();
    // thread::sleep in non-test code.
    let mut i = 0usize;
    while i + 2 < tokens.len() {
        if tokens[i].is("thread")
            && tokens[i + 1].is("::")
            && tokens[i + 2].is("sleep")
            && !tokens[i].in_test
        {
            findings.push(Finding {
                rule: R4,
                path: file.path.clone(),
                line: tokens[i].line,
                message: "`thread::sleep` in non-bench library code stalls a worker — use the \
                          condvar/deadline machinery, or annotate why a real sleep is required"
                    .to_string(),
            });
        }
        i += 1;
    }
    for f in fn_items(tokens) {
        if f.is_test {
            continue;
        }
        let Some((b0, b1)) = f.body else { continue };
        let body = &tokens[b0..b1];
        let acqs = acquisitions(body);
        for a in 0..acqs.len() {
            for b in &acqs[a + 1..] {
                let a = &acqs[a];
                if b.idx < a.end && b.name != a.name {
                    findings.push(Finding {
                        rule: R4,
                        path: file.path.clone(),
                        line: b.line,
                        message: format!(
                            "acquiring `{}` while the `{}` guard from line {} is live — nested \
                             service locks deadlock unless the order is documented",
                            b.name, a.name, a.line
                        ),
                    });
                }
            }
        }
    }
    findings
}

/// Every named-lock acquisition in a fn body, with a conservative guard lifetime.
fn acquisitions(body: &[Token]) -> Vec<Acquisition> {
    // Brace depth before each token.
    let mut depth = vec![0i32; body.len()];
    let mut d = 0i32;
    for (i, t) in body.iter().enumerate() {
        if t.is("}") {
            d -= 1;
        }
        depth[i] = d;
        if t.is("{") {
            d += 1;
        }
    }
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < body.len() {
        let acq = lock_acquisition_at(body, i);
        let Some(name) = acq else {
            i += 1;
            continue;
        };
        out.push(Acquisition { idx: i, name, line: body[i].line, end: guard_end(body, &depth, i) });
        i += 1;
    }
    out
}

/// If tokens at `i` start a named-lock acquisition, its lock name.
fn lock_acquisition_at(body: &[Token], i: usize) -> Option<String> {
    let t = &body[i];
    if t.kind != TokenKind::Ident {
        return None;
    }
    // `<name>.lock()` / `.read()` / `.write()`
    if LOCK_NAMES.contains(&t.text.as_str())
        && i + 3 < body.len()
        && body[i + 1].is(".")
        && (body[i + 2].is("lock") || body[i + 2].is("read") || body[i + 2].is("write"))
        && body[i + 3].is("(")
    {
        return Some(t.text.clone());
    }
    // `<name>_guard()` / `<name>_guard_mut()` helper calls.
    if i + 1 < body.len() && body[i + 1].is("(") {
        let stem = t.text.strip_suffix("_guard_mut").or_else(|| t.text.strip_suffix("_guard"));
        if let Some(stem) = stem {
            if LOCK_NAMES.contains(&stem) {
                return Some(stem.to_string());
            }
        }
    }
    None
}

/// First body index past which the guard acquired at `i` is dead.
fn guard_end(body: &[Token], depth: &[i32], i: usize) -> usize {
    let d = depth[i];
    // Statement context: scan back to the nearest `;` / `{` / `}`.
    let mut s = i;
    let mut binder: Option<String> = None;
    let mut cond = false;
    while s > 0 {
        let t = &body[s - 1];
        if t.is(";") || t.is("{") || t.is("}") {
            break;
        }
        match t.text.as_str() {
            "if" | "while" | "match" | "for" => cond = true,
            "let" => {
                let mut b = s; // token after `let`
                if b < body.len() && body[b].is("mut") {
                    b += 1;
                }
                if b < body.len() && body[b].kind == TokenKind::Ident {
                    binder = Some(body[b].text.clone());
                }
            }
            _ => {}
        }
        s -= 1;
    }
    if cond {
        // Guard lives through the block attached to the if/while/match.
        let mut k = i;
        while k < body.len() && !(body[k].is("{") && depth[k] == d) {
            k += 1;
        }
        if k < body.len() {
            let mut bd = 0i32;
            while k < body.len() {
                if body[k].is("{") {
                    bd += 1;
                } else if body[k].is("}") {
                    bd -= 1;
                    if bd == 0 {
                        return k;
                    }
                }
                k += 1;
            }
        }
        return body.len();
    }
    if let Some(binder) = binder {
        // Let-bound guard: lives until its scope closes or an explicit drop.
        let mut k = i + 1;
        while k < body.len() {
            if depth[k] < d {
                return k;
            }
            if body[k].is("drop")
                && k + 2 < body.len()
                && body[k + 1].is("(")
                && body[k + 2].text == binder
            {
                return k;
            }
            k += 1;
        }
        return body.len();
    }
    // Temporary guard: dead at the end of the statement.
    let mut k = i + 1;
    while k < body.len() {
        if body[k].is(";") && depth[k] == d {
            return k;
        }
        if depth[k] < d {
            return k;
        }
        k += 1;
    }
    body.len()
}

// ---------------------------------------------------------------------------
// R5 · metrics-conservation
// ---------------------------------------------------------------------------

const CONSERVED: &[&str] = &["submitted", "completed", "shed", "failed"];

/// Rule R5: any counter updated alongside submission accounting (in a fn that also
/// bumps submitted/completed/shed/failed) must be referenced from at least one
/// conservation assertion site (a test asserting `shed + completed + failed ==
/// submitted`), so new outcome counters can't silently leak submissions.
pub fn metrics_conservation(files: &[SourceFile]) -> Vec<Finding> {
    let mut accounting: BTreeMap<String, (String, u32)> = BTreeMap::new();
    for suffix in [
        "graphitti-query/src/service.rs",
        "graphitti-query/src/sharded.rs",
        "graphitti-net/src/server.rs",
    ] {
        let Some(file) = file_with_suffix(files, suffix) else { continue };
        for f in fn_items(&file.lexed.tokens) {
            if f.is_test {
                continue;
            }
            let Some((b0, b1)) = f.body else { continue };
            let counters = fetch_add_counters(&file.lexed.tokens[b0..b1]);
            if !counters.iter().any(|(c, _)| CONSERVED.contains(&c.as_str())) {
                continue;
            }
            for (c, line) in counters {
                accounting.entry(c).or_insert((file.path.clone(), line));
            }
        }
    }
    if accounting.is_empty() {
        return Vec::new();
    }
    // Conservation sites: test fns anywhere asserting the sum identity.
    let mut site_idents: Vec<HashSet<String>> = Vec::new();
    for file in files {
        for f in fn_items(&file.lexed.tokens) {
            let Some((b0, b1)) = f.body else { continue };
            let in_test_file = file.path.contains("/tests/");
            if !(f.is_test || in_test_file) {
                continue;
            }
            let body = &file.lexed.tokens[b0..b1];
            if is_conservation_site(body) {
                site_idents.push(body.iter().map(|t| t.text.clone()).collect());
            }
        }
    }
    let mut findings = Vec::new();
    if site_idents.is_empty() {
        let (path, line) = accounting.values().next().cloned().unwrap_or_default();
        findings.push(Finding {
            rule: R5,
            path,
            line,
            message: "submission accounting exists but no conservation assertion site \
                      (`shed + completed + failed == submitted`) was found in any test"
                .to_string(),
        });
        return findings;
    }
    for (counter, (path, line)) in accounting {
        let referenced = site_idents.iter().any(|s| s.contains(&counter));
        if !referenced {
            findings.push(Finding {
                rule: R5,
                path,
                line,
                message: format!(
                    "counter `{counter}` is updated alongside submission accounting but no \
                     conservation assertion site references it — extend the \
                     shed+completed+failed==submitted checks"
                ),
            });
        }
    }
    findings
}

/// `(counter, line)` for every `<counter>.fetch_add(...)` in a range.
fn fetch_add_counters(body: &[Token]) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i + 2 < body.len() {
        if body[i].kind == TokenKind::Ident && body[i + 1].is(".") && body[i + 2].is("fetch_add") {
            out.push((body[i].text.clone(), body[i].line));
        }
        i += 1;
    }
    out
}

/// A ~30-token window naming all four conserved counters with at least two `+`s.
fn is_conservation_site(body: &[Token]) -> bool {
    let n = body.len();
    for start in 0..n {
        let window = &body[start..(start + 30).min(n)];
        let has = |s: &str| window.iter().any(|t| t.text == s);
        if has("shed")
            && has("completed")
            && has("failed")
            && has("submitted")
            && window.iter().filter(|t| t.is("+")).count() >= 2
        {
            return true;
        }
    }
    false
}

// ---------------------------------------------------------------------------
// R6 · shim-compat
// ---------------------------------------------------------------------------

/// Rule R6: inside `proptest!` bodies, forbid doc comments (the shim's macro
/// parser chokes on `///`) and inclusive-range strategies in parameter position
/// (the shim only implements half-open sampling).
pub fn shim_compat(file: &SourceFile) -> Vec<Finding> {
    let tokens = &file.lexed.tokens;
    let mut findings = Vec::new();
    let mut i = 0usize;
    while i + 2 < tokens.len() {
        if !(tokens[i].is("proptest") && tokens[i + 1].is("!") && tokens[i + 2].is("{")) {
            i += 1;
            continue;
        }
        let open = i + 2;
        let close = matching(tokens, open);
        let (start_line, end_line) = (tokens[open].line, tokens[close.min(tokens.len() - 1)].line);
        for c in &file.lexed.comments {
            if c.kind == CommentKind::Doc && c.line >= start_line && c.line <= end_line {
                findings.push(Finding {
                    rule: R6,
                    path: file.path.clone(),
                    line: c.line,
                    message: "doc comment inside a `proptest!` body breaks the proptest shim's \
                              macro parser — use `//`"
                        .to_string(),
                });
            }
        }
        // Inclusive ranges in strategy position: inside fn parameter lists.
        let mut j = open + 1;
        while j + 2 < close {
            if tokens[j].is("fn") && tokens[j + 1].kind == TokenKind::Ident {
                let mut p = j + 2;
                while p < close && !tokens[p].is("(") {
                    p += 1;
                }
                if p < close {
                    let close_p = matching(tokens, p);
                    let mut q = p;
                    while q < close_p {
                        if tokens[q].is("..=") {
                            findings.push(Finding {
                                rule: R6,
                                path: file.path.clone(),
                                line: tokens[q].line,
                                message: "inclusive range strategy in a `proptest!` parameter — \
                                          the shim only samples half-open ranges; use `a..b+1`"
                                    .to_string(),
                            });
                        }
                        q += 1;
                    }
                    j = close_p;
                }
            }
            j += 1;
        }
        i = close + 1;
    }
    findings
}
