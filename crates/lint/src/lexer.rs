//! A small Rust-source lexer: comments, strings and char literals are stripped
//! into side tables, `#[cfg(test)]` items are flagged rather than dropped, and the
//! remaining token stream keeps line numbers so findings point at real code.
//!
//! This is deliberately not a full Rust lexer — it only has to be exact about the
//! features the rules read: identifier/punct streams, the handful of multi-char
//! operators the rules match on (`::`, `..=`, `=>`, …), and where comments sit
//! relative to code (for the `// lint: allow(<rule>) -- <reason>` suppression
//! contract).

/// What a token is, as far as the rules care.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident,
    /// Integer or float literal.
    Number,
    /// Operator / delimiter (possibly multi-char: `::`, `..=`, `=>`, …).
    Punct,
    /// String / byte-string literal (contents dropped).
    Str,
    /// Char literal or lifetime (contents dropped).
    Char,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokenKind,
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// Whether the token sits inside a `#[cfg(test)]`-gated item.
    pub in_test: bool,
}

impl Token {
    pub fn is(&self, text: &str) -> bool {
        self.text == text
    }
}

/// What kind of comment a [`Comment`] record is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommentKind {
    /// `//` (incl. the `// lint:` suppression carrier).
    Line,
    /// `///` or `//!` — shim-hostile inside `proptest!` bodies (R6).
    Doc,
    /// `/* … */`.
    Block,
}

/// One comment, preserved for the rules that read comments (R6, suppressions).
#[derive(Debug, Clone)]
pub struct Comment {
    pub kind: CommentKind,
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
}

/// One parsed `// lint: allow(<rule>) -- <reason>` annotation.
#[derive(Debug, Clone)]
pub struct Suppression {
    pub rule: String,
    /// 1-based line the annotation sits on.  It suppresses findings on this line
    /// and on the next line (trailing and directly-above placements).
    pub line: u32,
    pub has_reason: bool,
}

/// A fully lexed source file.
#[derive(Debug)]
pub struct LexedFile {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
    pub suppressions: Vec<Suppression>,
}

/// Multi-char operators, longest first (maximal munch).
const PUNCTS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "..", "==", "!=", "<=", ">=", "&&", "||", "+=",
    "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>",
];

/// Lex `source` into tokens + comments + suppressions.
pub fn lex(source: &str) -> LexedFile {
    let bytes = source.as_bytes();
    let mut tokens: Vec<Token> = Vec::new();
    let mut comments: Vec<Comment> = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comments (and their doc variants).
        if c == '/' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
            let start = i;
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            let text = &source[start..i];
            let kind = if text.starts_with("///") || text.starts_with("//!") {
                CommentKind::Doc
            } else {
                CommentKind::Line
            };
            comments.push(Comment { kind, text: text.to_string(), line });
            continue;
        }
        // Block comments (nested).
        if c == '/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
            let start = i;
            let start_line = line;
            let mut depth = 0usize;
            while i < bytes.len() {
                if bytes[i] == b'\n' {
                    line += 1;
                    i += 1;
                } else if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
                    depth += 1;
                    i += 2;
                } else if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                    depth -= 1;
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    i += 1;
                }
            }
            comments.push(Comment {
                kind: CommentKind::Block,
                text: source[start..i].to_string(),
                line: start_line,
            });
            continue;
        }
        // Raw / byte string literals: r"…", r#"…"#, b"…", br#"…"#.
        if let Some((len, newlines)) = raw_string_len(&source[i..]) {
            tokens.push(Token { kind: TokenKind::Str, text: String::new(), line, in_test: false });
            line += newlines;
            i += len;
            continue;
        }
        // Plain string literals (and b"…" handled above; b'…' below).
        if c == '"' {
            let (len, newlines) = quoted_len(&source[i..], '"');
            tokens.push(Token { kind: TokenKind::Str, text: String::new(), line, in_test: false });
            line += newlines;
            i += len;
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            if is_lifetime(&source[i..]) {
                // Consume the quote + identifier; emit nothing (rules ignore lifetimes).
                i += 1;
                while i < bytes.len() && is_ident_char(bytes[i] as char) {
                    i += 1;
                }
            } else {
                let (len, newlines) = quoted_len(&source[i..], '\'');
                tokens.push(Token {
                    kind: TokenKind::Char,
                    text: String::new(),
                    line,
                    in_test: false,
                });
                line += newlines;
                i += len;
            }
            continue;
        }
        // Identifiers / keywords.
        if is_ident_start(c) {
            let start = i;
            while i < bytes.len() && is_ident_char(bytes[i] as char) {
                i += 1;
            }
            let text = &source[start..i];
            // `b'x'` / `b"…"` prefixes reach here only when not already consumed as
            // raw strings; treat a lone `b` followed by a quote as the literal prefix.
            if (text == "b" || text == "r" || text == "br")
                && i < bytes.len()
                && (bytes[i] == b'"' || bytes[i] == b'\'')
            {
                let quote = bytes[i] as char;
                let (len, newlines) = quoted_len(&source[i..], quote);
                tokens.push(Token {
                    kind: TokenKind::Str,
                    text: String::new(),
                    line,
                    in_test: false,
                });
                line += newlines;
                i += len;
                continue;
            }
            tokens.push(Token {
                kind: TokenKind::Ident,
                text: text.to_string(),
                line,
                in_test: false,
            });
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() {
            let start = i;
            while i < bytes.len() && (is_ident_char(bytes[i] as char)) {
                i += 1;
            }
            // A float's fractional part: `.` followed by a digit (but `0..9` is a
            // range — the second `.` must not be consumed).
            if i + 1 < bytes.len()
                && bytes[i] == b'.'
                && bytes[i + 1].is_ascii_digit()
                && !(i + 1 < bytes.len() && bytes[i + 1] == b'.')
            {
                i += 1;
                while i < bytes.len() && is_ident_char(bytes[i] as char) {
                    i += 1;
                }
            }
            tokens.push(Token {
                kind: TokenKind::Number,
                text: source[start..i].to_string(),
                line,
                in_test: false,
            });
            continue;
        }
        // Multi-char then single-char puncts.
        let rest = &source[i..];
        if let Some(p) = PUNCTS.iter().find(|p| rest.starts_with(**p)) {
            tokens.push(Token {
                kind: TokenKind::Punct,
                text: (*p).to_string(),
                line,
                in_test: false,
            });
            i += p.len();
            continue;
        }
        tokens.push(Token { kind: TokenKind::Punct, text: c.to_string(), line, in_test: false });
        i += c.len_utf8();
    }
    mark_cfg_test(&mut tokens);
    let suppressions = parse_suppressions(&comments);
    LexedFile { tokens, comments, suppressions }
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// `'a` lifetime vs `'a'` char literal: a lifetime is a quote + ident chars with no
/// closing quote right after the identifier.
fn is_lifetime(s: &str) -> bool {
    let b = s.as_bytes();
    if b.len() < 2 || !is_ident_start(b[1] as char) {
        return false;
    }
    let mut j = 1;
    while j < b.len() && is_ident_char(b[j] as char) {
        j += 1;
    }
    !(j < b.len() && b[j] == b'\'')
}

/// Length (and newline count) of a raw/byte-raw string starting at `s`, if any.
fn raw_string_len(s: &str) -> Option<(usize, u32)> {
    let after_prefix = s.strip_prefix("br").or_else(|| s.strip_prefix('r'));
    let (prefix_len, rest) = match after_prefix {
        Some(rest) if s.starts_with("br") => (2, rest),
        Some(rest) => (1, rest),
        None => return None,
    };
    let hashes = rest.bytes().take_while(|&b| b == b'#').count();
    let rest = &rest[hashes..];
    if !rest.starts_with('"') {
        return None;
    }
    let closer = format!("\"{}", "#".repeat(hashes));
    let body = &rest[1..];
    let end = body.find(&closer)?;
    let total = prefix_len + hashes + 1 + end + closer.len();
    let newlines = s[..total].bytes().filter(|&b| b == b'\n').count() as u32;
    Some((total, newlines))
}

/// Length (and newline count) of a quoted literal starting at `s[0] == quote`,
/// honouring backslash escapes.
fn quoted_len(s: &str, quote: char) -> (usize, u32) {
    let bytes = s.as_bytes();
    let mut j = 1usize;
    let mut newlines = 0u32;
    while j < bytes.len() {
        match bytes[j] {
            b'\\' => j += 2,
            b'\n' => {
                newlines += 1;
                j += 1;
            }
            b if b == quote as u8 => return (j + 1, newlines),
            _ => j += 1,
        }
    }
    (bytes.len(), newlines)
}

/// Mark every token inside a `#[cfg(test)]`-gated item (or `#[test]` fn) with
/// `in_test`.  The item is the next `{ … }` block (or, for semicolon items like
/// `#[cfg(test)] use …;`, up to the `;`).
fn mark_cfg_test(tokens: &mut [Token]) {
    let mut i = 0usize;
    while i < tokens.len() {
        if let Some(attr_end) = cfg_test_attr_end(tokens, i) {
            // Find the gated item's extent: scan past any further attributes, then
            // either a `;` (semicolon item) or the matching `}` of the first `{`.
            let mut j = attr_end;
            let mut end = None;
            let mut depth = 0usize;
            while j < tokens.len() {
                match tokens[j].text.as_str() {
                    ";" if depth == 0 => {
                        end = Some(j + 1);
                        break;
                    }
                    "{" => depth += 1,
                    "}" => {
                        depth -= 1;
                        if depth == 0 {
                            end = Some(j + 1);
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            let end = end.unwrap_or(tokens.len());
            for t in &mut tokens[i..end] {
                t.in_test = true;
            }
            i = end;
        } else {
            i += 1;
        }
    }
}

/// If a `#[cfg(test)]`-style attribute (or `#[test]`) starts at `i`, return the
/// index just past its closing `]`.
fn cfg_test_attr_end(tokens: &[Token], i: usize) -> Option<usize> {
    if !tokens[i].is("#") || i + 1 >= tokens.len() || !tokens[i + 1].is("[") {
        return None;
    }
    // Balanced scan to the matching `]`; `#[cfg(test)]`, `#[cfg(any(test, …))]`
    // and bare `#[test]` all reduce to: the attribute mentions `test`.
    let mut depth = 0usize;
    let mut saw_test = false;
    let mut j = i + 1;
    while j < tokens.len() {
        match tokens[j].text.as_str() {
            "[" | "(" => depth += 1,
            "]" | ")" => {
                depth -= 1;
                if depth == 0 {
                    return if saw_test { Some(j + 1) } else { None };
                }
            }
            "test" => saw_test = true,
            _ => {}
        }
        j += 1;
    }
    None
}

/// Parse `// lint: allow(<rule>)[ -- <reason>]` annotations out of line comments.
fn parse_suppressions(comments: &[Comment]) -> Vec<Suppression> {
    let mut out = Vec::new();
    for c in comments {
        if c.kind != CommentKind::Line {
            continue;
        }
        let body = c.text.trim_start_matches('/').trim();
        let Some(rest) = body.strip_prefix("lint:") else { continue };
        let rest = rest.trim();
        let Some(rest) = rest.strip_prefix("allow(") else { continue };
        let Some(close) = rest.find(')') else { continue };
        let rule = rest[..close].trim().to_string();
        let tail = rest[close + 1..].trim();
        let has_reason = tail.strip_prefix("--").map(|r| !r.trim().is_empty()).unwrap_or(false);
        out.push(Suppression { rule, line: c.line, has_reason });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_carry_lines_and_multichar_puncts() {
        let lexed = lex("fn f() {\n  let x = 0..=10;\n}\n");
        let texts: Vec<&str> = lexed.tokens.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, ["fn", "f", "(", ")", "{", "let", "x", "=", "0", "..=", "10", ";", "}"]);
        assert_eq!(lexed.tokens[7].line, 2);
    }

    #[test]
    fn strings_chars_lifetimes_and_comments_are_stripped() {
        let src = "impl<'a> X<'a> { fn f(&'a self) -> char { /* c */ 'x' } } // tail\n";
        let lexed = lex(src);
        assert!(lexed.tokens.iter().all(|t| t.kind != TokenKind::Ident || t.text != "c"));
        assert_eq!(lexed.comments.len(), 2);
        let s = lex("let s = \"a // not a comment [i]\"; s.len()");
        assert_eq!(s.comments.len(), 0);
        assert_eq!(s.tokens.iter().filter(|t| t.kind == TokenKind::Str).count(), 1);
    }

    #[test]
    fn cfg_test_items_are_flagged() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap(); }\n}\n";
        let lexed = lex(src);
        let unwrap = lexed.tokens.iter().find(|t| t.is("unwrap")).unwrap();
        assert!(unwrap.in_test);
        let live = lexed.tokens.iter().find(|t| t.is("live")).unwrap();
        assert!(!live.in_test);
    }

    #[test]
    fn suppressions_parse_with_and_without_reasons() {
        let src =
            "// lint: allow(no-panic-serving) -- checked above\n// lint: allow(lock-discipline)\n";
        let lexed = lex(src);
        assert_eq!(lexed.suppressions.len(), 2);
        assert!(lexed.suppressions[0].has_reason);
        assert_eq!(lexed.suppressions[0].rule, "no-panic-serving");
        assert!(!lexed.suppressions[1].has_reason);
    }

    #[test]
    fn raw_strings_and_doc_comments() {
        let lexed = lex("/// doc\nlet r = r#\"raw \"x\" body\"#;\n");
        assert_eq!(lexed.comments[0].kind, CommentKind::Doc);
        assert_eq!(lexed.tokens.iter().filter(|t| t.kind == TokenKind::Str).count(), 1);
    }
}
