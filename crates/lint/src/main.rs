//! CLI: scan the workspace sources and fail on any unsuppressed finding.
//!
//! Usage: `cargo run -p graphitti-lint --release [workspace-root]` (defaults to
//! the current directory).  Exit code 1 on findings, 2 on I/O problems.

use std::fs;
use std::path::{Path, PathBuf};

/// Directory names never scanned: shim crates (theirs, not ours to lint), the
/// lint crate itself (its fixtures are seeded violations), bench harnesses, and
/// build output.
const SKIP_DIRS: &[&str] = &["shims", "lint", "fixtures", "target", "bench", "benches"];

fn main() {
    let root = std::env::args().nth(1).map(PathBuf::from).unwrap_or_else(|| PathBuf::from("."));
    let crates = root.join("crates");
    if !crates.is_dir() {
        eprintln!("graphitti-lint: no crates/ directory under {}", root.display());
        std::process::exit(2);
    }
    let mut paths: Vec<PathBuf> = Vec::new();
    collect(&crates, &mut paths);
    paths.sort();
    let mut sources: Vec<(String, String)> = Vec::with_capacity(paths.len());
    for path in &paths {
        match fs::read_to_string(path) {
            Ok(text) => sources.push((relative(path, &root), text)),
            Err(err) => {
                eprintln!("graphitti-lint: cannot read {}: {err}", path.display());
                std::process::exit(2);
            }
        }
    }
    let findings = graphitti_lint::analyze_sources(&sources);
    if findings.is_empty() {
        println!("graphitti-lint: {} files scanned, no findings", sources.len());
        return;
    }
    for finding in &findings {
        println!("{finding}");
    }
    eprintln!("graphitti-lint: {} finding(s)", findings.len());
    std::process::exit(1);
}

/// Recursively collect `.rs` files, skipping [`SKIP_DIRS`].
fn collect(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_str()) {
                collect(&path, out);
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

fn relative(path: &Path, root: &Path) -> String {
    path.strip_prefix(root).unwrap_or(path).to_string_lossy().replace('\\', "/")
}
