//! R4 fixture: the same nesting, with the lock order documented.

impl Inner {
    fn publish(&self) {
        let snap = self.snapshot.write();
        // lint: allow(lock-discipline) -- fixture: snapshot-then-cache order, single site
        let entries = self.cache.lock();
        drop(entries);
        drop(snap);
    }
}
