//! R2 fixture plan: the missing arm is suppressed with a reason.

impl Plan {
    // lint: allow(footprint-exhaustiveness) -- fixture: ByKind is routed elsewhere
    pub fn read_footprint(filter: &ReferentFilter) -> ComponentSet {
        match filter {
            ReferentFilter::ByObject(_) => ComponentSet::of([Component::Referents]),
        }
    }
}
