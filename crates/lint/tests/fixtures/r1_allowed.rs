//! R1 fixture: same undeclared copy, carrying a reasoned suppression.

use std::sync::Arc;

impl Graphitti {
    fn touch_content(&mut self) {
        Arc::make_mut(&mut self.content).push(1);
    }

    pub fn rewrite_content(&mut self) {
        // lint: allow(dirty-set-soundness) -- fixture: the Content copy is deliberate here
        self.view_mut(ComponentSet::of([Component::Catalog])).touch_content();
    }
}
