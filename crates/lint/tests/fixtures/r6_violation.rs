//! R6 fixture: shim-hostile constructs inside a `proptest!` body.

proptest! {
    /// Doc comments break the shim's macro parser.
    #[test]
    fn prop_roundtrip(a in 0..10u32, b in 0..=5u32) {
        let _ = (a, b);
    }
}
