//! R2 fixture plan: `read_footprint` forgets `ReferentFilter::ByKind`.

impl Plan {
    pub fn read_footprint(filter: &ReferentFilter) -> ComponentSet {
        match filter {
            ReferentFilter::ByObject(_) => ComponentSet::of([Component::Referents]),
        }
    }
}
