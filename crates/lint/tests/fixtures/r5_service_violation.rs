//! R5 fixture: a counter bumped beside submission accounting but absent from
//! every conservation assertion site.

impl Metrics {
    pub fn record(&self) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
        self.timeouts.fetch_add(1, Ordering::Relaxed);
    }
}
