//! R5 fixture: a conservation assertion site naming the four conserved counters.

#[test]
fn conservation_holds() {
    let (shed, completed, failed, submitted) = totals();
    assert_eq!(shed + completed + failed, submitted);
}
