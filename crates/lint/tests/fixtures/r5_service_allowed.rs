//! R5 fixture: the uncovered counter carries a reasoned suppression.

impl Metrics {
    pub fn record(&self) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
        // lint: allow(metrics-conservation) -- fixture: timeouts double-counts into failed
        self.timeouts.fetch_add(1, Ordering::Relaxed);
    }
}
