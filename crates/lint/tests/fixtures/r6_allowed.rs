//! R6 fixture: the same constructs, each carrying a reasoned suppression.

proptest! {
    // lint: allow(shim-compat) -- fixture: documenting the shim hazard itself
    /// Doc comments break the shim's macro parser.
    #[test]
    // lint: allow(shim-compat) -- fixture: the inclusive range is the subject under test
    fn prop_roundtrip(a in 0..10u32, b in 0..=5u32) {
        let _ = (a, b);
    }
}
