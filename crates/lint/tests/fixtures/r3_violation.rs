//! R3 fixture: an `unwrap` on the serving path.

pub fn serve(result: Option<u32>) -> u32 {
    result.unwrap()
}
