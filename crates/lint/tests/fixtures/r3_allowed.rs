//! R3 fixture: the same `unwrap`, with its invariant annotated.

pub fn serve(result: Option<u32>) -> u32 {
    // lint: allow(no-panic-serving) -- fixture: the caller just checked is_some
    result.unwrap()
}
