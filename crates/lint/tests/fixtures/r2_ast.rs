//! R2 fixture AST: two referent filter variants for the plan to cover.

pub enum ReferentFilter {
    ByObject(u32),
    ByKind(u16),
}
