//! R4 fixture: nesting one named service lock inside another's live guard.

impl Inner {
    fn publish(&self) {
        let snap = self.snapshot.write();
        let entries = self.cache.lock();
        drop(entries);
        drop(snap);
    }
}
