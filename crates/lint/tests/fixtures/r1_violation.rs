//! R1 fixture: the declared dirty set misses a component the mutation copies.

use std::sync::Arc;

impl Graphitti {
    fn touch_content(&mut self) {
        Arc::make_mut(&mut self.content).push(1);
    }

    pub fn rewrite_content(&mut self) {
        self.view_mut(ComponentSet::of([Component::Catalog])).touch_content();
    }
}
