//! Fixture-based rule tests.
//!
//! For every rule the same triple is pinned: the violation fixture fires, the
//! reasoned `// lint: allow(<rule>) -- <reason>` twin is clean, and stripping
//! the reasons off that twin trips the `allow-without-reason` meta rule (the
//! suppression still applies, but the annotation itself becomes a finding).
//!
//! Fixtures live in `tests/fixtures/` and are lexed, never compiled; each is
//! analyzed under a synthetic repo path chosen to engage its rule's path scope.

use graphitti_lint::rules;
use graphitti_lint::{analyze_sources, Finding, META_NO_REASON, META_UNUSED};

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{}", env!("CARGO_MANIFEST_DIR"), name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

fn run(sources: &[(&str, String)]) -> Vec<Finding> {
    let owned: Vec<(String, String)> =
        sources.iter().map(|(p, s)| (p.to_string(), s.clone())).collect();
    analyze_sources(&owned)
}

/// Turn every `// lint: allow(rule) -- reason` into a reasonless `allow(rule)`.
fn strip_reasons(source: &str) -> String {
    source
        .lines()
        .map(|l| match (l.contains("lint: allow("), l.find(" -- ")) {
            (true, Some(cut)) => &l[..cut],
            _ => l,
        })
        .collect::<Vec<_>>()
        .join("\n")
}

fn assert_fires(findings: &[Finding], rule: &str) {
    assert!(
        findings.iter().any(|f| f.rule == rule),
        "expected a [{rule}] finding, got: {findings:?}"
    );
}

fn assert_clean(findings: &[Finding]) {
    assert!(findings.is_empty(), "expected no findings, got: {findings:?}");
}

fn assert_reason_required(findings: &[Finding]) {
    assert!(
        findings.iter().any(|f| f.rule == META_NO_REASON),
        "expected an [{META_NO_REASON}] finding, got: {findings:?}"
    );
}

// --- R1 · dirty-set-soundness -----------------------------------------------

const SYSTEM: &str = "crates/graphitti-core/src/system.rs";

#[test]
fn r1_violation_fires() {
    assert_fires(&run(&[(SYSTEM, fixture("r1_violation.rs"))]), rules::R1);
}

#[test]
fn r1_reasoned_allow_suppresses() {
    assert_clean(&run(&[(SYSTEM, fixture("r1_allowed.rs"))]));
}

#[test]
fn r1_reasonless_allow_fails() {
    assert_reason_required(&run(&[(SYSTEM, strip_reasons(&fixture("r1_allowed.rs")))]));
}

// --- R2 · footprint-exhaustiveness ------------------------------------------

const AST: &str = "crates/graphitti-query/src/ast.rs";
const PLAN: &str = "crates/graphitti-query/src/plan.rs";

#[test]
fn r2_violation_fires() {
    let findings = run(&[(AST, fixture("r2_ast.rs")), (PLAN, fixture("r2_plan_violation.rs"))]);
    assert_fires(&findings, rules::R2);
}

#[test]
fn r2_reasoned_allow_suppresses() {
    assert_clean(&run(&[(AST, fixture("r2_ast.rs")), (PLAN, fixture("r2_plan_allowed.rs"))]));
}

#[test]
fn r2_reasonless_allow_fails() {
    let findings =
        run(&[(AST, fixture("r2_ast.rs")), (PLAN, strip_reasons(&fixture("r2_plan_allowed.rs")))]);
    assert_reason_required(&findings);
}

// --- R3 · no-panic-serving ---------------------------------------------------

const SERVICE: &str = "crates/graphitti-query/src/service.rs";

#[test]
fn r3_violation_fires() {
    assert_fires(&run(&[(SERVICE, fixture("r3_violation.rs"))]), rules::R3);
}

#[test]
fn r3_reasoned_allow_suppresses() {
    assert_clean(&run(&[(SERVICE, fixture("r3_allowed.rs"))]));
}

#[test]
fn r3_reasonless_allow_fails() {
    assert_reason_required(&run(&[(SERVICE, strip_reasons(&fixture("r3_allowed.rs")))]));
}

// --- R4 · lock-discipline ----------------------------------------------------

#[test]
fn r4_violation_fires() {
    assert_fires(&run(&[(SERVICE, fixture("r4_violation.rs"))]), rules::R4);
}

#[test]
fn r4_reasoned_allow_suppresses() {
    assert_clean(&run(&[(SERVICE, fixture("r4_allowed.rs"))]));
}

#[test]
fn r4_reasonless_allow_fails() {
    assert_reason_required(&run(&[(SERVICE, strip_reasons(&fixture("r4_allowed.rs")))]));
}

// --- R5 · metrics-conservation ----------------------------------------------

const METRICS_TEST: &str = "crates/graphitti-query/tests/metrics.rs";

#[test]
fn r5_violation_fires() {
    let findings = run(&[
        (SERVICE, fixture("r5_service_violation.rs")),
        (METRICS_TEST, fixture("r5_conservation.rs")),
    ]);
    assert_fires(&findings, rules::R5);
}

#[test]
fn r5_reasoned_allow_suppresses() {
    let findings = run(&[
        (SERVICE, fixture("r5_service_allowed.rs")),
        (METRICS_TEST, fixture("r5_conservation.rs")),
    ]);
    assert_clean(&findings);
}

#[test]
fn r5_reasonless_allow_fails() {
    let findings = run(&[
        (SERVICE, strip_reasons(&fixture("r5_service_allowed.rs"))),
        (METRICS_TEST, fixture("r5_conservation.rs")),
    ]);
    assert_reason_required(&findings);
}

// --- R6 · shim-compat --------------------------------------------------------

const PROPS: &str = "crates/graphitti-query/tests/props.rs";

#[test]
fn r6_violation_fires() {
    assert_fires(&run(&[(PROPS, fixture("r6_violation.rs"))]), rules::R6);
}

#[test]
fn r6_reasoned_allow_suppresses() {
    assert_clean(&run(&[(PROPS, fixture("r6_allowed.rs"))]));
}

#[test]
fn r6_reasonless_allow_fails() {
    assert_reason_required(&run(&[(PROPS, strip_reasons(&fixture("r6_allowed.rs")))]));
}

// --- Meta: stale allows ------------------------------------------------------

#[test]
fn stale_allow_is_flagged() {
    let source = "// lint: allow(no-panic-serving) -- nothing here panics\nfn fine() {}\n";
    let findings = run(&[(SERVICE, source.to_string())]);
    assert!(
        findings.iter().any(|f| f.rule == META_UNUSED),
        "expected an [{META_UNUSED}] finding, got: {findings:?}"
    );
}
