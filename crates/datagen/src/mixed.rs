//! The interleaved read/write workload: a populated base system plus a deterministic
//! stream of write batches to apply **while queries are being served**.
//!
//! The paper's annotation workload is read-dominated but never read-only — curators
//! keep registering objects and attaching annotations while queries run.  The other
//! generators in this crate build static systems; this one additionally pre-draws a
//! reproducible stream of [`WriteOp`]s, grouped into batches sized for
//! [`CommitBatch`](graphitti_core::CommitBatch), so a bench can replay writer traffic
//! (batch → publish → next batch) against a live query service and measure publish
//! stalls and sustained write throughput.  Everything is seeded: the same config
//! yields the same base system, the same write stream and the same read phrases.
//!
//! Batches are **homogeneous by curation session** ([`BatchKind`]), which makes their
//! dirty sets — and therefore their cache-eviction footprints — deliberately
//! disjoint: an *ingest* batch registers objects (touching no component a content or
//! ontology query reads), an *ontology* batch defines vocabulary terms (touching only
//! the ontology store), and an *annotation* batch attaches annotations (touching the
//! components every query footprint reads).  A service with per-footprint cache
//! invalidation keeps all entries across ingest batches and all non-ontology entries
//! across ontology batches; only annotation batches clear it.

use graphitti_core::{
    CommitBatch, DataType, Graphitti, Marker, ObjectId, ShardedBatch, ShardedSystem,
};
use ontology::ConceptId;

use crate::influenza::{self, InfluenzaConfig};
use crate::rng::WorkloadRng;

/// Configuration for the mixed read/write workload.
#[derive(Debug, Clone)]
pub struct MixedConfig {
    /// RNG seed (base system and write stream).
    pub seed: u64,
    /// The base (pre-populated) system the readers query and the writer grows.
    pub base: InfluenzaConfig,
    /// Number of write batches in the stream.
    pub batches: usize,
    /// Writes per batch (each batch is one `CommitBatch` + one publish).
    pub writes_per_batch: usize,
    /// Probability that a streamed annotation's comment matches the read mix's
    /// "protease" phrase (so writes keep perturbing what readers ask for).
    pub protease_prob: f64,
    /// Probability that a batch is a *registration* batch (a curator ingest session
    /// that only registers new sequence objects) rather than an *annotation* batch.
    /// Registration batches leave the annotation-content store untouched, which is
    /// exactly the case where per-component copy-on-write beats a whole-view copy —
    /// and where per-footprint cache invalidation evicts nothing.
    pub register_batch_prob: f64,
    /// Probability that a non-registration batch is an *ontology curation* batch
    /// (defining new vocabulary terms): its dirty set is the ontology store alone, so
    /// it evicts only ontology-footprint cache entries.
    pub ontology_batch_prob: f64,
}

impl Default for MixedConfig {
    fn default() -> Self {
        MixedConfig {
            seed: 0x313D,
            base: InfluenzaConfig::default(),
            batches: 50,
            writes_per_batch: 20,
            protease_prob: 0.3,
            register_batch_prob: 0.6,
            ontology_batch_prob: 0.25,
        }
    }
}

impl MixedConfig {
    /// A small configuration useful for tests and `--quick` smoke runs.
    pub fn small() -> Self {
        MixedConfig {
            seed: 3,
            base: InfluenzaConfig::small(),
            batches: 6,
            writes_per_batch: 5,
            protease_prob: 0.4,
            register_batch_prob: 0.5,
            ontology_batch_prob: 0.25,
        }
    }
}

/// The curation-session kind of one (homogeneous) write batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchKind {
    /// Registers new objects — dirty set disjoint from every query footprint.
    Ingest,
    /// Defines new ontology terms — dirty set is the ontology store alone.
    Ontology,
    /// Attaches annotations — dirties the components every query footprint reads.
    Annotation,
}

/// Classify a (homogeneous) batch by its first op.
pub fn batch_kind(ops: &[WriteOp]) -> BatchKind {
    match ops.first() {
        Some(WriteOp::Register { .. }) => BatchKind::Ingest,
        Some(WriteOp::DefineTerm { .. }) => BatchKind::Ontology,
        _ => BatchKind::Annotation,
    }
}

/// One streamed write: enough data to apply it to the live system.
///
/// The stream mirrors the paper's curation traffic — curators keep *registering*
/// objects and *attaching annotations* while queries are served — so both mutation
/// kinds appear, grouped into homogeneous batches (an ingest session registers, an
/// annotation session annotates).
#[derive(Debug, Clone)]
pub enum WriteOp {
    /// Register a new 1-D sequence object.
    Register {
        /// Object name.
        name: String,
        /// Sequence data type.
        data_type: DataType,
        /// Sequence length.
        length: u64,
        /// Coordinate domain the sequence lives in.
        domain: String,
    },
    /// Attach an interval annotation to an existing (base-system) sequence object.
    Annotate {
        /// The sequence object the annotation marks.
        object: ObjectId,
        /// Interval start.
        start: u64,
        /// Interval length.
        len: u64,
        /// The comment body.
        comment: String,
        /// The annotation creator.
        creator: &'static str,
    },
    /// Define a new ontology concept (vocabulary curation).
    DefineTerm {
        /// The concept name (unique within the stream).
        name: String,
    },
}

impl WriteOp {
    /// Apply this op inside a write batch, returning whether the write succeeded.
    pub fn apply(&self, batch: &mut CommitBatch<'_>) -> bool {
        match self {
            WriteOp::Register { name, data_type, length, domain } => {
                batch.register_sequence(name.clone(), *data_type, *length, domain.clone());
                true
            }
            WriteOp::Annotate { object, start, len, comment, creator } => batch
                .annotate()
                .comment(comment.clone())
                .creator(*creator)
                .mark(*object, Marker::interval(*start, *start + *len))
                .commit()
                .is_ok(),
            WriteOp::DefineTerm { name } => {
                batch.ontology_mut().add_concept(name.clone());
                true
            }
        }
    }

    /// Apply this op inside a **sharded** write batch (same semantics as
    /// [`apply`](Self::apply): registrations broadcast to every shard, annotations
    /// route to the target object's hash shard, term definitions broadcast to every
    /// shard's replicated ontology).  The streamed object ids are global, so the
    /// very same op stream drives a [`ShardedSystem`] and its unsharded oracle.
    pub fn apply_sharded(&self, batch: &mut ShardedBatch<'_>) -> bool {
        match self {
            WriteOp::Register { name, data_type, length, domain } => {
                batch.register_sequence(name.clone(), *data_type, *length, domain.clone());
                true
            }
            WriteOp::Annotate { object, start, len, comment, creator } => batch
                .annotate()
                .comment(comment.clone())
                .creator(*creator)
                .mark(*object, Marker::interval(*start, *start + *len))
                .commit()
                .is_ok(),
            WriteOp::DefineTerm { name } => {
                let name = name.clone();
                batch.ontology_edit(move |o| {
                    o.add_concept(name.clone());
                });
                true
            }
        }
    }

    /// Whether this op registers a new object.
    pub fn is_register(&self) -> bool {
        matches!(self, WriteOp::Register { .. })
    }

    /// Whether this op defines an ontology term.
    pub fn is_define_term(&self) -> bool {
        matches!(self, WriteOp::DefineTerm { .. })
    }
}

/// The mixed workload: a populated system, the batched write stream, and the phrases
/// the read mix should query for.
pub struct MixedWorkload {
    /// The base system (writer mutates it, readers query published snapshots of it).
    pub system: Graphitti,
    /// The write stream, pre-grouped into batches.
    pub write_batches: Vec<Vec<WriteOp>>,
    /// Phrases guaranteed to appear in both base and streamed annotations, for the
    /// read mix.
    pub read_phrases: Vec<&'static str>,
    /// A concept cited by base-system annotations, for an ontology-footprint read
    /// query in the mix (the entry only ontology / annotation batches can evict).
    pub read_term: Option<ConceptId>,
}

impl MixedWorkload {
    /// Total writes across the stream.
    pub fn total_writes(&self) -> usize {
        self.write_batches.iter().map(Vec::len).sum()
    }

    /// Apply every batch immediately (no interleaving) — the serial baseline used by
    /// correctness tests to compute the final expected state.
    pub fn apply_all(system: &mut Graphitti, batches: &[Vec<WriteOp>]) -> usize {
        let mut applied = 0;
        for ops in batches {
            let mut batch = system.batch();
            for op in ops {
                if op.apply(&mut batch) {
                    applied += 1;
                }
            }
            batch.commit();
        }
        applied
    }
}

/// The shard-aware mixed workload: the same base corpus and write stream as
/// [`build`], materialised as an N-shard [`ShardedSystem`] **and** its unsharded
/// oracle.  Both are replayed from one study snapshot of the base (identical global
/// ids and a-graph node ids by construction), so a bench or test can drive the
/// sharded system with the stream while gating every served answer byte-for-byte
/// against the oracle.
pub struct ShardedMixedWorkload {
    /// The N-shard system the writer mutates and the sharded service serves.
    pub sharded: ShardedSystem,
    /// The equivalent unsharded system (apply the same batches to keep it in step).
    pub oracle: Graphitti,
    /// The write stream, pre-grouped into batches (identical to the unsharded
    /// workload's for the same config).
    pub write_batches: Vec<Vec<WriteOp>>,
    /// Phrases guaranteed to appear in both base and streamed annotations.
    pub read_phrases: Vec<&'static str>,
    /// A concept cited by base-system annotations (ontology-footprint read query).
    pub read_term: Option<ConceptId>,
}

impl ShardedMixedWorkload {
    /// Apply every batch to both the sharded system and the oracle (one logical
    /// batch each per stream batch), returning the applied-op count.
    pub fn apply_all(&mut self) -> usize {
        let mut applied = 0;
        for ops in &self.write_batches {
            let mut sb = self.sharded.batch();
            for op in ops {
                applied += usize::from(op.apply_sharded(&mut sb));
            }
            sb.commit();
            let mut ob = self.oracle.batch();
            for op in ops {
                op.apply(&mut ob);
            }
            ob.commit();
        }
        applied
    }
}

/// Build the shard-aware mixed workload (see [`ShardedMixedWorkload`]).
pub fn build_sharded(config: &MixedConfig, shards: usize) -> ShardedMixedWorkload {
    let base = build(config);
    let study = base.system.study_snapshot();
    let oracle = Graphitti::from_study_snapshot(&study).expect("oracle replay");
    let sharded = ShardedSystem::from_study_snapshot(&study, shards).expect("sharded replay");
    ShardedMixedWorkload {
        sharded,
        oracle,
        write_batches: base.write_batches,
        read_phrases: base.read_phrases,
        read_term: base.read_term,
    }
}

/// Build the mixed workload: an Influenza base system plus a deterministic write
/// stream targeting its linear sequence objects.
pub fn build(config: &MixedConfig) -> MixedWorkload {
    let system = influenza::build(&config.base);
    let mut rng = WorkloadRng::new(config.seed ^ 0x9D1A);

    // Writers annotate the base system's linear sequences (those always accept
    // interval markers).
    let targets: Vec<ObjectId> =
        [DataType::DnaSequence, DataType::RnaSequence, DataType::ProteinSequence]
            .iter()
            .flat_map(|&ty| system.object_ids_of_type(ty).iter().copied())
            .collect();
    assert!(!targets.is_empty(), "mixed workload needs sequence objects in the base");

    let creators = ["stream-a", "stream-b", "stream-c"];
    let seq_types = [DataType::DnaSequence, DataType::RnaSequence, DataType::ProteinSequence];
    let segments = config.base.segments.max(1);
    let write_batches = (0..config.batches)
        .map(|b| {
            // Batch 0 is always an annotation batch and its first op always carries
            // the protease phrase (below), so the read phrases are guaranteed to
            // match streamed content regardless of seed.
            let kind = if b == 0 {
                BatchKind::Annotation
            } else if rng.chance(config.register_batch_prob) {
                BatchKind::Ingest
            } else if rng.chance(config.ontology_batch_prob) {
                BatchKind::Ontology
            } else {
                BatchKind::Annotation
            };
            (0..config.writes_per_batch)
                .map(|i| match kind {
                    BatchKind::Ingest => WriteOp::Register {
                        name: format!("streamed-seq-{b}-{i}"),
                        data_type: *rng.choose(&seq_types),
                        length: rng.range_u64(900, 2400),
                        domain: format!("segment-{}", rng.range_u64(0, segments as u64)),
                    },
                    BatchKind::Ontology => {
                        WriteOp::DefineTerm { name: format!("streamed-term-{b}-{i}") }
                    }
                    BatchKind::Annotation => {
                        let object = *rng.choose(&targets);
                        let start = rng.range_u64(0, 800);
                        let len = rng.range_u64(10, 60);
                        let comment = if rng.chance(config.protease_prob) || (b == 0 && i == 0) {
                            format!("streamed protease cleavage observation {b}-{i}")
                        } else {
                            format!("streamed neutral note {b}-{i}")
                        };
                        let creator: &'static str = rng.choose::<&str>(&creators);
                        WriteOp::Annotate { object, start, len, comment, creator }
                    }
                })
                .collect()
        })
        .collect();

    let read_term = system.ontology().concept_by_name("Protease");
    MixedWorkload {
        system,
        write_batches,
        read_phrases: vec!["protease", "streamed protease"],
        read_term,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_deterministically() {
        let cfg = MixedConfig::small();
        let a = build(&cfg);
        let b = build(&cfg);
        assert_eq!(a.system.annotation_count(), b.system.annotation_count());
        assert_eq!(a.total_writes(), b.total_writes());
        assert_eq!(a.write_batches.len(), cfg.batches);
        assert!(a.write_batches.iter().all(|ops| ops.len() == cfg.writes_per_batch));
        let describe = |op: &WriteOp| match op {
            WriteOp::Register { name, .. } => name.clone(),
            WriteOp::Annotate { comment, .. } => comment.clone(),
            WriteOp::DefineTerm { name } => name.clone(),
        };
        let flat_a: Vec<String> = a.write_batches.iter().flatten().map(describe).collect();
        let flat_b: Vec<String> = b.write_batches.iter().flatten().map(describe).collect();
        assert_eq!(flat_a, flat_b);
    }

    #[test]
    fn stream_mixes_all_three_batch_kinds() {
        let w = build(&MixedConfig::default());
        // Batches are homogeneous curation sessions — an ingest session registers, a
        // vocabulary session defines terms, an annotation session annotates — and the
        // default stream contains every kind.
        let mut by_kind = [0usize; 3];
        for ops in &w.write_batches {
            let kind = batch_kind(ops);
            for op in ops {
                assert_eq!(batch_kind(std::slice::from_ref(op)), kind, "batch mixes kinds");
            }
            by_kind[match kind {
                BatchKind::Ingest => 0,
                BatchKind::Ontology => 1,
                BatchKind::Annotation => 2,
            }] += 1;
        }
        assert!(by_kind.iter().all(|&n| n > 0), "missing a batch kind: {by_kind:?}");
        assert_eq!(batch_kind(&w.write_batches[0]), BatchKind::Annotation, "batch 0 must annotate");
        match &w.write_batches[0][0] {
            WriteOp::Annotate { comment, .. } => {
                assert!(comment.contains("streamed protease"), "eager phrase anchor missing")
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn read_term_is_cited_by_the_base_system() {
        let w = build(&MixedConfig::small());
        let term = w.read_term.expect("influenza base defines the Protease concept");
        assert_eq!(w.system.ontology().concept_by_name("Protease"), Some(term));
    }

    #[test]
    fn stream_applies_cleanly_one_epoch_per_batch() {
        let cfg = MixedConfig::small();
        let mut w = build(&cfg);
        let registers = w.write_batches.iter().flatten().filter(|op| op.is_register()).count();
        let defines = w.write_batches.iter().flatten().filter(|op| op.is_define_term()).count();
        let before_annotations = w.system.annotation_count();
        let before_objects = w.system.object_count();
        let before_concepts = w.system.ontology().concept_count();
        let before_epoch = w.system.epoch();
        let applied = MixedWorkload::apply_all(&mut w.system, &w.write_batches);
        assert_eq!(applied, cfg.batches * cfg.writes_per_batch, "all ops must commit");
        assert_eq!(w.system.object_count(), before_objects + registers);
        assert_eq!(w.system.ontology().concept_count(), before_concepts + defines);
        assert_eq!(w.system.annotation_count(), before_annotations + applied - registers - defines);
        assert_eq!(w.system.epoch(), before_epoch + cfg.batches as u64);
        assert!(w.system.verify_integrity().is_empty());
    }

    #[test]
    fn sharded_workload_stays_in_lockstep_with_its_oracle() {
        for shards in [1, 3] {
            let mut w = build_sharded(&MixedConfig::small(), shards);
            assert_eq!(w.sharded.annotation_count(), w.oracle.annotation_count());
            let applied = w.apply_all();
            assert_eq!(applied, w.write_batches.iter().map(Vec::len).sum::<usize>());
            assert_eq!(w.sharded.object_count(), w.oracle.object_count());
            assert_eq!(w.sharded.annotation_count(), w.oracle.annotation_count());
            assert_eq!(w.sharded.referent_count(), w.oracle.referent_count());
            assert_eq!(w.sharded.ontology().concept_count(), w.oracle.ontology().concept_count());
            assert_eq!(w.sharded.agraph().node_count(), w.oracle.agraph().node_count());
            assert_eq!(w.sharded.agraph().edge_count(), w.oracle.agraph().edge_count());
            assert!(w.sharded.verify_integrity().is_empty(), "{:?}", w.sharded.verify_integrity());
        }
    }

    #[test]
    fn streamed_writes_are_findable_by_the_read_phrases() {
        let cfg = MixedConfig::small();
        let mut w = build(&cfg);
        MixedWorkload::apply_all(&mut w.system, &w.write_batches);
        for phrase in &w.read_phrases {
            assert!(
                !w.system.content_store().containing_phrase(phrase).is_empty(),
                "phrase {phrase:?} found nothing"
            );
        }
    }
}
