//! A unified heterogeneous workload spanning both studies in one system.
//!
//! This is the scenario the paper's introduction motivates: "DNA sequences, molecular
//! interaction graphs, 3D models of proteins, images showing expressions of a protein,
//! would all get annotated … sometimes an annotation will depict a newly discovered
//! correlation between two different pieces of data." The generator registers influenza
//! sequences and neuroscience images into one [`Graphitti`] and creates **cross-type**
//! annotations that mark a sequence interval *and* an image region together, exercising
//! the a-graph's heterogeneous linking.

use graphitti_core::{DataType, Graphitti, Marker, ObjectId};
use ontology::ConceptId;

use crate::ontology_gen;
use crate::rng::WorkloadRng;

/// Configuration for the unified workload.
#[derive(Debug, Clone)]
pub struct UnifiedConfig {
    /// RNG seed.
    pub seed: u64,
    /// Number of sequences.
    pub sequences: usize,
    /// Number of images.
    pub images: usize,
    /// Single-type annotations per study.
    pub annotations: usize,
    /// Cross-type (sequence↔image correlation) annotations.
    pub cross_annotations: usize,
}

impl Default for UnifiedConfig {
    fn default() -> Self {
        UnifiedConfig {
            seed: 0xC0FFEE,
            sequences: 40,
            images: 40,
            annotations: 200,
            cross_annotations: 40,
        }
    }
}

impl UnifiedConfig {
    /// A small config for tests.
    pub fn small() -> Self {
        UnifiedConfig { seed: 3, sequences: 6, images: 6, annotations: 30, cross_annotations: 6 }
    }
}

/// A unified workload: a populated system plus the objects and the correlation concept.
pub struct UnifiedWorkload {
    /// The populated system.
    pub system: Graphitti,
    /// Sequence objects.
    pub sequences: Vec<ObjectId>,
    /// Image objects.
    pub images: Vec<ObjectId>,
    /// The ontology concept used to tag cross-type correlations.
    pub correlation_concept: ConceptId,
}

/// Build the unified workload.
pub fn build(config: &UnifiedConfig) -> UnifiedWorkload {
    let mut sys = Graphitti::new();
    let mut rng = WorkloadRng::new(config.seed);

    // Ontology combining anatomy + a "Correlation" marker concept.
    let (onto, _concepts) = ontology_gen::neuro_anatomy();
    *sys.ontology_mut() = onto;
    let correlation = sys.ontology_mut().add_concept("CrossModalCorrelation");

    let sequences: Vec<ObjectId> = (0..config.sequences)
        .map(|i| {
            sys.register_sequence(
                format!("protein-seq-{i}"),
                DataType::ProteinSequence,
                rng.range_u64(300, 1500),
                format!("chr{}", i % 4),
            )
        })
        .collect();

    let images: Vec<ObjectId> = (0..config.images)
        .map(|i| {
            sys.register_image(
                format!("expression-image-{i}"),
                1000,
                1000,
                "confocal",
                "mouse-brain-cs",
            )
        })
        .collect();

    // Single-type annotations.
    for a in 0..config.annotations {
        if rng.chance(0.5) && !sequences.is_empty() {
            let seq = *rng.choose(&sequences);
            let start = rng.range_u64(0, 250);
            let _ = sys
                .annotate()
                .title(format!("seq-ann-{a}"))
                .comment("protein domain of interest")
                .creator("bencher")
                .mark(seq, Marker::interval(start, start + 40))
                .commit();
        } else if !images.is_empty() {
            let img = *rng.choose(&images);
            let x = rng.range_f64(0.0, 900.0);
            let _ = sys
                .annotate()
                .title(format!("img-ann-{a}"))
                .comment("elevated protein expression region")
                .creator("bencher")
                .mark(img, Marker::region(x, x, x + 50.0, x + 50.0))
                .commit();
        }
    }

    // Cross-type correlation annotations: one annotation links a sequence interval and an
    // image region, citing the correlation concept — the heterogeneous a-graph edge.
    for a in 0..config.cross_annotations {
        if sequences.is_empty() || images.is_empty() {
            break;
        }
        let seq = *rng.choose(&sequences);
        let img = *rng.choose(&images);
        let start = rng.range_u64(0, 250);
        let x = rng.range_f64(0.0, 900.0);
        let _ = sys
            .annotate()
            .title(format!("correlation-{a}"))
            .comment("sequence motif correlates with the expression pattern in this region")
            .creator("gupta")
            .mark(seq, Marker::interval(start, start + 30))
            .mark(img, Marker::region(x, x, x + 40.0, x + 40.0))
            .cite_term(correlation)
            .commit();
    }

    UnifiedWorkload { system: sys, sequences, images, correlation_concept: correlation }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_heterogeneous_system() {
        let w = build(&UnifiedConfig::small());
        assert_eq!(w.sequences.len(), 6);
        assert_eq!(w.images.len(), 6);
        // both index families are populated
        let (intervals, spatial) = w.system.index_structure_count();
        assert!(intervals > 0 && spatial > 0);
    }

    #[test]
    fn cross_annotations_link_two_types() {
        let mut cfg = UnifiedConfig::small();
        cfg.cross_annotations = 10;
        cfg.annotations = 0;
        let w = build(&cfg);
        // a correlation annotation has referents on two different object types
        let cross =
            w.system.annotations().iter().find(|a| a.terms.contains(&w.correlation_concept));
        assert!(cross.is_some());
        let ann = cross.unwrap();
        let types: Vec<DataType> = ann
            .referents
            .iter()
            .filter_map(|&r| w.system.referent(r))
            .filter_map(|r| w.system.object(r.object))
            .map(|o| o.data_type)
            .collect();
        assert!(types.contains(&DataType::ProteinSequence));
        assert!(types.contains(&DataType::Image));
    }

    #[test]
    fn deterministic() {
        let a = build(&UnifiedConfig::small());
        let b = build(&UnifiedConfig::small());
        assert_eq!(a.system.annotation_count(), b.system.annotation_count());
        assert_eq!(a.system.referent_count(), b.system.referent_count());
    }
}
