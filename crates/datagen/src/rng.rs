//! A tiny seeded RNG wrapper used by the generators.
//!
//! We use `rand`'s `SmallRng` seeded from a `u64` so that every workload is fully
//! reproducible from its seed — important for benchmarks and for regression tests that
//! assert on generated structure.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A deterministic RNG for workload generation.
#[derive(Debug, Clone)]
pub struct WorkloadRng {
    inner: SmallRng,
}

impl WorkloadRng {
    /// Create an RNG from a seed.
    pub fn new(seed: u64) -> Self {
        WorkloadRng { inner: SmallRng::seed_from_u64(seed) }
    }

    /// A uniform integer in `[low, high)`.
    pub fn range_u64(&mut self, low: u64, high: u64) -> u64 {
        if high <= low {
            return low;
        }
        self.inner.gen_range(low..high)
    }

    /// A uniform integer in `[low, high)`.
    pub fn range_usize(&mut self, low: usize, high: usize) -> usize {
        if high <= low {
            return low;
        }
        self.inner.gen_range(low..high)
    }

    /// A uniform float in `[low, high)`.
    pub fn range_f64(&mut self, low: f64, high: f64) -> f64 {
        if high <= low {
            return low;
        }
        self.inner.gen_range(low..high)
    }

    /// A boolean true with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.inner.gen_bool(p.clamp(0.0, 1.0))
    }

    /// Pick one element index of a slice of length `len` (must be > 0).
    pub fn pick(&mut self, len: usize) -> usize {
        self.range_usize(0, len)
    }

    /// Choose a random element from a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        let i = self.pick(items.len());
        &items[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = WorkloadRng::new(42);
        let mut b = WorkloadRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.range_u64(0, 1000), b.range_u64(0, 1000));
        }
    }

    #[test]
    fn ranges_are_bounded() {
        let mut r = WorkloadRng::new(1);
        for _ in 0..1000 {
            let v = r.range_u64(10, 20);
            assert!((10..20).contains(&v));
            let f = r.range_f64(0.0, 1.0);
            assert!((0.0..1.0).contains(&f));
            let u = r.range_usize(5, 6);
            assert_eq!(u, 5);
        }
    }

    #[test]
    fn degenerate_ranges() {
        let mut r = WorkloadRng::new(7);
        assert_eq!(r.range_u64(5, 5), 5);
        assert_eq!(r.range_u64(9, 2), 9);
        assert_eq!(r.range_f64(1.0, 1.0), 1.0);
    }

    #[test]
    fn choose_and_pick() {
        let mut r = WorkloadRng::new(3);
        let items = [10, 20, 30];
        for _ in 0..50 {
            assert!(items.contains(r.choose(&items)));
            assert!(r.pick(3) < 3);
        }
    }
}
