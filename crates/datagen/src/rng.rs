//! A tiny seeded RNG used by the generators.
//!
//! The workspace builds offline, so instead of `rand` this is a self-contained
//! splitmix64 generator. Every workload is fully reproducible from its seed —
//! important for benchmarks and for regression tests that assert on generated
//! structure.

/// A deterministic RNG for workload generation.
#[derive(Debug, Clone)]
pub struct WorkloadRng {
    state: u64,
}

impl WorkloadRng {
    /// Create an RNG from a seed.
    pub fn new(seed: u64) -> Self {
        WorkloadRng { state: seed ^ 0x9e37_79b9_7f4a_7c15 }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform integer in `[low, high)`.
    pub fn range_u64(&mut self, low: u64, high: u64) -> u64 {
        if high <= low {
            return low;
        }
        low + self.next_u64() % (high - low)
    }

    /// A uniform integer in `[low, high)`.
    pub fn range_usize(&mut self, low: usize, high: usize) -> usize {
        self.range_u64(low as u64, high as u64) as usize
    }

    /// A uniform float in `[low, high)`.
    pub fn range_f64(&mut self, low: f64, high: f64) -> f64 {
        if high <= low {
            return low;
        }
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        low + unit * (high - low)
    }

    /// A boolean true with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.range_f64(0.0, 1.0) < p.clamp(0.0, 1.0)
    }

    /// Pick one element index of a slice of length `len` (must be > 0).
    pub fn pick(&mut self, len: usize) -> usize {
        self.range_usize(0, len)
    }

    /// Choose a random element from a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        let i = self.pick(items.len());
        &items[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = WorkloadRng::new(42);
        let mut b = WorkloadRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.range_u64(0, 1000), b.range_u64(0, 1000));
        }
    }

    #[test]
    fn ranges_are_bounded() {
        let mut r = WorkloadRng::new(1);
        for _ in 0..1000 {
            let v = r.range_u64(10, 20);
            assert!((10..20).contains(&v));
            let f = r.range_f64(0.0, 1.0);
            assert!((0.0..1.0).contains(&f));
            let u = r.range_usize(5, 6);
            assert_eq!(u, 5);
        }
    }

    #[test]
    fn degenerate_ranges() {
        let mut r = WorkloadRng::new(7);
        assert_eq!(r.range_u64(5, 5), 5);
        assert_eq!(r.range_u64(9, 2), 9);
        assert_eq!(r.range_f64(1.0, 1.0), 1.0);
    }

    #[test]
    fn choose_and_pick() {
        let mut r = WorkloadRng::new(3);
        let items = [10, 20, 30];
        for _ in 0..50 {
            assert!(items.contains(r.choose(&items)));
            assert!(r.pick(3) < 3);
        }
    }
}
