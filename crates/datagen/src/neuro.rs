//! The neuroscience brain-atlas workload.
//!
//! Mirrors the demo's neuroscience application: many brain images registered against a
//! shared coordinate system (so they share one R-tree), with region annotations, some
//! citing the `DeepCerebellarNuclei` ontology term used by the TP53 example query.

use graphitti_core::{Graphitti, Marker, ObjectId};

use crate::ontology_gen::{self, NeuroConcepts};
use crate::rng::WorkloadRng;

/// Configuration for the neuroscience workload.
#[derive(Debug, Clone)]
pub struct NeuroConfig {
    /// RNG seed.
    pub seed: u64,
    /// Number of brain images.
    pub images: usize,
    /// Region annotations per image.
    pub regions_per_image: usize,
    /// Number of distinct coordinate systems (resolutions) to spread images over.
    pub coordinate_systems: usize,
    /// Probability a region annotation cites the `DeepCerebellarNuclei` term.
    pub dcn_prob: f64,
    /// Image canvas width / height.
    pub canvas: f64,
    /// Probability a region annotation's content mentions "protein TP53".
    pub tp53_prob: f64,
}

impl Default for NeuroConfig {
    fn default() -> Self {
        NeuroConfig {
            seed: 0xB3A1,
            images: 100,
            regions_per_image: 8,
            coordinate_systems: 3,
            dcn_prob: 0.4,
            canvas: 1000.0,
            tp53_prob: 0.2,
        }
    }
}

impl NeuroConfig {
    /// A small configuration for tests.
    pub fn small() -> Self {
        NeuroConfig {
            seed: 2,
            images: 6,
            regions_per_image: 4,
            coordinate_systems: 2,
            dcn_prob: 0.5,
            canvas: 500.0,
            tp53_prob: 0.3,
        }
    }
}

/// The result of building a neuroscience workload: the system plus the named concepts so
/// callers (benches, examples, tests) can query by the `DeepCerebellarNuclei` term.
pub struct NeuroWorkload {
    /// The populated system.
    pub system: Graphitti,
    /// Named neuro-anatomy concepts.
    pub concepts: NeuroConcepts,
    /// The image objects created.
    pub images: Vec<ObjectId>,
    /// The coordinate-system names used.
    pub systems: Vec<String>,
}

/// Build the neuroscience workload.
pub fn build(config: &NeuroConfig) -> NeuroWorkload {
    let mut sys = Graphitti::new();
    let mut rng = WorkloadRng::new(config.seed);

    let (onto, concepts) = ontology_gen::neuro_anatomy();
    *sys.ontology_mut() = onto;

    let ncs = config.coordinate_systems.max(1);
    let systems: Vec<String> = (0..ncs).map(|i| format!("mouse-brain-cs-{i}")).collect();

    let mut images = Vec::with_capacity(config.images);
    for i in 0..config.images {
        let cs = &systems[i % ncs];
        let img = sys.register_image(
            format!("brain-image-{i}"),
            config.canvas as u64,
            config.canvas as u64,
            "confocal",
            cs.clone(),
        );
        images.push(img);

        for _ in 0..config.regions_per_image {
            let w = rng.range_f64(20.0, 120.0);
            let h = rng.range_f64(20.0, 120.0);
            let x = rng.range_f64(0.0, config.canvas - w);
            let y = rng.range_f64(0.0, config.canvas - h);
            let cites_dcn = rng.chance(config.dcn_prob);
            let mentions_tp53 = rng.chance(config.tp53_prob);

            let comment = if mentions_tp53 {
                "strong staining for protein TP53 in this region"
            } else {
                "background expression level"
            };
            let mut builder = sys
                .annotate()
                .title("region annotation")
                .comment(comment)
                .creator("martone")
                .mark(img, Marker::region(x, y, x + w, y + h));
            if cites_dcn {
                builder = builder
                    .subject("Deep Cerebellar nuclei")
                    .cite_term(concepts.deep_cerebellar_nuclei);
            }
            let _ = builder.commit();
        }
    }

    NeuroWorkload { system: sys, concepts, images, systems }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphitti_query::{Executor, GraphConstraint, OntologyFilter, Query, Target};
    use spatial_index::Rect;

    #[test]
    fn builds_small_workload() {
        let w = build(&NeuroConfig::small());
        assert_eq!(w.images.len(), 6);
        assert!(w.system.annotation_count() > 0);
        // images share <= coordinate_systems R-trees
        let (_, spatial) = w.system.index_structure_count();
        assert!(spatial <= 2);
    }

    #[test]
    fn deterministic() {
        let a = build(&NeuroConfig::small());
        let b = build(&NeuroConfig::small());
        assert_eq!(a.system.annotation_count(), b.system.annotation_count());
        assert_eq!(a.system.referent_count(), b.system.referent_count());
    }

    #[test]
    fn dcn_term_is_queryable() {
        let mut cfg = NeuroConfig::small();
        cfg.images = 20;
        cfg.dcn_prob = 0.8;
        let w = build(&cfg);
        let q = Query::new(Target::ConnectionGraphs)
            .with_ontology(OntologyFilter::CitesTerm(w.concepts.deep_cerebellar_nuclei));
        let res = Executor::new(&w.system).run(&q);
        assert!(!res.objects.is_empty());
    }

    #[test]
    fn min_region_count_finds_dense_images() {
        let mut cfg = NeuroConfig::small();
        cfg.images = 10;
        cfg.regions_per_image = 6;
        cfg.dcn_prob = 1.0; // every region cites DCN
        let w = build(&cfg);
        let big = Rect::rect2(0.0, 0.0, cfg.canvas, cfg.canvas);
        let q = Query::new(Target::ConnectionGraphs)
            .with_ontology(OntologyFilter::CitesTerm(w.concepts.deep_cerebellar_nuclei))
            .with_constraint(GraphConstraint::MinRegionCount {
                count: 2,
                within: big,
                system: w.systems[0].clone(),
            });
        let res = Executor::new(&w.system).run(&q);
        // every image has >= 2 DCN regions, so all images (on any cs) qualify by count
        assert!(!res.objects.is_empty());
    }
}
