//! # datagen — synthetic scientific workloads
//!
//! The demo runs on real Avian-Influenza and neuroscience data that we do not have, so
//! this crate generates deterministic synthetic equivalents that exercise the same code
//! paths (see DESIGN.md for the substitution rationale).  Everything is seeded so runs
//! are reproducible.
//!
//! * [`influenza`] — the interdisciplinary Influenza study: DNA / RNA / protein
//!   sequences, multiple-sequence alignments, phylogenetic trees, interaction graphs and
//!   relational strain records, plus an annotation driver that builds a realistic
//!   a-graph (shared referents creating indirectly-related annotations).
//! * [`neuro`] — the neuroscience application: brain images sharing a coordinate system,
//!   region annotations, and a small neuro-anatomy ontology.
//! * [`mixed`] — the interleaved read/write workload: a populated base system plus a
//!   deterministic stream of batched write ops to replay against a live query service
//!   (publish-stall and sustained-write benchmarking).
//! * [`ontology_gen`] — synthetic ontology generators (balanced trees, random DAGs).
//! * [`workload`] — high-level [`workload::Workload`] bundling a populated
//!   [`Graphitti`](graphitti_core::Graphitti) with a description of what it contains, for
//!   the benchmark harness.

pub mod influenza;
pub mod mixed;
pub mod neuro;
pub mod ontology_gen;
pub mod rng;
pub mod unified;
pub mod workload;

pub use influenza::InfluenzaConfig;
pub use mixed::{MixedConfig, MixedWorkload, ShardedMixedWorkload, WriteOp};
pub use neuro::NeuroConfig;
pub use unified::{UnifiedConfig, UnifiedWorkload};
pub use workload::{Workload, WorkloadStats};
