//! Synthetic ontology generators.

use ontology::{ConceptId, Ontology, RelationType};

use crate::rng::WorkloadRng;

/// Build a balanced is-a tree of the given `depth` and `branching` factor, with one
/// concept per node, and return the ontology together with its root and all concept ids.
pub fn balanced_tree(depth: u32, branching: usize) -> (Ontology, ConceptId, Vec<ConceptId>) {
    let mut o = Ontology::new();
    let root = o.add_concept("root");
    let mut all = vec![root];
    let mut frontier = vec![root];
    for level in 0..depth {
        let mut next = Vec::new();
        for &parent in &frontier {
            for b in 0..branching {
                let c = o.add_concept(format!("c{level}_{}_{b}", parent.0));
                o.add_relation(parent, c, RelationType::IsA);
                all.push(c);
                next.push(c);
            }
        }
        frontier = next;
    }
    (o, root, all)
}

/// Attach `instances_per_leaf` instances to every leaf concept of a tree built by
/// [`balanced_tree`]. Returns the instance-name prefix used so callers can map objects
/// to instances.
pub fn populate_leaves(o: &mut Ontology, concepts: &[ConceptId], instances_per_leaf: usize) {
    for &c in concepts {
        if o.children(c).is_empty() {
            for i in 0..instances_per_leaf {
                o.add_instance(c, format!("inst-{}-{i}", c.0));
            }
        }
    }
}

/// Build a small neuro-anatomy ontology matching the demo's vocabulary (brain regions
/// with the "Deep Cerebellar nuclei" term the example query uses).  Returns the ontology
/// and a lookup of the named concepts.
pub fn neuro_anatomy() -> (Ontology, NeuroConcepts) {
    let mut o = Ontology::new();
    let brain = o.add_concept("Brain");
    let cerebellum = o.add_concept("Cerebellum");
    let cerebrum = o.add_concept("Cerebrum");
    let dcn = o.add_concept("DeepCerebellarNuclei");
    let cortex = o.add_concept("CerebellarCortex");
    let hippocampus = o.add_concept("Hippocampus");
    o.add_relation(brain, cerebellum, RelationType::IsA);
    o.add_relation(brain, cerebrum, RelationType::IsA);
    o.add_relation(cerebellum, dcn, RelationType::PartOf);
    o.add_relation(cerebellum, cortex, RelationType::PartOf);
    o.add_relation(cerebrum, hippocampus, RelationType::PartOf);
    (
        o,
        NeuroConcepts {
            brain,
            cerebellum,
            cerebrum,
            deep_cerebellar_nuclei: dcn,
            cerebellar_cortex: cortex,
            hippocampus,
        },
    )
}

/// Named concepts of the neuro-anatomy ontology.
#[derive(Debug, Clone, Copy)]
pub struct NeuroConcepts {
    /// `Brain` root concept.
    pub brain: ConceptId,
    /// `Cerebellum`.
    pub cerebellum: ConceptId,
    /// `Cerebrum`.
    pub cerebrum: ConceptId,
    /// `DeepCerebellarNuclei` — the term the TP53 example query filters on.
    pub deep_cerebellar_nuclei: ConceptId,
    /// `CerebellarCortex`.
    pub cerebellar_cortex: ConceptId,
    /// `Hippocampus`.
    pub hippocampus: ConceptId,
}

/// Build a molecular ontology of protein families with a `protease` class, used by the
/// protease example query.  Returns the ontology and the protease concept id.
pub fn protein_families(rng: &mut WorkloadRng, families: usize) -> (Ontology, ConceptId) {
    let mut o = Ontology::new();
    let protein = o.add_concept("Protein");
    let protease = o.add_concept("Protease");
    o.add_relation(protein, protease, RelationType::IsA);
    // a handful of protease subfamilies
    let subfamilies = ["Serine", "Cysteine", "Aspartic", "Metallo", "Threonine"];
    let count = families.max(1).min(subfamilies.len());
    for sf in subfamilies.iter().take(count) {
        let c = o.add_concept(format!("{sf}Protease"));
        o.add_relation(protease, c, RelationType::IsA);
        // some non-protease siblings, to make the class filter meaningful
        let other = o.add_concept(format!("{sf}Kinase"));
        o.add_relation(protein, other, RelationType::IsA);
        let _ = rng.range_u64(0, 10); // keep generation seed-coupled
    }
    (o, protease)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_tree_shape() {
        let (o, root, all) = balanced_tree(2, 3);
        // 1 + 3 + 9 = 13 concepts
        assert_eq!(all.len(), 13);
        assert_eq!(o.children(root).len(), 3);
        // leaves have no children
        let leaves: Vec<_> = all.iter().filter(|&&c| o.children(c).is_empty()).collect();
        assert_eq!(leaves.len(), 9);
    }

    #[test]
    fn populate_adds_instances_to_leaves_only() {
        let (mut o, _root, all) = balanced_tree(2, 2);
        populate_leaves(&mut o, &all, 3);
        // 4 leaves * 3 = 12 instances
        assert_eq!(o.instance_count(), 12);
    }

    #[test]
    fn neuro_ontology_has_dcn_under_cerebellum() {
        let (o, c) = neuro_anatomy();
        assert!(o.is_descendant(c.cerebellum, c.deep_cerebellar_nuclei, &RelationType::PartOf));
        assert!(o.is_descendant(c.brain, c.cerebellum, &RelationType::IsA));
        assert_eq!(o.concept_name(c.deep_cerebellar_nuclei), Some("DeepCerebellarNuclei"));
    }

    #[test]
    fn protein_families_has_protease_class() {
        let mut rng = WorkloadRng::new(1);
        let (o, protease) = protein_families(&mut rng, 3);
        // protease has 3 subfamilies
        assert_eq!(o.children_by_relation(protease, &RelationType::IsA).len(), 3);
        assert_eq!(o.concept_name(protease), Some("Protease"));
    }
}
