//! High-level workload bundles for the benchmark harness.
//!
//! A [`Workload`] pairs a populated [`Graphitti`] system with a [`WorkloadStats`]
//! summary, so a bench target can build a workload once and report what it contains.

use graphitti_core::{DataType, Graphitti};

use crate::influenza::{self, InfluenzaConfig};
use crate::neuro::{self, NeuroConfig};

/// Summary statistics of a populated system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadStats {
    /// Registered objects.
    pub objects: usize,
    /// Committed annotations.
    pub annotations: usize,
    /// Created referents.
    pub referents: usize,
    /// Distinct interval-index domains.
    pub interval_domains: usize,
    /// Distinct R-tree coordinate systems.
    pub coordinate_systems: usize,
    /// Distinct annotation-content documents.
    pub content_docs: usize,
}

impl WorkloadStats {
    /// Compute statistics from a system.
    pub fn of(system: &Graphitti) -> Self {
        let (interval_domains, coordinate_systems) = system.index_structure_count();
        WorkloadStats {
            objects: system.object_count(),
            annotations: system.annotation_count(),
            referents: system.referent_count(),
            interval_domains,
            coordinate_systems,
            content_docs: system.content_store().len(),
        }
    }
}

/// A named workload: a populated system and its statistics.
pub struct Workload {
    /// Workload name (for bench labels).
    pub name: String,
    /// The populated system.
    pub system: Graphitti,
    /// Summary statistics.
    pub stats: WorkloadStats,
}

impl Workload {
    /// Build the Influenza workload from a config.
    pub fn influenza(config: &InfluenzaConfig) -> Workload {
        let system = influenza::build(config);
        let stats = WorkloadStats::of(&system);
        Workload { name: "influenza".into(), system, stats }
    }

    /// Build the neuroscience workload from a config.
    pub fn neuro(config: &NeuroConfig) -> Workload {
        let w = neuro::build(config);
        let stats = WorkloadStats::of(&w.system);
        Workload { name: "neuro".into(), system: w.system, stats }
    }

    /// A unified workload: influenza protein sequences *and* neuroscience images in one
    /// system, including cross-type correlation annotations that link a sequence interval
    /// to an image region. This is the heterogeneous scenario the paper motivates.
    pub fn combined(config: &crate::unified::UnifiedConfig) -> Workload {
        let w = crate::unified::build(config);
        let stats = WorkloadStats::of(&w.system);
        Workload { name: "combined".into(), system: w.system, stats }
    }

    /// Number of objects of a given type in the workload.
    pub fn objects_of(&self, ty: DataType) -> usize {
        self.system.object_ids_of_type(ty).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn influenza_workload_stats() {
        let w = Workload::influenza(&InfluenzaConfig::small());
        assert_eq!(w.name, "influenza");
        assert_eq!(w.stats.objects, w.system.object_count());
        assert_eq!(w.stats.annotations, w.system.annotation_count());
        assert!(w.stats.content_docs <= w.stats.annotations);
        assert!(w.objects_of(DataType::DnaSequence) > 0);
    }

    #[test]
    fn neuro_workload_stats() {
        let w = Workload::neuro(&NeuroConfig::small());
        assert_eq!(w.name, "neuro");
        assert!(w.stats.coordinate_systems >= 1);
        assert!(w.objects_of(DataType::Image) > 0);
    }

    #[test]
    fn combined_workload() {
        let w = Workload::combined(&crate::unified::UnifiedConfig::small());
        assert_eq!(w.name, "combined");
        assert!(w.stats.objects > 0);
        // spans both index families
        assert!(w.stats.interval_domains > 0 && w.stats.coordinate_systems > 0);
    }

    #[test]
    fn stats_are_consistent() {
        let w = Workload::influenza(&InfluenzaConfig::small());
        let recomputed = WorkloadStats::of(&w.system);
        assert_eq!(w.stats, recomputed);
    }
}
