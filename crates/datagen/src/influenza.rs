//! The interdisciplinary Influenza-study workload.
//!
//! Mirrors Figure 1's scenario: a population of heterogeneous objects (sequences,
//! alignments, trees, interaction graphs, relational records) annotated by several
//! scientists, where some annotations deliberately share referents so that the a-graph
//! exhibits *indirectly related* annotations.

use graphitti_core::{DataType, Graphitti, Marker, ObjectId};
use interval_index::Interval;

use crate::ontology_gen;
use crate::rng::WorkloadRng;

/// Configuration for the Influenza workload.
#[derive(Debug, Clone)]
pub struct InfluenzaConfig {
    /// RNG seed (reproducibility).
    pub seed: u64,
    /// Number of DNA/RNA/protein sequences to register.
    pub sequences: usize,
    /// Number of annotations to create.
    pub annotations: usize,
    /// Number of multiple-sequence alignments.
    pub alignments: usize,
    /// Number of phylogenetic trees.
    pub trees: usize,
    /// Number of interaction graphs.
    pub graphs: usize,
    /// Number of relational strain records.
    pub records: usize,
    /// Number of distinct coordinate domains (influenza segments / chromosomes) to
    /// spread sequences over; controls index grouping.
    pub segments: usize,
    /// Probability that an annotation reuses an existing referent interval (creating an
    /// indirectly-related annotation).
    pub shared_referent_prob: f64,
    /// Probability that an annotation's comment mentions "protease".
    pub protease_prob: f64,
}

impl Default for InfluenzaConfig {
    fn default() -> Self {
        InfluenzaConfig {
            seed: 0xF1A3,
            sequences: 200,
            annotations: 1000,
            alignments: 10,
            trees: 5,
            graphs: 5,
            records: 20,
            segments: 8,
            shared_referent_prob: 0.3,
            protease_prob: 0.25,
        }
    }
}

impl InfluenzaConfig {
    /// A small configuration useful for tests.
    pub fn small() -> Self {
        InfluenzaConfig {
            seed: 1,
            sequences: 12,
            annotations: 40,
            alignments: 2,
            trees: 1,
            graphs: 1,
            records: 3,
            segments: 3,
            shared_referent_prob: 0.3,
            protease_prob: 0.3,
        }
    }

    /// Scale the annotation count (used by the Figure 1 sweep).
    pub fn with_annotations(mut self, annotations: usize) -> Self {
        self.annotations = annotations;
        self
    }
}

/// Build a populated Graphitti system for the Influenza study.
pub fn build(config: &InfluenzaConfig) -> Graphitti {
    let mut sys = Graphitti::new();
    let mut rng = WorkloadRng::new(config.seed);

    // Load a protein-family ontology so annotations can cite terms.
    let (onto, protease_concept) = ontology_gen::protein_families(&mut rng, 5);
    *sys.ontology_mut() = onto;

    let segments = config.segments.max(1);
    let seq_types = [DataType::DnaSequence, DataType::RnaSequence, DataType::ProteinSequence];

    // Register sequences over `segments` coordinate domains.
    let mut sequences: Vec<ObjectId> = Vec::with_capacity(config.sequences);
    for i in 0..config.sequences {
        let seg = i % segments;
        let domain = format!("segment-{seg}");
        let ty = seq_types[i % seq_types.len()];
        let length = rng.range_u64(900, 2400);
        let id = sys.register_sequence(format!("seq-{i}"), ty, length, domain);
        sequences.push(id);
    }

    // Register the other heterogeneous object types (their substructures are discrete or
    // handled out-of-band; they still populate the relational store and a-graph as whole
    // objects and can be annotated by block-set markers).
    register_alignments(&mut sys, &mut rng, config.alignments);
    let trees = register_discrete(&mut sys, &mut rng, DataType::PhylogeneticTree, config.trees);
    let graphs = register_discrete(&mut sys, &mut rng, DataType::InteractionGraph, config.graphs);
    let records = register_discrete(&mut sys, &mut rng, DataType::RelationalRecord, config.records);

    // Create annotations.
    let creators = ["sandeep", "condit", "gupta", "martone", "wong-barnum"];
    // Pool of already-committed referent ids that later annotations may reuse to become
    // indirectly related (same referent → two annotations linked).
    let mut referent_pool: Vec<graphitti_core::ReferentId> = Vec::new();

    for a in 0..config.annotations {
        if sequences.is_empty() {
            break;
        }
        let creator = *rng.choose(&creators);
        let is_protease = rng.chance(config.protease_prob);
        let comment = if is_protease {
            "observed protease cleavage motif in this region"
        } else {
            "synonymous substitution with no phenotypic effect"
        };

        // Decide whether to reuse a prior referent (shared referent → indirect relation).
        let reuse = !referent_pool.is_empty() && rng.chance(config.shared_referent_prob);

        let mut builder =
            sys.annotate().title(format!("annotation {a}")).comment(comment).creator(creator);
        let mut new_mark: Option<ObjectId> = None;
        if reuse {
            let rid = *rng.choose(&referent_pool);
            builder = builder.mark_existing(rid);
        } else {
            let object = *rng.choose(&sequences);
            let start = rng.range_u64(0, 1940);
            let interval = Interval::new(start, start + rng.range_u64(20, 60));
            builder = builder.mark(object, Marker::Interval(interval));
            new_mark = Some(object);
        }
        if is_protease {
            builder = builder.subject("protease").cite_term(protease_concept);
        }
        // occasionally also mark a discrete object (tree / graph / record) via block set
        if rng.chance(0.1) {
            let pool = [trees.as_slice(), graphs.as_slice(), records.as_slice()].concat();
            if !pool.is_empty() {
                let obj = *rng.choose(&pool);
                let block = Marker::block_set([rng.range_u64(0, 100)]);
                builder = builder.mark(obj, block);
            }
        }
        if let Ok(aid) = builder.commit() {
            // register this annotation's fresh referent for future sharing
            if new_mark.is_some() {
                if let Some(ann) = sys.annotation(aid) {
                    if let Some(&rid) = ann.referents.first() {
                        referent_pool.push(rid);
                    }
                }
            }
        }
    }

    sys
}

fn register_alignments(sys: &mut Graphitti, rng: &mut WorkloadRng, count: usize) -> Vec<ObjectId> {
    (0..count)
        .map(|i| {
            let cols = rng.range_u64(200, 2000);
            sys.register_sequence(
                format!("msa-{i}"),
                DataType::MultipleAlignment,
                cols,
                format!("alignment-{i}"),
            )
        })
        .collect()
}

fn register_discrete(
    sys: &mut Graphitti,
    rng: &mut WorkloadRng,
    ty: DataType,
    count: usize,
) -> Vec<ObjectId> {
    use bytes::Bytes;
    use relstore::Value;
    (0..count)
        .map(|i| {
            let metadata = match ty {
                DataType::PhylogeneticTree => {
                    vec![Value::Int(rng.range_u64(10, 200) as i64), Value::text("neighbor-joining")]
                }
                DataType::InteractionGraph => vec![
                    Value::Int(rng.range_u64(20, 500) as i64),
                    Value::Int(rng.range_u64(30, 2000) as i64),
                ],
                DataType::RelationalRecord => {
                    vec![Value::text("strain"), Value::Int(rng.range_u64(1, 100) as i64)]
                }
                _ => unreachable!("register_discrete only handles discrete types"),
            };
            sys.register_object(ty, format!("{}-{i}", ty.tag()), metadata, Bytes::new(), "")
                .expect("discrete registration")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_small_workload() {
        let cfg = InfluenzaConfig::small();
        let sys = build(&cfg);
        assert!(sys.object_count() >= cfg.sequences);
        assert!(sys.annotation_count() > 0);
        assert!(sys.annotation_count() <= cfg.annotations);
        // sequences spread over <= segments domains
        let (interval_domains, _) = sys.index_structure_count();
        assert!(interval_domains <= cfg.segments + cfg.alignments);
    }

    #[test]
    fn deterministic_for_seed() {
        let cfg = InfluenzaConfig::small();
        let a = build(&cfg);
        let b = build(&cfg);
        assert_eq!(a.object_count(), b.object_count());
        assert_eq!(a.annotation_count(), b.annotation_count());
        assert_eq!(a.referent_count(), b.referent_count());
    }

    #[test]
    fn shared_referents_create_related_annotations() {
        let mut cfg = InfluenzaConfig::small();
        cfg.annotations = 200;
        cfg.shared_referent_prob = 0.9;
        cfg.seed = 99;
        let sys = build(&cfg);
        // at least one annotation should have a related annotation via a shared referent
        let has_related =
            sys.annotations().iter().any(|a| !sys.related_annotations(a.id).is_empty());
        assert!(has_related, "expected indirectly-related annotations");
    }

    #[test]
    fn protease_annotations_are_findable() {
        let mut cfg = InfluenzaConfig::small();
        cfg.annotations = 100;
        cfg.protease_prob = 0.5;
        let sys = build(&cfg);
        let hits = sys.content_store().containing_phrase("protease");
        assert!(!hits.is_empty());
    }

    #[test]
    fn annotation_scaling() {
        let cfg = InfluenzaConfig::small().with_annotations(60);
        assert_eq!(cfg.annotations, 60);
    }
}
