//! Subquery separation and feasible ordering.
//!
//! The processor "separates subqueries that belong to the different types of data
//! elements, finding a feasible order among these subqueries".  This module turns a
//! [`Query`] into a [`Plan`]: a list of [`SubQuery`]s, each tagged with its data-element
//! kind, sorted by estimated selectivity so that the most selective subquery runs first
//! and prunes the candidate set before the less selective ones are evaluated.

use crate::ast::{ContentFilter, OntologyFilter, Query, ReferentFilter};

/// Which data-element store a subquery addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubQueryKind {
    /// Annotation-content store (XML / keyword indexes).
    Content,
    /// Referent indexes (interval trees / R-trees).
    Referent,
    /// Ontology store.
    Ontology,
}

/// One separated subquery with a selectivity estimate.
#[derive(Debug, Clone)]
pub struct SubQuery {
    /// Which store it addresses.
    pub kind: SubQueryKind,
    /// Index of the filter within its family in the original query.
    pub index: usize,
    /// Estimated selectivity in `[0, 1]`; smaller means more selective (runs earlier).
    pub selectivity: f64,
    /// A short human-readable description for the planner's explain output.
    pub description: String,
}

/// A planned query: ordered subqueries.
#[derive(Debug, Clone)]
pub struct Plan {
    /// Subqueries in feasible (most-selective-first) execution order.
    pub order: Vec<SubQuery>,
}

impl Plan {
    /// Build a plan from a query, separating and ordering its subqueries.
    pub fn build(query: &Query) -> Plan {
        let mut subs: Vec<SubQuery> = Vec::new();

        for (i, f) in query.content.iter().enumerate() {
            subs.push(SubQuery {
                kind: SubQueryKind::Content,
                index: i,
                selectivity: content_selectivity(f),
                description: content_desc(f),
            });
        }
        for (i, f) in query.referents.iter().enumerate() {
            subs.push(SubQuery {
                kind: SubQueryKind::Referent,
                index: i,
                selectivity: referent_selectivity(f),
                description: referent_desc(f),
            });
        }
        for (i, f) in query.ontology.iter().enumerate() {
            subs.push(SubQuery {
                kind: SubQueryKind::Ontology,
                index: i,
                selectivity: ontology_selectivity(f),
                description: ontology_desc(f),
            });
        }

        // Feasible order: ascending selectivity (most selective first). Stable so that
        // ties keep their declaration order, which keeps plans deterministic.
        subs.sort_by(|a, b| {
            a.selectivity
                .partial_cmp(&b.selectivity)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        Plan { order: subs }
    }

    /// The kinds of the subqueries in execution order.
    pub fn kinds(&self) -> Vec<SubQueryKind> {
        self.order.iter().map(|s| s.kind).collect()
    }

    /// The most selective subquery, if any (the "driving" subquery).
    pub fn driver(&self) -> Option<&SubQuery> {
        self.order.first()
    }

    /// A human-readable explain string.
    pub fn explain(&self) -> String {
        let mut s = String::from("Plan (most selective first):\n");
        for (i, sub) in self.order.iter().enumerate() {
            s.push_str(&format!(
                "  {}. [{:?}] {} (sel={:.3})\n",
                i + 1,
                sub.kind,
                sub.description,
                sub.selectivity
            ));
        }
        s
    }
}

fn content_selectivity(f: &ContentFilter) -> f64 {
    match f {
        // a multi-word phrase is very selective; a single keyword less so
        ContentFilter::Phrase(p) => {
            let words = p.split_whitespace().count().max(1);
            (0.1 / words as f64).max(0.01)
        }
        ContentFilter::Keywords(k) => (0.15 / k.len().max(1) as f64).max(0.02),
        ContentFilter::Path(_) => 0.12,
    }
}

fn referent_selectivity(f: &ReferentFilter) -> f64 {
    match f {
        ReferentFilter::OfType(_) => 0.4,
        ReferentFilter::IntervalOverlaps { domain, .. } => {
            if domain.is_some() {
                0.08
            } else {
                0.25
            }
        }
        ReferentFilter::RegionOverlaps { system, .. } => {
            if system.is_some() {
                0.1
            } else {
                0.3
            }
        }
        ReferentFilter::BlockContains(ids) => (0.05 * ids.len().max(1) as f64).min(0.4),
    }
}

fn ontology_selectivity(f: &OntologyFilter) -> f64 {
    match f {
        OntologyFilter::InClass { .. } => 0.2,
        OntologyFilter::CitesTerm(_) => 0.07,
    }
}

fn content_desc(f: &ContentFilter) -> String {
    match f {
        ContentFilter::Phrase(p) => format!("content contains phrase {p:?}"),
        ContentFilter::Keywords(k) => format!("content contains keywords {k:?}"),
        ContentFilter::Path(_) => "content matches path expression".to_string(),
    }
}

fn referent_desc(f: &ReferentFilter) -> String {
    match f {
        ReferentFilter::OfType(t) => format!("referents of type {t:?}"),
        ReferentFilter::IntervalOverlaps { domain, interval } => {
            format!("interval overlaps {interval} in domain {domain:?}")
        }
        ReferentFilter::RegionOverlaps { system, .. } => format!("region overlaps in {system:?}"),
        ReferentFilter::BlockContains(ids) => format!("block set contains {ids:?}"),
    }
}

fn ontology_desc(f: &OntologyFilter) -> String {
    match f {
        OntologyFilter::InClass { concept, .. } => format!("in ontology class {concept:?}"),
        OntologyFilter::CitesTerm(c) => format!("cites term {c:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Query, Target};
    use graphitti_core::DataType;
    use interval_index::Interval;
    use ontology::ConceptId;

    #[test]
    fn separates_by_kind() {
        let q = Query::new(Target::ConnectionGraphs)
            .with_phrase("protein TP53")
            .with_referent(ReferentFilter::OfType(DataType::Image))
            .with_ontology(OntologyFilter::CitesTerm(ConceptId(1)));
        let plan = Plan::build(&q);
        assert_eq!(plan.order.len(), 3);
        let kinds = plan.kinds();
        assert!(kinds.contains(&SubQueryKind::Content));
        assert!(kinds.contains(&SubQueryKind::Referent));
        assert!(kinds.contains(&SubQueryKind::Ontology));
    }

    #[test]
    fn most_selective_runs_first() {
        let q = Query::new(Target::Referents)
            .with_referent(ReferentFilter::OfType(DataType::DnaSequence)) // 0.4
            .with_ontology(OntologyFilter::CitesTerm(ConceptId(1))) // 0.07
            .with_phrase("a b c d"); // ~0.025
        let plan = Plan::build(&q);
        // phrase is most selective, then cites-term, then of-type
        assert_eq!(plan.driver().unwrap().kind, SubQueryKind::Content);
        assert_eq!(plan.order[1].kind, SubQueryKind::Ontology);
        assert_eq!(plan.order[2].kind, SubQueryKind::Referent);
        // selectivities are non-decreasing
        for w in plan.order.windows(2) {
            assert!(w[0].selectivity <= w[1].selectivity);
        }
    }

    #[test]
    fn domain_pinned_interval_is_more_selective() {
        let pinned = referent_selectivity(&ReferentFilter::IntervalOverlaps {
            domain: Some("chr7".into()),
            interval: Interval::new(0, 10),
        });
        let unpinned = referent_selectivity(&ReferentFilter::IntervalOverlaps {
            domain: None,
            interval: Interval::new(0, 10),
        });
        assert!(pinned < unpinned);
    }

    #[test]
    fn explain_is_human_readable() {
        let q = Query::new(Target::AnnotationContents).with_phrase("x");
        let plan = Plan::build(&q);
        let explain = plan.explain();
        assert!(explain.contains("Plan"));
        assert!(explain.contains("Content"));
    }

    #[test]
    fn empty_query_has_empty_plan() {
        let plan = Plan::build(&Query::new(Target::Referents));
        assert!(plan.order.is_empty());
        assert!(plan.driver().is_none());
    }
}
