//! Subquery separation and feasible ordering.
//!
//! The processor "separates subqueries that belong to the different types of data
//! elements, finding a feasible order among these subqueries".  This module turns a
//! [`Query`] into a [`Plan`]: a list of [`SubQuery`]s, each tagged with its data-element
//! kind, sorted by estimated selectivity so that the most selective subquery runs first
//! and *seeds* the candidate set, while every later subquery merely *verifies* the
//! surviving candidates (see [`crate::exec`] for the seed → verify → collate pipeline).
//!
//! Selectivity is estimated from the system's live statistics — document frequencies in
//! the content store's keyword index, per-term citation counts, per-type / per-domain
//! referent counts from [`graphitti_core::Stats`] — not from hard-coded guesses.  Each
//! estimate is the fraction of the subquery family's universe (annotations for content /
//! ontology subqueries, referents for referent subqueries) that the subquery is expected
//! to keep, computed as `estimated_rows / universe`.  The estimates are upper bounds
//! (e.g. a phrase can match at most the documents containing its rarest token), which
//! is exactly what ordering needs: a subquery with a small upper bound is guaranteed
//! to produce a small seed set.

use graphitti_core::{Component, ComponentSet, SystemView};
use xmlstore::{NameTest, PathExpr};

use crate::ast::{ContentFilter, OntologyFilter, Query, ReferentFilter};

/// Which data-element store a subquery addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubQueryKind {
    /// Annotation-content store (XML / keyword indexes).
    Content,
    /// Referent indexes (interval trees / R-trees / block postings).
    Referent,
    /// Ontology store (term postings).
    Ontology,
}

/// One separated subquery with a selectivity estimate.
#[derive(Debug, Clone)]
pub struct SubQuery {
    /// Which store it addresses.
    pub kind: SubQueryKind,
    /// Index of the filter within its family in the original query.
    pub index: usize,
    /// Estimated number of rows (annotations or referents) the subquery matches.
    pub estimated_rows: usize,
    /// Estimated selectivity in `[0, 1]`; smaller means more selective (runs earlier).
    pub selectivity: f64,
    /// A short human-readable description for the planner's explain output.
    pub description: String,
}

impl SubQuery {
    /// The planner's ordering: ascending selectivity, as a *total* order
    /// (`f64::total_cmp`).  `partial_cmp(..).unwrap_or(Equal)` would let a NaN
    /// estimate compare Equal against everything — under a stable sort the NaN then
    /// *keeps its declaration position*, so a poisoned estimate appearing before the
    /// genuinely selective subquery would silently become the driver and seed from
    /// the wrong index.  `total_cmp` orders NaN after every finite estimate, so a
    /// poisoned estimate can never displace a real driver (pinned by the
    /// `nan_selectivity_never_displaces_the_driver` regression test).
    fn selectivity_order(a: &SubQuery, b: &SubQuery) -> std::cmp::Ordering {
        a.selectivity.total_cmp(&b.selectivity)
    }
}

/// A planned query: ordered subqueries plus the plan's read footprint.
#[derive(Debug, Clone)]
pub struct Plan {
    /// Subqueries in feasible (most-selective-first) execution order.
    pub order: Vec<SubQuery>,
    /// The components whose query-visible state this query's answer depends on (see
    /// [`Plan::read_footprint`]).
    pub footprint: ComponentSet,
}

impl Plan {
    /// Build a plan for a query over a concrete system, separating its subqueries and
    /// ordering them by ascending estimated selectivity computed from the system's
    /// live statistics.
    pub fn build(query: &Query, system: &SystemView) -> Plan {
        let est = Estimator::new(system);
        let mut subs: Vec<SubQuery> = Vec::new();

        for (i, f) in query.content.iter().enumerate() {
            let rows = est.content_rows(f);
            subs.push(SubQuery {
                kind: SubQueryKind::Content,
                index: i,
                estimated_rows: rows,
                selectivity: est.fraction(rows, est.annotations),
                description: content_desc(f),
            });
        }
        for (i, f) in query.referents.iter().enumerate() {
            let rows = est.referent_rows(f);
            subs.push(SubQuery {
                kind: SubQueryKind::Referent,
                index: i,
                estimated_rows: rows,
                selectivity: est.fraction(rows, est.referents),
                description: referent_desc(f),
            });
        }
        for (i, f) in query.ontology.iter().enumerate() {
            let rows = est.ontology_rows(f);
            subs.push(SubQuery {
                kind: SubQueryKind::Ontology,
                index: i,
                estimated_rows: rows,
                selectivity: est.fraction(rows, est.annotations),
                description: ontology_desc(f),
            });
        }

        // Feasible order: ascending selectivity (most selective first). Stable so that
        // ties keep their declaration order, which keeps plans deterministic.
        subs.sort_by(SubQuery::selectivity_order);
        Plan { order: subs, footprint: Plan::read_footprint(query) }
    }

    /// The **read footprint** of a query: the set of [`Component`]s whose
    /// query-visible state its answer depends on.  A cached result for the query stays
    /// valid across any publish whose dirty set is disjoint from this footprint —
    /// this is what the query service's per-entry cache invalidation keys on.
    ///
    /// The footprint is *semantic*, not a trace of every data structure execution
    /// touches.  A component may be omitted when every query-visible change to the
    /// data read through it is always accompanied by a bump of a component that *is*
    /// in the footprint (dirty sets are declared per mutation in `graphitti-core`):
    ///
    /// * **`Annotations` and `Referents` are in every footprint** — all result content
    ///   (flat lists and result pages) is derived from the annotation and referent
    ///   registries.  `Annotations` bumps on every annotation commit; `Referents`
    ///   bumps only on commits that create new referents (a reuse-only commit leaves
    ///   it alone), but every referent-registry change happens inside an annotation
    ///   commit — which bumps `Annotations` — so with both components declared, an
    ///   entry can never outlive a change to either registry.
    /// * **`Agraph`, `NodeMaps` and `Indexes` are never in a footprint** — page
    ///   building reads the a-graph and node maps and every seed/verify reads the
    ///   inverted indexes, but each query-visible change to them (a new edge between
    ///   witness nodes, a new posting) is annotation-mediated: it only happens inside
    ///   an annotation commit, which bumps `Annotations` (and `Referents`).  The
    ///   *non*-annotation writes to them — an object registration's edge-less a-graph
    ///   node, its node-map entry, its type-index entry and statistics — cannot alter
    ///   any answer: results only ever reach an object through its referents, and a
    ///   freshly registered object has none.  (Statistics shifts can reorder a plan,
    ///   but all orders of one canonical query produce byte-identical results — pinned
    ///   by the pipeline-equivalence tests.)  This is precisely why a pure-ingest
    ///   batch (dirty set: catalog, a-graph, node maps, objects, indexes) evicts no
    ///   content-query entries.
    /// * **Per-filter stores** join the footprint when a filter reads them: `Content`
    ///   for content filters, `Ontology` for ontology filters (class expansion walks
    ///   the ontology graph, which `ontology_mut` bumps independently of any
    ///   annotation), and the marker index family / object registry per referent
    ///   filter.  `OfType` includes `Objects` conservatively: it reads object
    ///   metadata, which is immutable today, but the dependency is declared rather
    ///   than assumed away.
    pub fn read_footprint(query: &Query) -> ComponentSet {
        let mut fp = ComponentSet::of([Component::Annotations, Component::Referents]);
        if !query.content.is_empty() {
            fp.insert(Component::Content);
        }
        if !query.ontology.is_empty() {
            fp.insert(Component::Ontology);
        }
        for f in &query.referents {
            match f {
                ReferentFilter::OfType(_) => fp.insert(Component::Objects),
                // Reads the object → referents map; it only ever moves together with
                // the referent registry (already in every footprint), but the
                // dependency is declared rather than assumed away.
                ReferentFilter::OnObject(_) => fp.insert(Component::ObjectReferents),
                ReferentFilter::IntervalOverlaps { .. } => fp.insert(Component::Intervals),
                ReferentFilter::RegionOverlaps { .. } => fp.insert(Component::Spatial),
                ReferentFilter::BlockContains(_) => { /* block markers live in Referents */ }
            }
        }
        fp
    }

    /// The kinds of the subqueries in execution order.
    pub fn kinds(&self) -> Vec<SubQueryKind> {
        self.order.iter().map(|s| s.kind).collect()
    }

    /// The most selective subquery, if any (the "driving" subquery that seeds the
    /// candidate set).
    pub fn driver(&self) -> Option<&SubQuery> {
        self.order.first()
    }

    /// A human-readable explain string.
    pub fn explain(&self) -> String {
        let mut s = String::from("Plan (most selective first):\n");
        for (i, sub) in self.order.iter().enumerate() {
            s.push_str(&format!(
                "  {}. [{:?}] {} (sel={:.3}, ~{} rows)\n",
                i + 1,
                sub.kind,
                sub.description,
                sub.selectivity,
                sub.estimated_rows,
            ));
        }
        s
    }
}

/// Cardinality estimation over a system's live statistics.
struct Estimator<'g> {
    system: &'g SystemView,
    /// Annotation universe size (content / ontology subqueries select annotations).
    annotations: usize,
    /// Referent universe size (referent subqueries select referents).
    referents: usize,
}

impl<'g> Estimator<'g> {
    fn new(system: &'g SystemView) -> Self {
        let stats = system.stats();
        Estimator { system, annotations: stats.annotations, referents: stats.referents }
    }

    /// `rows / universe`, clamped to `[0, 1]`; an empty universe estimates 0 (nothing
    /// can match).
    fn fraction(&self, rows: usize, universe: usize) -> f64 {
        if universe == 0 {
            0.0
        } else {
            (rows as f64 / universe as f64).clamp(0.0, 1.0)
        }
    }

    /// Upper bound on the documents a content filter matches, from the keyword /
    /// element document-frequency indexes.
    fn content_rows(&self, f: &ContentFilter) -> usize {
        let store = self.system.content_store();
        match f {
            // A phrase can match at most the documents containing its rarest token.
            ContentFilter::Phrase(p) => xmlstore::keyword_tokens(p)
                .map(|t| store.keyword_df(t))
                .min()
                .unwrap_or(store.len()),
            // Keyword conjunction: bounded by the rarest keyword.
            ContentFilter::Keywords(ks) => {
                ks.iter().map(|k| store.keyword_df(k)).min().unwrap_or(store.len())
            }
            // A path expression matches at most the documents containing its most
            // specific named element.
            ContentFilter::Path(expr) => path_rows(store, expr),
        }
    }

    /// Upper bound on the referents a referent filter matches, from the per-type /
    /// per-domain counts and the block postings.
    fn referent_rows(&self, f: &ReferentFilter) -> usize {
        let stats = self.system.stats();
        match f {
            ReferentFilter::OfType(t) => stats.type_count(*t),
            // Exact, not an estimate: the object → referents map is the index this
            // filter seeds from.
            ReferentFilter::OnObject(id) => self.system.referents_of_object(*id).len(),
            ReferentFilter::IntervalOverlaps { domain, .. } => {
                stats.interval_count(domain.as_deref())
            }
            ReferentFilter::RegionOverlaps { system, .. } => stats.region_count(system.as_deref()),
            ReferentFilter::BlockContains(ids) => {
                ids.iter().map(|&id| self.system.indexes().referents_with_block(id).len()).sum()
            }
        }
    }

    /// Upper bound on the annotations an ontology filter matches: the summed citation
    /// counts of every qualifying term.
    fn ontology_rows(&self, f: &OntologyFilter) -> usize {
        let stats = self.system.stats();
        match f {
            OntologyFilter::CitesTerm(c) => stats.term_citation_count(*c),
            OntologyFilter::InClass { concept, relations } => {
                crate::exec::expand_class(self.system.ontology(), *concept, relations)
                    .iter()
                    .map(|&t| stats.term_citation_count(t))
                    .sum()
            }
        }
    }
}

/// Document-count upper bound for a path expression: the smallest element
/// document-frequency among its named steps (a match must contain every named element
/// on the path), or the whole store for an all-wildcard path.
fn path_rows(store: &xmlstore::ContentStore, expr: &PathExpr) -> usize {
    expr.steps
        .iter()
        .filter_map(|s| match &s.name {
            NameTest::Named(n) => Some(store.element_df(n)),
            NameTest::Any => None,
        })
        .min()
        .unwrap_or(store.len())
}

fn content_desc(f: &ContentFilter) -> String {
    match f {
        ContentFilter::Phrase(p) => format!("content contains phrase {p:?}"),
        ContentFilter::Keywords(k) => format!("content contains keywords {k:?}"),
        ContentFilter::Path(_) => "content matches path expression".to_string(),
    }
}

fn referent_desc(f: &ReferentFilter) -> String {
    match f {
        ReferentFilter::OfType(t) => format!("referents of type {t:?}"),
        ReferentFilter::OnObject(id) => format!("referents on object {id:?}"),
        ReferentFilter::IntervalOverlaps { domain, interval } => {
            format!("interval overlaps {interval} in domain {domain:?}")
        }
        ReferentFilter::RegionOverlaps { system, .. } => format!("region overlaps in {system:?}"),
        ReferentFilter::BlockContains(ids) => format!("block set contains {ids:?}"),
    }
}

fn ontology_desc(f: &OntologyFilter) -> String {
    match f {
        OntologyFilter::InClass { concept, .. } => format!("in ontology class {concept:?}"),
        OntologyFilter::CitesTerm(c) => format!("cites term {c:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Query, Target};
    use graphitti_core::{DataType, Graphitti, Marker};
    use interval_index::Interval;
    use ontology::ConceptId;

    /// A small system with a known shape: many "common" annotations, one "rare" one,
    /// DNA intervals in two domains, and image regions.
    fn sample_system() -> (Graphitti, ConceptId, ConceptId) {
        let mut sys = Graphitti::new();
        let seq1 = sys.register_sequence("s1", DataType::DnaSequence, 10_000, "chr1");
        let seq7 = sys.register_sequence("s7", DataType::DnaSequence, 10_000, "chr7");
        let img = sys.register_image("img", 1000, 1000, "confocal", "cs");
        let rare = sys.ontology_mut().add_concept("RareTerm");
        let common = sys.ontology_mut().add_concept("CommonTerm");
        for i in 0..8u64 {
            sys.annotate()
                .comment("a perfectly ordinary observation")
                .mark(seq1, Marker::interval(i * 100, i * 100 + 50))
                .cite_term(common)
                .commit()
                .unwrap();
        }
        sys.annotate()
            .comment("an exceptional singular finding")
            .mark(seq7, Marker::interval(0, 50))
            .cite_term(rare)
            .commit()
            .unwrap();
        sys.annotate()
            .comment("ordinary region")
            .mark(img, Marker::region(0.0, 0.0, 10.0, 10.0))
            .cite_term(common)
            .commit()
            .unwrap();
        (sys, rare, common)
    }

    #[test]
    fn separates_by_kind() {
        let (sys, rare, _) = sample_system();
        let q = Query::new(Target::ConnectionGraphs)
            .with_phrase("singular finding")
            .with_referent(ReferentFilter::OfType(DataType::Image))
            .with_ontology(OntologyFilter::CitesTerm(rare));
        let plan = Plan::build(&q, &sys);
        assert_eq!(plan.order.len(), 3);
        let kinds = plan.kinds();
        assert!(kinds.contains(&SubQueryKind::Content));
        assert!(kinds.contains(&SubQueryKind::Referent));
        assert!(kinds.contains(&SubQueryKind::Ontology));
    }

    #[test]
    fn selectivity_reflects_real_frequencies() {
        let (sys, rare, common) = sample_system();
        let q = Query::new(Target::AnnotationContents)
            .with_ontology(OntologyFilter::CitesTerm(common))
            .with_ontology(OntologyFilter::CitesTerm(rare));
        let plan = Plan::build(&q, &sys);
        // the rare term (1 citation) must drive; the common one (9 citations) follows
        assert_eq!(plan.driver().unwrap().description, format!("cites term {rare:?}"));
        assert_eq!(plan.driver().unwrap().estimated_rows, 1);
        assert_eq!(plan.order[1].estimated_rows, 9);
        for w in plan.order.windows(2) {
            assert!(w[0].selectivity <= w[1].selectivity);
        }
    }

    #[test]
    fn rare_phrase_beats_broad_type_filter() {
        let (sys, _, common) = sample_system();
        let q = Query::new(Target::Referents)
            .with_referent(ReferentFilter::OfType(DataType::DnaSequence)) // 9 of 10 refs
            .with_ontology(OntologyFilter::CitesTerm(common)) // 9 of 10 anns
            .with_phrase("exceptional singular"); // 1 doc
        let plan = Plan::build(&q, &sys);
        assert_eq!(plan.driver().unwrap().kind, SubQueryKind::Content);
        assert_eq!(plan.driver().unwrap().estimated_rows, 1);
        for w in plan.order.windows(2) {
            assert!(w[0].selectivity <= w[1].selectivity);
        }
    }

    #[test]
    fn domain_pinned_interval_is_more_selective() {
        let (sys, _, _) = sample_system();
        let pinned =
            Query::new(Target::Referents).with_referent(ReferentFilter::IntervalOverlaps {
                domain: Some("chr7".into()),
                interval: Interval::new(0, 10),
            });
        let unpinned =
            Query::new(Target::Referents).with_referent(ReferentFilter::IntervalOverlaps {
                domain: None,
                interval: Interval::new(0, 10),
            });
        let ps = Plan::build(&pinned, &sys).order[0].selectivity;
        let us = Plan::build(&unpinned, &sys).order[0].selectivity;
        // chr7 holds 1 of the 9 intervals
        assert!(ps < us, "pinned {ps} vs unpinned {us}");
    }

    #[test]
    fn unknown_term_estimates_zero_rows() {
        let (sys, _, _) = sample_system();
        let q = Query::new(Target::AnnotationContents)
            .with_ontology(OntologyFilter::CitesTerm(ConceptId(999)));
        let plan = Plan::build(&q, &sys);
        assert_eq!(plan.order[0].estimated_rows, 0);
        assert_eq!(plan.order[0].selectivity, 0.0);
    }

    #[test]
    fn nan_selectivity_never_displaces_the_driver() {
        let mk = |index: usize, selectivity: f64| SubQuery {
            kind: SubQueryKind::Content,
            index,
            estimated_rows: 0,
            selectivity,
            description: format!("sub {index}"),
        };
        // Wherever the poisoned estimate sits, the finite minimum drives and the NaN
        // sorts last.  (With the old `partial_cmp(..).unwrap_or(Equal)` rule, a NaN
        // compared Equal to everything, so a leading NaN kept position 0 under the
        // stable sort and became the driver.)
        for nan_pos in 0..3 {
            let mut subs = [mk(0, 0.4), mk(1, 0.1), mk(2, 0.9)];
            subs[nan_pos].selectivity = f64::NAN;
            let finite_min = subs
                .iter()
                .filter(|s| !s.selectivity.is_nan())
                .min_by(|a, b| a.selectivity.total_cmp(&b.selectivity))
                .unwrap()
                .index;
            subs.sort_by(SubQuery::selectivity_order);
            assert_eq!(subs[0].index, finite_min, "NaN at {nan_pos} displaced the driver");
            assert!(subs.last().unwrap().selectivity.is_nan(), "NaN must sort last");
        }
        // Exact ties still keep declaration order (the sort is stable), so plans stay
        // deterministic for equal estimates.
        let mut subs = [mk(0, 0.5), mk(1, 0.5), mk(2, 0.2)];
        subs.sort_by(SubQuery::selectivity_order);
        assert_eq!(subs.iter().map(|s| s.index).collect::<Vec<_>>(), vec![2, 0, 1]);
    }

    #[test]
    fn explain_is_human_readable() {
        let (sys, _, _) = sample_system();
        let q = Query::new(Target::AnnotationContents).with_phrase("ordinary");
        let plan = Plan::build(&q, &sys);
        let explain = plan.explain();
        assert!(explain.contains("Plan"));
        assert!(explain.contains("Content"));
        assert!(explain.contains("rows"));
    }

    #[test]
    fn empty_query_has_empty_plan() {
        let sys = Graphitti::new();
        let plan = Plan::build(&Query::new(Target::Referents), &sys);
        assert!(plan.order.is_empty());
        assert!(plan.driver().is_none());
    }

    #[test]
    fn empty_system_plans_without_panicking() {
        let sys = Graphitti::new();
        let q = Query::new(Target::ConnectionGraphs)
            .with_phrase("anything")
            .with_referent(ReferentFilter::OfType(DataType::Image));
        let plan = Plan::build(&q, &sys);
        assert_eq!(plan.order.len(), 2);
        for s in &plan.order {
            assert_eq!(s.selectivity, 0.0);
        }
    }
}
