//! A small textual query DSL.
//!
//! The demo's GUI query form "translates directly to a query expression"; this module is
//! a compact textual surface for that expression, so queries can be written, stored and
//! replayed without constructing the [`Query`] AST by hand.
//!
//! Grammar (case-insensitive keywords, clauses separated by `AND`):
//!
//! ```text
//! SELECT (contents | referents | graphs)
//! [ WHERE <clause> (AND <clause>)* ]
//!
//! clause :=
//!     content contains "<phrase>"
//!   | content keywords <word>+
//!   | content path <path-expression>
//!   | referent type <tag>                       ; dna, rna, protein, msa, image, model, ...
//!   | referent interval <domain> <start> <end>
//!   | referent region <system> <x0> <y0> <x1> <y1>
//!   | ontology term <concept-id>
//!   | ontology class <concept-id>
//!   | constraint consecutive <count> <gap>
//!   | constraint regions <count> <system> <x0> <y0> <x1> <y1>
//!   | constraint path <max-len>
//! ```

use graphitti_core::DataType;
use interval_index::Interval;
use ontology::ConceptId;
use spatial_index::Rect;
use xmlstore::PathExpr;

use crate::ast::{ContentFilter, GraphConstraint, OntologyFilter, Query, ReferentFilter, Target};

/// An error parsing the query DSL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// A human-readable description of the problem.
    pub message: String,
}

impl ParseError {
    fn new(msg: impl Into<String>) -> ParseError {
        ParseError { message: msg.into() }
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "query parse error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

type Result<T> = std::result::Result<T, ParseError>;

/// Parse a query from the textual DSL.
pub fn parse_query(input: &str) -> Result<Query> {
    let tokens = tokenize(input);
    let mut i = 0;

    expect_keyword(&tokens, &mut i, "select")?;
    let target = match next(&tokens, &mut i)?.to_ascii_lowercase().as_str() {
        "contents" | "content" => Target::AnnotationContents,
        "referents" | "referent" => Target::Referents,
        "graphs" | "graph" => Target::ConnectionGraphs,
        other => return Err(ParseError::new(format!("unknown target '{other}'"))),
    };
    let mut query = Query::new(target);

    if i >= tokens.len() {
        return Ok(query);
    }
    expect_keyword(&tokens, &mut i, "where")?;

    loop {
        parse_clause(&tokens, &mut i, &mut query)?;
        match tokens.get(i) {
            None => break,
            Some(t) if t.eq_ignore_ascii_case("and") => {
                i += 1;
            }
            Some(t) => return Err(ParseError::new(format!("expected AND or end, found '{t}'"))),
        }
    }
    Ok(query)
}

fn parse_clause(tokens: &[String], i: &mut usize, query: &mut Query) -> Result<()> {
    let head = next(tokens, i)?.to_ascii_lowercase();
    match head.as_str() {
        "content" => parse_content(tokens, i, query),
        "referent" => parse_referent(tokens, i, query),
        "ontology" => parse_ontology(tokens, i, query),
        "constraint" => parse_constraint(tokens, i, query),
        other => Err(ParseError::new(format!("unknown clause '{other}'"))),
    }
}

fn parse_content(tokens: &[String], i: &mut usize, query: &mut Query) -> Result<()> {
    let kind = next(tokens, i)?.to_ascii_lowercase();
    match kind.as_str() {
        "contains" => {
            let phrase = next(tokens, i)?;
            query.content.push(ContentFilter::Phrase(unquote(&phrase)));
        }
        "keywords" => {
            let mut words = Vec::new();
            while let Some(t) = tokens.get(*i) {
                if is_clause_boundary(t) {
                    break;
                }
                words.push(unquote(t));
                *i += 1;
            }
            if words.is_empty() {
                return Err(ParseError::new("content keywords needs at least one word"));
            }
            query.content.push(ContentFilter::Keywords(words));
        }
        "path" => {
            let expr = next(tokens, i)?;
            let parsed = PathExpr::parse(&unquote(&expr))
                .map_err(|e| ParseError::new(format!("bad path expression: {e}")))?;
            query.content.push(ContentFilter::Path(parsed));
        }
        other => return Err(ParseError::new(format!("unknown content predicate '{other}'"))),
    }
    Ok(())
}

fn parse_referent(tokens: &[String], i: &mut usize, query: &mut Query) -> Result<()> {
    let kind = next(tokens, i)?.to_ascii_lowercase();
    match kind.as_str() {
        "type" => {
            let tag = next(tokens, i)?.to_ascii_lowercase();
            let ty = DataType::from_tag(&tag)
                .ok_or_else(|| ParseError::new(format!("unknown data type tag '{tag}'")))?;
            query.referents.push(ReferentFilter::OfType(ty));
        }
        "interval" => {
            let domain = next(tokens, i)?;
            let start = parse_u64(tokens, i)?;
            let end = parse_u64(tokens, i)?;
            let interval = Interval::checked(start, end)
                .ok_or_else(|| ParseError::new("inverted interval in query"))?;
            query.referents.push(ReferentFilter::IntervalOverlaps {
                domain: Some(unquote(&domain)),
                interval,
            });
        }
        "region" => {
            let system = next(tokens, i)?;
            let x0 = parse_f64(tokens, i)?;
            let y0 = parse_f64(tokens, i)?;
            let x1 = parse_f64(tokens, i)?;
            let y1 = parse_f64(tokens, i)?;
            query.referents.push(ReferentFilter::RegionOverlaps {
                system: Some(unquote(&system)),
                rect: Rect::rect2(x0, y0, x1, y1),
            });
        }
        other => return Err(ParseError::new(format!("unknown referent predicate '{other}'"))),
    }
    Ok(())
}

fn parse_ontology(tokens: &[String], i: &mut usize, query: &mut Query) -> Result<()> {
    let kind = next(tokens, i)?.to_ascii_lowercase();
    let id = parse_u64(tokens, i)? as u32;
    match kind.as_str() {
        "term" => query.ontology.push(OntologyFilter::CitesTerm(ConceptId(id))),
        "class" => query
            .ontology
            .push(OntologyFilter::InClass { concept: ConceptId(id), relations: Vec::new() }),
        other => return Err(ParseError::new(format!("unknown ontology predicate '{other}'"))),
    }
    Ok(())
}

fn parse_constraint(tokens: &[String], i: &mut usize, query: &mut Query) -> Result<()> {
    let kind = next(tokens, i)?.to_ascii_lowercase();
    match kind.as_str() {
        "consecutive" => {
            let count = parse_u64(tokens, i)? as usize;
            let gap = parse_u64(tokens, i)?;
            query.constraints.push(GraphConstraint::ConsecutiveIntervals { count, max_gap: gap });
        }
        "regions" => {
            let count = parse_u64(tokens, i)? as usize;
            let system = next(tokens, i)?;
            let x0 = parse_f64(tokens, i)?;
            let y0 = parse_f64(tokens, i)?;
            let x1 = parse_f64(tokens, i)?;
            let y1 = parse_f64(tokens, i)?;
            query.constraints.push(GraphConstraint::MinRegionCount {
                count,
                within: Rect::rect2(x0, y0, x1, y1),
                system: unquote(&system),
            });
        }
        "path" => {
            let max_len = parse_u64(tokens, i)? as usize;
            query.constraints.push(GraphConstraint::PathExists { max_len });
        }
        other => return Err(ParseError::new(format!("unknown constraint '{other}'"))),
    }
    Ok(())
}

// --- tokenizer & helpers ---

fn tokenize(input: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut chars = input.chars().peekable();
    while let Some(&c) = chars.peek() {
        if c.is_whitespace() {
            chars.next();
        } else if c == '"' || c == '\'' {
            let quote = c;
            chars.next();
            let mut s = String::from(quote);
            for ch in chars.by_ref() {
                s.push(ch);
                if ch == quote {
                    break;
                }
            }
            tokens.push(s);
        } else {
            let mut s = String::new();
            while let Some(&ch) = chars.peek() {
                if ch.is_whitespace() || ch == '"' || ch == '\'' {
                    break;
                }
                s.push(ch);
                chars.next();
            }
            tokens.push(s);
        }
    }
    tokens
}

fn unquote(s: &str) -> String {
    let bytes = s.as_bytes();
    if s.len() >= 2 && (bytes[0] == b'"' || bytes[0] == b'\'') && bytes[bytes.len() - 1] == bytes[0]
    {
        s[1..s.len() - 1].to_string()
    } else {
        s.to_string()
    }
}

fn is_clause_boundary(token: &str) -> bool {
    matches!(
        token.to_ascii_lowercase().as_str(),
        "and" | "content" | "referent" | "ontology" | "constraint"
    )
}

fn next(tokens: &[String], i: &mut usize) -> Result<String> {
    let t = tokens.get(*i).cloned().ok_or_else(|| ParseError::new("unexpected end of query"))?;
    *i += 1;
    Ok(t)
}

fn expect_keyword(tokens: &[String], i: &mut usize, keyword: &str) -> Result<()> {
    let t = next(tokens, i)?;
    if t.eq_ignore_ascii_case(keyword) {
        Ok(())
    } else {
        Err(ParseError::new(format!("expected '{keyword}', found '{t}'")))
    }
}

fn parse_u64(tokens: &[String], i: &mut usize) -> Result<u64> {
    let t = next(tokens, i)?;
    t.parse::<u64>().map_err(|_| ParseError::new(format!("expected an integer, found '{t}'")))
}

fn parse_f64(tokens: &[String], i: &mut usize) -> Result<f64> {
    let t = next(tokens, i)?;
    t.parse::<f64>().map_err(|_| ParseError::new(format!("expected a number, found '{t}'")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_query() {
        let q = parse_query("SELECT graphs").unwrap();
        assert_eq!(q.target, Target::ConnectionGraphs);
        assert!(q.is_unconstrained());
    }

    #[test]
    fn content_phrase() {
        let q = parse_query(r#"SELECT contents WHERE content contains "protein TP53""#).unwrap();
        assert_eq!(q.target, Target::AnnotationContents);
        assert_eq!(q.content, vec![ContentFilter::Phrase("protein TP53".into())]);
    }

    #[test]
    fn content_keywords_multiple() {
        let q =
            parse_query("SELECT referents WHERE content keywords protease cleavage site").unwrap();
        assert_eq!(
            q.content,
            vec![ContentFilter::Keywords(vec![
                "protease".into(),
                "cleavage".into(),
                "site".into()
            ])]
        );
    }

    #[test]
    fn referent_type_and_interval() {
        let q = parse_query(
            "SELECT referents WHERE referent type dna AND referent interval chr7 100 250",
        )
        .unwrap();
        assert_eq!(q.referents.len(), 2);
        assert_eq!(q.referents[0], ReferentFilter::OfType(DataType::DnaSequence));
        match &q.referents[1] {
            ReferentFilter::IntervalOverlaps { domain, interval } => {
                assert_eq!(domain.as_deref(), Some("chr7"));
                assert_eq!(*interval, Interval::new(100, 250));
            }
            _ => panic!("wrong filter"),
        }
    }

    #[test]
    fn referent_region() {
        let q = parse_query("SELECT graphs WHERE referent region mouse-25um 0 0 100 100").unwrap();
        match &q.referents[0] {
            ReferentFilter::RegionOverlaps { system, rect } => {
                assert_eq!(system.as_deref(), Some("mouse-25um"));
                assert_eq!(*rect, Rect::rect2(0.0, 0.0, 100.0, 100.0));
            }
            _ => panic!("wrong filter"),
        }
    }

    #[test]
    fn ontology_and_constraints() {
        let q = parse_query(
            "SELECT graphs WHERE ontology class 3 AND constraint consecutive 4 60 AND constraint path 5",
        )
        .unwrap();
        assert_eq!(
            q.ontology,
            vec![OntologyFilter::InClass { concept: ConceptId(3), relations: vec![] }]
        );
        assert_eq!(q.constraints.len(), 2);
        assert_eq!(
            q.constraints[0],
            GraphConstraint::ConsecutiveIntervals { count: 4, max_gap: 60 }
        );
        assert_eq!(q.constraints[1], GraphConstraint::PathExists { max_len: 5 });
    }

    #[test]
    fn content_path_expression() {
        let q = parse_query(
            r#"SELECT contents WHERE content path "//dc:subject[contains(text(), 'nuclei')]""#,
        )
        .unwrap();
        assert!(matches!(q.content[0], ContentFilter::Path(_)));
    }

    #[test]
    fn full_tp53_query_parses() {
        let q = parse_query(
            r#"SELECT graphs WHERE content contains "protein TP53" AND ontology term 7 AND constraint regions 2 cs25 0 0 1000 1000"#,
        )
        .unwrap();
        assert_eq!(q.content.len(), 1);
        assert_eq!(q.ontology.len(), 1);
        assert_eq!(q.constraints.len(), 1);
    }

    #[test]
    fn errors() {
        assert!(parse_query("").is_err());
        assert!(parse_query("SELECT bogus").is_err());
        assert!(parse_query("SELECT graphs content contains \"x\"").is_err()); // missing WHERE
        assert!(parse_query("SELECT graphs WHERE referent type nope").is_err());
        assert!(parse_query("SELECT graphs WHERE content keywords").is_err());
        assert!(parse_query("SELECT graphs WHERE constraint consecutive four 60").is_err());
        assert!(parse_query("SELECT graphs WHERE bogus clause").is_err());
    }

    #[test]
    fn roundtrip_through_executor_shape() {
        // Just ensure a parsed query has the expected structure to feed the executor.
        let q = parse_query(
            "SELECT referents WHERE content contains \"protease\" AND constraint consecutive 4 60",
        )
        .unwrap();
        assert_eq!(q.target, Target::Referents);
        assert_eq!(q.subquery_count(), 1);
        assert_eq!(q.constraints.len(), 1);
    }
}
