//! The query result model.
//!
//! Results are organised the way the demo's query tab organises them: "in cases where
//! subgraphs of the a-graph are returned as a result, each connected subgraph forms a
//! result page".  A [`QueryResult`] therefore holds a list of [`ResultPage`]s, each a
//! connection subgraph together with the decoded entities it contains, plus flat
//! convenience lists for the content- and referent-targeted queries.

use agraph::{ConnectionSubgraph, NodeId};
use graphitti_core::{AnnotationId, ObjectId, ReferentId};
use ontology::ConceptId;
use serde::Serialize;

/// One result page: a connected witness subgraph and the entities it contains.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ResultPage {
    /// The connection subgraph for this page.
    pub subgraph: ConnectionSubgraph,
    /// Annotation contents in the page.
    pub annotations: Vec<AnnotationId>,
    /// Referents in the page.
    pub referents: Vec<ReferentId>,
    /// Objects in the page.
    pub objects: Vec<ObjectId>,
    /// Ontology terms in the page.
    pub terms: Vec<ConceptId>,
}

impl ResultPage {
    /// Total number of nodes in the page's subgraph.
    pub fn size(&self) -> usize {
        self.subgraph.size()
    }

    /// Whether the page contains a given annotation.
    pub fn contains_annotation(&self, id: AnnotationId) -> bool {
        self.annotations.contains(&id)
    }

    /// Whether the page contains a given object.
    pub fn contains_object(&self, id: ObjectId) -> bool {
        self.objects.contains(&id)
    }
}

/// Whether a result is the complete answer or a marked shard-degraded subset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Completeness {
    /// Every shard contributed: the result is the full answer.
    Complete,
    /// The listed shards were unresponsive and contributed nothing; the result is
    /// byte-identical to the answer computed without their candidate
    /// contributions — an exact, marked subset of the complete answer.
    Degraded {
        /// The shards that did not contribute, ascending.
        missing_shards: Vec<usize>,
    },
}

/// The non-page remainder of a [`QueryResult`], for streaming transports: what a
/// server sends *after* the page frames so a client can reassemble the exact
/// result without either side ever materialising a second whole-result buffer.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ResultTail {
    /// Flat annotation list (for `AnnotationContents` target).
    pub annotations: Vec<AnnotationId>,
    /// Flat referent list (for `Referents` target).
    pub referents: Vec<ReferentId>,
    /// Flat object list (objects selected by the query).
    pub objects: Vec<ObjectId>,
    /// Shards that failed to contribute (ascending; empty = complete answer).
    pub missing_shards: Vec<usize>,
}

/// The result of running a query.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct QueryResult {
    /// Result pages (connection subgraphs), one per connected witness component.
    pub pages: Vec<ResultPage>,
    /// Flat annotation list (for `AnnotationContents` target).
    pub annotations: Vec<AnnotationId>,
    /// Flat referent list (for `Referents` target).
    pub referents: Vec<ReferentId>,
    /// Flat object list (objects selected by the query).
    pub objects: Vec<ObjectId>,
    /// Shards that failed to contribute (ascending; empty = complete answer).
    /// Only the sharded path under `allow_partial` ever populates this — see
    /// [`Completeness`] for the exact-subset contract.
    pub missing_shards: Vec<usize>,
}

impl QueryResult {
    /// An empty result.
    pub fn empty() -> Self {
        QueryResult::default()
    }

    /// Number of result pages.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Whether this is a shard-degraded partial answer.
    pub fn is_degraded(&self) -> bool {
        !self.missing_shards.is_empty()
    }

    /// The result's completeness tag.
    pub fn completeness(&self) -> Completeness {
        if self.missing_shards.is_empty() {
            Completeness::Complete
        } else {
            Completeness::Degraded { missing_shards: self.missing_shards.clone() }
        }
    }

    /// Whether the result is empty (no pages and no flat results).
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
            && self.annotations.is_empty()
            && self.referents.is_empty()
            && self.objects.is_empty()
    }

    /// The total node footprint across all pages.
    pub fn total_nodes(&self) -> usize {
        self.pages.iter().map(ResultPage::size).sum()
    }

    /// Serialise the result to JSON (the query tab's result export).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("query result serialises")
    }

    /// Decompose the result for page-at-a-time streaming: an iterator over the
    /// result pages (sent first, one frame each) and the flat [`ResultTail`]
    /// (sent last).  [`from_stream`](Self::from_stream) is the exact inverse —
    /// `from_stream(pages, tail)` rebuilds a result equal to the original, so a
    /// streamed transfer reassembles byte-identical under
    /// [`to_json`](Self::to_json).
    pub fn into_stream(self) -> (std::vec::IntoIter<ResultPage>, ResultTail) {
        let QueryResult { pages, annotations, referents, objects, missing_shards } = self;
        (pages.into_iter(), ResultTail { annotations, referents, objects, missing_shards })
    }

    /// Reassemble a result from a page stream and its tail — the inverse of
    /// [`into_stream`](Self::into_stream).
    pub fn from_stream(pages: impl IntoIterator<Item = ResultPage>, tail: ResultTail) -> Self {
        let ResultTail { annotations, referents, objects, missing_shards } = tail;
        QueryResult {
            pages: pages.into_iter().collect(),
            annotations,
            referents,
            objects,
            missing_shards,
        }
    }

    /// All node ids appearing anywhere in the result pages (deduplicated).
    pub fn all_nodes(&self) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> =
            self.pages.iter().flat_map(|p| p.subgraph.subgraph.nodes.iter().copied()).collect();
        nodes.sort();
        nodes.dedup();
        nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agraph::Subgraph;

    fn page(objs: Vec<ObjectId>) -> ResultPage {
        ResultPage {
            subgraph: ConnectionSubgraph {
                terminals: vec![NodeId(0), NodeId(1)],
                subgraph: Subgraph { nodes: vec![NodeId(0), NodeId(1)], edges: vec![] },
            },
            annotations: vec![AnnotationId(0)],
            referents: vec![],
            objects: objs,
            terms: vec![],
        }
    }

    #[test]
    fn empty_result() {
        let r = QueryResult::empty();
        assert!(r.is_empty());
        assert_eq!(r.page_count(), 0);
        assert_eq!(r.total_nodes(), 0);
        assert!(r.all_nodes().is_empty());
    }

    #[test]
    fn result_aggregates() {
        let mut r = QueryResult::empty();
        r.pages.push(page(vec![ObjectId(5)]));
        r.objects.push(ObjectId(5));
        assert!(!r.is_empty());
        assert_eq!(r.page_count(), 1);
        assert_eq!(r.total_nodes(), 2);
        assert_eq!(r.all_nodes(), vec![NodeId(0), NodeId(1)]);
        assert!(r.pages[0].contains_object(ObjectId(5)));
        assert!(r.pages[0].contains_annotation(AnnotationId(0)));
        assert_eq!(r.pages[0].size(), 2);
    }

    #[test]
    fn completeness_tag_tracks_missing_shards() {
        let mut r = QueryResult::empty();
        assert!(!r.is_degraded());
        assert_eq!(r.completeness(), Completeness::Complete);
        r.missing_shards = vec![1, 3];
        assert!(r.is_degraded());
        assert_eq!(r.completeness(), Completeness::Degraded { missing_shards: vec![1, 3] });
        assert!(r.to_json().contains("missing_shards"));
    }

    #[test]
    fn stream_decomposition_roundtrips_byte_identical() {
        let mut r = QueryResult::empty();
        r.pages.push(page(vec![ObjectId(5)]));
        r.pages.push(page(vec![ObjectId(7), ObjectId(9)]));
        r.objects = vec![ObjectId(5), ObjectId(7), ObjectId(9)];
        r.annotations = vec![AnnotationId(0), AnnotationId(3)];
        r.missing_shards = vec![2];
        let expected = r.to_json();
        let (pages, tail) = r.into_stream();
        assert_eq!(tail.missing_shards, vec![2]);
        let rebuilt = QueryResult::from_stream(pages, tail);
        assert_eq!(rebuilt.to_json(), expected);
        assert_eq!(rebuilt.page_count(), 2);
    }

    #[test]
    fn result_serializes_to_json() {
        let mut r = QueryResult::empty();
        r.pages.push(page(vec![ObjectId(5)]));
        r.objects.push(ObjectId(5));
        let json = r.to_json();
        assert!(json.contains("pages"));
        assert!(json.contains("objects"));
    }
}
