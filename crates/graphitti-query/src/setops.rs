//! Sorted candidate-set operations.
//!
//! The pipelined executor represents every candidate set as a **sorted, deduplicated
//! `Vec`** of dense ids rather than a `HashSet`: posting lists come out of the
//! [`graphitti_core::Indexes`] already sorted, intersection of sorted runs is cache
//! friendly, and membership probes are binary searches with no hashing.  Intersection
//! uses a galloping (exponential-probe) merge, which costs `O(m log(n/m))` when one
//! side is much smaller — exactly the shape the planner creates by running the most
//! selective subquery first.

/// Intersect two sorted, deduplicated slices into a sorted `Vec`.
///
/// Gallops through the longer side: for each element of the shorter side, the matching
/// position in the longer side is located by doubling probes from the current cursor,
/// then binary search inside the bracketed window.
pub fn intersect_sorted<T: Ord + Copy>(a: &[T], b: &[T]) -> Vec<T> {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut out = Vec::with_capacity(small.len());
    let mut lo = 0usize;
    for &x in small {
        match gallop(large, lo, x) {
            Ok(pos) => {
                out.push(x);
                lo = pos + 1;
            }
            Err(pos) => lo = pos,
        }
        if lo >= large.len() {
            break;
        }
    }
    out
}

/// Locate `x` in the sorted slice `hay[from..]` by galloping: probe offsets 1, 2, 4, …
/// until the value is bracketed, then binary search the bracket. Returns `Ok(index)`
/// when found, `Err(insertion_index)` otherwise.
fn gallop<T: Ord + Copy>(hay: &[T], from: usize, x: T) -> Result<usize, usize> {
    let n = hay.len();
    if from >= n {
        return Err(n);
    }
    let mut step = 1usize;
    let mut lo = from;
    let mut hi = from;
    loop {
        match hay[hi].cmp(&x) {
            std::cmp::Ordering::Equal => return Ok(hi),
            std::cmp::Ordering::Greater => break,
            std::cmp::Ordering::Less => {
                lo = hi + 1;
                let next = hi + step;
                step <<= 1;
                if next >= n {
                    hi = n;
                    break;
                }
                hi = next;
            }
        }
    }
    match hay[lo..hi.min(n)].binary_search(&x) {
        Ok(i) => Ok(lo + i),
        Err(i) => Err(lo + i),
    }
}

/// Whether `x` occurs in the sorted slice (binary-search membership probe).
pub fn contains_sorted<T: Ord>(hay: &[T], x: &T) -> bool {
    hay.binary_search(x).is_ok()
}

/// Union several sorted, deduplicated posting lists into one sorted, deduplicated `Vec`.
///
/// Two fast paths, then a general k-way merge:
///
/// * **Disjoint runs** (common for scatter-merge of shard-partitioned ids and for
///   postings over non-overlapping id ranges): when the runs, ordered by first element,
///   never overlap, the union is their concatenation — `O(n)` with bulk copies and no
///   comparisons beyond the boundary check.
/// * **General case**: a binary reduction of two-way *galloping* merges. Each two-way
///   merge gallops through whichever side currently holds the run of smaller elements
///   and bulk-copies it, so a merge of runs with long non-interleaved stretches costs
///   `O(m log(n/m))` comparisons instead of the old collect-sort-dedup's
///   `O((m+n) log(m+n))`.
pub fn union_sorted<T: Ord + Copy>(lists: &[&[T]]) -> Vec<T> {
    let mut runs: Vec<&[T]> = lists.iter().copied().filter(|l| !l.is_empty()).collect();
    match runs.len() {
        0 => return Vec::new(),
        1 => return runs[0].to_vec(),
        _ => {}
    }
    runs.sort_by_key(|r| r[0]);
    if runs.windows(2).all(|w| w[0].last().expect("non-empty run") < &w[1][0]) {
        let mut out = Vec::with_capacity(runs.iter().map(|r| r.len()).sum());
        for r in &runs {
            out.extend_from_slice(r);
        }
        return out;
    }
    let mut round: Vec<Vec<T>> = {
        let mut first = Vec::with_capacity(runs.len().div_ceil(2));
        let mut it = runs.chunks(2);
        for pair in &mut it {
            match pair {
                [a, b] => first.push(union_two(a, b)),
                [a] => first.push(a.to_vec()),
                _ => unreachable!("chunks(2)"),
            }
        }
        first
    };
    while round.len() > 1 {
        let mut next = Vec::with_capacity(round.len().div_ceil(2));
        let mut it = round.into_iter();
        while let Some(a) = it.next() {
            match it.next() {
                Some(b) => next.push(union_two(&a, &b)),
                None => next.push(a),
            }
        }
        round = next;
    }
    round.pop().expect("at least one run")
}

/// Union two sorted, deduplicated runs with galloping bulk copies: locate how far the
/// current side stays below the other side's head by exponential probe + binary search,
/// then `extend_from_slice` the whole stretch at once.
fn union_two<T: Ord + Copy>(a: &[T], b: &[T]) -> Vec<T> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        if a[i] < b[j] {
            // Copy everything in `a` strictly below b[j] in one gallop + memcpy.
            let end = match gallop(a, i, b[j]) {
                Ok(pos) | Err(pos) => pos,
            };
            out.extend_from_slice(&a[i..end]);
            i = end;
        } else if b[j] < a[i] {
            let end = match gallop(b, j, a[i]) {
                Ok(pos) | Err(pos) => pos,
            };
            out.extend_from_slice(&b[j..end]);
            j = end;
        } else {
            out.push(a[i]);
            i += 1;
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intersect_basic() {
        assert_eq!(intersect_sorted(&[1, 3, 5, 7], &[2, 3, 4, 7, 9]), vec![3, 7]);
        assert_eq!(intersect_sorted::<u64>(&[], &[1, 2]), Vec::<u64>::new());
        assert_eq!(intersect_sorted(&[1, 2], &[]), Vec::<u64>::new());
        assert_eq!(intersect_sorted(&[5], &[5]), vec![5]);
    }

    #[test]
    fn intersect_skewed_sizes_gallops() {
        let big: Vec<u64> = (0..10_000).collect();
        let small = vec![0u64, 17, 4_096, 9_999];
        assert_eq!(intersect_sorted(&small, &big), small);
        assert_eq!(intersect_sorted(&big, &small), small);
        let missing = vec![10_000u64, 20_000];
        assert!(intersect_sorted(&missing, &big).is_empty());
    }

    #[test]
    fn intersect_matches_naive_on_random_runs() {
        // deterministic pseudo-random runs
        let mut s = 42u64;
        let mut next = || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            s >> 33
        };
        for _ in 0..50 {
            let mut a: Vec<u64> = (0..(next() % 60)).map(|_| next() % 200).collect();
            let mut b: Vec<u64> = (0..(next() % 600)).map(|_| next() % 200).collect();
            a.sort_unstable();
            a.dedup();
            b.sort_unstable();
            b.dedup();
            let naive: Vec<u64> = a.iter().copied().filter(|x| b.contains(x)).collect();
            assert_eq!(intersect_sorted(&a, &b), naive);
        }
    }

    #[test]
    fn membership_probe() {
        let hay = [2u64, 4, 8];
        assert!(contains_sorted(&hay, &4));
        assert!(!contains_sorted(&hay, &5));
        assert!(!contains_sorted::<u64>(&[], &5));
    }

    #[test]
    fn union_dedups_and_sorts() {
        let out = union_sorted(&[&[3u64, 5][..], &[1, 3, 9][..], &[][..]]);
        assert_eq!(out, vec![1, 3, 5, 9]);
    }

    /// The pre-rewrite implementation, kept as the test oracle.
    fn union_sorted_old<T: Ord + Copy>(lists: &[&[T]]) -> Vec<T> {
        let mut out: Vec<T> = Vec::with_capacity(lists.iter().map(|l| l.len()).sum());
        for l in lists {
            out.extend_from_slice(l);
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    #[test]
    fn union_disjoint_fast_path_matches_old() {
        // Runs presented out of order, pairwise disjoint: concatenation path.
        let a: Vec<u64> = (100..200).collect();
        let b: Vec<u64> = (0..50).collect();
        let c: Vec<u64> = (500..900).step_by(3).collect();
        let lists: Vec<&[u64]> = vec![&a, &b, &c];
        assert_eq!(union_sorted(&lists), union_sorted_old(&lists));
    }

    #[test]
    fn union_overlapping_matches_old_on_random_runs() {
        let mut s = 7u64;
        let mut next = || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            s >> 33
        };
        for round in 0..60 {
            let k = 1 + (next() % 6) as usize;
            let runs: Vec<Vec<u64>> = (0..k)
                .map(|_| {
                    let mut r: Vec<u64> = (0..(next() % 80)).map(|_| next() % 300).collect();
                    r.sort_unstable();
                    r.dedup();
                    r
                })
                .collect();
            let lists: Vec<&[u64]> = runs.iter().map(|r| r.as_slice()).collect();
            assert_eq!(union_sorted(&lists), union_sorted_old(&lists), "round {round}");
        }
    }

    #[test]
    fn union_boundary_duplicates_cross_runs() {
        // Shared boundary values defeat the disjoint check and must be deduplicated.
        let lists: Vec<&[u64]> = vec![&[1, 5, 9], &[9, 10], &[10, 11]];
        assert_eq!(union_sorted(&lists), vec![1, 5, 9, 10, 11]);
        // Identical runs collapse to one.
        let lists: Vec<&[u64]> = vec![&[2, 4, 6]; 5];
        assert_eq!(union_sorted(&lists), vec![2, 4, 6]);
    }
}
