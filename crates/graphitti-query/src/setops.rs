//! Sorted candidate-set operations.
//!
//! The pipelined executor represents every candidate set as a **sorted, deduplicated
//! `Vec`** of dense ids rather than a `HashSet`: posting lists come out of the
//! [`graphitti_core::Indexes`] already sorted, intersection of sorted runs is cache
//! friendly, and membership probes are binary searches with no hashing.  Intersection
//! uses a galloping (exponential-probe) merge, which costs `O(m log(n/m))` when one
//! side is much smaller — exactly the shape the planner creates by running the most
//! selective subquery first.

/// Intersect two sorted, deduplicated slices into a sorted `Vec`.
///
/// Gallops through the longer side: for each element of the shorter side, the matching
/// position in the longer side is located by doubling probes from the current cursor,
/// then binary search inside the bracketed window.
pub fn intersect_sorted<T: Ord + Copy>(a: &[T], b: &[T]) -> Vec<T> {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut out = Vec::with_capacity(small.len());
    let mut lo = 0usize;
    for &x in small {
        match gallop(large, lo, x) {
            Ok(pos) => {
                out.push(x);
                lo = pos + 1;
            }
            Err(pos) => lo = pos,
        }
        if lo >= large.len() {
            break;
        }
    }
    out
}

/// Locate `x` in the sorted slice `hay[from..]` by galloping: probe offsets 1, 2, 4, …
/// until the value is bracketed, then binary search the bracket. Returns `Ok(index)`
/// when found, `Err(insertion_index)` otherwise.
fn gallop<T: Ord + Copy>(hay: &[T], from: usize, x: T) -> Result<usize, usize> {
    let n = hay.len();
    if from >= n {
        return Err(n);
    }
    let mut step = 1usize;
    let mut lo = from;
    let mut hi = from;
    loop {
        match hay[hi].cmp(&x) {
            std::cmp::Ordering::Equal => return Ok(hi),
            std::cmp::Ordering::Greater => break,
            std::cmp::Ordering::Less => {
                lo = hi + 1;
                let next = hi + step;
                step <<= 1;
                if next >= n {
                    hi = n;
                    break;
                }
                hi = next;
            }
        }
    }
    match hay[lo..hi.min(n)].binary_search(&x) {
        Ok(i) => Ok(lo + i),
        Err(i) => Err(lo + i),
    }
}

/// Whether `x` occurs in the sorted slice (binary-search membership probe).
pub fn contains_sorted<T: Ord>(hay: &[T], x: &T) -> bool {
    hay.binary_search(x).is_ok()
}

/// Union several sorted posting lists into one sorted, deduplicated `Vec`.
pub fn union_sorted<T: Ord + Copy>(lists: &[&[T]]) -> Vec<T> {
    let mut out: Vec<T> = Vec::with_capacity(lists.iter().map(|l| l.len()).sum());
    for l in lists {
        out.extend_from_slice(l);
    }
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intersect_basic() {
        assert_eq!(intersect_sorted(&[1, 3, 5, 7], &[2, 3, 4, 7, 9]), vec![3, 7]);
        assert_eq!(intersect_sorted::<u64>(&[], &[1, 2]), Vec::<u64>::new());
        assert_eq!(intersect_sorted(&[1, 2], &[]), Vec::<u64>::new());
        assert_eq!(intersect_sorted(&[5], &[5]), vec![5]);
    }

    #[test]
    fn intersect_skewed_sizes_gallops() {
        let big: Vec<u64> = (0..10_000).collect();
        let small = vec![0u64, 17, 4_096, 9_999];
        assert_eq!(intersect_sorted(&small, &big), small);
        assert_eq!(intersect_sorted(&big, &small), small);
        let missing = vec![10_000u64, 20_000];
        assert!(intersect_sorted(&missing, &big).is_empty());
    }

    #[test]
    fn intersect_matches_naive_on_random_runs() {
        // deterministic pseudo-random runs
        let mut s = 42u64;
        let mut next = || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            s >> 33
        };
        for _ in 0..50 {
            let mut a: Vec<u64> = (0..(next() % 60)).map(|_| next() % 200).collect();
            let mut b: Vec<u64> = (0..(next() % 600)).map(|_| next() % 200).collect();
            a.sort_unstable();
            a.dedup();
            b.sort_unstable();
            b.dedup();
            let naive: Vec<u64> = a.iter().copied().filter(|x| b.contains(x)).collect();
            assert_eq!(intersect_sorted(&a, &b), naive);
        }
    }

    #[test]
    fn membership_probe() {
        let hay = [2u64, 4, 8];
        assert!(contains_sorted(&hay, &4));
        assert!(!contains_sorted(&hay, &5));
        assert!(!contains_sorted::<u64>(&[], &5));
    }

    #[test]
    fn union_dedups_and_sorts() {
        let out = union_sorted(&[&[3u64, 5][..], &[1, 3, 9][..], &[][..]]);
        assert_eq!(out, vec![1, 3, 5, 9]);
    }
}
