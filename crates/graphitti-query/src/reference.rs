//! The scan-and-intersect reference executor.
//!
//! This is the pre-index execution strategy, kept deliberately free of the persistent
//! inverted indexes: every subquery recomputes its full matching set by scanning the
//! registries (`annotations()` / `referents()`), materialises it as a `HashSet`, and
//! the sets are intersected at the end.  It exists for two reasons:
//!
//! * it is the **correctness oracle** — the randomized equivalence tests assert that
//!   the plan-driven pipelined [`crate::Executor`] returns byte-identical results on
//!   arbitrary queries;
//! * it is the **ablation baseline** — the `ablation_indexes` benchmark runs both
//!   executors on the same workload to measure what the indexes and the
//!   seed-then-verify pipeline actually buy.
//!
//! Collation is shared with the pipelined executor (same [`crate::exec::Collator`]),
//! so the two strategies can only differ in how candidates are found.

use std::collections::HashSet;

use graphitti_core::{AnnotationId, Marker, ReferentId, SystemView};
use ontology::ConceptId;

use crate::ast::{ContentFilter, GraphConstraint, OntologyFilter, Query, ReferentFilter, Target};
use crate::exec::Collator;
use crate::result::QueryResult;

/// A query executor that evaluates every subquery by a full scan and intersects the
/// resulting sets — no secondary indexes, no plan.
pub struct ReferenceExecutor<'g> {
    system: &'g SystemView,
}

impl<'g> ReferenceExecutor<'g> {
    /// Create a reference executor over a system.
    pub fn new(system: &'g SystemView) -> Self {
        ReferenceExecutor { system }
    }

    /// Execute a query by scan-and-intersect and return its result.
    pub fn run(&self, query: &Query) -> QueryResult {
        collation_owned_shapes(query);
        let content_anns = self.eval_content(query);
        let (onto_anns, _) = self.eval_ontology(query);

        let annotation_candidates = intersect_opt(content_anns, onto_anns.clone());
        let referent_candidates = self.eval_referents(query);

        // The ontology-only set feeds constraints like "N regions annotated with term
        // T" (see Collator::collate); mirror the pipelined executor's contract.
        let constraint_anns = if !query.constraints.is_empty()
            && !query.ontology.is_empty()
            && !query.content.is_empty()
        {
            onto_anns.map(sorted_vec)
        } else {
            None
        };

        Collator::new(self.system).collate(
            query,
            annotation_candidates.map(sorted_vec),
            referent_candidates.map(sorted_vec),
            constraint_anns,
        )
    }

    /// Evaluate content filters. Returns `None` when there are none (unconstrained),
    /// else the set of annotation ids whose content satisfies *all* filters.  Note the
    /// per-query rebuild of the `doc → annotation` map — the cost the persistent index
    /// removes.
    fn eval_content(&self, query: &Query) -> Option<HashSet<AnnotationId>> {
        if query.content.is_empty() {
            return None;
        }
        let store = self.system.content_store();
        let doc_to_ann: std::collections::HashMap<_, _> =
            self.system.annotations().iter().map(|a| (a.doc_id, a.id)).collect();

        let mut acc: Option<HashSet<AnnotationId>> = None;
        for filter in &query.content {
            let matching: HashSet<AnnotationId> = match filter {
                ContentFilter::Phrase(p) => store
                    .containing_phrase(p)
                    .into_iter()
                    .filter_map(|d| doc_to_ann.get(&d).copied())
                    .collect(),
                ContentFilter::Keywords(ks) => {
                    let refs: Vec<&str> = ks.iter().map(String::as_str).collect();
                    store
                        .with_all_keywords(&refs)
                        .into_iter()
                        .filter_map(|d| doc_to_ann.get(&d).copied())
                        .collect()
                }
                ContentFilter::Path(expr) => store
                    .select(expr)
                    .into_iter()
                    .filter_map(|d| doc_to_ann.get(&d).copied())
                    .collect(),
            };
            acc = Some(match acc {
                None => matching,
                Some(prev) => prev.intersection(&matching).copied().collect(),
            });
        }
        acc
    }

    /// Evaluate ontology filters by scanning every annotation's term list. Returns the
    /// annotation set and the expanded set of qualifying concepts.
    fn eval_ontology(&self, query: &Query) -> (Option<HashSet<AnnotationId>>, HashSet<ConceptId>) {
        if query.ontology.is_empty() {
            return (None, HashSet::new());
        }
        let onto = self.system.ontology();
        let mut all_concepts: HashSet<ConceptId> = HashSet::new();
        let mut acc: Option<HashSet<AnnotationId>> = None;

        for filter in &query.ontology {
            // sorted, via the shared definition of "in class"
            let qualifying_concepts: Vec<ConceptId> = match filter {
                OntologyFilter::CitesTerm(c) => vec![*c],
                OntologyFilter::InClass { concept, relations } => {
                    crate::exec::expand_class(onto, *concept, relations)
                }
            };
            all_concepts.extend(&qualifying_concepts);

            // annotations citing any qualifying concept — full registry scan
            let anns: HashSet<AnnotationId> = self
                .system
                .annotations()
                .iter()
                .filter(|a| a.terms.iter().any(|t| qualifying_concepts.binary_search(t).is_ok()))
                .map(|a| a.id)
                .collect();
            acc = Some(match acc {
                None => anns,
                Some(prev) => prev.intersection(&anns).copied().collect(),
            });
        }
        (acc, all_concepts)
    }

    /// Evaluate referent filters by scanning every referent. Returns `None` when there
    /// are none, else the set of referent ids satisfying *all* filters.
    fn eval_referents(&self, query: &Query) -> Option<HashSet<ReferentId>> {
        if query.referents.is_empty() {
            return None;
        }
        let mut acc: Option<HashSet<ReferentId>> = None;
        for filter in &query.referents {
            let matching: HashSet<ReferentId> = self.eval_one_referent_filter(filter);
            acc = Some(match acc {
                None => matching,
                Some(prev) => prev.intersection(&matching).copied().collect(),
            });
        }
        acc
    }

    fn eval_one_referent_filter(&self, filter: &ReferentFilter) -> HashSet<ReferentId> {
        match filter {
            ReferentFilter::OfType(t) => self
                .system
                .referents()
                .iter()
                .filter(|r| self.system.object(r.object).map(|o| o.data_type == *t).unwrap_or(false))
                .map(|r| r.id)
                .collect(),
            ReferentFilter::OnObject(id) => self
                .system
                .referents()
                .iter()
                .filter(|r| r.object == *id)
                .map(|r| r.id)
                .collect(),
            ReferentFilter::IntervalOverlaps { domain, interval } => self
                .system
                .referents()
                .iter()
                .filter(|r| {
                    if domain.as_deref().is_some_and(|d| d != r.domain) {
                        return false;
                    }
                    matches!(&r.marker, Marker::Interval(iv) if iv.if_overlap(interval))
                })
                .map(|r| r.id)
                .collect(),
            ReferentFilter::RegionOverlaps { system, rect } => self
                .system
                .referents()
                .iter()
                .filter(|r| {
                    if system.as_deref().is_some_and(|s| s != r.domain) {
                        return false;
                    }
                    matches!(&r.marker, Marker::Region(rr) | Marker::Volume(rr) if rr.if_overlap(rect))
                })
                .map(|r| r.id)
                .collect(),
            ReferentFilter::BlockContains(ids) => {
                let want: HashSet<u64> = ids.iter().copied().collect();
                self.system
                    .referents()
                    .iter()
                    .filter(|r| match &r.marker {
                        Marker::BlockSet(set) => set.iter().any(|id| want.contains(id)),
                        _ => false,
                    })
                    .map(|r| r.id)
                    .collect()
            }
        }
    }
}

/// Compile-time pin for the AST shapes this oracle does **not** evaluate itself:
/// targets and graph constraints are collation concerns, shared with the pipelined
/// executor through [`Collator`] (see the module docs).  These exhaustive matches
/// compile to nothing, but a newly added `Target` or `GraphConstraint` variant
/// breaks compilation *here*, so the sharing gets revisited instead of silently
/// inherited — the same contract `graphitti-lint`'s footprint-exhaustiveness rule
/// enforces by name for the evaluated shapes.
fn collation_owned_shapes(query: &Query) {
    match query.target {
        Target::AnnotationContents | Target::Referents | Target::ConnectionGraphs => {}
    }
    for constraint in &query.constraints {
        match constraint {
            GraphConstraint::ConsecutiveIntervals { .. }
            | GraphConstraint::MinRegionCount { .. }
            | GraphConstraint::PathExists { .. } => {}
        }
    }
}

fn intersect_opt<T: Eq + std::hash::Hash + Clone>(
    a: Option<HashSet<T>>,
    b: Option<HashSet<T>>,
) -> Option<HashSet<T>> {
    match (a, b) {
        (None, None) => None,
        (Some(s), None) | (None, Some(s)) => Some(s),
        (Some(x), Some(y)) => Some(x.intersection(&y).cloned().collect()),
    }
}

fn sorted_vec<T: Ord>(set: HashSet<T>) -> Vec<T> {
    let mut v: Vec<T> = set.into_iter().collect();
    v.sort();
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Target;
    use crate::Executor;
    use graphitti_core::{DataType, Graphitti};

    #[test]
    fn reference_matches_pipelined_on_simple_queries() {
        let mut sys = Graphitti::new();
        let seq = sys.register_sequence("s", DataType::DnaSequence, 5000, "chr1");
        let term = sys.ontology_mut().add_concept("T");
        for i in 0..20u64 {
            let mut b = sys
                .annotate()
                .comment(if i % 3 == 0 { "special motif" } else { "ordinary" })
                .mark(seq, Marker::interval(i * 100, i * 100 + 50));
            if i % 2 == 0 {
                b = b.cite_term(term);
            }
            b.commit().unwrap();
        }
        for q in [
            Query::new(Target::AnnotationContents).with_phrase("special motif"),
            Query::new(Target::AnnotationContents)
                .with_phrase("special")
                .with_ontology(OntologyFilter::CitesTerm(term)),
            Query::new(Target::Referents)
                .with_referent(ReferentFilter::OfType(DataType::DnaSequence)),
            Query::new(Target::ConnectionGraphs).with_ontology(OntologyFilter::CitesTerm(term)),
        ] {
            let fast = Executor::new(&sys).run(&q);
            let slow = ReferenceExecutor::new(&sys).run(&q);
            assert_eq!(fast, slow, "divergence on {q:?}");
        }
    }
}
