//! Scatter-gather query serving over a [`ShardedSystem`](graphitti_core::ShardedSystem).
//!
//! [`ShardedExecutor`] fans one canonical query out to every shard of a [`ShardCut`]:
//! each shard plans the query against its *own* live statistics and runs the
//! seed → verify candidate pipeline over its local inverted indexes (the two subquery
//! families are independent until collation, so they scatter independently).  The
//! per-shard candidate sets come back in shard-local ids, are translated to global
//! ids (order-preserving — local and global id order are both creation order), and
//! merged as a [`CandidateSet`] union: under the default bitmap representation the
//! pre-sorted translated runs materialize into compressed containers and the global
//! merge is a container-wise OR; under the sorted-`Vec` ablation representation it
//! is [`union_sorted`](crate::setops::union_sorted)'s k-way galloping merge, whose disjoint-runs fast
//! path fires because the per-shard sets never overlap.  Collation —
//! candidate narrowing, graph constraints, page building — then runs **once**,
//! through the same generic [`Collator`](crate::exec) every other executor uses, over
//! the cut's global collation mirror.  Output pages, ordering and node ids are
//! therefore byte-identical to the unsharded path; the randomized cross-shard battery
//! in `tests/sharded_equivalence.rs` pins this against the [`ReferenceExecutor`]
//! oracle at shard counts {1, 2, 3, 8}.
//!
//! **Pruning.** The one id-bearing referent filter, [`ReferentFilter::OnObject`],
//! pins its candidates to the shards actually holding that object's referents
//! (usually exactly one — the object's hash shard).  The referent family is then
//! scattered only to those shards; every other shard contributes an empty run
//! without touching its indexes.  The *annotation* family still scatters to all
//! shards: a `ConnectionGraphs` query's flat annotation list is not object-filtered,
//! so content / ontology matches from other shards remain result-visible.
//!
//! [`ShardedQueryService`] is the serving wrapper: it holds the currently published
//! cut behind a `RwLock` (a publish installs the whole cut atomically — readers see
//! either all of the previous cut or all of the new one, never a torn mix), executes
//! on the calling thread (the scatter is the parallelism; callers are the
//! concurrency), and fronts execution with a cut-level result cache.  Cache entries
//! carry their **own** per-shard `(lineage, epoch-vector)` tag and the plan's read
//! footprint: an entry is served to a reader whose cut agrees with the entry's birth
//! cut on the footprint's epochs *on every shard* — so a publish that only touched
//! shard 2 with an ingest batch evicts nothing, and even a publish that did touch an
//! entry's footprint keeps it servable to readers still on the older cut.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

use graphitti_core::{
    AnnotationId, ComponentSet, EpochVector, ReferentId, ShardCut, Snapshot, Wal,
};

use crate::ast::{CacheKey, GraphConstraint, Query, ReferentFilter};
use crate::bitmap::{CandidateRepr, CandidateSet, DenseId};
use crate::exec::{Collator, Executor, DEFAULT_PARALLEL_VERIFY_THRESHOLD};
use crate::plan::Plan;
use crate::resilience::{cooperative_sleep, ChaosConfig, ShardFault, SleepInterrupt};
use crate::resilience::{CancelToken, Interrupt, QueryBudget, RetryPolicy, ServiceError};
use crate::result::QueryResult;
use crate::service::ServiceMetrics;

/// The scatter-gather executor over one consistent [`ShardCut`].
pub struct ShardedExecutor<'c> {
    cut: &'c ShardCut,
    shard_parallel: bool,
    verify_workers: usize,
    parallel_threshold: usize,
    force_scatter: bool,
    cancel: CancelToken,
    /// Per-attempt bound on how long one shard's scatter may stall (`None` = no
    /// bound).  Cooperative: it preempts injected stalls and is checked between
    /// retry attempts, not inside the shard's candidate pipeline.
    shard_timeout: Option<Duration>,
    retry: RetryPolicy,
    chaos: Option<ChaosConfig>,
    allow_partial: bool,
    /// Availability mask for tests and oracles: shards whose bit is clear are
    /// treated as down without consuming retry attempts, so a no-chaos masked run
    /// is the deterministic reference for a chaos-degraded one.
    shard_mask: u64,
    repr: CandidateRepr,
}

/// One shard's contribution: translated (global-id) candidate runs.
struct ShardContribution {
    ann: Option<Vec<AnnotationId>>,
    constraint_anns: Option<Vec<AnnotationId>>,
    refs: Option<Vec<ReferentId>>,
}

/// The result of gathering one shard, retries included.
enum ShardOutcome {
    Up(ShardContribution),
    Down { attempts: u32 },
}

impl<'c> ShardedExecutor<'c> {
    /// Create a sequential scatter-gather executor over a cut.
    pub fn new(cut: &'c ShardCut) -> Self {
        ShardedExecutor {
            cut,
            shard_parallel: false,
            verify_workers: 1,
            parallel_threshold: DEFAULT_PARALLEL_VERIFY_THRESHOLD,
            force_scatter: false,
            cancel: CancelToken::unbounded(),
            shard_timeout: None,
            retry: RetryPolicy::none(),
            chaos: None,
            allow_partial: false,
            shard_mask: u64::MAX,
            repr: CandidateRepr::default(),
        }
    }

    /// Select the candidate-set representation for the per-shard pipelines and the
    /// scatter-merge (see [`Executor::with_candidate_repr`]).  Byte-identical
    /// results either way; the sorted-`Vec` repr is the ablation baseline.
    pub fn with_candidate_repr(mut self, repr: CandidateRepr) -> Self {
        self.repr = repr;
        self
    }

    /// Run the per-shard candidate pipelines on scoped threads (one per shard)
    /// instead of sequentially.  Results are merged in shard order either way, so
    /// output is byte-identical.
    pub fn with_shard_parallel(mut self, parallel: bool) -> Self {
        self.shard_parallel = parallel;
        self
    }

    /// Per-shard verify fan-out (see [`Executor::with_verify_workers`]).
    pub fn with_verify_workers(mut self, workers: usize) -> Self {
        self.verify_workers = workers.max(1);
        self
    }

    /// Per-shard parallel-verify candidate threshold.
    pub fn with_parallel_threshold(mut self, threshold: usize) -> Self {
        self.parallel_threshold = threshold.max(1);
        self
    }

    /// Testing / benching knob: run the full scatter-gather-merge machinery even on
    /// a single-shard cut, instead of the fast path that executes directly on the
    /// lone shard (where global and local ids coincide by construction).
    pub fn with_forced_scatter(mut self, force: bool) -> Self {
        self.force_scatter = force;
        self
    }

    /// Attach a cooperative cancellation token (see [`CancelToken`]): the scatter,
    /// retry backoffs and the global collation all observe it.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }

    /// Bound each per-shard scatter attempt (injected stalls are preempted at this
    /// bound and the attempt counts as a transient failure).
    pub fn with_shard_timeout(mut self, timeout: Duration) -> Self {
        self.shard_timeout = Some(timeout);
        self
    }

    /// Retry policy for transiently failing shards (decorrelated-jitter backoff
    /// between attempts).
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Read-path fault injection (tests and benches only).
    pub fn with_chaos(mut self, chaos: ChaosConfig) -> Self {
        self.chaos = Some(chaos);
        self
    }

    /// Degrade instead of failing: when shards stay down past their retry budget,
    /// return the exact answer restricted to the responsive shards, tagged with
    /// [`QueryResult::missing_shards`], instead of
    /// [`ServiceError::ShardUnavailable`].
    pub fn with_allow_partial(mut self, allow: bool) -> Self {
        self.allow_partial = allow;
        self
    }

    /// Availability mask: shards whose bit is clear are treated as down (no retry
    /// attempts consumed).  The deterministic oracle for chaos-degraded runs.
    pub fn with_shard_mask(mut self, mask: u64) -> Self {
        self.shard_mask = mask;
        self
    }

    /// Execute a query: canonicalize, scatter, merge, collate globally.
    pub fn run(&self, query: &Query) -> QueryResult {
        self.run_canonical(&query.canonicalize())
    }

    /// Execute a query **already in canonical form** (as the service does, after
    /// rendering its cache key from the same canonical query).
    pub fn run_canonical(&self, canonical: &Query) -> QueryResult {
        self.try_run_canonical(canonical)
            // lint: allow(no-panic-serving) -- with no deadline, chaos, mask or partiality configured, no fallible path is reachable
            .expect("plain scatter-gather (no deadline, chaos, mask or partiality) cannot fail")
    }

    /// Fallible [`run_canonical`](Self::run_canonical): deadlines, cancellation,
    /// shard outages and retries surface as typed [`ServiceError`]s, and — under
    /// [`with_allow_partial`](Self::with_allow_partial) — unresponsive shards
    /// degrade the result instead of failing it.
    pub fn try_run_canonical(&self, canonical: &Query) -> Result<QueryResult, ServiceError> {
        if self.cut.shard_count() == 1
            && !self.force_scatter
            && self.chaos.is_none()
            && self.shard_mask & 1 != 0
        {
            // Single healthy shard: ids are global by construction and the shard's
            // own a-graph is the whole graph — the plain pipelined executor is exact.
            return Executor::new(self.cut.shard(0))
                .with_verify_workers(self.verify_workers)
                .with_parallel_threshold(self.parallel_threshold)
                .with_cancel(self.cancel.clone())
                .with_candidate_repr(self.repr)
                .try_run_canonical(canonical)
                .map_err(ServiceError::from);
        }

        let ref_mask = self.referent_shard_mask(canonical);
        let shards = self.cut.shard_count();
        let outcomes: Vec<Result<ShardOutcome, ServiceError>> = if self.shard_parallel && shards > 1
        {
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..shards)
                    .map(|i| scope.spawn(move || self.gather_shard(canonical, i, ref_mask)))
                    .collect();
                // lint: allow(no-panic-serving) -- join only errs if the scoped worker panicked; re-raising its panic is the honest report
                handles.into_iter().map(|h| h.join().expect("shard worker panicked")).collect()
            })
        } else {
            (0..shards).map(|i| self.gather_shard(canonical, i, ref_mask)).collect()
        };
        let outcomes: Vec<ShardOutcome> = outcomes.into_iter().collect::<Result<_, _>>()?;

        let mut missing: Vec<usize> = Vec::new();
        let mut first_down_attempts = 0u32;
        let mut gathered: Vec<Option<ShardContribution>> = Vec::with_capacity(shards);
        for (i, outcome) in outcomes.into_iter().enumerate() {
            match outcome {
                ShardOutcome::Up(c) => gathered.push(Some(c)),
                ShardOutcome::Down { attempts } => {
                    if missing.is_empty() {
                        first_down_attempts = attempts;
                    }
                    missing.push(i);
                    gathered.push(None);
                }
            }
        }
        if !self.allow_partial {
            if let Some(&shard) = missing.first() {
                return Err(ServiceError::ShardUnavailable {
                    shard,
                    attempts: first_down_attempts,
                });
            }
        }

        let contributions: Vec<ShardContribution> = if missing.is_empty() {
            // With no shard missing every slot is `Some`; flatten keeps them all.
            gathered.into_iter().flatten().collect()
        } else {
            // Degraded: every family must be *explicitly* restricted to the
            // responsive shards, including families the query leaves unconstrained
            // (a `None` run would make the global collator enumerate the whole cut
            // — missing shards included — and silently un-degrade the answer).
            gathered
                .into_iter()
                .enumerate()
                .map(|(i, c)| match c {
                    Some(c) => self.pin_unconstrained_families(i, c),
                    None => empty_contribution(canonical),
                })
                .collect()
        };

        let ann = merge_family(self.repr, contributions.iter().map(|c| c.ann.as_deref()));
        let constraint_anns =
            merge_family(self.repr, contributions.iter().map(|c| c.constraint_anns.as_deref()));
        let refs = merge_family(self.repr, contributions.iter().map(|c| c.refs.as_deref()));
        let mut result = Collator::new(self.cut)
            .with_cancel(self.cancel.clone())
            .try_collate(canonical, ann, refs, constraint_anns)
            .map_err(ServiceError::from)?;
        result.missing_shards = missing;
        Ok(result)
    }

    /// Gather one shard with the retry policy: an injected stall is slept through
    /// cooperatively (bounded by the shard timeout), an injected failure or a
    /// timed-out stall counts as a transient attempt, and attempts are separated by
    /// decorrelated-jitter backoff — clamped so a nap never spends budget the next
    /// attempt would need (a shard that cannot fit another attempt reports `Down`
    /// immediately rather than sleeping into `DeadlineExceeded`).  Query-level
    /// interrupts (deadline / cancellation) always take priority over shard-level
    /// outcomes.
    fn gather_shard(
        &self,
        canonical: &Query,
        shard: usize,
        ref_mask: u64,
    ) -> Result<ShardOutcome, ServiceError> {
        if self.shard_mask & (1 << shard) == 0 {
            return Ok(ShardOutcome::Down { attempts: 0 });
        }
        let attempts = self.retry.max_attempts.max(1);
        // Deterministic per-shard jitter stream (the backoff spread matters, not
        // the entropy source).
        let mut rng = 0x9e37_79b9_7f4a_7c15u64 ^ ((shard as u64) << 17) ^ (attempts as u64);
        let mut prev = self.retry.base_delay;
        for attempt in 1..=attempts {
            self.cancel.check().map_err(ServiceError::from)?;
            let attempt_start = Instant::now();
            let attempt_deadline = self.shard_timeout.map(|t| attempt_start + t);
            let fault = match &self.chaos {
                Some(chaos) => chaos.shard_attempt(shard),
                None => ShardFault::default(),
            };
            let mut transient = fault.fail;
            if let Some(delay) = fault.delay {
                match cooperative_sleep(delay, &self.cancel, attempt_deadline) {
                    Ok(()) => {}
                    Err(SleepInterrupt::Query(i)) => return Err(i.into()),
                    Err(SleepInterrupt::AttemptTimeout) => transient = true,
                }
            }
            if !transient {
                return match self.shard_candidates(canonical, shard, ref_mask) {
                    Ok(c) => Ok(ShardOutcome::Up(c)),
                    Err(i) => Err(i.into()),
                };
            }
            if attempt == attempts {
                return Ok(ShardOutcome::Down { attempts });
            }
            prev = self.retry.next_backoff(prev, &mut rng);
            // Never let the backoff nap eat the query budget: under a deadline,
            // cap the nap so at least one more attempt — estimated at the shard
            // timeout, or at what the attempt just measured — still fits.  When
            // even a zero-length nap leaves no room, the shard is out of retry
            // budget *now*: report it down (degrading or failing typed as
            // `ShardUnavailable`, consistently with an exhausted retry loop)
            // instead of sleeping into a guaranteed `DeadlineExceeded`.
            let mut nap = prev;
            if let Some(deadline) = self.cancel.deadline() {
                let attempt_cost = self
                    .shard_timeout
                    .unwrap_or_else(|| attempt_start.elapsed())
                    .max(Duration::from_millis(1));
                let remaining = deadline.saturating_duration_since(Instant::now());
                match remaining.checked_sub(attempt_cost) {
                    Some(room) if room > Duration::ZERO => nap = nap.min(room),
                    _ => return Ok(ShardOutcome::Down { attempts: attempt }),
                }
            }
            match cooperative_sleep(nap, &self.cancel, None) {
                Ok(()) => {}
                Err(SleepInterrupt::Query(i)) => return Err(i.into()),
                Err(SleepInterrupt::AttemptTimeout) => {
                    // lint: allow(no-panic-serving) -- backoff sleeps pass no attempt deadline to cooperative_sleep
                    unreachable!("backoff sleeps carry no attempt deadline")
                }
            }
        }
        // lint: allow(no-panic-serving) -- the final attempt returns Down; the 1..=attempts loop cannot fall through
        unreachable!("the attempt loop always returns")
    }

    /// In a degraded gather, replace a responsive shard's *unconstrained*
    /// annotation run (`None`) with its explicit full enumeration, translated to
    /// global ids — so the merged set spans exactly the responsive shards.  (The
    /// referent family needs no pinning: an unconstrained referent set is derived
    /// from the annotation set, and a shard's referents are colocated with its
    /// annotations.)
    fn pin_unconstrained_families(
        &self,
        shard: usize,
        mut c: ShardContribution,
    ) -> ShardContribution {
        if c.ann.is_none() {
            let snap: &Snapshot = self.cut.shard(shard);
            c.ann = Some(
                (0..snap.annotation_count() as u64)
                    .map(|a| self.cut.annotation_global(shard, AnnotationId(a)))
                    .collect(),
            );
        }
        c
    }

    /// The bitmask of shards the referent family must visit: all shards, narrowed by
    /// every id-bearing [`ReferentFilter::OnObject`] conjunct to the shards holding
    /// that object's referents.
    fn referent_shard_mask(&self, canonical: &Query) -> u64 {
        let all =
            if self.cut.shard_count() == 64 { u64::MAX } else { (1 << self.cut.shard_count()) - 1 };
        canonical.referents.iter().fold(all, |mask, f| match f {
            ReferentFilter::OnObject(id) => mask & self.cut.object_referent_shards(*id),
            _ => mask,
        })
    }

    /// Run both family pipelines on one shard and translate the results to global
    /// ids.  A shard outside `ref_mask` contributes an empty referent run without
    /// executing the referent family (its indexes hold no qualifying referent).
    fn shard_candidates(
        &self,
        canonical: &Query,
        shard: usize,
        ref_mask: u64,
    ) -> Result<ShardContribution, Interrupt> {
        let snap: &Snapshot = self.cut.shard(shard);
        let plan = Plan::build(canonical, snap);
        let exec = Executor::new(snap)
            .with_verify_workers(self.verify_workers)
            .with_parallel_threshold(self.parallel_threshold)
            .with_cancel(self.cancel.clone())
            .with_candidate_repr(self.repr);
        let (ann, constraint_anns) = exec.annotation_candidates(canonical, &plan)?;
        let refs = if canonical.referents.is_empty() {
            None
        } else if ref_mask & (1 << shard) == 0 {
            Some(Vec::new())
        } else {
            exec.referent_candidates(canonical, &plan)?.map(CandidateSet::into_sorted_vec)
        };
        Ok(ShardContribution {
            ann: ann.map(|s| {
                s.into_sorted_vec()
                    .into_iter()
                    .map(|a| self.cut.annotation_global(shard, a))
                    .collect()
            }),
            constraint_anns: constraint_anns
                .map(|v| v.into_iter().map(|a| self.cut.annotation_global(shard, a)).collect()),
            refs: refs.map(|v| v.into_iter().map(|r| self.cut.referent_global(shard, r)).collect()),
        })
    }
}

/// A down shard's contribution: nothing, in every family — with each family's
/// `Some`/`None` shape matched to how responsive shards report it in a degraded
/// gather, so [`merge_family`]'s uniformity invariant holds.  The annotation
/// family is always explicit there (see
/// [`ShardedExecutor::pin_unconstrained_families`]); `constraint_anns` is `Some`
/// exactly when the pipeline computes an ontology-only set (the
/// `MinRegionCount`-with-mixed-filters case); the referent family is `Some`
/// exactly when referent filters exist.
fn empty_contribution(canonical: &Query) -> ShardContribution {
    let needs_onto_only = !canonical.ontology.is_empty()
        && !canonical.content.is_empty()
        && canonical
            .constraints
            .iter()
            .any(|c| matches!(c, GraphConstraint::MinRegionCount { .. }));
    ShardContribution {
        ann: Some(Vec::new()),
        constraint_anns: needs_onto_only.then(Vec::new),
        refs: (!canonical.referents.is_empty()).then(Vec::new),
    }
}

/// Merge one candidate family across shards: `None` (family unconstrained) is
/// uniform across shards because every shard evaluated the same canonical query;
/// otherwise the translated per-shard runs are disjoint and sorted, and the union
/// is a container-wise bitmap OR (default repr) or [`union_sorted`](crate::setops::union_sorted)'s
/// k-way merge (ablation repr) — identical output either way.
fn merge_family<'a, T: DenseId + 'a>(
    repr: CandidateRepr,
    per_shard: impl Iterator<Item = Option<&'a [T]>>,
) -> Option<Vec<T>> {
    let runs: Option<Vec<&[T]>> = per_shard.collect();
    runs.map(|runs| CandidateSet::union_postings(repr, &runs).into_sorted_vec())
}

/// Tuning knobs for a [`ShardedQueryService`].
#[derive(Debug, Clone)]
pub struct ShardedServiceConfig {
    /// Cut-level result-cache capacity in entries; `0` disables caching.
    pub cache_capacity: usize,
    /// Whether the scatter phase runs shards on scoped threads.
    pub shard_parallel: bool,
    /// Per-shard verify fan-out within one query.
    pub verify_workers: usize,
    /// Candidate-count threshold for the per-shard parallel verify.
    pub parallel_threshold: usize,
    /// Per-attempt scatter bound for one shard (`None` = unbounded).
    pub shard_timeout: Option<Duration>,
    /// Retry policy for transiently failing shards.
    pub retry: RetryPolicy,
    /// Read-path fault injection for tests and benches (`None` in production).
    pub chaos: Option<ChaosConfig>,
}

impl Default for ShardedServiceConfig {
    fn default() -> Self {
        ShardedServiceConfig {
            cache_capacity: 256,
            shard_parallel: false,
            verify_workers: 1,
            parallel_threshold: DEFAULT_PARALLEL_VERIFY_THRESHOLD,
            shard_timeout: None,
            retry: RetryPolicy::default(),
            chaos: None,
        }
    }
}

impl ShardedServiceConfig {
    /// Builder: set the result-cache capacity (`0` disables caching).
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Builder: run the scatter phase on scoped threads.
    pub fn with_shard_parallel(mut self, parallel: bool) -> Self {
        self.shard_parallel = parallel;
        self
    }

    /// Builder: set the per-shard verify fan-out.
    pub fn with_verify_workers(mut self, workers: usize) -> Self {
        self.verify_workers = workers.max(1);
        self
    }

    /// Builder: set the per-shard parallel-verify threshold.
    pub fn with_parallel_threshold(mut self, threshold: usize) -> Self {
        self.parallel_threshold = threshold.max(1);
        self
    }

    /// Builder: bound each per-shard scatter attempt.
    pub fn with_shard_timeout(mut self, timeout: Duration) -> Self {
        self.shard_timeout = Some(timeout);
        self
    }

    /// Builder: set the shard retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Builder: attach read-path fault injection.
    pub fn with_chaos(mut self, chaos: ChaosConfig) -> Self {
        self.chaos = Some(chaos);
        self
    }
}

/// One cut-cache entry: the shared result, its read footprint, and the per-shard
/// `(lineage id, epoch vector)` tag of the cut it was computed against.
struct CutEntry {
    result: Arc<QueryResult>,
    footprint: ComponentSet,
    born: Vec<(u64, EpochVector)>,
    last_used: u64,
}

/// The cut-level result cache (see the [module docs](self) for validity semantics).
struct CutCache {
    capacity: usize,
    /// The currently published cut (tracked even when caching is disabled, so a
    /// superseded cut is never pinned alive here).
    cut: ShardCut,
    tick: u64,
    partial_invalidations: u64,
    full_invalidations: u64,
    entries_evicted: u64,
    map: HashMap<CacheKey, CutEntry>,
    /// Recency: tick of last use → key (same `O(log n)` LRU as the unsharded cache).
    lru: BTreeMap<u64, CacheKey>,
}

impl CutCache {
    fn new(capacity: usize, cut: ShardCut) -> Self {
        CutCache {
            capacity,
            cut,
            tick: 0,
            partial_invalidations: 0,
            full_invalidations: 0,
            entries_evicted: 0,
            map: HashMap::new(),
            lru: BTreeMap::new(),
        }
    }

    /// Whether an entry's birth cut observes identical state through `footprint` as
    /// `cut`, on **every** shard (same lineage + agreeing footprint epochs).
    fn entry_valid_for(
        born: &[(u64, EpochVector)],
        footprint: ComponentSet,
        cut: &ShardCut,
    ) -> bool {
        born.len() == cut.shard_count()
            && born.iter().enumerate().all(|(i, (sys, epochs))| {
                let snap = cut.shard(i);
                *sys == snap.system_id() && epochs.agrees_on(snap.component_epochs(), footprint)
            })
    }

    /// Move onto a newly published cut, evicting exactly the entries whose footprint
    /// state the published cut no longer agrees with (per the entries' own birth
    /// tags).  A shard-local footprint-disjoint publish therefore evicts nothing.
    fn install(&mut self, published: &ShardCut) {
        if published.same_cut(&self.cut) {
            return;
        }
        self.cut = published.clone();
        if self.capacity == 0 {
            return;
        }
        let before = self.map.len();
        self.map.retain(|_, e| Self::entry_valid_for(&e.born, e.footprint, published));
        let map = &self.map;
        self.lru.retain(|_, key| map.contains_key(key));
        self.entries_evicted += (before - self.map.len()) as u64;
        if before > 0 && self.map.is_empty() {
            self.full_invalidations += 1;
        } else {
            self.partial_invalidations += 1;
        }
    }

    fn get(&mut self, key: &CacheKey, cut: &ShardCut) -> Option<Arc<QueryResult>> {
        if self.capacity == 0 {
            return None;
        }
        let entry = self.map.get_mut(key)?;
        if !Self::entry_valid_for(&entry.born, entry.footprint, cut) {
            return None;
        }
        self.tick += 1;
        self.lru.remove(&entry.last_used);
        entry.last_used = self.tick;
        self.lru.insert(self.tick, key.clone());
        Some(Arc::clone(&entry.result))
    }

    fn insert(
        &mut self,
        key: CacheKey,
        cut: &ShardCut,
        footprint: ComponentSet,
        result: Arc<QueryResult>,
    ) {
        if self.capacity == 0 {
            return;
        }
        // Only results from the published lineages are cacheable (a rebuilt shard's
        // epochs restart low; cross-lineage comparisons are refused everywhere).
        if cut.shard_count() != self.cut.shard_count()
            || (0..cut.shard_count())
                .any(|i| cut.shard(i).system_id() != self.cut.shard(i).system_id())
        {
            return;
        }
        // Never displace an entry the *published* cut can serve with one it cannot.
        if let Some(prev) = self.map.get(&key) {
            let prev_fresh = Self::entry_valid_for(&prev.born, prev.footprint, &self.cut);
            let new_fresh = cut.agrees_on(&self.cut, footprint);
            if prev_fresh && !new_fresh {
                return;
            }
        }
        self.tick += 1;
        if let Some(prev) = self.map.get(&key) {
            self.lru.remove(&prev.last_used);
        } else if self.map.len() >= self.capacity {
            if let Some((_, lru_key)) = self.lru.pop_first() {
                self.map.remove(&lru_key);
            }
        }
        self.lru.insert(self.tick, key.clone());
        self.map.insert(
            key,
            CutEntry { result, footprint, born: cut.version_vector(), last_used: self.tick },
        );
    }

    fn len(&self) -> usize {
        debug_assert_eq!(self.map.len(), self.lru.len(), "map/recency desync");
        self.map.len()
    }
}

/// The sharded query-serving layer: the currently published [`ShardCut`] behind a
/// `RwLock`, a cut-level result cache, and a [`ShardedExecutor`] per query.  See the
/// [module docs](self) for the consistency model.
pub struct ShardedQueryService {
    cut: RwLock<ShardCut>,
    cache: Mutex<CutCache>,
    config: ShardedServiceConfig,
    submitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    deadline_misses: AtomicU64,
    cancelled: AtomicU64,
    degraded: AtomicU64,
    wal_flush_failures: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    publishes: AtomicU64,
    wal: RwLock<Option<Wal>>,
}

impl ShardedQueryService {
    /// Lock the cut-level result cache, recovering from poisoning: the cache moves
    /// in exception-safe map/LRU steps, so the state stays coherent across a
    /// caller's panic and the surviving callers keep serving.
    fn cache_guard(&self) -> std::sync::MutexGuard<'_, CutCache> {
        self.cache.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Start a service over an initial cut.
    pub fn new(cut: ShardCut, config: ShardedServiceConfig) -> Self {
        ShardedQueryService {
            cache: Mutex::new(CutCache::new(config.cache_capacity, cut.clone())),
            cut: RwLock::new(cut),
            config,
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            deadline_misses: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            wal_flush_failures: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            publishes: AtomicU64::new(0),
            wal: RwLock::new(None),
        }
    }

    /// Start a service with the default configuration.
    pub fn with_defaults(cut: ShardCut) -> Self {
        ShardedQueryService::new(cut, ShardedServiceConfig::default())
    }

    /// Publish a new consistent cut: the whole cut is installed under the write
    /// lock — with the cache synced before the lock is released — so no reader can
    /// ever observe a published cut the cache is behind on, and no reader ever sees
    /// some shards from the old cut and some from the new.
    ///
    /// A failed WAL flush aborts the publish *before* the cut becomes visible
    /// (durable-before-visible is preserved), surfacing as
    /// [`ServiceError::WalFlush`] and counted in
    /// [`ServiceMetrics::wal_flush_failures`]; the caller may retry.
    pub fn publish(&self, cut: ShardCut) -> Result<(), ServiceError> {
        // Durable before visible: flush the attached WAL so every batch the cut is
        // made of is on stable storage before any reader can observe it.
        if let Some(wal) =
            self.wal.read().unwrap_or_else(std::sync::PoisonError::into_inner).as_ref()
        {
            if let Err(err) = wal.flush() {
                self.wal_flush_failures.fetch_add(1, Ordering::Relaxed);
                return Err(ServiceError::WalFlush(err.to_string()));
            }
        }
        let mut current = self.cut.write().unwrap_or_else(std::sync::PoisonError::into_inner);
        *current = cut;
        // Documented order: cut before cache — publish is the only place both guards
        // are held, and execute takes them one at a time, so no inversion.
        // lint: allow(lock-discipline) -- fixed cut-then-cache order, single nesting site
        self.cache_guard().install(&current);
        drop(current);
        self.publishes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Attach a write-ahead log: [`publish`](Self::publish) will flush it before a
    /// new cut becomes visible, and [`metrics`](Self::metrics) reports its
    /// durability counters.
    pub fn attach_wal(&self, wal: Wal) {
        *self.wal.write().unwrap_or_else(std::sync::PoisonError::into_inner) = Some(wal);
    }

    /// A clone of the currently published cut.
    pub fn cut(&self) -> ShardCut {
        self.cut.read().unwrap_or_else(std::sync::PoisonError::into_inner).clone()
    }

    /// The logical version of the currently published cut.
    pub fn current_version(&self) -> u64 {
        self.cut.read().unwrap_or_else(std::sync::PoisonError::into_inner).version()
    }

    /// Execute one query against the published cut on the calling thread,
    /// consulting the cut-level cache (the scatter phase supplies the per-query
    /// parallelism; concurrent callers supply the serving parallelism).
    pub fn run(&self, query: &Query) -> Result<QueryResult, ServiceError> {
        self.run_with_budget(query, QueryBudget::unbounded())
    }

    /// [`run`](Self::run) under a per-query [`QueryBudget`]: the deadline is
    /// observed cooperatively through the scatter, retries and global collation,
    /// and `allow_partial` turns exhausted-shard outages into a marked
    /// [degraded](QueryResult::is_degraded) subset instead of
    /// [`ServiceError::ShardUnavailable`].
    pub fn run_with_budget(
        &self,
        query: &Query,
        budget: QueryBudget,
    ) -> Result<QueryResult, ServiceError> {
        self.submitted.fetch_add(1, Ordering::Relaxed);
        match self.execute(query, &budget) {
            Ok(result) => {
                self.completed.fetch_add(1, Ordering::Relaxed);
                Ok(result)
            }
            Err(err) => {
                self.failed.fetch_add(1, Ordering::Relaxed);
                match err {
                    ServiceError::DeadlineExceeded => {
                        self.deadline_misses.fetch_add(1, Ordering::Relaxed);
                    }
                    ServiceError::Cancelled => {
                        self.cancelled.fetch_add(1, Ordering::Relaxed);
                    }
                    _ => {}
                }
                Err(err)
            }
        }
    }

    fn execute(&self, query: &Query, budget: &QueryBudget) -> Result<QueryResult, ServiceError> {
        let cancel = CancelToken::for_budget(budget);
        cancel.check()?;
        let canonical = query.canonicalize();
        let key = canonical.cache_key();
        let cut = self.cut();
        if let Some(hit) = self.cache_guard().get(&key, &cut) {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            return Ok((*hit).clone());
        }
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
        let footprint = Plan::read_footprint(&canonical);
        let mut exec = ShardedExecutor::new(&cut)
            .with_shard_parallel(self.config.shard_parallel)
            .with_verify_workers(self.config.verify_workers)
            .with_parallel_threshold(self.config.parallel_threshold)
            .with_cancel(cancel)
            .with_retry(self.config.retry)
            .with_allow_partial(budget.allow_partial);
        if let Some(timeout) = self.config.shard_timeout {
            exec = exec.with_shard_timeout(timeout);
        }
        if let Some(chaos) = &self.config.chaos {
            exec = exec.with_chaos(chaos.clone());
        }
        let result = Arc::new(exec.try_run_canonical(&canonical)?);
        if result.is_degraded() {
            // A degraded answer is never cached: it is correct only for this
            // outage, and the next gather may reach more shards.
            self.degraded.fetch_add(1, Ordering::Relaxed);
        } else {
            self.cache_guard().insert(key, &cut, footprint, Arc::clone(&result));
        }
        Ok(Arc::try_unwrap(result).unwrap_or_else(|shared| (*shared).clone()))
    }

    /// Number of live entries in the cut-level result cache.
    pub fn cache_len(&self) -> usize {
        self.cache_guard().len()
    }

    /// A snapshot of the service counters (the `cache_*` invalidation fields follow
    /// the same accounting as the unsharded service's).
    pub fn metrics(&self) -> ServiceMetrics {
        let (partial, full, evicted) = {
            let cache = self.cache_guard();
            (cache.partial_invalidations, cache.full_invalidations, cache.entries_evicted)
        };
        let wal_stats = self
            .wal
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .as_ref()
            .map(|wal| wal.stats())
            .unwrap_or_default();
        ServiceMetrics {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            // Calling-thread execution: there is no submission queue to shed from,
            // and worker-pool counters never move here.
            shed: 0,
            failed: self.failed.load(Ordering::Relaxed),
            deadline_misses: self.deadline_misses.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            worker_panics: 0,
            workers_respawned: 0,
            degraded: self.degraded.load(Ordering::Relaxed),
            wal_flush_failures: self.wal_flush_failures.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            publishes: self.publishes.load(Ordering::Relaxed),
            cache_invalidations: partial + full,
            cache_partial_invalidations: partial,
            cache_full_invalidations: full,
            cache_entries_evicted: evicted,
            wal_records_appended: wal_stats.records_appended,
            wal_fsyncs: wal_stats.fsyncs,
            recovery_replays: wal_stats.recovery_replays,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Target;
    use crate::reference::ReferenceExecutor;
    use graphitti_core::{DataType, Graphitti, Marker, ObjectId, ShardedSystem};

    /// Identical interleaved writes applied to an unsharded oracle and a sharded
    /// system (global ids match by construction).
    fn parallel_build(shards: usize) -> (Graphitti, ShardedSystem) {
        let mut oracle = Graphitti::new();
        let mut sharded = ShardedSystem::new(shards);
        let term = oracle.ontology_mut().add_concept("Motif");
        sharded.ontology_edit(|o| {
            o.add_concept("Motif");
        });
        for i in 0..8u64 {
            oracle.register_sequence(format!("seq-{i}"), DataType::DnaSequence, 2_000, "chr1");
            sharded.register_sequence(format!("seq-{i}"), DataType::DnaSequence, 2_000, "chr1");
        }
        for i in 0..24u64 {
            let obj = ObjectId(i % 8);
            let comment =
                if i % 3 == 0 { format!("protease motif {i}") } else { format!("quiet {i}") };
            let marker = Marker::interval(i * 40, i * 40 + 25);
            let mut a = oracle.annotate().comment(comment.clone()).mark(obj, marker.clone());
            let mut b = sharded.annotate().comment(comment).mark(obj, marker);
            if i % 2 == 0 {
                a = a.cite_term(term);
                b = b.cite_term(term);
            }
            a.commit().unwrap();
            b.commit().unwrap();
        }
        (oracle, sharded)
    }

    fn phrase_query() -> Query {
        Query::new(Target::AnnotationContents).with_phrase("protease motif")
    }

    #[test]
    fn scatter_gather_matches_oracle_bytes() {
        for shards in [1, 2, 3, 5] {
            let (oracle, sharded) = parallel_build(shards);
            let cut = sharded.capture_cut();
            let queries = [
                phrase_query(),
                Query::new(Target::ConnectionGraphs).with_phrase("protease"),
                Query::new(Target::Referents)
                    .with_referent(ReferentFilter::OfType(DataType::DnaSequence)),
                Query::new(Target::Referents).with_referent(ReferentFilter::OnObject(ObjectId(3))),
                Query::new(Target::AnnotationContents), // unconstrained
            ];
            for q in queries {
                let expected = ReferenceExecutor::new(&oracle).run(&q);
                let sequential = ShardedExecutor::new(&cut).run(&q);
                assert_eq!(sequential.to_json(), expected.to_json(), "{shards} shards: {q:?}");
                let parallel = ShardedExecutor::new(&cut)
                    .with_shard_parallel(true)
                    .with_forced_scatter(true)
                    .run(&q);
                assert_eq!(parallel.to_json(), expected.to_json());
            }
        }
    }

    #[test]
    fn on_object_prunes_to_owning_shard_only() {
        let (_oracle, sharded) = parallel_build(4);
        let cut = sharded.capture_cut();
        let obj = ObjectId(3);
        let mask = cut.object_referent_shards(obj);
        assert_eq!(mask.count_ones(), 1, "single-object annotations live on one shard");
        let q = Query::new(Target::Referents).with_referent(ReferentFilter::OnObject(obj));
        let exec = ShardedExecutor::new(&cut);
        assert_eq!(exec.referent_shard_mask(&q.canonicalize()), mask);
        // Two different pinned objects on different shards: the mask empties and the
        // conjunction is (correctly) empty.
        let other = (0..8)
            .map(ObjectId)
            .find(|o| cut.object_referent_shards(*o) & mask == 0)
            .expect("some object on another shard");
        let q2 = Query::new(Target::Referents)
            .with_referent(ReferentFilter::OnObject(obj))
            .with_referent(ReferentFilter::OnObject(other));
        assert_eq!(exec.referent_shard_mask(&q2.canonicalize()), 0);
        assert!(exec.run(&q2).referents.is_empty());
    }

    #[test]
    fn service_caches_and_publishes_cuts() {
        let (mut oracle, mut sharded) = parallel_build(3);
        let service = ShardedQueryService::new(
            sharded.capture_cut(),
            ShardedServiceConfig::default().with_cache_capacity(8),
        );
        let before = service.run(&phrase_query()).unwrap();
        assert_eq!(
            before.to_json(),
            ReferenceExecutor::new(&oracle).run(&phrase_query()).to_json()
        );
        assert_eq!(service.run(&phrase_query()).unwrap(), before); // hit
        let m = service.metrics();
        assert_eq!((m.cache_hits, m.cache_misses), (1, 1));

        // A replicated ingest batch moves no annotation-path epochs on any shard:
        // the entry survives the publish.
        let mut batch = sharded.batch();
        for i in 0..3 {
            batch.register_sequence(format!("late-{i}"), DataType::DnaSequence, 500, "chr2");
        }
        batch.commit();
        oracle.register_sequence("late-0", DataType::DnaSequence, 500, "chr2");
        oracle.register_sequence("late-1", DataType::DnaSequence, 500, "chr2");
        oracle.register_sequence("late-2", DataType::DnaSequence, 500, "chr2");
        service.publish(sharded.capture_cut()).unwrap();
        assert_eq!(service.run(&phrase_query()).unwrap(), before);
        let m = service.metrics();
        assert_eq!(m.cache_hits, 2);
        assert_eq!(m.cache_entries_evicted, 0);
        assert_eq!(m.cache_partial_invalidations, 1);

        // An annotation commit on one shard evicts (every footprint reads the
        // annotation registries of the cut).
        sharded
            .annotate()
            .comment("protease motif late")
            .mark(ObjectId(0), Marker::interval(900, 950))
            .commit()
            .unwrap();
        oracle
            .annotate()
            .comment("protease motif late")
            .mark(ObjectId(0), Marker::interval(900, 950))
            .commit()
            .unwrap();
        service.publish(sharded.capture_cut()).unwrap();
        let after = service.run(&phrase_query()).unwrap();
        assert_eq!(after.to_json(), ReferenceExecutor::new(&oracle).run(&phrase_query()).to_json());
        assert_eq!(after.annotations.len(), before.annotations.len() + 1);
        let m = service.metrics();
        assert_eq!(m.cache_entries_evicted, 1);
    }

    #[test]
    fn stale_cut_reader_is_served_after_shard_local_disjoint_publish() {
        let (_oracle, mut sharded) = parallel_build(2);
        let service = ShardedQueryService::new(
            sharded.capture_cut(),
            ShardedServiceConfig::default().with_cache_capacity(8),
        );
        let stale_cut = service.cut();
        let first = service.run(&phrase_query()).unwrap();

        // Publish an ingest-only cut; the entry born on the old cut still agrees on
        // the content footprint with both the old and the new cut.
        sharded.register_sequence("pad", DataType::DnaSequence, 100, "chr9");
        service.publish(sharded.capture_cut()).unwrap();
        let mut cache = service.cache.lock().unwrap();
        let key = phrase_query().cache_key();
        assert!(cache.get(&key, &stale_cut).is_some(), "stale cut must still be served");
        assert!(cache.get(&key, &service.cut.read().unwrap()).is_some());
        drop(cache);
        assert_eq!(service.run(&phrase_query()).unwrap(), first);
    }

    /// The degraded-result contract: with chaos keeping one shard down past its
    /// retry budget, an `allow_partial` run returns byte-identically what a
    /// no-chaos run with that shard masked out returns — the exact answer
    /// restricted to the responsive shards — and tags it.
    #[test]
    fn degraded_result_is_byte_identical_to_masked_reference() {
        let (_oracle, sharded) = parallel_build(4);
        let cut = sharded.capture_cut();
        let queries = [
            phrase_query(),
            Query::new(Target::ConnectionGraphs).with_phrase("protease"),
            Query::new(Target::Referents)
                .with_referent(ReferentFilter::OfType(DataType::DnaSequence)),
            Query::new(Target::AnnotationContents), // unconstrained family
        ];
        for down in [1usize, 3] {
            for q in &queries {
                let reference = ShardedExecutor::new(&cut)
                    .with_allow_partial(true)
                    .with_shard_mask(!(1 << down))
                    .try_run_canonical(&q.canonicalize())
                    .unwrap();
                assert_eq!(reference.missing_shards, vec![down]);
                let chaos = ChaosConfig::new().with_shard_outage(down, u64::MAX);
                let degraded = ShardedExecutor::new(&cut)
                    .with_allow_partial(true)
                    .with_retry(RetryPolicy::default().with_base_delay(Duration::from_micros(50)))
                    .with_chaos(chaos.clone())
                    .try_run_canonical(&q.canonicalize())
                    .unwrap();
                assert!(degraded.is_degraded());
                assert_eq!(degraded.to_json(), reference.to_json(), "shard {down}: {q:?}");
                assert_eq!(chaos.attempts_against(down), 3, "retry budget fully spent");
            }
        }
    }

    #[test]
    fn shard_outage_without_allow_partial_fails_fast() {
        let (_oracle, sharded) = parallel_build(3);
        let cut = sharded.capture_cut();
        let err = ShardedExecutor::new(&cut)
            .with_retry(RetryPolicy::default().with_base_delay(Duration::from_micros(50)))
            .with_chaos(ChaosConfig::new().with_shard_outage(2, u64::MAX))
            .try_run_canonical(&phrase_query().canonicalize())
            .unwrap_err();
        assert_eq!(err, ServiceError::ShardUnavailable { shard: 2, attempts: 3 });
    }

    /// A shard that is merely slow — not down — survives its stall (or a retry)
    /// and the result is complete and exact.
    #[test]
    fn slow_shard_recovers_within_retry_budget() {
        let (oracle, sharded) = parallel_build(3);
        let cut = sharded.capture_cut();
        let expected = ReferenceExecutor::new(&oracle).run(&phrase_query());
        // Slow on the first attempt only: the timeout preempts the stall, the
        // retry goes through cleanly.
        let chaos = ChaosConfig::new().with_slow_shard(1, Duration::from_millis(400), 1);
        let got = ShardedExecutor::new(&cut)
            .with_shard_timeout(Duration::from_millis(30))
            .with_retry(RetryPolicy::default().with_base_delay(Duration::from_micros(50)))
            .with_chaos(chaos.clone())
            .try_run_canonical(&phrase_query().canonicalize())
            .unwrap();
        assert_eq!(got.to_json(), expected.to_json());
        assert!(!got.is_degraded());
        assert_eq!(chaos.attempts_against(1), 2, "one stalled attempt, one clean retry");
    }

    #[test]
    fn expired_budget_fails_sharded_run_with_deadline_exceeded() {
        let (_oracle, sharded) = parallel_build(2);
        let service = ShardedQueryService::with_defaults(sharded.capture_cut());
        let budget = QueryBudget::unbounded().with_deadline(Duration::from_nanos(0));
        assert_eq!(
            service.run_with_budget(&phrase_query(), budget),
            Err(ServiceError::DeadlineExceeded)
        );
        let m = service.metrics();
        assert_eq!((m.failed, m.deadline_misses), (1, 1));
    }

    #[test]
    fn degraded_results_are_never_cached() {
        let (_oracle, sharded) = parallel_build(3);
        let service = ShardedQueryService::new(
            sharded.capture_cut(),
            ShardedServiceConfig::default()
                .with_cache_capacity(8)
                .with_retry(RetryPolicy::default().with_base_delay(Duration::from_micros(50)))
                .with_chaos(ChaosConfig::new().with_shard_outage(1, 3)),
        );
        // Outage budget 3 = exactly one query's retry budget: the first run
        // degrades, the second reaches every shard.
        let partial = QueryBudget::unbounded().with_allow_partial(true);
        let first = service.run_with_budget(&phrase_query(), partial).unwrap();
        assert_eq!(first.missing_shards, vec![1]);
        assert_eq!(service.cache_len(), 0, "degraded results must not be cached");
        let second = service.run_with_budget(&phrase_query(), partial).unwrap();
        assert!(!second.is_degraded());
        assert_eq!(service.cache_len(), 1);
        let m = service.metrics();
        assert_eq!(m.degraded, 1);
        assert_eq!(m.completed, 2);
    }
}
