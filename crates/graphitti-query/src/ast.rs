//! The query model.
//!
//! A [`Query`] bundles three families of subqueries — over annotation *content*, over
//! *referents* (type-specific substructure predicates) and over the *ontology* — plus
//! graph constraints that the different partial results must jointly satisfy, and a
//! target describing what to return.

use std::sync::Arc;

use graphitti_core::{DataType, ObjectId};
use interval_index::Interval;
use ontology::{ConceptId, RelationType};
use spatial_index::Rect;
use xmlstore::{NameTest, PathExpr, Predicate, Selector};

/// What a query returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    /// Annotation contents (XML documents / fragments).
    AnnotationContents,
    /// Annotation referents (heterogeneous substructures).
    Referents,
    /// Connection subgraphs of the a-graph (one result page per connected subgraph).
    ConnectionGraphs,
}

/// A subquery over annotation content.
#[derive(Debug, Clone, PartialEq)]
pub enum ContentFilter {
    /// The content's full text contains this phrase (case-insensitive substring).
    Phrase(String),
    /// The content's text contains every one of these keywords.
    Keywords(Vec<String>),
    /// A path/XQuery-lite expression matches the content document.
    Path(PathExpr),
}

/// A subquery over referents — the paper's "type-specific predicates".
#[derive(Debug, Clone, PartialEq)]
pub enum ReferentFilter {
    /// Referents of objects of this data type.
    OfType(DataType),
    /// Referents of one specific registered object ("everything marked on this
    /// sequence / image").  The only **id-bearing** referent filter: because objects
    /// are the sharding key, a scatter-gather executor can prune this filter's
    /// evaluation to exactly the shards holding the object's referents.
    OnObject(ObjectId),
    /// Interval referents within a coordinate domain overlapping the query interval.
    IntervalOverlaps {
        /// Coordinate domain (chromosome, alignment id, …); `None` searches all.
        domain: Option<String>,
        /// The query interval.
        interval: Interval,
    },
    /// Region referents within a coordinate system overlapping the query rectangle.
    RegionOverlaps {
        /// Coordinate system; `None` searches all.
        system: Option<String>,
        /// The query rectangle / box.
        rect: Rect,
    },
    /// Referents marked by a block-set containing any of these ids.
    BlockContains(Vec<u64>),
}

/// A subquery over the ontology.
#[derive(Debug, Clone, PartialEq)]
pub enum OntologyFilter {
    /// Annotations citing a term that is an instance of this concept, reached by the
    /// given relations (defaults to is-a / part-of when empty).
    InClass {
        /// The ontology concept whose instances qualify.
        concept: ConceptId,
        /// Relations to follow when expanding the class (empty → is-a + part-of).
        relations: Vec<RelationType>,
    },
    /// Annotations citing exactly this term.
    CitesTerm(ConceptId),
}

/// Graph-level constraints a result must satisfy.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphConstraint {
    /// The result must contain at least `count` referents that form a chain of
    /// *consecutive, non-overlapping* intervals (within `max_gap`), each annotated —
    /// the protease example query's "4 consecutive non-overlapping intervals".
    ConsecutiveIntervals {
        /// Required number of intervals in the chain.
        count: usize,
        /// Maximum gap allowed between consecutive intervals.
        max_gap: u64,
    },
    /// The result's object must carry at least `count` region referents overlapping
    /// `within` — the TP53 query's "≥ 2 regions annotated".
    MinRegionCount {
        /// Minimum number of qualifying regions.
        count: usize,
        /// The region they must fall within (use a very large rect for "anywhere").
        within: Rect,
        /// The coordinate system to search.
        system: String,
    },
    /// Every pair of terminal subquery results must be connected in the a-graph within
    /// `max_len` hops (the path-expression backbone of the TP53 query).
    PathExists {
        /// Maximum path length (edges).
        max_len: usize,
    },
}

/// A complete query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// What to return.
    pub target: Target,
    /// Content subqueries (ANDed).
    pub content: Vec<ContentFilter>,
    /// Referent subqueries (ANDed).
    pub referents: Vec<ReferentFilter>,
    /// Ontology subqueries (ANDed).
    pub ontology: Vec<OntologyFilter>,
    /// Graph constraints (ANDed).
    pub constraints: Vec<GraphConstraint>,
}

impl Query {
    /// Start building a query with the given target.
    pub fn new(target: Target) -> Self {
        Query {
            target,
            content: Vec::new(),
            referents: Vec::new(),
            ontology: Vec::new(),
            constraints: Vec::new(),
        }
    }

    /// Builder: require an annotation-content phrase.
    pub fn with_phrase(mut self, phrase: impl Into<String>) -> Self {
        self.content.push(ContentFilter::Phrase(phrase.into()));
        self
    }

    /// Builder: require all keywords.
    pub fn with_keywords<I, S>(mut self, keywords: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.content.push(ContentFilter::Keywords(keywords.into_iter().map(Into::into).collect()));
        self
    }

    /// Builder: require a content path expression match.
    pub fn with_path(mut self, expr: PathExpr) -> Self {
        self.content.push(ContentFilter::Path(expr));
        self
    }

    /// Builder: add a referent filter.
    pub fn with_referent(mut self, filter: ReferentFilter) -> Self {
        self.referents.push(filter);
        self
    }

    /// Builder: add an ontology filter.
    pub fn with_ontology(mut self, filter: OntologyFilter) -> Self {
        self.ontology.push(filter);
        self
    }

    /// Builder: add a graph constraint.
    pub fn with_constraint(mut self, constraint: GraphConstraint) -> Self {
        self.constraints.push(constraint);
        self
    }

    /// Total number of subqueries (content + referent + ontology).
    pub fn subquery_count(&self) -> usize {
        self.content.len() + self.referents.len() + self.ontology.len()
    }

    /// True when the query has no subqueries (matches everything of the target kind).
    pub fn is_unconstrained(&self) -> bool {
        self.subquery_count() == 0 && self.constraints.is_empty()
    }

    /// Convenience: a query returning the markers' type, if a single `OfType` referent
    /// filter pins it.
    pub fn pinned_type(&self) -> Option<DataType> {
        self.referents.iter().find_map(|f| match f {
            ReferentFilter::OfType(t) => Some(*t),
            _ => None,
        })
    }

    /// Rewrite the query into its canonical form: each conjunct is normalised
    /// (phrases and keywords lowercased — matching is case-insensitive anyway —
    /// keyword lists and block-id lists sorted and deduplicated, the default
    /// `InClass` relation set made explicit), and every commutative conjunct list
    /// (content, referents, ontology, constraints — all ANDed) is sorted and
    /// deduplicated.
    ///
    /// Canonicalization preserves semantics, so semantically equal queries written in
    /// different orders or cases produce one canonical query.  That makes plan
    /// selection order-stable and gives the query service's result cache a single key
    /// per equivalence class (see [`Query::cache_key`]).
    pub fn canonicalize(&self) -> Query {
        // Conjunct order is sorted by the same stable rendering the cache key uses
        // (see [`CacheKey`]) — one ordering contract end to end, independent of how
        // `#[derive(Debug)]` happens to format a filter.
        fn rendering<T>(render: impl Fn(&T, &mut String)) -> impl Fn(&T) -> String {
            move |f| {
                let mut s = String::new();
                render(f, &mut s);
                s
            }
        }

        let mut content: Vec<ContentFilter> =
            self.content.iter().map(|f| f.clone().canonicalized()).collect();
        content.sort_by_cached_key(rendering(render_content));
        content.dedup();

        let mut referents: Vec<ReferentFilter> =
            self.referents.iter().map(|f| f.clone().canonicalized()).collect();
        referents.sort_by_cached_key(rendering(render_referent));
        referents.dedup();

        let mut ontology: Vec<OntologyFilter> =
            self.ontology.iter().map(|f| f.clone().canonicalized()).collect();
        ontology.sort_by_cached_key(rendering(render_ontology));
        ontology.dedup();

        let mut constraints = self.constraints.clone();
        constraints.sort_by_cached_key(rendering(render_constraint));
        constraints.dedup();

        Query { target: self.target, content, referents, ontology, constraints }
    }

    /// The key identifying this query's semantic equivalence class: the stable
    /// rendering ([`CacheKey`]) of its canonical form.  Two queries that
    /// [`Query::canonicalize`] to the same query share one key — this is what the
    /// query service's result cache keys on (together with the snapshot's
    /// per-component epochs).
    pub fn cache_key(&self) -> CacheKey {
        CacheKey::of_canonical(&self.canonicalize())
    }
}

/// The result cache's identity key for one query equivalence class.
///
/// Built by an explicit renderer over the query's **canonical form** (see
/// [`Query::canonicalize`]) — every variant is tagged by hand and every string is
/// length-prefixed, so key identity is a contract of this module, not of `#[derive
/// (Debug)]` output (which rustc may legally reformat, and which would make equal
/// queries miss — or in the worst case, distinct queries collide — across a toolchain
/// change).  Clone is an `Arc` bump, so an LRU cache can hold the key in both its map
/// and its recency structure without re-allocating per touch.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey(Arc<str>);

impl CacheKey {
    /// Render the key of a query **already in canonical form** (the service
    /// canonicalizes once and reuses the canonical query for planning).
    pub(crate) fn of_canonical(canonical: &Query) -> CacheKey {
        let mut out = String::with_capacity(64);
        out.push_str(match canonical.target {
            Target::AnnotationContents => "contents",
            Target::Referents => "referents",
            Target::ConnectionGraphs => "graphs",
        });
        for f in &canonical.content {
            out.push_str("|c:");
            render_content(f, &mut out);
        }
        for f in &canonical.referents {
            out.push_str("|r:");
            render_referent(f, &mut out);
        }
        for f in &canonical.ontology {
            out.push_str("|o:");
            render_ontology(f, &mut out);
        }
        for c in &canonical.constraints {
            out.push_str("|g:");
            render_constraint(c, &mut out);
        }
        CacheKey(out.into())
    }

    /// The rendered key text (stable; useful for logging and tests).
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

/// Append a free-form string unambiguously: length-prefixed, so no content can mimic
/// the renderer's own delimiters.
fn atom(out: &mut String, s: &str) {
    use std::fmt::Write;
    let _ = write!(out, "{}:{s}", s.len());
}

fn num(out: &mut String, n: u64) {
    use std::fmt::Write;
    let _ = write!(out, "{n}");
}

/// Floats render as their IEEE-754 bit pattern: exact (no shortest-representation
/// rounding), and distinct payloads stay distinct.
fn float(out: &mut String, f: f64) {
    use std::fmt::Write;
    let _ = write!(out, "{:016x}", f.to_bits());
}

fn render_content(f: &ContentFilter, out: &mut String) {
    match f {
        ContentFilter::Phrase(p) => {
            out.push_str("phrase ");
            atom(out, p);
        }
        ContentFilter::Keywords(ks) => {
            out.push_str("kw");
            for k in ks {
                out.push(' ');
                atom(out, k);
            }
        }
        ContentFilter::Path(expr) => {
            out.push_str("path");
            for step in &expr.steps {
                out.push_str(if step.descendant { "//" } else { "/" });
                match &step.name {
                    NameTest::Any => out.push('*'),
                    NameTest::Named(n) => atom(out, n),
                }
                for p in &step.predicates {
                    out.push('[');
                    match p {
                        Predicate::Position(n) => {
                            out.push_str("pos ");
                            num(out, *n as u64);
                        }
                        Predicate::Last => out.push_str("last"),
                        Predicate::AttrEquals { name, value } => {
                            out.push_str("attr= ");
                            atom(out, name);
                            out.push(' ');
                            atom(out, value);
                        }
                        Predicate::HasAttr(name) => {
                            out.push_str("attr? ");
                            atom(out, name);
                        }
                        Predicate::ContainsText(s) => {
                            out.push_str("text~ ");
                            atom(out, s);
                        }
                        Predicate::ContainsDeep(s) => {
                            out.push_str("deep~ ");
                            atom(out, s);
                        }
                        Predicate::StartsWith(s) => {
                            out.push_str("text^ ");
                            atom(out, s);
                        }
                        Predicate::EndsWith(s) => {
                            out.push_str("text$ ");
                            atom(out, s);
                        }
                    }
                    out.push(']');
                }
            }
            match &expr.selector {
                Selector::Elements => out.push_str("!elems"),
                Selector::Text => out.push_str("!text"),
                Selector::Attribute(a) => {
                    out.push_str("!attr ");
                    atom(out, a);
                }
            }
        }
    }
}

fn render_referent(f: &ReferentFilter, out: &mut String) {
    match f {
        ReferentFilter::OfType(t) => {
            out.push_str("type ");
            out.push_str(match t {
                DataType::DnaSequence => "dna",
                DataType::RnaSequence => "rna",
                DataType::ProteinSequence => "protein",
                DataType::MultipleAlignment => "alignment",
                DataType::PhylogeneticTree => "tree",
                DataType::InteractionGraph => "interaction",
                DataType::RelationalRecord => "record",
                DataType::Image => "image",
                DataType::ProteinModel => "model",
            });
        }
        ReferentFilter::OnObject(id) => {
            out.push_str("onobj ");
            num(out, id.0);
        }
        ReferentFilter::IntervalOverlaps { domain, interval } => {
            out.push_str("ival ");
            match domain {
                None => out.push('*'),
                Some(d) => atom(out, d),
            }
            out.push(' ');
            num(out, interval.start);
            out.push(' ');
            num(out, interval.end);
        }
        ReferentFilter::RegionOverlaps { system, rect } => {
            out.push_str("region ");
            match system {
                None => out.push('*'),
                Some(s) => atom(out, s),
            }
            for v in rect.min.iter().chain(rect.max.iter()) {
                out.push(' ');
                float(out, *v);
            }
        }
        ReferentFilter::BlockContains(ids) => {
            out.push_str("blocks");
            for id in ids {
                out.push(' ');
                num(out, *id);
            }
        }
    }
}

fn render_relation(r: &RelationType, out: &mut String) {
    match r {
        RelationType::IsA => out.push_str("isa"),
        RelationType::PartOf => out.push_str("part"),
        RelationType::DevelopsFrom => out.push_str("dev"),
        RelationType::Regulates => out.push_str("reg"),
        RelationType::Named(n) => {
            out.push_str("named ");
            atom(out, n);
        }
    }
}

fn render_ontology(f: &OntologyFilter, out: &mut String) {
    match f {
        OntologyFilter::InClass { concept, relations } => {
            out.push_str("class ");
            num(out, concept.0 as u64);
            for r in relations {
                out.push(' ');
                render_relation(r, out);
            }
        }
        OntologyFilter::CitesTerm(c) => {
            out.push_str("cites ");
            num(out, c.0 as u64);
        }
    }
}

fn render_constraint(c: &GraphConstraint, out: &mut String) {
    match c {
        GraphConstraint::ConsecutiveIntervals { count, max_gap } => {
            out.push_str("consec ");
            num(out, *count as u64);
            out.push(' ');
            num(out, *max_gap);
        }
        GraphConstraint::MinRegionCount { count, within, system } => {
            out.push_str("minregions ");
            num(out, *count as u64);
            out.push(' ');
            atom(out, system);
            for v in within.min.iter().chain(within.max.iter()) {
                out.push(' ');
                float(out, *v);
            }
        }
        GraphConstraint::PathExists { max_len } => {
            out.push_str("pathlen ");
            num(out, *max_len as u64);
        }
    }
}

impl ContentFilter {
    /// Normalise one content conjunct (lowercase text, sort + dedupe keywords).
    fn canonicalized(self) -> ContentFilter {
        match self {
            ContentFilter::Phrase(p) => ContentFilter::Phrase(p.to_lowercase()),
            ContentFilter::Keywords(ks) => {
                let mut ks: Vec<String> = ks.into_iter().map(|k| k.to_lowercase()).collect();
                ks.sort_unstable();
                ks.dedup();
                ContentFilter::Keywords(ks)
            }
            path @ ContentFilter::Path(_) => path,
        }
    }
}

impl ReferentFilter {
    /// Normalise one referent conjunct (sort + dedupe block ids).
    fn canonicalized(self) -> ReferentFilter {
        match self {
            ReferentFilter::BlockContains(mut ids) => {
                ids.sort_unstable();
                ids.dedup();
                ReferentFilter::BlockContains(ids)
            }
            other => other,
        }
    }
}

impl OntologyFilter {
    /// Normalise one ontology conjunct: make the default relation set explicit and
    /// order-independent (class expansion unions the relations' subtrees, so their
    /// order never matters).
    fn canonicalized(self) -> OntologyFilter {
        match self {
            OntologyFilter::InClass { concept, relations } => {
                let mut relations = if relations.is_empty() {
                    vec![RelationType::IsA, RelationType::PartOf]
                } else {
                    relations
                };
                relations.sort_unstable();
                relations.dedup();
                OntologyFilter::InClass { concept, relations }
            }
            cites @ OntologyFilter::CitesTerm(_) => cites,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assembles_query() {
        let q = Query::new(Target::ConnectionGraphs)
            .with_phrase("protein TP53")
            .with_referent(ReferentFilter::OfType(DataType::Image))
            .with_ontology(OntologyFilter::CitesTerm(ConceptId(3)))
            .with_constraint(GraphConstraint::PathExists { max_len: 4 });
        assert_eq!(q.target, Target::ConnectionGraphs);
        assert_eq!(q.subquery_count(), 3);
        assert_eq!(q.content.len(), 1);
        assert_eq!(q.referents.len(), 1);
        assert_eq!(q.ontology.len(), 1);
        assert_eq!(q.constraints.len(), 1);
        assert_eq!(q.pinned_type(), Some(DataType::Image));
        assert!(!q.is_unconstrained());
    }

    #[test]
    fn unconstrained_query() {
        let q = Query::new(Target::Referents);
        assert!(q.is_unconstrained());
        assert_eq!(q.subquery_count(), 0);
        assert_eq!(q.pinned_type(), None);
    }

    #[test]
    fn canonicalize_sorts_conjuncts_and_normalizes_keywords() {
        let a = Query::new(Target::AnnotationContents)
            .with_keywords(["TP53", "Protein", "tp53"])
            .with_phrase("Cleavage Site")
            .with_ontology(OntologyFilter::CitesTerm(ConceptId(3)))
            .with_ontology(OntologyFilter::CitesTerm(ConceptId(1)));
        let b = Query::new(Target::AnnotationContents)
            .with_ontology(OntologyFilter::CitesTerm(ConceptId(1)))
            .with_phrase("cleavage site")
            .with_ontology(OntologyFilter::CitesTerm(ConceptId(3)))
            .with_keywords(["protein", "tp53"]);
        assert_eq!(a.canonicalize(), b.canonicalize());
        assert_eq!(a.cache_key(), b.cache_key());
        let canon = a.canonicalize();
        assert!(canon
            .content
            .iter()
            .any(|f| matches!(f, ContentFilter::Keywords(ks) if ks == &["protein", "tp53"])));
        assert!(canon
            .content
            .iter()
            .any(|f| matches!(f, ContentFilter::Phrase(p) if p == "cleavage site")));
    }

    #[test]
    fn canonicalize_dedupes_identical_conjuncts_and_block_ids() {
        let q = Query::new(Target::Referents)
            .with_referent(ReferentFilter::BlockContains(vec![9, 2, 2, 5]))
            .with_referent(ReferentFilter::BlockContains(vec![2, 5, 9]))
            .with_constraint(GraphConstraint::PathExists { max_len: 4 })
            .with_constraint(GraphConstraint::PathExists { max_len: 4 });
        let canon = q.canonicalize();
        assert_eq!(canon.referents, vec![ReferentFilter::BlockContains(vec![2, 5, 9])]);
        assert_eq!(canon.constraints.len(), 1);
    }

    #[test]
    fn canonicalize_makes_default_class_relations_explicit() {
        let implicit = Query::new(Target::AnnotationContents)
            .with_ontology(OntologyFilter::InClass { concept: ConceptId(7), relations: vec![] });
        let explicit =
            Query::new(Target::AnnotationContents).with_ontology(OntologyFilter::InClass {
                concept: ConceptId(7),
                relations: vec![RelationType::PartOf, RelationType::IsA],
            });
        assert_eq!(implicit.cache_key(), explicit.cache_key());
    }

    #[test]
    fn cache_keys_separate_inequivalent_queries() {
        // Same words, different filter structure: a phrase is not a keyword pair, and
        // content that mimics the renderer's own delimiters must not collide either.
        let phrase = Query::new(Target::AnnotationContents).with_phrase("protease motif");
        let keywords = Query::new(Target::AnnotationContents).with_keywords(["protease", "motif"]);
        assert_ne!(phrase.cache_key(), keywords.cache_key());
        let tricky_one = Query::new(Target::AnnotationContents).with_keywords(["a b", "c"]);
        let tricky_two = Query::new(Target::AnnotationContents).with_keywords(["a", "b c"]);
        assert_ne!(tricky_one.cache_key(), tricky_two.cache_key());
        // different targets never share a key
        assert_ne!(
            Query::new(Target::Referents).cache_key(),
            Query::new(Target::ConnectionGraphs).cache_key()
        );
        // and the key is a value: equal queries render equal keys with equal hashes
        assert_eq!(phrase.cache_key().as_str(), phrase.clone().cache_key().as_str());
    }

    #[test]
    fn canonicalize_is_idempotent() {
        let q = Query::new(Target::ConnectionGraphs)
            .with_keywords(["B", "a"])
            .with_referent(ReferentFilter::OfType(DataType::Image))
            .with_ontology(OntologyFilter::CitesTerm(ConceptId(2)));
        let once = q.canonicalize();
        assert_eq!(once.canonicalize(), once);
    }

    #[test]
    fn with_marker_helpers() {
        let q = Query::new(Target::Referents).with_referent(ReferentFilter::IntervalOverlaps {
            domain: Some("chr7".into()),
            interval: Interval::new(0, 100),
        });
        assert_eq!(q.referents.len(), 1);
        // Markers are built via graphitti_core; ensure they are available to callers.
        let _ = graphitti_core::Marker::interval(0, 100);
    }
}
