//! The query model.
//!
//! A [`Query`] bundles three families of subqueries — over annotation *content*, over
//! *referents* (type-specific substructure predicates) and over the *ontology* — plus
//! graph constraints that the different partial results must jointly satisfy, and a
//! target describing what to return.

use graphitti_core::DataType;
use interval_index::Interval;
use ontology::{ConceptId, RelationType};
use spatial_index::Rect;
use xmlstore::PathExpr;

/// What a query returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    /// Annotation contents (XML documents / fragments).
    AnnotationContents,
    /// Annotation referents (heterogeneous substructures).
    Referents,
    /// Connection subgraphs of the a-graph (one result page per connected subgraph).
    ConnectionGraphs,
}

/// A subquery over annotation content.
#[derive(Debug, Clone, PartialEq)]
pub enum ContentFilter {
    /// The content's full text contains this phrase (case-insensitive substring).
    Phrase(String),
    /// The content's text contains every one of these keywords.
    Keywords(Vec<String>),
    /// A path/XQuery-lite expression matches the content document.
    Path(PathExpr),
}

/// A subquery over referents — the paper's "type-specific predicates".
#[derive(Debug, Clone, PartialEq)]
pub enum ReferentFilter {
    /// Referents of objects of this data type.
    OfType(DataType),
    /// Interval referents within a coordinate domain overlapping the query interval.
    IntervalOverlaps {
        /// Coordinate domain (chromosome, alignment id, …); `None` searches all.
        domain: Option<String>,
        /// The query interval.
        interval: Interval,
    },
    /// Region referents within a coordinate system overlapping the query rectangle.
    RegionOverlaps {
        /// Coordinate system; `None` searches all.
        system: Option<String>,
        /// The query rectangle / box.
        rect: Rect,
    },
    /// Referents marked by a block-set containing any of these ids.
    BlockContains(Vec<u64>),
}

/// A subquery over the ontology.
#[derive(Debug, Clone, PartialEq)]
pub enum OntologyFilter {
    /// Annotations citing a term that is an instance of this concept, reached by the
    /// given relations (defaults to is-a / part-of when empty).
    InClass {
        /// The ontology concept whose instances qualify.
        concept: ConceptId,
        /// Relations to follow when expanding the class (empty → is-a + part-of).
        relations: Vec<RelationType>,
    },
    /// Annotations citing exactly this term.
    CitesTerm(ConceptId),
}

/// Graph-level constraints a result must satisfy.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphConstraint {
    /// The result must contain at least `count` referents that form a chain of
    /// *consecutive, non-overlapping* intervals (within `max_gap`), each annotated —
    /// the protease example query's "4 consecutive non-overlapping intervals".
    ConsecutiveIntervals {
        /// Required number of intervals in the chain.
        count: usize,
        /// Maximum gap allowed between consecutive intervals.
        max_gap: u64,
    },
    /// The result's object must carry at least `count` region referents overlapping
    /// `within` — the TP53 query's "≥ 2 regions annotated".
    MinRegionCount {
        /// Minimum number of qualifying regions.
        count: usize,
        /// The region they must fall within (use a very large rect for "anywhere").
        within: Rect,
        /// The coordinate system to search.
        system: String,
    },
    /// Every pair of terminal subquery results must be connected in the a-graph within
    /// `max_len` hops (the path-expression backbone of the TP53 query).
    PathExists {
        /// Maximum path length (edges).
        max_len: usize,
    },
}

/// A complete query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// What to return.
    pub target: Target,
    /// Content subqueries (ANDed).
    pub content: Vec<ContentFilter>,
    /// Referent subqueries (ANDed).
    pub referents: Vec<ReferentFilter>,
    /// Ontology subqueries (ANDed).
    pub ontology: Vec<OntologyFilter>,
    /// Graph constraints (ANDed).
    pub constraints: Vec<GraphConstraint>,
}

impl Query {
    /// Start building a query with the given target.
    pub fn new(target: Target) -> Self {
        Query {
            target,
            content: Vec::new(),
            referents: Vec::new(),
            ontology: Vec::new(),
            constraints: Vec::new(),
        }
    }

    /// Builder: require an annotation-content phrase.
    pub fn with_phrase(mut self, phrase: impl Into<String>) -> Self {
        self.content.push(ContentFilter::Phrase(phrase.into()));
        self
    }

    /// Builder: require all keywords.
    pub fn with_keywords<I, S>(mut self, keywords: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.content
            .push(ContentFilter::Keywords(keywords.into_iter().map(Into::into).collect()));
        self
    }

    /// Builder: require a content path expression match.
    pub fn with_path(mut self, expr: PathExpr) -> Self {
        self.content.push(ContentFilter::Path(expr));
        self
    }

    /// Builder: add a referent filter.
    pub fn with_referent(mut self, filter: ReferentFilter) -> Self {
        self.referents.push(filter);
        self
    }

    /// Builder: add an ontology filter.
    pub fn with_ontology(mut self, filter: OntologyFilter) -> Self {
        self.ontology.push(filter);
        self
    }

    /// Builder: add a graph constraint.
    pub fn with_constraint(mut self, constraint: GraphConstraint) -> Self {
        self.constraints.push(constraint);
        self
    }

    /// Total number of subqueries (content + referent + ontology).
    pub fn subquery_count(&self) -> usize {
        self.content.len() + self.referents.len() + self.ontology.len()
    }

    /// True when the query has no subqueries (matches everything of the target kind).
    pub fn is_unconstrained(&self) -> bool {
        self.subquery_count() == 0 && self.constraints.is_empty()
    }

    /// Convenience: a query returning the markers' type, if a single `OfType` referent
    /// filter pins it.
    pub fn pinned_type(&self) -> Option<DataType> {
        self.referents.iter().find_map(|f| match f {
            ReferentFilter::OfType(t) => Some(*t),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assembles_query() {
        let q = Query::new(Target::ConnectionGraphs)
            .with_phrase("protein TP53")
            .with_referent(ReferentFilter::OfType(DataType::Image))
            .with_ontology(OntologyFilter::CitesTerm(ConceptId(3)))
            .with_constraint(GraphConstraint::PathExists { max_len: 4 });
        assert_eq!(q.target, Target::ConnectionGraphs);
        assert_eq!(q.subquery_count(), 3);
        assert_eq!(q.content.len(), 1);
        assert_eq!(q.referents.len(), 1);
        assert_eq!(q.ontology.len(), 1);
        assert_eq!(q.constraints.len(), 1);
        assert_eq!(q.pinned_type(), Some(DataType::Image));
        assert!(!q.is_unconstrained());
    }

    #[test]
    fn unconstrained_query() {
        let q = Query::new(Target::Referents);
        assert!(q.is_unconstrained());
        assert_eq!(q.subquery_count(), 0);
        assert_eq!(q.pinned_type(), None);
    }

    #[test]
    fn with_marker_helpers() {
        let q = Query::new(Target::Referents).with_referent(ReferentFilter::IntervalOverlaps {
            domain: Some("chr7".into()),
            interval: Interval::new(0, 100),
        });
        assert_eq!(q.referents.len(), 1);
        // Markers are built via graphitti_core; ensure they are available to callers.
        let _ = graphitti_core::Marker::interval(0, 100);
    }
}
