//! Compressed candidate bitmaps with block-wise kernels.
//!
//! A [`Bitmap`] is a roaring-style two-level structure over dense `u64`
//! ids: the id space is split into 65536-wide chunks keyed by `id >> 16`,
//! and each non-empty chunk is stored as either an **array container**
//! (sorted `Vec<u16>` of low bits, for sparse chunks) or a **bits
//! container** (1024×`u64` fixed bitmap, for dense chunks). Containers
//! promote to bits / demote back to arrays at the [`ARRAY_MAX`] = 4096
//! element threshold, so every container holds the cheaper of the two
//! encodings and structural equality implies set equality.
//!
//! The AND/OR/ANDNOT kernels skip non-overlapping chunks by merging the
//! sorted key lists and, for bits×bits pairs, run as plain `u64`-word
//! loops over the 1024-word blocks — branch-free bodies the compiler
//! autovectorizes. Iteration is always in ascending id order, which is
//! what makes the bitmap a drop-in for sorted-`Vec` candidate runs: any
//! pipeline that consumes candidates in order produces byte-identical
//! results under either representation.
//!
//! [`CandidateSet`] wraps the choice of representation behind one enum so
//! the executor can be switched (per [`CandidateRepr`]) between bitmap
//! kernels and the legacy sorted-`Vec` galloping merges for ablation.

use graphitti_core::annotation::AnnotationId;
use graphitti_core::referent::ReferentId;
use graphitti_core::system::ObjectId;

/// Chunk width: ids sharing `id >> CHUNK_SHIFT` live in one container.
const CHUNK_SHIFT: u32 = 16;
/// Words per bits container (`2^16` bits / 64 bits per word).
const BITMAP_WORDS: usize = 1 << (CHUNK_SHIFT - 6);
/// Container promotion threshold: an array container never holds more
/// than this many elements; a bits container never holds fewer. 4096
/// `u16`s occupy exactly the 8 KiB a bits container does, so promotion
/// never increases memory.
pub const ARRAY_MAX: usize = 4096;

fn chunk_key(id: u64) -> u64 {
    id >> CHUNK_SHIFT
}

fn low_bits(id: u64) -> u16 {
    (id & 0xFFFF) as u16
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum Container {
    /// Sorted, deduplicated low bits of every id in the chunk.
    Array(Vec<u16>),
    /// Fixed 65536-bit bitmap plus a maintained population count.
    Bits { words: Box<[u64; BITMAP_WORDS]>, len: u32 },
}

fn empty_words() -> Box<[u64; BITMAP_WORDS]> {
    vec![0u64; BITMAP_WORDS].into_boxed_slice().try_into().expect("BITMAP_WORDS-sized box")
}

fn test_bit(words: &[u64; BITMAP_WORDS], low: u16) -> bool {
    words[(low >> 6) as usize] & (1u64 << (low & 63)) != 0
}

impl Container {
    fn len(&self) -> usize {
        match self {
            Container::Array(a) => a.len(),
            Container::Bits { len, .. } => *len as usize,
        }
    }

    fn contains(&self, low: u16) -> bool {
        match self {
            Container::Array(a) => a.binary_search(&low).is_ok(),
            Container::Bits { words, .. } => test_bit(words, low),
        }
    }

    /// Number of elements `<= low`.
    fn rank(&self, low: u16) -> usize {
        match self {
            Container::Array(a) => a.partition_point(|&v| v <= low),
            Container::Bits { words, .. } => {
                let word = (low >> 6) as usize;
                let mut r: u32 = words[..word].iter().map(|w| w.count_ones()).sum();
                let keep = 64 - (low & 63) as u32 - 1;
                r += (words[word] << keep).count_ones();
                r as usize
            }
        }
    }

    /// Build the cheaper encoding for a sorted, deduplicated run of lows.
    fn from_lows(lows: Vec<u16>) -> Container {
        if lows.len() > ARRAY_MAX {
            let mut words = empty_words();
            for &v in &lows {
                words[(v >> 6) as usize] |= 1u64 << (v & 63);
            }
            Container::Bits { words, len: lows.len() as u32 }
        } else {
            Container::Array(lows)
        }
    }

    /// Re-establish the encoding invariant after an operation, returning
    /// `None` for the empty container.
    fn normalize(self) -> Option<Container> {
        match self {
            Container::Array(a) if a.is_empty() => None,
            Container::Array(a) if a.len() > ARRAY_MAX => Some(Container::from_lows(a)),
            c @ Container::Array(_) => Some(c),
            Container::Bits { len: 0, .. } => None,
            Container::Bits { words, len } if (len as usize) <= ARRAY_MAX => {
                let mut lows = Vec::with_capacity(len as usize);
                for (wi, &w) in words.iter().enumerate() {
                    let mut w = w;
                    while w != 0 {
                        let bit = w.trailing_zeros();
                        lows.push(((wi as u32) << 6 | bit) as u16);
                        w &= w - 1;
                    }
                }
                Some(Container::Array(lows))
            }
            c @ Container::Bits { .. } => Some(c),
        }
    }

    fn push_ids(&self, key: u64, out: &mut Vec<u64>) {
        let base = key << CHUNK_SHIFT;
        match self {
            Container::Array(a) => out.extend(a.iter().map(|&v| base | u64::from(v))),
            Container::Bits { words, .. } => {
                for (wi, &w) in words.iter().enumerate() {
                    let mut w = w;
                    while w != 0 {
                        let bit = w.trailing_zeros();
                        out.push(base | (wi as u64) << 6 | u64::from(bit));
                        w &= w - 1;
                    }
                }
            }
        }
    }
}

fn intersect_lows(a: &[u16], b: &[u16]) -> Vec<u16> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

fn and_containers(a: &Container, b: &Container) -> Option<Container> {
    let out = match (a, b) {
        (Container::Array(x), Container::Array(y)) => Container::Array(intersect_lows(x, y)),
        (Container::Array(x), Container::Bits { words, .. })
        | (Container::Bits { words, .. }, Container::Array(x)) => {
            Container::Array(x.iter().copied().filter(|&v| test_bit(words, v)).collect())
        }
        (Container::Bits { words: wa, .. }, Container::Bits { words: wb, .. }) => {
            let mut words = empty_words();
            let mut len = 0u32;
            for i in 0..BITMAP_WORDS {
                let w = wa[i] & wb[i];
                words[i] = w;
                len += w.count_ones();
            }
            Container::Bits { words, len }
        }
    };
    out.normalize()
}

fn or_containers(a: &Container, b: &Container) -> Option<Container> {
    let out = match (a, b) {
        (Container::Array(x), Container::Array(y)) => {
            let mut merged = Vec::with_capacity(x.len() + y.len());
            let (mut i, mut j) = (0, 0);
            while i < x.len() && j < y.len() {
                match x[i].cmp(&y[j]) {
                    std::cmp::Ordering::Less => {
                        merged.push(x[i]);
                        i += 1;
                    }
                    std::cmp::Ordering::Greater => {
                        merged.push(y[j]);
                        j += 1;
                    }
                    std::cmp::Ordering::Equal => {
                        merged.push(x[i]);
                        i += 1;
                        j += 1;
                    }
                }
            }
            merged.extend_from_slice(&x[i..]);
            merged.extend_from_slice(&y[j..]);
            Container::from_lows(merged)
        }
        (Container::Array(x), Container::Bits { words, len })
        | (Container::Bits { words, len }, Container::Array(x)) => {
            let mut words = words.clone();
            let mut len = *len;
            for &v in x {
                let (wi, mask) = ((v >> 6) as usize, 1u64 << (v & 63));
                if words[wi] & mask == 0 {
                    words[wi] |= mask;
                    len += 1;
                }
            }
            Container::Bits { words, len }
        }
        (Container::Bits { words: wa, .. }, Container::Bits { words: wb, .. }) => {
            let mut words = empty_words();
            let mut len = 0u32;
            for i in 0..BITMAP_WORDS {
                let w = wa[i] | wb[i];
                words[i] = w;
                len += w.count_ones();
            }
            Container::Bits { words, len }
        }
    };
    out.normalize()
}

fn and_not_containers(a: &Container, b: &Container) -> Option<Container> {
    let out = match (a, b) {
        (Container::Array(x), Container::Array(y)) => {
            let mut kept = Vec::with_capacity(x.len());
            let mut j = 0;
            for &v in x {
                while j < y.len() && y[j] < v {
                    j += 1;
                }
                if j >= y.len() || y[j] != v {
                    kept.push(v);
                }
            }
            Container::Array(kept)
        }
        (Container::Array(x), Container::Bits { words, .. }) => {
            Container::Array(x.iter().copied().filter(|&v| !test_bit(words, v)).collect())
        }
        (Container::Bits { words, len }, Container::Array(y)) => {
            let mut words = words.clone();
            let mut len = *len;
            for &v in y {
                let (wi, mask) = ((v >> 6) as usize, 1u64 << (v & 63));
                if words[wi] & mask != 0 {
                    words[wi] &= !mask;
                    len -= 1;
                }
            }
            Container::Bits { words, len }
        }
        (Container::Bits { words: wa, .. }, Container::Bits { words: wb, .. }) => {
            let mut words = empty_words();
            let mut len = 0u32;
            for i in 0..BITMAP_WORDS {
                let w = wa[i] & !wb[i];
                words[i] = w;
                len += w.count_ones();
            }
            Container::Bits { words, len }
        }
    };
    out.normalize()
}

/// Roaring-style compressed set of `u64` ids.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bitmap {
    /// Sorted chunk keys (`id >> 16`), parallel to `containers`.
    keys: Vec<u64>,
    containers: Vec<Container>,
    len: u64,
}

impl Bitmap {
    pub fn new() -> Bitmap {
        Bitmap::default()
    }

    /// Number of ids in the set.
    pub fn len(&self) -> u64 {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of resident containers (exposed for tests/benches).
    pub fn container_count(&self) -> usize {
        self.containers.len()
    }

    pub fn contains(&self, id: u64) -> bool {
        match self.keys.binary_search(&chunk_key(id)) {
            Ok(pos) => self.containers[pos].contains(low_bits(id)),
            Err(_) => false,
        }
    }

    /// Rank-style cardinality: number of ids `<= id`.
    pub fn rank(&self, id: u64) -> u64 {
        let key = chunk_key(id);
        let pos = self.keys.partition_point(|&k| k < key);
        let below: u64 = self.containers[..pos].iter().map(|c| c.len() as u64).sum();
        if self.keys.get(pos) == Some(&key) {
            below + self.containers[pos].rank(low_bits(id)) as u64
        } else {
            below
        }
    }

    /// Build from a strictly ascending id sequence (sorted + deduplicated).
    pub fn from_sorted_iter(iter: impl IntoIterator<Item = u64>) -> Bitmap {
        let mut bm = Bitmap::new();
        let mut cur_key = 0u64;
        let mut lows: Vec<u16> = Vec::new();
        for id in iter {
            let key = chunk_key(id);
            if key != cur_key && !lows.is_empty() {
                bm.flush_chunk(cur_key, std::mem::take(&mut lows));
            }
            cur_key = key;
            debug_assert!(
                lows.last().is_none_or(|&l| l < low_bits(id)),
                "from_sorted_iter requires strictly ascending ids"
            );
            lows.push(low_bits(id));
        }
        if !lows.is_empty() {
            bm.flush_chunk(cur_key, lows);
        }
        bm
    }

    /// Build from a sorted, deduplicated slice of ids without re-sorting.
    pub fn from_sorted_slice(ids: &[u64]) -> Bitmap {
        Bitmap::from_sorted_iter(ids.iter().copied())
    }

    fn flush_chunk(&mut self, key: u64, lows: Vec<u16>) {
        debug_assert!(self.keys.last().is_none_or(|&k| k < key));
        self.len += lows.len() as u64;
        self.keys.push(key);
        self.containers.push(Container::from_lows(lows));
    }

    /// Intersection, skipping chunks absent from either side.
    pub fn and(&self, other: &Bitmap) -> Bitmap {
        self.and_with_checkpoints(other, &mut || Ok::<(), std::convert::Infallible>(()))
            .unwrap_or_else(|e| match e {})
    }

    /// Intersection with a cooperative-cancellation checkpoint invoked at
    /// every container-pair boundary; an `Err` from the checkpoint aborts
    /// the kernel and propagates.
    pub fn and_with_checkpoints<E>(
        &self,
        other: &Bitmap,
        checkpoint: &mut impl FnMut() -> Result<(), E>,
    ) -> Result<Bitmap, E> {
        let mut out = Bitmap::new();
        let (mut i, mut j) = (0, 0);
        while i < self.keys.len() && j < other.keys.len() {
            match self.keys[i].cmp(&other.keys[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    checkpoint()?;
                    if let Some(c) = and_containers(&self.containers[i], &other.containers[j]) {
                        out.len += c.len() as u64;
                        out.keys.push(self.keys[i]);
                        out.containers.push(c);
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        Ok(out)
    }

    /// Union.
    pub fn or(&self, other: &Bitmap) -> Bitmap {
        let mut out = Bitmap::new();
        let (mut i, mut j) = (0, 0);
        while i < self.keys.len() || j < other.keys.len() {
            let (key, c) = if j >= other.keys.len()
                || (i < self.keys.len() && self.keys[i] < other.keys[j])
            {
                let pair = (self.keys[i], Some(self.containers[i].clone()));
                i += 1;
                pair
            } else if i >= self.keys.len() || other.keys[j] < self.keys[i] {
                let pair = (other.keys[j], Some(other.containers[j].clone()));
                j += 1;
                pair
            } else {
                let pair = (self.keys[i], or_containers(&self.containers[i], &other.containers[j]));
                i += 1;
                j += 1;
                pair
            };
            if let Some(c) = c {
                out.len += c.len() as u64;
                out.keys.push(key);
                out.containers.push(c);
            }
        }
        out
    }

    /// Difference: ids in `self` but not in `other`.
    pub fn and_not(&self, other: &Bitmap) -> Bitmap {
        let mut out = Bitmap::new();
        let mut j = 0;
        for (i, &key) in self.keys.iter().enumerate() {
            while j < other.keys.len() && other.keys[j] < key {
                j += 1;
            }
            let c = if j < other.keys.len() && other.keys[j] == key {
                and_not_containers(&self.containers[i], &other.containers[j])
            } else {
                Some(self.containers[i].clone())
            };
            if let Some(c) = c {
                out.len += c.len() as u64;
                out.keys.push(key);
                out.containers.push(c);
            }
        }
        out
    }

    /// Ascending-order iteration over all ids.
    pub fn iter(&self) -> BitmapIter<'_> {
        BitmapIter {
            bm: self,
            ci: 0,
            array_idx: 0,
            word_idx: 0,
            word: match self.containers.first() {
                Some(Container::Bits { words, .. }) => words[0],
                _ => 0,
            },
        }
    }

    /// Materialize to a sorted `Vec` of ids.
    pub fn to_vec(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.len as usize);
        for (key, c) in self.keys.iter().zip(&self.containers) {
            c.push_ids(*key, &mut out);
        }
        out
    }

    /// Verify structural invariants (testing support): keys strictly
    /// ascending, container encodings on the correct side of
    /// [`ARRAY_MAX`], array containers strictly sorted, `len` consistent.
    #[doc(hidden)]
    pub fn invariants_ok(&self) -> bool {
        if self.keys.len() != self.containers.len() {
            return false;
        }
        if !self.keys.windows(2).all(|w| w[0] < w[1]) {
            return false;
        }
        let mut total = 0u64;
        for c in &self.containers {
            total += c.len() as u64;
            match c {
                Container::Array(a) => {
                    if a.is_empty() || a.len() > ARRAY_MAX || !a.windows(2).all(|w| w[0] < w[1]) {
                        return false;
                    }
                }
                Container::Bits { words, len } => {
                    if (*len as usize) <= ARRAY_MAX {
                        return false;
                    }
                    let pop: u32 = words.iter().map(|w| w.count_ones()).sum();
                    if pop != *len {
                        return false;
                    }
                }
            }
        }
        total == self.len
    }
}

impl<'a> IntoIterator for &'a Bitmap {
    type Item = u64;
    type IntoIter = BitmapIter<'a>;
    fn into_iter(self) -> BitmapIter<'a> {
        self.iter()
    }
}

/// Ascending iterator over the ids of a [`Bitmap`].
pub struct BitmapIter<'a> {
    bm: &'a Bitmap,
    ci: usize,
    array_idx: usize,
    word_idx: usize,
    word: u64,
}

impl BitmapIter<'_> {
    fn advance_container(&mut self) {
        self.ci += 1;
        self.array_idx = 0;
        self.word_idx = 0;
        self.word = match self.bm.containers.get(self.ci) {
            Some(Container::Bits { words, .. }) => words[0],
            _ => 0,
        };
    }
}

impl Iterator for BitmapIter<'_> {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        loop {
            let base = *self.bm.keys.get(self.ci)? << CHUNK_SHIFT;
            match &self.bm.containers[self.ci] {
                Container::Array(a) => {
                    if let Some(&v) = a.get(self.array_idx) {
                        self.array_idx += 1;
                        return Some(base | u64::from(v));
                    }
                    self.advance_container();
                }
                Container::Bits { words, .. } => {
                    while self.word == 0 && self.word_idx + 1 < BITMAP_WORDS {
                        self.word_idx += 1;
                        self.word = words[self.word_idx];
                    }
                    if self.word != 0 {
                        let bit = self.word.trailing_zeros();
                        self.word &= self.word - 1;
                        return Some(base | (self.word_idx as u64) << 6 | u64::from(bit));
                    }
                    self.advance_container();
                }
            }
        }
    }
}

/// Ids that map losslessly to a dense `u64` key, so candidate sets over
/// them can be stored in a [`Bitmap`].
pub trait DenseId: Copy + Ord {
    fn dense(self) -> u64;
    fn from_dense(raw: u64) -> Self;
}

impl DenseId for u64 {
    fn dense(self) -> u64 {
        self
    }
    fn from_dense(raw: u64) -> u64 {
        raw
    }
}

impl DenseId for AnnotationId {
    fn dense(self) -> u64 {
        self.0
    }
    fn from_dense(raw: u64) -> AnnotationId {
        AnnotationId(raw)
    }
}

impl DenseId for ReferentId {
    fn dense(self) -> u64 {
        self.0
    }
    fn from_dense(raw: u64) -> ReferentId {
        ReferentId(raw)
    }
}

impl DenseId for ObjectId {
    fn dense(self) -> u64 {
        self.0
    }
    fn from_dense(raw: u64) -> ObjectId {
        ObjectId(raw)
    }
}

/// Which physical representation the executor uses for candidate sets.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CandidateRepr {
    /// Compressed bitmap containers with block-wise kernels (default).
    #[default]
    Bitmap,
    /// Legacy sorted-`Vec` runs with galloping merges (ablation baseline).
    SortedVec,
}

/// A candidate set in one of the two representations. All operations
/// preserve ascending id order, so downstream consumers see identical
/// sequences regardless of representation.
#[derive(Clone, Debug)]
pub enum CandidateSet<T> {
    Sorted(Vec<T>),
    Bits(Bitmap),
}

/// Debug twin of the "postings are sorted + deduplicated" contract both reprs lean
/// on: `Bitmap::from_sorted_iter` would build a wrong bitmap from an unsorted run,
/// and the vec repr's galloping merges assume strict ascent.
fn debug_assert_strictly_ascending<T: DenseId>(ids: &[T]) {
    debug_assert!(
        ids.windows(2).all(|w| w[0].dense() < w[1].dense()),
        "posting is not strictly ascending"
    );
}

impl<T: DenseId> CandidateSet<T> {
    pub fn empty(repr: CandidateRepr) -> CandidateSet<T> {
        match repr {
            CandidateRepr::Bitmap => CandidateSet::Bits(Bitmap::new()),
            CandidateRepr::SortedVec => CandidateSet::Sorted(Vec::new()),
        }
    }

    /// Wrap an already-sorted, deduplicated vec (no re-sort).
    pub fn from_sorted_vec(repr: CandidateRepr, ids: Vec<T>) -> CandidateSet<T> {
        debug_assert_strictly_ascending(&ids);
        match repr {
            CandidateRepr::Bitmap => {
                CandidateSet::Bits(Bitmap::from_sorted_iter(ids.iter().map(|id| id.dense())))
            }
            CandidateRepr::SortedVec => CandidateSet::Sorted(ids),
        }
    }

    /// Materialize an index posting (sorted, deduplicated) without re-sorting.
    pub fn from_posting(repr: CandidateRepr, posting: &[T]) -> CandidateSet<T> {
        debug_assert_strictly_ascending(posting);
        match repr {
            CandidateRepr::Bitmap => {
                CandidateSet::Bits(Bitmap::from_sorted_iter(posting.iter().map(|id| id.dense())))
            }
            CandidateRepr::SortedVec => CandidateSet::Sorted(posting.to_vec()),
        }
    }

    /// Union of several postings (each sorted + deduplicated). Under the
    /// bitmap repr this is a container-wise OR; under the vec repr it is
    /// the k-way galloping merge in `setops`.
    pub fn union_postings(repr: CandidateRepr, postings: &[&[T]]) -> CandidateSet<T> {
        match repr {
            CandidateRepr::Bitmap => {
                let mut acc = Bitmap::new();
                for p in postings {
                    let next = Bitmap::from_sorted_iter(p.iter().map(|id| id.dense()));
                    acc = if acc.is_empty() { next } else { acc.or(&next) };
                }
                CandidateSet::Bits(acc)
            }
            CandidateRepr::SortedVec => CandidateSet::Sorted(crate::setops::union_sorted(postings)),
        }
    }

    pub fn len(&self) -> usize {
        match self {
            CandidateSet::Sorted(v) => v.len(),
            CandidateSet::Bits(b) => b.len() as usize,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn repr(&self) -> CandidateRepr {
        match self {
            CandidateSet::Sorted(_) => CandidateRepr::SortedVec,
            CandidateSet::Bits(_) => CandidateRepr::Bitmap,
        }
    }

    pub fn contains(&self, id: T) -> bool {
        match self {
            CandidateSet::Sorted(v) => v.binary_search(&id).is_ok(),
            CandidateSet::Bits(b) => b.contains(id.dense()),
        }
    }

    /// Intersect with a sorted, deduplicated posting, invoking
    /// `checkpoint` at container-batch boundaries (bitmap repr) or once
    /// up front (vec repr) for cooperative cancellation.
    pub fn intersect_posting<E>(
        self,
        posting: &[T],
        checkpoint: &mut impl FnMut() -> Result<(), E>,
    ) -> Result<CandidateSet<T>, E> {
        match self {
            CandidateSet::Sorted(v) => {
                checkpoint()?;
                Ok(CandidateSet::Sorted(crate::setops::intersect_sorted(&v, posting)))
            }
            CandidateSet::Bits(b) => {
                let other = Bitmap::from_sorted_iter(posting.iter().map(|id| id.dense()));
                Ok(CandidateSet::Bits(b.and_with_checkpoints(&other, checkpoint)?))
            }
        }
    }

    /// Intersect two candidate sets (same or mixed representation),
    /// with cancellation checkpoints as in [`Self::intersect_posting`].
    pub fn intersect<E>(
        self,
        other: &CandidateSet<T>,
        checkpoint: &mut impl FnMut() -> Result<(), E>,
    ) -> Result<CandidateSet<T>, E> {
        match (self, other) {
            (CandidateSet::Sorted(a), CandidateSet::Sorted(b)) => {
                checkpoint()?;
                Ok(CandidateSet::Sorted(crate::setops::intersect_sorted(&a, b)))
            }
            (CandidateSet::Bits(a), CandidateSet::Bits(b)) => {
                Ok(CandidateSet::Bits(a.and_with_checkpoints(b, checkpoint)?))
            }
            (CandidateSet::Sorted(a), CandidateSet::Bits(b)) => {
                checkpoint()?;
                Ok(CandidateSet::Sorted(
                    a.into_iter().filter(|id| b.contains(id.dense())).collect(),
                ))
            }
            (CandidateSet::Bits(a), CandidateSet::Sorted(b)) => {
                let other = Bitmap::from_sorted_iter(b.iter().map(|id| id.dense()));
                Ok(CandidateSet::Bits(a.and_with_checkpoints(&other, checkpoint)?))
            }
        }
    }

    /// Materialize to a sorted `Vec` of typed ids.
    pub fn into_sorted_vec(self) -> Vec<T> {
        match self {
            CandidateSet::Sorted(v) => v,
            CandidateSet::Bits(b) => b.iter().map(T::from_dense).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u64]) -> Vec<u64> {
        v.to_vec()
    }

    #[test]
    fn round_trip_sparse_and_dense() {
        let sparse: Vec<u64> = (0..100).map(|i| i * 977).collect();
        let dense: Vec<u64> = (0..20_000).map(|i| i * 3).collect();
        for set in [&sparse, &dense] {
            let bm = Bitmap::from_sorted_slice(set);
            assert!(bm.invariants_ok());
            assert_eq!(bm.len() as usize, set.len());
            assert_eq!(bm.to_vec(), **set);
            assert_eq!(bm.iter().collect::<Vec<_>>(), **set);
        }
    }

    #[test]
    fn promotion_boundary() {
        // Exactly ARRAY_MAX stays an array; one more promotes to bits.
        let at: Vec<u64> = (0..ARRAY_MAX as u64).collect();
        let over: Vec<u64> = (0..ARRAY_MAX as u64 + 1).collect();
        assert!(matches!(Bitmap::from_sorted_slice(&at).containers[0], Container::Array(_)));
        assert!(matches!(Bitmap::from_sorted_slice(&over).containers[0], Container::Bits { .. }));
        assert_eq!(Bitmap::from_sorted_slice(&over).to_vec(), over);
    }

    #[test]
    fn demotion_after_and() {
        // Two dense chunks whose intersection is sparse must demote.
        let a: Vec<u64> = (0..30_000).collect();
        let b: Vec<u64> = (0..30_000).map(|i| i * 7).collect();
        let out = Bitmap::from_sorted_slice(&a).and(&Bitmap::from_sorted_slice(&b));
        assert!(out.invariants_ok());
        let expect: Vec<u64> = b.iter().copied().filter(|&v| v < 30_000).collect();
        assert_eq!(out.to_vec(), expect);
    }

    #[test]
    fn and_or_andnot_match_vec_oracle() {
        let a: Vec<u64> = (0..5_000)
            .map(|i| i * 13 % 200_000)
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        let b: Vec<u64> = (0..5_000)
            .map(|i| i * 17 % 200_000)
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        let (ba, bb) = (Bitmap::from_sorted_slice(&a), Bitmap::from_sorted_slice(&b));
        let sa: std::collections::BTreeSet<u64> = a.iter().copied().collect();
        let sb: std::collections::BTreeSet<u64> = b.iter().copied().collect();
        assert_eq!(ba.and(&bb).to_vec(), sa.intersection(&sb).copied().collect::<Vec<_>>());
        assert_eq!(ba.or(&bb).to_vec(), sa.union(&sb).copied().collect::<Vec<_>>());
        assert_eq!(ba.and_not(&bb).to_vec(), sa.difference(&sb).copied().collect::<Vec<_>>());
        for bm in [&ba.and(&bb), &ba.or(&bb), &ba.and_not(&bb)] {
            assert!(bm.invariants_ok());
        }
    }

    #[test]
    fn contains_and_rank() {
        let set = ids(&[3, 70_000, 70_002, 1_000_000]);
        let bm = Bitmap::from_sorted_slice(&set);
        for &v in &set {
            assert!(bm.contains(v));
        }
        assert!(!bm.contains(4));
        assert!(!bm.contains(70_001));
        assert_eq!(bm.rank(2), 0);
        assert_eq!(bm.rank(3), 1);
        assert_eq!(bm.rank(70_001), 2);
        assert_eq!(bm.rank(u64::MAX), 4);
    }

    #[test]
    fn checkpoint_propagates_error() {
        let a = Bitmap::from_sorted_slice(&(0..200_000).collect::<Vec<_>>());
        let mut calls = 0usize;
        let r = a.and_with_checkpoints(&a.clone(), &mut || {
            calls += 1;
            if calls > 1 {
                Err("cancelled")
            } else {
                Ok(())
            }
        });
        assert_eq!(r, Err("cancelled"));
        assert!(calls >= 2);
    }

    #[test]
    fn candidate_set_reprs_agree() {
        let posting: Vec<AnnotationId> = (0..3_000).map(|i| AnnotationId(i * 5)).collect();
        let other: Vec<AnnotationId> = (0..3_000).map(|i| AnnotationId(i * 7)).collect();
        let mut ok = || Ok::<(), std::convert::Infallible>(());
        for repr in [CandidateRepr::Bitmap, CandidateRepr::SortedVec] {
            let set = CandidateSet::from_posting(repr, &posting);
            let out = set.intersect_posting(&other, &mut ok).unwrap_or_else(|e| match e {});
            let expect: Vec<AnnotationId> =
                posting.iter().copied().filter(|id| other.binary_search(id).is_ok()).collect();
            assert_eq!(out.into_sorted_vec(), expect);
        }
    }
}
