//! [`QueryService`] — the concurrent query-serving layer.
//!
//! The service owns a `std::thread` worker pool and serves queries against one
//! *published* [`Snapshot`] of the system:
//!
//! * **Independent queries run in parallel.**  [`QueryService::submit`] enqueues a
//!   query and returns a [`Ticket`] immediately; pool workers drain the queue, each
//!   executing against a clone of the current snapshot (an `Arc` bump), so a slow
//!   query never blocks an unrelated fast one and no query ever blocks a writer.
//! * **One large query can fan out.**  Worker executors inherit the service's
//!   `verify_workers` setting, so the verify phase of a big candidate set is split
//!   into contiguous chunks across scoped threads and re-merged in order (see
//!   [`Executor::with_verify_workers`]) — results stay byte-identical to the
//!   sequential pass.
//! * **A normalized-query result cache sits in front.**  Results are cached under the
//!   query's canonical form ([`Query::cache_key`]), so semantically equal queries —
//!   different conjunct order, keyword case or duplicate conjuncts — share one entry.
//!   Each entry carries its plan's **read footprint** ([`Plan::read_footprint`]: the
//!   [`graphitti_core::Component`]s the answer depends on) and stays valid across any
//!   publish whose dirty set is disjoint from that footprint — a publish evicts only
//!   the entries it can actually have changed, per the snapshots' per-component
//!   epoch vectors ([`Snapshot::component_epochs`]).  The cache is LRU-evicted at a
//!   fixed capacity (an ordered recency structure, so at-capacity eviction is
//!   `O(log n)`, not a scan).
//!
//! Writers keep mutating their [`graphitti_core::Graphitti`] as usual and make new
//! state visible to the service explicitly via [`QueryService::publish`]; until then,
//! every in-flight and future query observes the previously published epoch —
//! snapshot isolation, not read-your-writes.
//!
//! **Sustained write streams** pair the service with the core's batched write API:
//! the writer stages a burst of registers / annotates through
//! [`Graphitti::batch`](graphitti_core::Graphitti::batch) (one epoch bump per batch,
//! one accumulated dirty set), then publishes the post-batch snapshot once.  The
//! whole batch costs **one** cache invalidation (observable via
//! [`ServiceMetrics::cache_invalidations`]) instead of one per call — and that one
//! invalidation is *partial*: a pure-ingest batch (registers only) dirties no
//! component any query footprint reads, so every cached entry survives it, which is
//! what keeps the hit rate up under the paper's steady curator-write trickle
//! (measured by the `mixed_rw` bench; force
//! [`InvalidationPolicy::Full`] to reproduce the old clear-everything behaviour as a
//! baseline).  Because the view is a tree of per-component `Arc`s, the writer's
//! first post-publish commit also copies only the components it touches — readers
//! keep structurally sharing the rest.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;

use graphitti_core::{ComponentSet, EpochVector, Snapshot, Wal};

use crate::ast::{CacheKey, Query};
use crate::exec::{Executor, DEFAULT_PARALLEL_VERIFY_THRESHOLD};
use crate::plan::Plan;
use crate::resilience::{cooperative_sleep, SleepInterrupt};
use crate::resilience::{CancelToken, ChaosConfig, ChaosExec, QueryBudget, ServiceError};
use crate::result::QueryResult;

/// How the result cache treats entries when a changed snapshot is published.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InvalidationPolicy {
    /// Evict only entries whose read footprint intersects the components dirtied
    /// since the cache's snapshot (per the snapshots' epoch vectors) — entries a
    /// publish provably cannot have changed survive it.
    #[default]
    Footprint,
    /// Clear the whole cache on every changed publish (the pre-epoch-vector
    /// behaviour).  Kept as a measurable baseline for the `mixed_rw` bench and as an
    /// escape hatch; never needed for correctness.
    Full,
}

/// Tuning knobs for a [`QueryService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Pool size: number of worker threads draining the submission queue.
    pub workers: usize,
    /// Result-cache capacity in entries; `0` disables caching entirely.
    pub cache_capacity: usize,
    /// Verify-phase fan-out *within* one query (1 = sequential verify).
    pub verify_workers: usize,
    /// Candidate-count threshold above which a verify pass is chunked across
    /// `verify_workers` threads.
    pub parallel_threshold: usize,
    /// Publish-time cache invalidation policy (default: per-footprint eviction).
    pub invalidation: InvalidationPolicy,
    /// Admission-control bound on the submission queue: a submit finding this many
    /// jobs already queued is shed with [`ServiceError::Overloaded`] instead of
    /// enqueued.  `usize::MAX` (the default) disables shedding.
    pub queue_capacity: usize,
    /// Read-path fault injection for tests and benches (`None` in production).
    pub chaos: Option<ChaosConfig>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2);
        ServiceConfig {
            workers: cores,
            cache_capacity: 256,
            verify_workers: 1,
            parallel_threshold: DEFAULT_PARALLEL_VERIFY_THRESHOLD,
            invalidation: InvalidationPolicy::Footprint,
            queue_capacity: usize::MAX,
            chaos: None,
        }
    }
}

impl ServiceConfig {
    /// Builder: set the worker-pool size.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Builder: set the result-cache capacity (`0` disables caching).
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Builder: set the per-query verify fan-out.
    pub fn with_verify_workers(mut self, verify_workers: usize) -> Self {
        self.verify_workers = verify_workers.max(1);
        self
    }

    /// Builder: set the parallel-verify candidate threshold.
    pub fn with_parallel_threshold(mut self, threshold: usize) -> Self {
        self.parallel_threshold = threshold.max(1);
        self
    }

    /// Builder: set the publish-time cache invalidation policy.
    pub fn with_invalidation(mut self, policy: InvalidationPolicy) -> Self {
        self.invalidation = policy;
        self
    }

    /// Builder: bound the submission queue — a submit finding `capacity` jobs
    /// already queued is shed with [`ServiceError::Overloaded`] (admission
    /// control, so overload degrades into fast typed rejections instead of an
    /// unboundedly growing queue).
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Builder: inject read-path chaos faults (tests and benches only).
    pub fn with_chaos(mut self, chaos: ChaosConfig) -> Self {
        self.chaos = Some(chaos);
        self
    }
}

/// Counters describing what the service has done so far (all monotonic).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceMetrics {
    /// Queries submitted (via [`QueryService::submit`] / [`QueryService::run`] /
    /// [`QueryService::run_now`]).
    pub submitted: u64,
    /// Queries completed (result delivered).
    pub completed: u64,
    /// Queries shed at admission ([`ServiceError::Overloaded`]).  Invariant once
    /// the queue is drained: `shed + completed + failed == submitted`.
    pub shed: u64,
    /// Queries that ended in a typed error after admission (deadline, cancellation,
    /// worker panic, shard unavailability).
    pub failed: u64,
    /// Failed queries whose budget deadline expired (at dequeue or mid-execution).
    pub deadline_misses: u64,
    /// Failed queries cancelled via their ticket / token.
    pub cancelled: u64,
    /// Worker panics observed while executing queries (each fails that query with
    /// [`ServiceError::WorkerPanicked`]; the pool never shrinks).
    pub worker_panics: u64,
    /// Worker threads respawned after dying to a panic that escaped the job catch
    /// — the pool-size invariant in action.
    pub workers_respawned: u64,
    /// Degraded (shard-subset) results served; always `0` for the unsharded
    /// service.
    pub degraded: u64,
    /// Publish-time WAL flushes that failed (each also failed its publish with
    /// [`ServiceError::WalFlush`] *without* installing the snapshot, preserving
    /// durable-before-visible).
    pub wal_flush_failures: u64,
    /// Queries answered from the result cache.
    pub cache_hits: u64,
    /// Queries executed because the cache had no valid entry.
    pub cache_misses: u64,
    /// Snapshot publishes observed.
    pub publishes: u64,
    /// Publishes of a genuinely changed state that the cache had to react to, however
    /// cheaply (always `cache_partial_invalidations + cache_full_invalidations`).  A
    /// `CommitBatch` of any size followed by one publish costs exactly one
    /// invalidation; a cache-disabled service (capacity 0) counts none.
    pub cache_invalidations: u64,
    /// Changed-state publishes that did **not** empty a previously non-empty cache:
    /// footprint-scoped eviction where the batch's dirty set missed some entries
    /// (including the ideal case of an ingest-only batch evicting nothing), or any
    /// install that found the cache empty to begin with.
    pub cache_partial_invalidations: u64,
    /// Changed-state publishes that emptied a previously **non-empty** cache: a
    /// wholesale clear (different system lineage, or [`InvalidationPolicy::Full`]),
    /// or a dirty set intersecting every entry's footprint (e.g. an annotation
    /// batch — every footprint reads the annotation registry).
    pub cache_full_invalidations: u64,
    /// Entries dropped by publish-time invalidation (not by LRU capacity eviction).
    pub cache_entries_evicted: u64,
    /// WAL records appended by the attached log ([`QueryService::attach_wal`]); `0`
    /// when no log is attached.
    pub wal_records_appended: u64,
    /// Fsync barriers the attached log issued; `wal_records_appended / wal_fsyncs`
    /// is the group-commit coalescing factor.
    pub wal_fsyncs: u64,
    /// Records the recovery that opened the attached log replayed (`0` for a fresh
    /// log or when no log is attached).
    pub recovery_replays: u64,
}

/// A handle to one submitted query's pending result.
///
/// Obtained from [`QueryService::submit`]; redeem it with [`Ticket::wait`].
/// Every outcome is a typed [`ServiceError`] — a redeemed ticket never panics and
/// never hangs: worker death, deadline expiry, cancellation and double redemption
/// all come back as `Err`.  Dropping an unredeemed ticket cancels its query, so an
/// abandoned submission stops burning a worker at the next cancellation checkpoint.
#[derive(Debug)]
pub struct Ticket {
    cell: Arc<TicketCell>,
    cancel: CancelToken,
}

#[derive(Debug, Default)]
enum SlotState {
    /// Not executed yet.
    #[default]
    Pending,
    /// Result delivered (shared with the cache when it was a hit).
    Ready(Arc<QueryResult>),
    /// The query failed with a typed error (worker panic, deadline, cancellation).
    Failed(ServiceError),
    /// The outcome was already redeemed; redeeming again yields
    /// [`ServiceError::AlreadyTaken`] rather than hanging on a result that will
    /// never arrive again.
    Taken,
}

#[derive(Debug, Default)]
struct TicketCell {
    slot: Mutex<SlotState>,
    ready: Condvar,
}

impl TicketCell {
    /// Lock the slot, recovering from poisoning: the state machine only moves in
    /// single-assignment steps, so a worker that panicked while holding the lock
    /// (chaos injection does this deliberately) leaves a coherent slot — and the
    /// abort guard will still mark it `Failed` on the worker's way out.
    fn slot_guard(&self) -> std::sync::MutexGuard<'_, SlotState> {
        self.slot.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl Ticket {
    /// Block until the query resolves and take its outcome: the result, or the
    /// typed error it failed with.
    pub fn wait(self) -> Result<QueryResult, ServiceError> {
        let mut slot = self.cell.slot_guard();
        loop {
            match std::mem::replace(&mut *slot, SlotState::Taken) {
                SlotState::Pending => {
                    *slot = SlotState::Pending;
                    slot = self
                        .cell
                        .ready
                        .wait(slot)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
                SlotState::Ready(result) => {
                    return Ok(Arc::try_unwrap(result).unwrap_or_else(|shared| (*shared).clone()));
                }
                SlotState::Failed(err) => {
                    // Failure is sticky: every observer gets the typed error.
                    *slot = SlotState::Failed(err.clone());
                    return Err(err);
                }
                SlotState::Taken => return Err(ServiceError::AlreadyTaken),
            }
        }
    }

    /// Take the outcome if the query has already resolved, without blocking:
    /// `Ok(None)` while still pending, `Ok(Some(result))` or the query's typed
    /// error once resolved, [`ServiceError::AlreadyTaken`] after an earlier
    /// redemption.
    pub fn try_take(&self) -> Result<Option<QueryResult>, ServiceError> {
        let mut slot = self.cell.slot_guard();
        match std::mem::replace(&mut *slot, SlotState::Taken) {
            SlotState::Pending => {
                *slot = SlotState::Pending;
                Ok(None)
            }
            SlotState::Ready(result) => {
                Ok(Some(Arc::try_unwrap(result).unwrap_or_else(|shared| (*shared).clone())))
            }
            SlotState::Failed(err) => {
                // Failure is sticky: every observer gets the typed error.
                *slot = SlotState::Failed(err.clone());
                Err(err)
            }
            SlotState::Taken => Err(ServiceError::AlreadyTaken),
        }
    }

    /// Cancel the query: if it has not resolved yet it fails with
    /// [`ServiceError::Cancelled`] at its next cooperative checkpoint (or
    /// immediately, if still queued).  A result that already landed stays
    /// redeemable.
    pub fn cancel(&self) {
        self.cancel.cancel();
    }
}

impl Drop for Ticket {
    /// An abandoned ticket cancels its query — nobody will redeem the result, so
    /// the worker should stop computing it at the next checkpoint.
    fn drop(&mut self) {
        let still_pending = matches!(*self.cell.slot_guard(), SlotState::Pending);
        if still_pending {
            self.cancel.cancel();
        }
    }
}

impl TicketCell {
    fn deliver(&self, result: Arc<QueryResult>) {
        let mut slot = self.slot_guard();
        *slot = SlotState::Ready(result);
        self.ready.notify_all();
    }

    fn fail(&self, err: ServiceError) {
        let mut slot = self.slot_guard();
        // Never clobber an outcome that already landed (the abort guard fires on
        // the worker's way out even after a normal delivery attempt).
        if matches!(*slot, SlotState::Pending) {
            *slot = SlotState::Failed(err);
            self.ready.notify_all();
        }
    }
}

/// One queued unit of work: a query, the ticket cell to deliver into, and the
/// submission's cancellation token.
struct Job {
    query: Query,
    cell: Arc<TicketCell>,
    cancel: CancelToken,
}

/// The normalized-query LRU result cache.
///
/// Keys are canonical query renderings ([`CacheKey`]); every entry additionally
/// carries its plan's **read footprint** ([`Plan::read_footprint`]) and the lineage
/// id + epoch vector of the snapshot it was **computed at** (its *birth* version),
/// while the cache as a whole tracks the published snapshot.  Entry validity is *per
/// footprint, against the entry's own birth version*: a lookup carrying snapshot `s`
/// hits an entry iff `s` and the entry's birth snapshot observe identical
/// query-visible state through every component of the entry's footprint (same
/// system lineage and agreeing per-component epochs).  Storing the birth vector per
/// entry — rather than validating everything against the cache's current snapshot —
/// is what lets a **long-lived reader** still on an older snapshot keep getting
/// cache service: an entry computed just before (or an insert landing just after) a
/// publish stays servable to readers on the pre-publish snapshot, even when the
/// publish moved the entry's footprint.  Lineage is part of every comparison
/// because a rebuilt system's epochs restart low
/// (a whole [`StudySnapshot`](graphitti_core::StudySnapshot) replay is one
/// `CommitBatch`, so one bump): a worker still in flight on the old system holds a
/// *numerically higher* epoch than the freshly published one, and comparing numbers
/// alone would let it later serve a stale result once the numbers collide.  A stale
/// get or insert under these rules is either provably byte-identical (footprint
/// untouched — serving it is correct, not a race won) or a harmless miss / rejected
/// write.
///
/// [`install`](ResultCache::install) is the only way `snap` moves, and it runs inside
/// [`QueryService::publish`] *while the snapshot write lock is still held* — no reader
/// can observe a published snapshot the cache has not been synced to, so "the cache
/// serves the published state" is an invariant, not a lock race to win.  Install
/// evicts exactly the entries whose footprint intersects the components dirtied since
/// the previous snapshot (wholesale only across lineages or under
/// [`InvalidationPolicy::Full`]).
///
/// Recency lives in a tick-keyed [`BTreeMap`] (tick → key) mirroring the entries:
/// every touch re-keys the entry's tick, and at-capacity eviction pops the smallest
/// tick — `O(log n)`, replacing the old full-map `min_by_key` scan that ran under the
/// cache mutex on every at-capacity miss.
struct ResultCache {
    capacity: usize,
    policy: InvalidationPolicy,
    /// The published snapshot this cache's entries were last validated against.
    snap: Snapshot,
    tick: u64,
    /// Invalidation accounting (see the `cache_*` fields of [`ServiceMetrics`]).
    partial_invalidations: u64,
    full_invalidations: u64,
    entries_evicted: u64,
    map: HashMap<CacheKey, CacheEntry>,
    /// Recency order: tick of last use → key.  Invariant: one entry here per `map`
    /// entry, keyed by that entry's `last_used` (ticks are unique — every touch takes
    /// a fresh one).
    lru: BTreeMap<u64, CacheKey>,
}

struct CacheEntry {
    /// Shared with every ticket the entry has served, so a hit is an `Arc` bump under
    /// the lock, never a deep copy of the result pages.
    result: Arc<QueryResult>,
    /// The components the result depends on ([`Plan::read_footprint`]).
    footprint: ComponentSet,
    /// The lineage id of the snapshot this entry was computed against.
    born_system: u64,
    /// The epoch vector it was computed at.  Entry validity is agreement between
    /// *this* vector and the reader's, on the entry's footprint — so an entry
    /// computed just before (or inserted just after) a publish keeps serving readers
    /// still on the older snapshot, instead of being keyed to whatever the cache's
    /// current snapshot happens to be.
    born_epochs: EpochVector,
    last_used: u64,
}

impl ResultCache {
    fn new(capacity: usize, policy: InvalidationPolicy, snap: Snapshot) -> Self {
        ResultCache {
            capacity,
            policy,
            snap,
            tick: 0,
            partial_invalidations: 0,
            full_invalidations: 0,
            entries_evicted: 0,
            map: HashMap::new(),
            lru: BTreeMap::new(),
        }
    }

    /// Whether an entry born at `(born_system, born_epochs)` is still the correct
    /// answer for the **published** snapshot, given its footprint.
    fn fresh_for_published(
        &self,
        born_system: u64,
        born_epochs: EpochVector,
        footprint: ComponentSet,
    ) -> bool {
        self.snap.system_id() == born_system
            && born_epochs.agrees_on(self.snap.component_epochs(), footprint)
    }

    /// Move the cache onto `published`, evicting exactly the entries the state change
    /// can have affected — a no-op when the cache already serves this state
    /// (republishing an identical snapshot must not discard entries or count an
    /// invalidation).
    ///
    /// Within one system lineage the evicted set is the entries whose **own** birth
    /// epoch vector no longer agrees with the published one on their footprint; for
    /// the common case — entries born at the cache's previous snapshot — that is
    /// exactly "footprint intersects the components dirtied since the last publish",
    /// so an ingest-only batch evicts nothing while an annotation batch still clears
    /// every entry (all footprints read the annotation/referent registries).
    /// Across lineages — a rebuilt or replaced system, where epoch vectors are
    /// incomparable — the cache clears wholesale, as it does under
    /// [`InvalidationPolicy::Full`].
    ///
    /// **Contract:** `published` must be the *currently published* snapshot, and the
    /// service's snapshot write lock must be held across this call (as
    /// [`QueryService::publish`] does).  That is what makes this authoritative: a
    /// stale caller cannot exist, so any difference — forward publish, rebuilt system
    /// at a same-or-lower epoch — is a genuine state change and unconditionally wins.
    /// Deciding from a reader's *execution* snapshot instead (e.g. advancing on
    /// whichever epoch number is larger) would let a worker still in flight on a
    /// pre-rebuild system hijack the cache onto a superseded view.
    fn install(&mut self, published: &Snapshot) {
        if published.same_epoch(&self.snap) {
            return;
        }
        // Track the published snapshot even when caching is disabled — holding a
        // superseded one would pin its whole view alive for the service's life.
        let prev = std::mem::replace(&mut self.snap, published.clone());
        if self.capacity == 0 {
            return;
        }
        if self.policy == InvalidationPolicy::Footprint && published.same_system(&prev) {
            if published.changed_components(&prev).is_empty() {
                // Identical state under a new view identity (`unshare_all`): every
                // entry is still bit-exact for the published state.
                return;
            }
            let before = self.map.len();
            let (sys, epochs) = (published.system_id(), published.component_epochs());
            self.map.retain(|_, e| {
                e.born_system == sys && e.born_epochs.agrees_on(epochs, e.footprint)
            });
            let map = &self.map;
            self.lru.retain(|_, key| map.contains_key(key));
            self.entries_evicted += (before - self.map.len()) as u64;
            // "Full" means the install emptied a non-empty cache; an install racing
            // ahead of the first inserts (nothing present yet) counts as partial, so
            // the split is deterministic for concurrent tests and benches.
            if before > 0 && self.map.is_empty() {
                self.full_invalidations += 1;
            } else {
                self.partial_invalidations += 1;
            }
        } else {
            let before = self.map.len();
            self.entries_evicted += before as u64;
            self.map.clear();
            self.lru.clear();
            if before > 0 {
                self.full_invalidations += 1;
            } else {
                self.partial_invalidations += 1;
            }
        }
    }

    /// Look up a canonical key for a query executing against `snap`, refreshing the
    /// entry's recency on a hit.  Validity is agreement between `snap` and the
    /// **entry's own** birth epoch vector on the entry's footprint — so a long-lived
    /// reader still on an older snapshot keeps hitting entries computed there, even
    /// ones the published state has since moved past (until install evicts them).
    /// A lookup never moves the cache (only [`install`](Self::install) does).
    fn get(&mut self, key: &CacheKey, snap: &Snapshot) -> Option<Arc<QueryResult>> {
        if self.capacity == 0 {
            return None;
        }
        let full_valid = snap.same_epoch(&self.snap);
        let entry = self.map.get_mut(key)?;
        let valid = match self.policy {
            InvalidationPolicy::Full => full_valid,
            InvalidationPolicy::Footprint => {
                snap.system_id() == entry.born_system
                    && snap.component_epochs().agrees_on(entry.born_epochs, entry.footprint)
            }
        };
        if !valid {
            return None;
        }
        self.tick += 1;
        self.lru.remove(&entry.last_used);
        entry.last_used = self.tick;
        self.lru.insert(self.tick, key.clone());
        Some(Arc::clone(&entry.result))
    }

    /// Insert a result computed against `snap` for a plan reading `footprint`,
    /// tagged with `snap`'s epoch vector.  Same-lineage inserts are accepted even
    /// when a footprint-intersecting publish has since moved the state — the entry
    /// keeps serving readers still on the older snapshot — with one guard: an entry
    /// the *published* snapshot can serve is never displaced by one it cannot.
    /// Cross-lineage inserts (a worker still in flight on a replaced system) are
    /// rejected outright; the cache serves the published lineage only.  Evicts the
    /// least-recently-used entry when full (`O(log n)`: pop the smallest recency
    /// tick).
    fn insert(
        &mut self,
        key: CacheKey,
        snap: &Snapshot,
        footprint: ComponentSet,
        result: Arc<QueryResult>,
    ) {
        if self.capacity == 0 {
            return;
        }
        match self.policy {
            InvalidationPolicy::Full => {
                if !snap.same_epoch(&self.snap) {
                    return;
                }
            }
            InvalidationPolicy::Footprint => {
                if !snap.same_system(&self.snap) {
                    return;
                }
                if let Some(prev) = self.map.get(&key) {
                    let prev_fresh = self.fresh_for_published(
                        prev.born_system,
                        prev.born_epochs,
                        prev.footprint,
                    );
                    let new_fresh = self.fresh_for_published(
                        snap.system_id(),
                        snap.component_epochs(),
                        footprint,
                    );
                    if prev_fresh && !new_fresh {
                        return;
                    }
                }
            }
        }
        self.tick += 1;
        if let Some(prev) = self.map.get(&key) {
            self.lru.remove(&prev.last_used);
        } else if self.map.len() >= self.capacity {
            if let Some((_, lru_key)) = self.lru.pop_first() {
                self.map.remove(&lru_key);
            }
        }
        self.lru.insert(self.tick, key.clone());
        self.map.insert(
            key,
            CacheEntry {
                result,
                footprint,
                born_system: snap.system_id(),
                born_epochs: snap.component_epochs(),
                last_used: self.tick,
            },
        );
    }

    fn len(&self) -> usize {
        debug_assert_eq!(self.map.len(), self.lru.len(), "map/recency desync");
        self.map.len()
    }
}

/// Shared state between the service handle and its workers.
struct Inner {
    queue: Mutex<VecDeque<Job>>,
    queue_ready: Condvar,
    snapshot: RwLock<Snapshot>,
    cache: Mutex<ResultCache>,
    shutdown: AtomicBool,
    verify_workers: usize,
    parallel_threshold: usize,
    queue_capacity: usize,
    chaos: Option<ChaosConfig>,
    /// Live worker handles — in `Inner` (not the service handle) so a dying
    /// worker's respawn guard can register its replacement; `Drop` joins until
    /// this is empty.
    handles: Mutex<Vec<JoinHandle<()>>>,
    submitted: AtomicU64,
    completed: AtomicU64,
    shed: AtomicU64,
    failed: AtomicU64,
    deadline_misses: AtomicU64,
    cancelled: AtomicU64,
    worker_panics: AtomicU64,
    workers_respawned: AtomicU64,
    wal_flush_failures: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    publishes: AtomicU64,
    wal: RwLock<Option<Wal>>,
}

impl Inner {
    // The service locks recover from poisoning instead of panicking: every guarded
    // section moves its structure in exception-safe steps (queue pushes/pops, cache
    // map + LRU updates, whole-value snapshot/WAL swaps, handle pushes), so after a
    // worker panic — which chaos injection makes a first-class event — the state is
    // still coherent, and the surviving workers keep serving rather than cascading
    // the panic through every later lock acquisition.

    /// Lock the submission queue (poison-recovering; see above).
    fn queue_guard(&self) -> std::sync::MutexGuard<'_, VecDeque<Job>> {
        self.queue.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Lock the result cache (poison-recovering; see above).
    fn cache_guard(&self) -> std::sync::MutexGuard<'_, ResultCache> {
        self.cache.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Lock the worker-handle registry (poison-recovering; see above).
    fn handles_guard(&self) -> std::sync::MutexGuard<'_, Vec<JoinHandle<()>>> {
        self.handles.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// The current published snapshot (an `Arc` bump under a read lock).
    fn current_snapshot(&self) -> Snapshot {
        self.snapshot.read().unwrap_or_else(std::sync::PoisonError::into_inner).clone()
    }

    /// Execute one query against the current snapshot, consulting the cache.  The
    /// query is canonicalized exactly once: the canonical form is rendered once into
    /// the [`CacheKey`] (an explicit stable format, not `Debug` output) and is also
    /// what the executor plans, and its [`Plan::read_footprint`] is what the inserted
    /// entry's validity is keyed on.  `cancel` is checked up front (a job whose
    /// deadline expired while queued is failed without executing) and at every phase
    /// and chunk boundary inside the executor.
    fn execute(
        &self,
        query: &Query,
        cancel: &CancelToken,
        chaos: ChaosExec,
    ) -> Result<Arc<QueryResult>, ServiceError> {
        cancel.check()?;
        match chaos {
            ChaosExec::Stuck(delay) => match cooperative_sleep(delay, cancel, None) {
                Ok(()) => {}
                Err(SleepInterrupt::Query(i)) => return Err(i.into()),
                Err(SleepInterrupt::AttemptTimeout) => {
                    // lint: allow(no-panic-serving) -- stuck-query chaos passes no attempt deadline to the sleep
                    unreachable!("no attempt deadline on a stuck-query stall")
                }
            },
            // lint: allow(no-panic-serving) -- chaos injection IS a panic by design; the job catch absorbs it
            ChaosExec::Panic => panic!("chaos: injected worker panic during execution"),
            // Abort is handled in `work` (it must escape the catch); None is a no-op.
            ChaosExec::Abort | ChaosExec::None => {}
        }
        let canonical = query.canonicalize();
        let key = CacheKey::of_canonical(&canonical);
        let snap = self.current_snapshot();
        if let Some(hit) = self.cache_guard().get(&key, &snap) {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(hit);
        }
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
        let plan = Plan::build(&canonical, &snap);
        let footprint = plan.footprint;
        let result = Arc::new(
            Executor::new(&snap)
                .with_verify_workers(self.verify_workers)
                .with_parallel_threshold(self.parallel_threshold)
                .with_cancel(cancel.clone())
                .try_run_plan(&canonical, &plan)
                .map_err(ServiceError::from)?,
        );
        // Accepted iff this execution's answer is still correct for the published
        // state — publish syncs the cache under the snapshot write lock, so the cache
        // is never behind what any reader can observe; an execution that straddled a
        // publish lands anyway when its plan's footprint was untouched, and is
        // harmlessly rejected otherwise.
        self.cache_guard().insert(key, &snap, footprint, Arc::clone(&result));
        Ok(result)
    }

    /// Count one post-admission failure in the metric breakdown.
    fn note_failure(&self, err: &ServiceError) {
        self.failed.fetch_add(1, Ordering::Relaxed);
        match err {
            ServiceError::DeadlineExceeded => {
                self.deadline_misses.fetch_add(1, Ordering::Relaxed);
            }
            ServiceError::Cancelled => {
                self.cancelled.fetch_add(1, Ordering::Relaxed);
            }
            ServiceError::WorkerPanicked => {
                self.worker_panics.fetch_add(1, Ordering::Relaxed);
            }
            _ => {}
        }
    }

    /// The worker loop: drain the queue until shutdown *and* the queue is empty, so
    /// every accepted ticket is always resolved.  A panic during execution fails
    /// that job's ticket with [`ServiceError::WorkerPanicked`] but never kills the
    /// worker; a panic that *escapes* the catch (chaos abort) kills the thread, and
    /// the respawn guard both resolves the in-flight ticket and replaces the worker
    /// — the pool keeps its size and the queue keeps draining either way.
    fn work(self: &Arc<Self>) {
        loop {
            let job = {
                let mut queue = self.queue_guard();
                loop {
                    if let Some(job) = queue.pop_front() {
                        break job;
                    }
                    if self.shutdown.load(Ordering::Acquire) {
                        return;
                    }
                    queue = self
                        .queue_ready
                        .wait(queue)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
            };
            let chaos_exec =
                self.chaos.as_ref().map(|c| c.next_execution()).unwrap_or(ChaosExec::None);
            if chaos_exec == ChaosExec::Abort {
                // The panic below escapes the catch and unwinds the worker thread:
                // the job guard fails the in-flight ticket, the respawn guard (in
                // `spawn_worker`) replaces the thread.
                let _job_guard = JobGuard { inner: self, cell: &job.cell };
                // lint: allow(no-panic-serving) -- chaos abort must escape the catch to kill the worker; the guards resolve the ticket and respawn
                panic!("chaos: injected worker abort");
            }
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                self.execute(&job.query, &job.cancel, chaos_exec)
            }));
            match outcome {
                Ok(Ok(result)) => {
                    // Count before resolving the ticket, so a waiter that reads the
                    // metrics right after `wait` returns sees this completion.
                    self.completed.fetch_add(1, Ordering::Relaxed);
                    job.cell.deliver(result);
                }
                Ok(Err(err)) => {
                    self.note_failure(&err);
                    job.cell.fail(err);
                }
                Err(_) => {
                    let err = ServiceError::WorkerPanicked;
                    self.note_failure(&err);
                    job.cell.fail(err);
                }
            }
        }
    }
}

/// Spawn (or respawn) one pool worker.  The respawn guard restores the pool-size
/// invariant: if the worker thread dies to a panic that escaped the job catch, a
/// replacement is spawned and registered before the dying thread exits — unless
/// the service is already shutting down.
fn spawn_worker(inner: &Arc<Inner>, idx: usize) -> std::io::Result<JoinHandle<()>> {
    let worker = Arc::clone(inner);
    std::thread::Builder::new().name(format!("graphitti-query-{idx}")).spawn(move || {
        let _respawn = RespawnGuard { inner: Arc::clone(&worker), idx };
        worker.work();
    })
}

/// Fails the in-flight job's ticket if the worker unwinds while holding it (the
/// one way a ticket could otherwise be abandoned: a panic escaping the job catch).
struct JobGuard<'a> {
    inner: &'a Inner,
    cell: &'a Arc<TicketCell>,
}

impl Drop for JobGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            let err = ServiceError::WorkerPanicked;
            self.inner.note_failure(&err);
            self.cell.fail(err);
        }
    }
}

/// Restores the pool size when a worker thread dies to an escaped panic.
struct RespawnGuard {
    inner: Arc<Inner>,
    idx: usize,
}

impl Drop for RespawnGuard {
    fn drop(&mut self) {
        if std::thread::panicking() && !self.inner.shutdown.load(Ordering::Acquire) {
            if let Ok(handle) = spawn_worker(&self.inner, self.idx) {
                self.inner.workers_respawned.fetch_add(1, Ordering::Relaxed);
                self.inner.handles_guard().push(handle);
            }
        }
    }
}

/// The concurrent query service: a worker pool plus result cache over one published
/// [`Snapshot`].  See the [module docs](self) for the concurrency model.
pub struct QueryService {
    inner: Arc<Inner>,
    workers: usize,
}

impl QueryService {
    /// Start a service over an initial snapshot with the given configuration.
    pub fn new(snapshot: Snapshot, config: ServiceConfig) -> Self {
        let cache = ResultCache::new(config.cache_capacity, config.invalidation, snapshot.clone());
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            queue_ready: Condvar::new(),
            snapshot: RwLock::new(snapshot),
            cache: Mutex::new(cache),
            shutdown: AtomicBool::new(false),
            verify_workers: config.verify_workers.max(1),
            parallel_threshold: config.parallel_threshold.max(1),
            queue_capacity: config.queue_capacity.max(1),
            chaos: config.chaos,
            handles: Mutex::new(Vec::new()),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            deadline_misses: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            worker_panics: AtomicU64::new(0),
            workers_respawned: AtomicU64::new(0),
            wal_flush_failures: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            publishes: AtomicU64::new(0),
            wal: RwLock::new(None),
        });
        let workers = config.workers.max(1);
        {
            let mut handles = inner.handles_guard();
            for i in 0..workers {
                // lint: allow(no-panic-serving) -- pool construction: failing to spawn the initial workers is a startup error, not a serving-path state
                handles.push(spawn_worker(&inner, i).expect("spawn query worker"));
            }
        }
        QueryService { inner, workers }
    }

    /// Start a service with the default configuration.
    pub fn with_defaults(snapshot: Snapshot) -> Self {
        QueryService::new(snapshot, ServiceConfig::default())
    }

    /// Enqueue a query for execution on the pool; returns immediately with a
    /// [`Ticket`] redeemable for the result, or sheds the query with
    /// [`ServiceError::Overloaded`] when the submission queue is at capacity.
    pub fn submit(&self, query: Query) -> Result<Ticket, ServiceError> {
        self.submit_with_budget(query, QueryBudget::unbounded())
    }

    /// [`submit`](Self::submit) with a per-query [`QueryBudget`]: the deadline is
    /// carried into the worker as a cooperative cancellation token checked at every
    /// phase and chunk boundary, so an expired (or explicitly
    /// [cancelled](Ticket::cancel)) query stops burning its worker mid-flight.
    pub fn submit_with_budget(
        &self,
        query: Query,
        budget: QueryBudget,
    ) -> Result<Ticket, ServiceError> {
        self.inner.submitted.fetch_add(1, Ordering::Relaxed);
        let cancel = CancelToken::for_budget(&budget);
        let cell = Arc::new(TicketCell::default());
        {
            let mut queue = self.inner.queue_guard();
            let depth = queue.len();
            if depth >= self.inner.queue_capacity {
                drop(queue);
                self.inner.shed.fetch_add(1, Ordering::Relaxed);
                return Err(ServiceError::Overloaded { depth });
            }
            queue.push_back(Job { query, cell: Arc::clone(&cell), cancel: cancel.clone() });
        }
        self.inner.queue_ready.notify_one();
        Ok(Ticket { cell, cancel })
    }

    /// Submit a query and block for its result (convenience over
    /// [`submit`](Self::submit) + [`Ticket::wait`]).
    pub fn run(&self, query: Query) -> Result<QueryResult, ServiceError> {
        self.submit(query)?.wait()
    }

    /// [`run`](Self::run) under a per-query [`QueryBudget`].
    pub fn run_with_budget(
        &self,
        query: Query,
        budget: QueryBudget,
    ) -> Result<QueryResult, ServiceError> {
        self.submit_with_budget(query, budget)?.wait()
    }

    /// Execute a query synchronously *on the calling thread* — cache-aware and with
    /// the service's verify fan-out, but bypassing the submission queue (and so also
    /// admission control and chaos injection).  Use this for one latency-critical
    /// large query whose verify phase should use the machine, rather than for
    /// throughput.
    pub fn run_now(&self, query: &Query) -> Result<QueryResult, ServiceError> {
        self.inner.submitted.fetch_add(1, Ordering::Relaxed);
        let result = match self.inner.execute(query, &CancelToken::unbounded(), ChaosExec::None) {
            Ok(result) => result,
            Err(err) => {
                self.inner.note_failure(&err);
                return Err(err);
            }
        };
        self.inner.completed.fetch_add(1, Ordering::Relaxed);
        Ok(Arc::try_unwrap(result).unwrap_or_else(|shared| (*shared).clone()))
    }

    /// Publish a new snapshot: all queries executed from now on observe it, and —
    /// iff the published state actually changed — the result cache evicts exactly
    /// the entries whose read footprint intersects the components dirtied since the
    /// previous publish (an ingest-only batch evicts nothing; see
    /// [`ResultCache::install`] and [`InvalidationPolicy`]).  In-flight queries
    /// finish against the snapshot they already captured (snapshot isolation).
    ///
    /// The cache is installed while the snapshot write lock is still held, so a
    /// reader can never observe a published snapshot the cache has not been synced
    /// to: there is no window in which fresh results are rejected or a stale cache
    /// state lingers, and each published state costs exactly one (partial)
    /// invalidation.  (Workers hold the cache mutex only for O(log n) map
    /// operations, so the writer's wait under the lock is bounded.)
    ///
    /// Entry validity is per-footprint epoch agreement *within one system lineage*,
    /// so publishing a snapshot of a different or rebuilt system — even one whose
    /// epoch collides with or regresses below the current one — both clears the
    /// cache wholesale and makes any result a worker mid-flight on the old system
    /// later deposits unhittable: a stale get or insert can cause a miss, never a
    /// wrong answer.
    ///
    /// With a WAL attached, a failed flush aborts the publish *before* the snapshot
    /// becomes visible (durable-before-visible is preserved): the error is surfaced
    /// as [`ServiceError::WalFlush`] and counted in
    /// [`ServiceMetrics::wal_flush_failures`], and the caller may retry the publish.
    pub fn publish(&self, snapshot: Snapshot) -> Result<(), ServiceError> {
        // Durable before visible: with a WAL attached, every record appended so far
        // (the batches this snapshot is made of) reaches stable storage before any
        // reader can observe the new state.  Under `DurabilityMode::Sync` the flush
        // is a cheap no-op barrier; under `Async` it is the deferred fsync.
        if let Some(wal) =
            self.inner.wal.read().unwrap_or_else(std::sync::PoisonError::into_inner).as_ref()
        {
            if let Err(err) = wal.flush() {
                self.inner.wal_flush_failures.fetch_add(1, Ordering::Relaxed);
                return Err(ServiceError::WalFlush(err.to_string()));
            }
        }
        let mut current =
            self.inner.snapshot.write().unwrap_or_else(std::sync::PoisonError::into_inner);
        // Debug twin of the lint's dirty-set-soundness rule, at the serving
        // boundary: within one lineage, any component whose storage was replaced
        // since the outgoing snapshot must have moved its epoch — otherwise the
        // footprint-keyed cache would keep entries this publish invalidated.
        #[cfg(debug_assertions)]
        if current.system_id() == snapshot.system_id() {
            let moved = snapshot.component_epochs().changed(current.component_epochs());
            for c in graphitti_core::Component::ALL {
                debug_assert!(
                    snapshot.view().shares_component(current.view(), c) || moved.contains(c),
                    "publish: {c:?} storage was replaced but its epoch never moved"
                );
            }
        }
        *current = snapshot;
        // Documented order: snapshot before cache — publish is the only place both
        // guards are held, and workers take them one at a time, so no inversion.
        // lint: allow(lock-discipline) -- fixed snapshot-then-cache order, single nesting site
        self.inner.cache_guard().install(&current);
        drop(current);
        self.inner.publishes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Attach a write-ahead log: [`publish`](Self::publish) will flush it before a
    /// new snapshot becomes visible, and [`metrics`](Self::metrics) reports its
    /// durability counters.
    pub fn attach_wal(&self, wal: Wal) {
        *self.inner.wal.write().unwrap_or_else(std::sync::PoisonError::into_inner) = Some(wal);
    }

    /// The epoch of the currently published snapshot.
    pub fn current_epoch(&self) -> u64 {
        self.inner.current_snapshot().epoch()
    }

    /// A clone of the currently published snapshot.
    pub fn snapshot(&self) -> Snapshot {
        self.inner.current_snapshot()
    }

    /// Number of worker threads in the pool (the pool-size invariant: respawns
    /// keep the live thread count at this value).
    pub fn worker_count(&self) -> usize {
        self.workers
    }

    /// Number of live worker threads.  Finished handles (aborted workers whose
    /// replacement is already registered — the respawn guard pushes the new handle
    /// *before* the dying thread exits) are pruned on read; dropping a finished
    /// handle detaches an already-dead thread, so nothing is leaked.  May briefly
    /// exceed [`worker_count`](Self::worker_count) while a dying thread is still
    /// unwinding past its replacement's registration.
    pub fn live_workers(&self) -> usize {
        let mut handles = self.inner.handles_guard();
        handles.retain(|h| !h.is_finished());
        handles.len()
    }

    /// Number of live entries in the result cache.
    pub fn cache_len(&self) -> usize {
        self.inner.cache_guard().len()
    }

    /// A snapshot of the service counters.
    pub fn metrics(&self) -> ServiceMetrics {
        let (partial, full, evicted) = {
            let cache = self.inner.cache_guard();
            (cache.partial_invalidations, cache.full_invalidations, cache.entries_evicted)
        };
        let wal_stats = self
            .inner
            .wal
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .as_ref()
            .map(|wal| wal.stats())
            .unwrap_or_default();
        ServiceMetrics {
            submitted: self.inner.submitted.load(Ordering::Relaxed),
            completed: self.inner.completed.load(Ordering::Relaxed),
            shed: self.inner.shed.load(Ordering::Relaxed),
            failed: self.inner.failed.load(Ordering::Relaxed),
            deadline_misses: self.inner.deadline_misses.load(Ordering::Relaxed),
            cancelled: self.inner.cancelled.load(Ordering::Relaxed),
            worker_panics: self.inner.worker_panics.load(Ordering::Relaxed),
            workers_respawned: self.inner.workers_respawned.load(Ordering::Relaxed),
            degraded: 0,
            wal_flush_failures: self.inner.wal_flush_failures.load(Ordering::Relaxed),
            cache_hits: self.inner.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.inner.cache_misses.load(Ordering::Relaxed),
            publishes: self.inner.publishes.load(Ordering::Relaxed),
            cache_invalidations: partial + full,
            cache_partial_invalidations: partial,
            cache_full_invalidations: full,
            cache_entries_evicted: evicted,
            wal_records_appended: wal_stats.records_appended,
            wal_fsyncs: wal_stats.fsyncs,
            recovery_replays: wal_stats.recovery_replays,
        }
    }
}

impl Drop for QueryService {
    /// Graceful shutdown: workers finish every queued job (so no ticket is ever
    /// abandoned), then exit and are joined.
    fn drop(&mut self) {
        // The store happens under the queue mutex so no worker can sit between its
        // shutdown check and `Condvar::wait` when the flag flips — otherwise the
        // notify below could be lost and the join would deadlock.
        {
            let _guard = self.inner.queue_guard();
            self.inner.shutdown.store(true, Ordering::Release);
        }
        self.inner.queue_ready.notify_all();
        // Pop-until-empty (not a single drain): a worker dying to an injected abort
        // registers its replacement's handle *before* the dying thread exits, so new
        // handles can appear while we join.
        loop {
            let handle = self.inner.handles_guard().pop();
            match handle {
                Some(handle) => {
                    let _ = handle.join();
                }
                None => break,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{OntologyFilter, Target};
    use crate::reference::ReferenceExecutor;
    use graphitti_core::{Component, DataType, Graphitti, Marker};
    use std::time::Duration;

    /// A distinct cache key per phrase (unit tests for the cache need keys only).
    fn test_key(phrase: &str) -> CacheKey {
        Query::new(Target::AnnotationContents).with_phrase(phrase).cache_key()
    }

    /// The footprint of a content (phrase/keyword) query.
    fn content_fp() -> ComponentSet {
        ComponentSet::of([Component::Annotations, Component::Referents, Component::Content])
    }

    /// A footprint that an object registration's dirty set intersects (an `OfType`
    /// referent filter reads the object registry).
    fn object_fp() -> ComponentSet {
        ComponentSet::of([Component::Annotations, Component::Referents, Component::Objects])
    }

    fn sample_system(n: u64) -> Graphitti {
        let mut sys = Graphitti::new();
        let seq = sys.register_sequence("s", DataType::DnaSequence, 100_000, "chr1");
        let term = sys.ontology_mut().add_concept("T");
        for i in 0..n {
            let mut b = sys
                .annotate()
                .comment(if i % 3 == 0 { "protease motif" } else { "quiet region" })
                .mark(seq, Marker::interval(i * 50, i * 50 + 25));
            if i % 2 == 0 {
                b = b.cite_term(term);
            }
            b.commit().unwrap();
        }
        sys
    }

    fn phrase_query() -> Query {
        Query::new(Target::AnnotationContents).with_phrase("protease motif")
    }

    #[test]
    fn submitted_queries_match_direct_execution() {
        let sys = sample_system(30);
        let service = QueryService::new(sys.snapshot(), ServiceConfig::default().with_workers(3));
        let expected = Executor::new(&sys).run(&phrase_query());
        let tickets: Vec<Ticket> =
            (0..8).map(|_| service.submit(phrase_query()).expect("queue unbounded")).collect();
        for t in tickets {
            assert_eq!(t.wait().expect("query completes"), expected);
        }
        let m = service.metrics();
        assert_eq!(m.submitted, 8);
        assert_eq!(m.completed, 8);
    }

    #[test]
    fn cache_serves_equivalent_queries_from_one_entry() {
        let sys = sample_system(20);
        let service = QueryService::new(
            sys.snapshot(),
            ServiceConfig::default().with_workers(1).with_cache_capacity(16),
        );
        let a = Query::new(Target::AnnotationContents).with_keywords(["Protease", "motif"]);
        let b = Query::new(Target::AnnotationContents).with_keywords(["motif", "protease"]);
        let ra = service.run(a).unwrap();
        let rb = service.run(b).unwrap();
        assert_eq!(ra, rb);
        let m = service.metrics();
        assert_eq!(m.cache_misses, 1);
        assert_eq!(m.cache_hits, 1);
        assert_eq!(service.cache_len(), 1);
    }

    #[test]
    fn cache_disabled_always_executes() {
        let mut sys = sample_system(10);
        let service = QueryService::new(
            sys.snapshot(),
            ServiceConfig::default().with_workers(1).with_cache_capacity(0),
        );
        service.run(phrase_query()).unwrap();
        service.run(phrase_query()).unwrap();
        // a publish on a disabled cache must not report phantom invalidations
        sys.register_sequence("t", DataType::DnaSequence, 10, "chr2");
        service.publish(sys.snapshot()).unwrap();
        service.run(phrase_query()).unwrap();
        let m = service.metrics();
        assert_eq!(m.cache_hits, 0);
        assert_eq!(m.cache_misses, 3);
        assert_eq!(m.cache_invalidations, 0);
        assert_eq!(service.cache_len(), 0);
    }

    #[test]
    fn publish_invalidates_cache_and_serves_new_epoch() {
        let mut sys = sample_system(9);
        let service = QueryService::new(
            sys.snapshot(),
            ServiceConfig::default().with_workers(2).with_cache_capacity(8),
        );
        let before = service.run(phrase_query()).unwrap();

        // Writer commits a new matching annotation and publishes.
        let seq = sys.objects()[0].id;
        sys.annotate()
            .comment("protease motif, new")
            .mark(seq, Marker::interval(90_000, 90_100))
            .commit()
            .unwrap();
        service.publish(sys.snapshot()).unwrap();

        let after = service.run(phrase_query()).unwrap();
        assert_eq!(after.annotations.len(), before.annotations.len() + 1);
        assert_eq!(service.current_epoch(), sys.epoch());
        let m = service.metrics();
        assert_eq!(m.publishes, 1);
        // both executions were misses: the publish dropped the first entry
        assert_eq!(m.cache_misses, 2);
    }

    #[test]
    fn batched_writes_cost_one_invalidation_per_publish() {
        let mut sys = sample_system(9);
        let service = QueryService::new(
            sys.snapshot(),
            ServiceConfig::default().with_workers(1).with_cache_capacity(8),
        );
        let before = service.run(phrase_query()).unwrap();
        assert_eq!(service.metrics().cache_invalidations, 0);

        // A burst of 20 matching commits staged as one batch: one epoch, one publish,
        // one cache invalidation — not 20.
        let seq = sys.objects()[0].id;
        let epoch_before = sys.epoch();
        let mut batch = sys.batch();
        for i in 0..20u64 {
            batch
                .annotate()
                .comment("protease motif burst")
                .mark(seq, Marker::interval(90_000 + i * 10, 90_000 + i * 10 + 5))
                .commit()
                .unwrap();
        }
        assert_eq!(batch.commit(), 20);
        assert_eq!(sys.epoch(), epoch_before + 1);
        service.publish(sys.snapshot()).unwrap();

        let after = service.run(phrase_query()).unwrap();
        assert_eq!(after.annotations.len(), before.annotations.len() + 20);
        let m = service.metrics();
        assert_eq!(m.publishes, 1);
        assert_eq!(m.cache_invalidations, 1);
        // the annotation batch dirtied every footprint's components: nothing survived
        assert_eq!(m.cache_full_invalidations, 1);
        assert_eq!(m.cache_entries_evicted, 1);
    }

    #[test]
    fn ingest_only_publish_preserves_cache_entries() {
        let mut sys = sample_system(12);
        let service = QueryService::new(
            sys.snapshot(),
            ServiceConfig::default().with_workers(1).with_cache_capacity(8),
        );
        let before = service.run(phrase_query()).unwrap(); // miss, populates the cache
        assert!(service.run(phrase_query()).unwrap() == before); // hit

        // An ingest-only batch registers objects — its dirty set touches no component
        // a phrase query reads, so the entry must survive the publish and keep
        // serving hits.
        let mut batch = sys.batch();
        for i in 0..10 {
            batch.register_sequence(format!("late-{i}"), DataType::DnaSequence, 500, "chr9");
        }
        batch.commit();
        service.publish(sys.snapshot()).unwrap();
        assert_eq!(service.cache_len(), 1, "ingest publish must not evict");
        assert!(service.run(phrase_query()).unwrap() == before); // still a hit
        let m = service.metrics();
        assert_eq!(m.cache_hits, 2);
        assert_eq!(m.cache_misses, 1);
        assert_eq!(m.cache_invalidations, 1);
        assert_eq!(m.cache_partial_invalidations, 1);
        assert_eq!(m.cache_full_invalidations, 0);
        assert_eq!(m.cache_entries_evicted, 0);

        // An annotation touching the phrase's footprint still evicts it.
        let seq = sys.objects()[0].id;
        sys.annotate()
            .comment("protease motif, newly attached")
            .mark(seq, Marker::interval(90_000, 90_100))
            .commit()
            .unwrap();
        service.publish(sys.snapshot()).unwrap();
        let after = service.run(phrase_query()).unwrap();
        assert_eq!(after.annotations.len(), before.annotations.len() + 1);
        let m = service.metrics();
        assert_eq!(m.cache_misses, 2);
        assert_eq!(m.cache_entries_evicted, 1);
        assert_eq!(m.cache_full_invalidations, 1);
    }

    #[test]
    fn full_invalidation_policy_drops_entries_on_ingest_publish() {
        // The measurable baseline: under `InvalidationPolicy::Full`, the same ingest
        // publish that the footprint policy survives clears the cache.
        let mut sys = sample_system(12);
        let service = QueryService::new(
            sys.snapshot(),
            ServiceConfig::default()
                .with_workers(1)
                .with_cache_capacity(8)
                .with_invalidation(InvalidationPolicy::Full),
        );
        service.run(phrase_query()).unwrap();
        sys.register_sequence("late", DataType::DnaSequence, 500, "chr9");
        service.publish(sys.snapshot()).unwrap();
        assert_eq!(service.cache_len(), 0);
        service.run(phrase_query()).unwrap();
        let m = service.metrics();
        assert_eq!(m.cache_hits, 0);
        assert_eq!(m.cache_misses, 2);
        assert_eq!(m.cache_full_invalidations, 1);
        assert_eq!(m.cache_entries_evicted, 1);
    }

    fn empty_result() -> Arc<QueryResult> {
        Arc::new(QueryResult {
            pages: Vec::new(),
            annotations: Vec::new(),
            referents: Vec::new(),
            objects: Vec::new(),
            missing_shards: Vec::new(),
        })
    }

    /// Grow a fresh system until its epoch reaches `target`, capturing a snapshot at
    /// every intermediate epoch along the way.  Returns the system plus the snapshots
    /// indexed by epoch (so `snaps[e]` was captured at epoch `e`).
    fn system_with_epoch_snapshots(target: u64) -> (Graphitti, Vec<Snapshot>) {
        let mut sys = Graphitti::new();
        let mut snaps = vec![sys.snapshot()];
        while sys.epoch() < target {
            let n = sys.epoch();
            sys.register_sequence(format!("s{n}"), DataType::DnaSequence, 100, "chr1");
            snaps.push(sys.snapshot());
        }
        assert_eq!(sys.epoch(), target, "test setup: epoch must be reachable one bump at a time");
        (sys, snaps)
    }

    #[test]
    fn lru_evicts_least_recently_used_entry() {
        let (sys, _) = system_with_epoch_snapshots(0);
        let snap = sys.snapshot();
        let mut cache = ResultCache::new(2, InvalidationPolicy::Footprint, snap.clone());
        let empty = empty_result();
        let (a, b, c) = (test_key("a"), test_key("b"), test_key("c"));
        cache.insert(a.clone(), &snap, content_fp(), Arc::clone(&empty));
        cache.insert(b.clone(), &snap, content_fp(), Arc::clone(&empty));
        assert!(cache.get(&a, &snap).is_some()); // refresh a; b is now LRU
        cache.insert(c.clone(), &snap, content_fp(), empty.clone());
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&b, &snap).is_none());
        assert!(cache.get(&a, &snap).is_some());
        assert!(cache.get(&c, &snap).is_some());
        // re-inserting an existing key is an update, not a capacity eviction
        cache.insert(a.clone(), &snap, content_fp(), empty_result());
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&c, &snap).is_some());
    }

    #[test]
    fn install_evicts_exactly_the_footprint_intersecting_entries() {
        // The snapshots differ by object *registrations*, whose dirty set (catalog,
        // a-graph, objects, node maps, indexes) intersects an object-reading
        // footprint but not a content-reading one.
        let (_sys, snaps) = system_with_epoch_snapshots(2);
        let mut cache = ResultCache::new(4, InvalidationPolicy::Footprint, snaps[0].clone());
        let (content_key, object_key) = (test_key("content"), test_key("object"));
        cache.insert(content_key.clone(), &snaps[0], content_fp(), empty_result());
        cache.insert(object_key.clone(), &snaps[0], object_fp(), empty_result());
        assert_eq!(cache.partial_invalidations + cache.full_invalidations, 0);

        cache.install(&snaps[2]);
        // the object-footprint entry is gone, the content one survives
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.entries_evicted, 1);
        assert_eq!(cache.partial_invalidations, 1);
        assert_eq!(cache.full_invalidations, 0);
        assert!(cache.get(&object_key, &snaps[2]).is_none());
        assert!(cache.get(&content_key, &snaps[2]).is_some());
        // re-installing an identical snapshot is a no-op
        cache.install(&snaps[2]);
        assert_eq!(cache.partial_invalidations, 1);

        // A *stale* reader still in flight on snaps[1] agrees with the cache on the
        // content footprint (registrations never moved it), so it legitimately hits —
        // and its insert of a content-footprint result is accepted, because the
        // answer is provably identical at the published state.
        assert!(cache.get(&content_key, &snaps[1]).is_some());
        cache.insert(test_key("late content"), &snaps[1], content_fp(), empty_result());
        assert!(cache.get(&test_key("late content"), &snaps[2]).is_some());
        // ...while the same stale reader's *object*-footprint traffic is refused
        assert!(cache.get(&object_key, &snaps[1]).is_none());
        cache.insert(test_key("late object"), &snaps[1], object_fp(), empty_result());
        assert!(cache.get(&test_key("late object"), &snaps[2]).is_none());
    }

    #[test]
    fn entry_born_before_disjoint_publish_serves_stale_and_fresh_readers() {
        // The per-entry epoch vector pin (ROADMAP "per-entry epoch vectors"): an
        // entry computed just before a footprint-disjoint publish is served both to
        // a long-lived reader still on the old snapshot and to readers on the new
        // one — its *birth* vector agrees with both on the content footprint.
        let (_sys, snaps) = system_with_epoch_snapshots(2);
        let mut cache = ResultCache::new(4, InvalidationPolicy::Footprint, snaps[0].clone());
        let key = test_key("q");
        cache.insert(key.clone(), &snaps[0], content_fp(), empty_result());
        cache.install(&snaps[1]); // register-only publish: disjoint from content_fp
        assert_eq!(cache.len(), 1, "disjoint publish must not evict");
        assert!(cache.get(&key, &snaps[0]).is_some(), "stale reader must be served");
        assert!(cache.get(&key, &snaps[1]).is_some(), "fresh reader must be served");
    }

    #[test]
    fn stale_insert_after_intersecting_publish_serves_old_snapshot_readers() {
        // The stronger consequence of per-entry vectors: a worker that computed at
        // S0 with an *object* footprint lands its insert even after a publish that
        // moved that footprint — tagged with its birth vector, so readers still on
        // S0 hit it, readers on the published state miss it, and the next install
        // evicts it (its birth vector no longer agrees with the published one).
        let (_sys, snaps) = system_with_epoch_snapshots(3);
        let mut cache = ResultCache::new(4, InvalidationPolicy::Footprint, snaps[0].clone());
        cache.install(&snaps[2]); // registrations moved the object footprint past S0
        let key = test_key("late");
        cache.insert(key.clone(), &snaps[0], object_fp(), empty_result());
        assert_eq!(cache.len(), 1, "same-lineage stale insert must land");
        assert!(cache.get(&key, &snaps[0]).is_some(), "old-snapshot reader hits");
        assert!(cache.get(&key, &snaps[2]).is_none(), "published-state reader misses");

        // A fresh result for the same key must not be displaced by stale traffic.
        cache.insert(key.clone(), &snaps[2], object_fp(), empty_result());
        assert!(cache.get(&key, &snaps[2]).is_some());
        cache.insert(key.clone(), &snaps[0], object_fp(), empty_result());
        assert!(
            cache.get(&key, &snaps[2]).is_some(),
            "a published-servable entry must never be displaced by a stale one"
        );

        // The next changed publish evicts entries whose birth vector disagrees.
        cache.insert(test_key("stale2"), &snaps[0], object_fp(), empty_result());
        assert!(cache.get(&test_key("stale2"), &snaps[0]).is_some());
        cache.install(&snaps[3]);
        assert!(cache.get(&test_key("stale2"), &snaps[0]).is_none(), "evicted at install");
    }

    #[test]
    fn full_policy_clears_wholesale_on_any_changed_publish() {
        let (_sys, snaps) = system_with_epoch_snapshots(2);
        let mut cache = ResultCache::new(4, InvalidationPolicy::Full, snaps[0].clone());
        let key = test_key("a");
        cache.insert(key.clone(), &snaps[0], content_fp(), empty_result());
        cache.install(&snaps[2]);
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.full_invalidations, 1);
        assert_eq!(cache.entries_evicted, 1);
        // under the full policy, stale traffic is identity-rejected even when the
        // footprint would agree
        cache.insert(key.clone(), &snaps[2], content_fp(), empty_result());
        assert!(cache.get(&key, &snaps[1]).is_none());
        cache.insert(test_key("stale"), &snaps[1], content_fp(), empty_result());
        assert!(cache.get(&test_key("stale"), &snaps[2]).is_none());
    }

    #[test]
    fn stale_high_epoch_worker_cannot_hijack_cache_across_a_rebuild_publish() {
        // System A is at a high epoch and the cache serves one of its results.  An
        // operator then publishes a rebuilt system B whose epochs restart low (a
        // whole StudySnapshot replay is one batch, so one bump).  A worker still in
        // flight on A holds a *numerically higher* epoch than anything B will reach
        // for a while; neither its lookup nor its insert may move the cache or let
        // A's result be served again — in particular not when B's epoch later
        // collides with A's number.
        let (_sys_a, a_snaps) = system_with_epoch_snapshots(10);
        let a10 = &a_snaps[10];
        let mut cache = ResultCache::new(4, InvalidationPolicy::Footprint, a10.clone());
        let q = test_key("q");
        let stale = empty_result();
        cache.insert(q.clone(), a10, content_fp(), Arc::clone(&stale));
        assert!(cache.get(&q, a10).is_some());

        // The rebuild publish installs B at epoch 2 — another lineage, so the
        // footprint policy must clear wholesale (epoch vectors are incomparable).
        let (_sys_b, b_snaps) = system_with_epoch_snapshots(10);
        cache.install(&b_snaps[2]);
        assert_eq!(cache.full_invalidations, 1);

        // The stale worker finishes: its get misses (despite the numerically higher
        // epoch — and despite A's register-only history never touching the content
        // footprint: lineage gates every epoch comparison), and its insert is
        // rejected — the cache stays on B throughout.
        assert!(cache.get(&q, a10).is_none());
        cache.insert(q.clone(), a10, content_fp(), stale);
        assert_eq!(cache.len(), 0);
        for snap in &b_snaps {
            assert!(
                cache.get(&q, snap).is_none(),
                "B's epoch {} must never see A's entry",
                snap.epoch()
            );
        }

        // ... and B's current snapshot is served normally, undisturbed.
        cache.insert(q.clone(), &b_snaps[2], content_fp(), empty_result());
        assert!(cache.get(&q, &b_snaps[2]).is_some());
    }

    #[test]
    fn failed_ticket_surfaces_typed_error_instead_of_panicking() {
        let cell = Arc::new(TicketCell::default());
        cell.fail(ServiceError::WorkerPanicked);
        let ticket = Ticket { cell: Arc::clone(&cell), cancel: CancelToken::unbounded() };
        assert_eq!(ticket.try_take(), Err(ServiceError::WorkerPanicked));
        let ticket = Ticket { cell, cancel: CancelToken::unbounded() };
        assert_eq!(ticket.wait(), Err(ServiceError::WorkerPanicked));
    }

    #[test]
    fn redeeming_a_ticket_twice_is_a_typed_error_not_a_hang() {
        let cell = Arc::new(TicketCell::default());
        cell.deliver(empty_result());
        let ticket = Ticket { cell, cancel: CancelToken::unbounded() };
        assert!(ticket.try_take().unwrap().is_some());
        // a second redemption is a caller bug: it must fail fast, not block forever
        assert_eq!(ticket.try_take(), Err(ServiceError::AlreadyTaken));
    }

    #[test]
    fn failure_never_clobbers_a_delivered_result() {
        // The abort path's job guard may fire after the worker already delivered
        // (panic between deliver and loop top): the resolved slot must win.
        let cell = Arc::new(TicketCell::default());
        cell.deliver(empty_result());
        cell.fail(ServiceError::WorkerPanicked);
        let ticket = Ticket { cell, cancel: CancelToken::unbounded() };
        assert_eq!(ticket.wait().unwrap(), *empty_result());
    }

    #[test]
    fn publishing_a_different_system_at_equal_epoch_clears_the_cache() {
        // Two distinct systems with identical epochs but different contents: the
        // publish must not let epoch-keyed entries from the first survive.
        let sys_a = sample_system(6); // 6 annotations, 2 matching
        let mut sys_b = Graphitti::new();
        let seq = sys_b.register_sequence("s", DataType::DnaSequence, 100_000, "chr1");
        sys_b.ontology_mut().add_concept("X");
        for i in 0..6 {
            sys_b
                .annotate()
                .comment("protease motif everywhere")
                .mark(seq, Marker::interval(i * 50, i * 50 + 25))
                .commit()
                .unwrap();
        }
        assert_eq!(sys_a.epoch(), sys_b.epoch(), "test setup: epochs must collide");

        let service = QueryService::new(
            sys_a.snapshot(),
            ServiceConfig::default().with_workers(1).with_cache_capacity(8),
        );
        let from_a = service.run(phrase_query()).unwrap();
        assert_eq!(from_a, Executor::new(&sys_a).run(&phrase_query()));

        service.publish(sys_b.snapshot()).unwrap();
        let from_b = service.run(phrase_query()).unwrap();
        assert_eq!(from_b, Executor::new(&sys_b).run(&phrase_query()));
        assert_ne!(from_a, from_b);
        assert_eq!(service.metrics().cache_hits, 0);
    }

    #[test]
    fn parallel_verify_config_is_byte_identical() {
        let sys = sample_system(64);
        let expected = Executor::new(&sys).run(&phrase_query());
        let service = QueryService::new(
            sys.snapshot(),
            ServiceConfig::default()
                .with_workers(2)
                .with_verify_workers(4)
                .with_parallel_threshold(1)
                .with_cache_capacity(0),
        );
        assert_eq!(service.run(phrase_query()).unwrap(), expected);
        assert_eq!(service.run_now(&phrase_query()).unwrap(), expected);
    }

    #[test]
    fn many_concurrent_clients_all_get_correct_results() {
        let sys = sample_system(40);
        let term_query = Query::new(Target::AnnotationContents)
            .with_ontology(OntologyFilter::CitesTerm(ontology::ConceptId(0)));
        let expected_phrase = ReferenceExecutor::new(&sys).run(&phrase_query());
        let expected_term = ReferenceExecutor::new(&sys).run(&term_query);
        let service = Arc::new(QueryService::new(
            sys.snapshot(),
            ServiceConfig::default().with_workers(4).with_cache_capacity(4),
        ));
        std::thread::scope(|scope| {
            for client in 0..6 {
                let service = Arc::clone(&service);
                let term_query = term_query.clone();
                let expected_phrase = &expected_phrase;
                let expected_term = &expected_term;
                scope.spawn(move || {
                    for round in 0..10 {
                        if (client + round) % 2 == 0 {
                            assert_eq!(&service.run(phrase_query()).unwrap(), expected_phrase);
                        } else {
                            assert_eq!(&service.run(term_query.clone()).unwrap(), expected_term);
                        }
                    }
                });
            }
        });
        let m = service.metrics();
        assert_eq!(m.completed, 60);
        // Every execution that starts before the first insert for its key lands is a
        // legal miss, so the worst case is workers × distinct keys = 4 × 2 misses.
        assert!(m.cache_hits >= 52, "expected mostly hits, got {m:?}");
    }

    #[test]
    fn drop_completes_queued_work() {
        let sys = sample_system(15);
        let service = QueryService::new(sys.snapshot(), ServiceConfig::default().with_workers(1));
        let tickets: Vec<Ticket> =
            (0..5).map(|_| service.submit(phrase_query()).expect("queue unbounded")).collect();
        drop(service); // graceful: queued jobs still complete
        for t in tickets {
            assert!(t.try_take().unwrap().is_some());
        }
    }

    #[test]
    fn full_queue_sheds_with_overloaded_error() {
        let sys = sample_system(10);
        let service = QueryService::new(
            sys.snapshot(),
            ServiceConfig::default().with_workers(1).with_queue_capacity(1).with_chaos(
                // Stall the first execution so the queue stays occupied deterministically.
                ChaosConfig::default().with_stuck_query_on(1, Duration::from_millis(200)),
            ),
        );
        let first = service.submit(phrase_query()).expect("first submission admitted");
        // Keep submitting until the stalled worker has dequeued the first job and the
        // bounded queue is occupied by a second — the third concurrent submission in
        // flight then must shed.
        let mut admitted = vec![first];
        let shed_err = loop {
            match service.submit(phrase_query()) {
                Ok(t) => admitted.push(t),
                Err(err) => break err,
            }
            assert!(admitted.len() < 64, "queue of capacity 1 admitted 64 jobs");
        };
        assert!(matches!(shed_err, ServiceError::Overloaded { depth: 1 }), "got {shed_err:?}");
        for t in admitted {
            t.wait().expect("admitted tickets all resolve");
        }
        let m = service.metrics();
        assert!(m.shed >= 1);
        assert_eq!(m.shed + m.completed + m.failed, m.submitted);
    }

    #[test]
    fn expired_deadline_fails_with_deadline_exceeded() {
        let sys = sample_system(10);
        let service = QueryService::new(sys.snapshot(), ServiceConfig::default().with_workers(1));
        // An already-expired budget: the worker sheds it at dequeue without executing.
        let budget = QueryBudget::unbounded().with_deadline(Duration::from_nanos(0));
        let err = service.run_with_budget(phrase_query(), budget).unwrap_err();
        assert_eq!(err, ServiceError::DeadlineExceeded);
        let m = service.metrics();
        assert_eq!(m.failed, 1);
        assert_eq!(m.deadline_misses, 1);
        assert_eq!(m.shed + m.completed + m.failed, m.submitted);
    }

    #[test]
    fn cancelled_ticket_fails_with_cancelled() {
        let sys = sample_system(10);
        let service = QueryService::new(
            sys.snapshot(),
            ServiceConfig::default().with_workers(1).with_chaos(
                ChaosConfig::default().with_stuck_query_on(1, Duration::from_millis(500)),
            ),
        );
        let ticket = service.submit(phrase_query()).unwrap();
        ticket.cancel();
        // The stuck-query stall observes the token cooperatively and aborts early.
        assert_eq!(ticket.wait(), Err(ServiceError::Cancelled));
        let m = service.metrics();
        assert_eq!(m.cancelled, 1);
        assert_eq!(m.shed + m.completed + m.failed, m.submitted);
    }

    #[test]
    fn pool_survives_injected_panics_and_keeps_serving() {
        let sys = sample_system(20);
        let expected = Executor::new(&sys).run(&phrase_query());
        let service = QueryService::new(
            sys.snapshot(),
            ServiceConfig::default()
                .with_workers(2)
                .with_cache_capacity(0)
                .with_chaos(ChaosConfig::default().with_worker_panic_on(2)),
        );
        let tickets: Vec<Ticket> =
            (0..6).map(|_| service.submit(phrase_query()).unwrap()).collect();
        let outcomes: Vec<_> = tickets.into_iter().map(|t| t.wait()).collect();
        let panicked = outcomes.iter().filter(|o| **o == Err(ServiceError::WorkerPanicked)).count();
        assert_eq!(panicked, 1, "exactly the injected execution fails: {outcomes:?}");
        for ok in outcomes.into_iter().filter_map(Result::ok) {
            assert_eq!(ok, expected);
        }
        let m = service.metrics();
        assert_eq!(m.worker_panics, 1);
        assert_eq!(m.workers_respawned, 0, "caught panic must not cost a thread");
        assert_eq!(m.completed, 5);
        assert_eq!(m.shed + m.completed + m.failed, m.submitted);
    }

    #[test]
    fn pool_respawns_after_worker_abort() {
        let sys = sample_system(20);
        let expected = Executor::new(&sys).run(&phrase_query());
        let service = QueryService::new(
            sys.snapshot(),
            ServiceConfig::default()
                .with_workers(2)
                .with_cache_capacity(0)
                .with_chaos(ChaosConfig::default().with_worker_abort_on(2)),
        );
        let tickets: Vec<Ticket> =
            (0..6).map(|_| service.submit(phrase_query()).unwrap()).collect();
        let outcomes: Vec<_> = tickets.into_iter().map(|t| t.wait()).collect();
        let aborted = outcomes.iter().filter(|o| **o == Err(ServiceError::WorkerPanicked)).count();
        assert_eq!(aborted, 1, "exactly the aborted execution fails: {outcomes:?}");
        for ok in outcomes.into_iter().filter_map(Result::ok) {
            assert_eq!(ok, expected);
        }
        // The job guard resolves the failed ticket *before* the dying thread's
        // respawn guard runs, so give the respawn a moment to register.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while service.metrics().workers_respawned == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        let m = service.metrics();
        assert_eq!(m.workers_respawned, 1, "the dead thread must be replaced");
        assert_eq!(m.completed, 5);
        assert_eq!(m.shed + m.completed + m.failed, m.submitted);
        // The replacement still serves after the originals drained everything.
        assert_eq!(service.run(phrase_query()).unwrap(), expected);
    }
}
