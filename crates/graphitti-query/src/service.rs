//! [`QueryService`] — the concurrent query-serving layer.
//!
//! The service owns a `std::thread` worker pool and serves queries against one
//! *published* [`Snapshot`] of the system:
//!
//! * **Independent queries run in parallel.**  [`QueryService::submit`] enqueues a
//!   query and returns a [`Ticket`] immediately; pool workers drain the queue, each
//!   executing against a clone of the current snapshot (an `Arc` bump), so a slow
//!   query never blocks an unrelated fast one and no query ever blocks a writer.
//! * **One large query can fan out.**  Worker executors inherit the service's
//!   `verify_workers` setting, so the verify phase of a big candidate set is split
//!   into contiguous chunks across scoped threads and re-merged in order (see
//!   [`Executor::with_verify_workers`]) — results stay byte-identical to the
//!   sequential pass.
//! * **A normalized-query result cache sits in front.**  Results are cached under the
//!   query's canonical form ([`Query::cache_key`]) together with the snapshot epoch,
//!   so semantically equal queries — different conjunct order, keyword case or
//!   duplicate conjuncts — share one entry.  The cache is LRU-evicted at a fixed
//!   capacity and invalidated wholesale when a new snapshot is published.
//!
//! Writers keep mutating their [`graphitti_core::Graphitti`] as usual and make new
//! state visible to the service explicitly via [`QueryService::publish`]; until then,
//! every in-flight and future query observes the previously published epoch —
//! snapshot isolation, not read-your-writes.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;

use graphitti_core::Snapshot;

use crate::ast::Query;
use crate::exec::{Executor, DEFAULT_PARALLEL_VERIFY_THRESHOLD};
use crate::result::QueryResult;

/// Tuning knobs for a [`QueryService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Pool size: number of worker threads draining the submission queue.
    pub workers: usize,
    /// Result-cache capacity in entries; `0` disables caching entirely.
    pub cache_capacity: usize,
    /// Verify-phase fan-out *within* one query (1 = sequential verify).
    pub verify_workers: usize,
    /// Candidate-count threshold above which a verify pass is chunked across
    /// `verify_workers` threads.
    pub parallel_threshold: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2);
        ServiceConfig {
            workers: cores,
            cache_capacity: 256,
            verify_workers: 1,
            parallel_threshold: DEFAULT_PARALLEL_VERIFY_THRESHOLD,
        }
    }
}

impl ServiceConfig {
    /// Builder: set the worker-pool size.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Builder: set the result-cache capacity (`0` disables caching).
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Builder: set the per-query verify fan-out.
    pub fn with_verify_workers(mut self, verify_workers: usize) -> Self {
        self.verify_workers = verify_workers.max(1);
        self
    }

    /// Builder: set the parallel-verify candidate threshold.
    pub fn with_parallel_threshold(mut self, threshold: usize) -> Self {
        self.parallel_threshold = threshold.max(1);
        self
    }
}

/// Counters describing what the service has done so far (all monotonic).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceMetrics {
    /// Queries submitted (via [`QueryService::submit`] / [`QueryService::run`] /
    /// [`QueryService::run_now`]).
    pub submitted: u64,
    /// Queries completed (result delivered).
    pub completed: u64,
    /// Queries answered from the result cache.
    pub cache_hits: u64,
    /// Queries executed because the cache had no valid entry.
    pub cache_misses: u64,
    /// Snapshot publishes observed.
    pub publishes: u64,
}

/// A handle to one submitted query's pending result.
///
/// Obtained from [`QueryService::submit`]; redeem it with [`Ticket::wait`].
#[derive(Debug)]
pub struct Ticket {
    cell: Arc<TicketCell>,
}

#[derive(Debug, Default)]
enum SlotState {
    /// Not executed yet.
    #[default]
    Pending,
    /// Result delivered (shared with the cache when it was a hit).
    Ready(Arc<QueryResult>),
    /// The result was already redeemed by [`Ticket::try_take`]; redeeming again is a
    /// caller bug and panics rather than hanging on a result that will never arrive.
    Taken,
    /// The executing worker panicked; redeeming the ticket propagates the panic.
    Poisoned,
}

#[derive(Debug, Default)]
struct TicketCell {
    slot: Mutex<SlotState>,
    ready: Condvar,
}

impl Ticket {
    /// Block until the query has been executed and take its result.
    ///
    /// # Panics
    /// Panics if the worker executing this query panicked (the panic is propagated to
    /// the submitter rather than deadlocking it).
    pub fn wait(self) -> QueryResult {
        let mut slot = self.cell.slot.lock().expect("ticket lock poisoned");
        loop {
            match std::mem::replace(&mut *slot, SlotState::Taken) {
                SlotState::Pending => {
                    *slot = SlotState::Pending;
                    slot = self.cell.ready.wait(slot).expect("ticket lock poisoned");
                }
                SlotState::Ready(result) => {
                    return Arc::try_unwrap(result).unwrap_or_else(|shared| (*shared).clone());
                }
                SlotState::Taken => panic!("ticket result already taken"),
                SlotState::Poisoned => {
                    *slot = SlotState::Poisoned;
                    panic!("query worker panicked executing this query");
                }
            }
        }
    }

    /// Take the result if it is already available, without blocking.  Panics like
    /// [`Ticket::wait`] if the executing worker panicked, or if the result was
    /// already taken by an earlier `try_take`.
    pub fn try_take(&self) -> Option<QueryResult> {
        let mut slot = self.cell.slot.lock().expect("ticket lock poisoned");
        match std::mem::replace(&mut *slot, SlotState::Taken) {
            SlotState::Pending => {
                *slot = SlotState::Pending;
                None
            }
            SlotState::Ready(result) => {
                Some(Arc::try_unwrap(result).unwrap_or_else(|shared| (*shared).clone()))
            }
            SlotState::Taken => panic!("ticket result already taken"),
            SlotState::Poisoned => {
                *slot = SlotState::Poisoned;
                panic!("query worker panicked executing this query");
            }
        }
    }
}

impl TicketCell {
    fn deliver(&self, result: Arc<QueryResult>) {
        let mut slot = self.slot.lock().expect("ticket lock poisoned");
        *slot = SlotState::Ready(result);
        self.ready.notify_all();
    }

    fn poison(&self) {
        let mut slot = self.slot.lock().expect("ticket lock poisoned");
        *slot = SlotState::Poisoned;
        self.ready.notify_all();
    }
}

/// One queued unit of work: a query plus the ticket cell to deliver into.
struct Job {
    query: Query,
    cell: Arc<TicketCell>,
}

/// The normalized-query LRU result cache.
///
/// Keys are canonical query renderings ([`Query::cache_key`]); every entry belongs to
/// exactly one snapshot epoch.  Lookups and inserts carry the epoch of the snapshot
/// they were computed against, and the cache *advances itself* to the newest epoch it
/// is shown (discarding every entry) — so a worker racing a publish can never
/// resurrect a result from a superseded snapshot, and a publish delayed between
/// installing the snapshot and notifying the cache cannot wedge the cache in a state
/// where nothing ever hits (the first reader on the new snapshot repairs it).
struct ResultCache {
    capacity: usize,
    epoch: u64,
    tick: u64,
    map: HashMap<String, CacheEntry>,
}

struct CacheEntry {
    /// Shared with every ticket the entry has served, so a hit is an `Arc` bump under
    /// the lock, never a deep copy of the result pages.
    result: Arc<QueryResult>,
    last_used: u64,
}

impl ResultCache {
    fn new(capacity: usize, epoch: u64) -> Self {
        ResultCache { capacity, epoch, tick: 0, map: HashMap::new() }
    }

    /// Advance to `epoch` if it is newer than the cached one, discarding every entry.
    /// Epochs are monotonic, so "newer" is a plain comparison.
    fn advance(&mut self, epoch: u64) {
        if epoch > self.epoch {
            self.map.clear();
            self.epoch = epoch;
        }
    }

    /// Force the cache onto `epoch`, discarding every entry — used when a publish
    /// replaces the view without increasing the epoch (e.g. a snapshot of a different
    /// or rebuilt system that happens to share the number).
    fn reset(&mut self, epoch: u64) {
        self.map.clear();
        self.epoch = epoch;
    }

    /// Look up a canonical key computed against `epoch`, refreshing its recency.
    /// A lookup from a *newer* snapshot advances (and clears) the cache first; a
    /// lookup from a stale snapshot misses without disturbing current entries.
    fn get(&mut self, key: &str, epoch: u64) -> Option<Arc<QueryResult>> {
        if self.capacity == 0 {
            return None;
        }
        self.advance(epoch);
        if epoch != self.epoch {
            return None;
        }
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(key).map(|e| {
            e.last_used = tick;
            Arc::clone(&e.result)
        })
    }

    /// Insert a result computed against `epoch`; rejected (harmlessly) when a newer
    /// snapshot has superseded that epoch in the meantime.  Evicts the
    /// least-recently-used entry when full.
    fn insert(&mut self, key: String, epoch: u64, result: Arc<QueryResult>) {
        if self.capacity == 0 {
            return;
        }
        self.advance(epoch);
        if epoch != self.epoch {
            return;
        }
        self.tick += 1;
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            if let Some(lru) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&lru);
            }
        }
        self.map.insert(key, CacheEntry { result, last_used: self.tick });
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

/// Shared state between the service handle and its workers.
struct Inner {
    queue: Mutex<VecDeque<Job>>,
    queue_ready: Condvar,
    snapshot: RwLock<Snapshot>,
    cache: Mutex<ResultCache>,
    shutdown: AtomicBool,
    verify_workers: usize,
    parallel_threshold: usize,
    submitted: AtomicU64,
    completed: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    publishes: AtomicU64,
}

impl Inner {
    /// The current published snapshot (an `Arc` bump under a read lock).
    fn current_snapshot(&self) -> Snapshot {
        self.snapshot.read().expect("snapshot lock poisoned").clone()
    }

    /// Execute one query against the current snapshot, consulting the cache.  The
    /// query is canonicalized exactly once: the canonical rendering is the cache key
    /// and the canonical form is what the executor plans.
    fn execute(&self, query: &Query) -> Arc<QueryResult> {
        let canonical = query.canonicalize();
        let key = format!("{canonical:?}");
        let snap = self.current_snapshot();
        if let Some(hit) = self
            .cache
            .lock()
            .expect("cache lock poisoned")
            .get(&key, snap.epoch())
        {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            return hit;
        }
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
        let result = Arc::new(
            Executor::new(&snap)
                .with_verify_workers(self.verify_workers)
                .with_parallel_threshold(self.parallel_threshold)
                .run_canonical(&canonical),
        );
        self.cache
            .lock()
            .expect("cache lock poisoned")
            .insert(key, snap.epoch(), Arc::clone(&result));
        result
    }

    /// The worker loop: drain the queue until shutdown *and* the queue is empty, so
    /// every accepted ticket is always redeemed.  A panic during execution poisons
    /// that job's ticket (propagating the panic to the submitter) but never kills the
    /// worker — the pool keeps its size and the queue keeps draining.
    fn work(&self) {
        loop {
            let job = {
                let mut queue = self.queue.lock().expect("queue lock poisoned");
                loop {
                    if let Some(job) = queue.pop_front() {
                        break job;
                    }
                    if self.shutdown.load(Ordering::Acquire) {
                        return;
                    }
                    queue = self.queue_ready.wait(queue).expect("queue lock poisoned");
                }
            };
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                self.execute(&job.query)
            }));
            match outcome {
                Ok(result) => {
                    job.cell.deliver(result);
                    self.completed.fetch_add(1, Ordering::Relaxed);
                }
                Err(_) => job.cell.poison(),
            }
        }
    }
}

/// The concurrent query service: a worker pool plus result cache over one published
/// [`Snapshot`].  See the [module docs](self) for the concurrency model.
pub struct QueryService {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

impl QueryService {
    /// Start a service over an initial snapshot with the given configuration.
    pub fn new(snapshot: Snapshot, config: ServiceConfig) -> Self {
        let epoch = snapshot.epoch();
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            queue_ready: Condvar::new(),
            snapshot: RwLock::new(snapshot),
            cache: Mutex::new(ResultCache::new(config.cache_capacity, epoch)),
            shutdown: AtomicBool::new(false),
            verify_workers: config.verify_workers.max(1),
            parallel_threshold: config.parallel_threshold.max(1),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            publishes: AtomicU64::new(0),
        });
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("graphitti-query-{i}"))
                    .spawn(move || inner.work())
                    .expect("spawn query worker")
            })
            .collect();
        QueryService { inner, workers }
    }

    /// Start a service with the default configuration.
    pub fn with_defaults(snapshot: Snapshot) -> Self {
        QueryService::new(snapshot, ServiceConfig::default())
    }

    /// Enqueue a query for execution on the pool; returns immediately with a
    /// [`Ticket`] redeemable for the result.
    pub fn submit(&self, query: Query) -> Ticket {
        self.inner.submitted.fetch_add(1, Ordering::Relaxed);
        let cell = Arc::new(TicketCell::default());
        {
            let mut queue = self.inner.queue.lock().expect("queue lock poisoned");
            queue.push_back(Job { query, cell: Arc::clone(&cell) });
        }
        self.inner.queue_ready.notify_one();
        Ticket { cell }
    }

    /// Submit a query and block for its result (convenience over
    /// [`submit`](Self::submit) + [`Ticket::wait`]).
    pub fn run(&self, query: Query) -> QueryResult {
        self.submit(query).wait()
    }

    /// Execute a query synchronously *on the calling thread* — cache-aware and with
    /// the service's verify fan-out, but bypassing the submission queue.  Use this for
    /// one latency-critical large query whose verify phase should use the machine,
    /// rather than for throughput.
    pub fn run_now(&self, query: &Query) -> QueryResult {
        self.inner.submitted.fetch_add(1, Ordering::Relaxed);
        let result = self.inner.execute(query);
        self.inner.completed.fetch_add(1, Ordering::Relaxed);
        Arc::try_unwrap(result).unwrap_or_else(|shared| (*shared).clone())
    }

    /// Publish a new snapshot: all queries executed from now on observe it, and the
    /// result cache is invalidated iff the epoch actually changed.  In-flight queries
    /// finish against the snapshot they already captured (snapshot isolation).
    ///
    /// The cache is advanced eagerly here, but correctness does not depend on winning
    /// that lock promptly: the first worker to read the new snapshot advances the
    /// cache itself (see [`ResultCache::advance`]).
    ///
    /// Publishing a snapshot of a *different* system whose epoch happens not to
    /// exceed the current one is detected by view identity and clears the cache too
    /// (lazy advancement can't tell two systems apart, so a worker mid-flight on the
    /// old view at the same epoch could still deposit one stale entry — keep a service
    /// on a single writer's snapshots for strict guarantees).
    pub fn publish(&self, snapshot: Snapshot) {
        let epoch = snapshot.epoch();
        let same_state = {
            let mut current = self.inner.snapshot.write().expect("snapshot lock poisoned");
            let same_state = current.same_epoch(&snapshot);
            *current = snapshot;
            same_state
        };
        {
            let mut cache = self.inner.cache.lock().expect("cache lock poisoned");
            if epoch > cache.epoch {
                cache.advance(epoch);
            } else if !same_state {
                cache.reset(epoch);
            }
        }
        self.inner.publishes.fetch_add(1, Ordering::Relaxed);
    }

    /// The epoch of the currently published snapshot.
    pub fn current_epoch(&self) -> u64 {
        self.inner.current_snapshot().epoch()
    }

    /// A clone of the currently published snapshot.
    pub fn snapshot(&self) -> Snapshot {
        self.inner.current_snapshot()
    }

    /// Number of worker threads in the pool.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Number of live entries in the result cache.
    pub fn cache_len(&self) -> usize {
        self.inner.cache.lock().expect("cache lock poisoned").len()
    }

    /// A snapshot of the service counters.
    pub fn metrics(&self) -> ServiceMetrics {
        ServiceMetrics {
            submitted: self.inner.submitted.load(Ordering::Relaxed),
            completed: self.inner.completed.load(Ordering::Relaxed),
            cache_hits: self.inner.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.inner.cache_misses.load(Ordering::Relaxed),
            publishes: self.inner.publishes.load(Ordering::Relaxed),
        }
    }
}

impl Drop for QueryService {
    /// Graceful shutdown: workers finish every queued job (so no ticket is ever
    /// abandoned), then exit and are joined.
    fn drop(&mut self) {
        // The store happens under the queue mutex so no worker can sit between its
        // shutdown check and `Condvar::wait` when the flag flips — otherwise the
        // notify below could be lost and the join would deadlock.
        {
            let _guard = self.inner.queue.lock().expect("queue lock poisoned");
            self.inner.shutdown.store(true, Ordering::Release);
        }
        self.inner.queue_ready.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{OntologyFilter, Target};
    use crate::reference::ReferenceExecutor;
    use graphitti_core::{DataType, Graphitti, Marker};

    fn sample_system(n: u64) -> Graphitti {
        let mut sys = Graphitti::new();
        let seq = sys.register_sequence("s", DataType::DnaSequence, 100_000, "chr1");
        let term = sys.ontology_mut().add_concept("T");
        for i in 0..n {
            let mut b = sys
                .annotate()
                .comment(if i % 3 == 0 { "protease motif" } else { "quiet region" })
                .mark(seq, Marker::interval(i * 50, i * 50 + 25));
            if i % 2 == 0 {
                b = b.cite_term(term);
            }
            b.commit().unwrap();
        }
        sys
    }

    fn phrase_query() -> Query {
        Query::new(Target::AnnotationContents).with_phrase("protease motif")
    }

    #[test]
    fn submitted_queries_match_direct_execution() {
        let sys = sample_system(30);
        let service = QueryService::new(sys.snapshot(), ServiceConfig::default().with_workers(3));
        let expected = Executor::new(&sys).run(&phrase_query());
        let tickets: Vec<Ticket> = (0..8).map(|_| service.submit(phrase_query())).collect();
        for t in tickets {
            assert_eq!(t.wait(), expected);
        }
        let m = service.metrics();
        assert_eq!(m.submitted, 8);
        assert_eq!(m.completed, 8);
    }

    #[test]
    fn cache_serves_equivalent_queries_from_one_entry() {
        let sys = sample_system(20);
        let service = QueryService::new(
            sys.snapshot(),
            ServiceConfig::default().with_workers(1).with_cache_capacity(16),
        );
        let a = Query::new(Target::AnnotationContents).with_keywords(["Protease", "motif"]);
        let b = Query::new(Target::AnnotationContents).with_keywords(["motif", "protease"]);
        let ra = service.run(a);
        let rb = service.run(b);
        assert_eq!(ra, rb);
        let m = service.metrics();
        assert_eq!(m.cache_misses, 1);
        assert_eq!(m.cache_hits, 1);
        assert_eq!(service.cache_len(), 1);
    }

    #[test]
    fn cache_disabled_always_executes() {
        let sys = sample_system(10);
        let service = QueryService::new(
            sys.snapshot(),
            ServiceConfig::default().with_workers(1).with_cache_capacity(0),
        );
        service.run(phrase_query());
        service.run(phrase_query());
        let m = service.metrics();
        assert_eq!(m.cache_hits, 0);
        assert_eq!(m.cache_misses, 2);
        assert_eq!(service.cache_len(), 0);
    }

    #[test]
    fn publish_invalidates_cache_and_serves_new_epoch() {
        let mut sys = sample_system(9);
        let service = QueryService::new(
            sys.snapshot(),
            ServiceConfig::default().with_workers(2).with_cache_capacity(8),
        );
        let before = service.run(phrase_query());

        // Writer commits a new matching annotation and publishes.
        let seq = sys.objects()[0].id;
        sys.annotate()
            .comment("protease motif, new")
            .mark(seq, Marker::interval(90_000, 90_100))
            .commit()
            .unwrap();
        service.publish(sys.snapshot());

        let after = service.run(phrase_query());
        assert_eq!(after.annotations.len(), before.annotations.len() + 1);
        assert_eq!(service.current_epoch(), sys.epoch());
        let m = service.metrics();
        assert_eq!(m.publishes, 1);
        // both executions were misses: the publish dropped the first entry
        assert_eq!(m.cache_misses, 2);
    }

    fn empty_result() -> Arc<QueryResult> {
        Arc::new(QueryResult {
            pages: Vec::new(),
            annotations: Vec::new(),
            referents: Vec::new(),
            objects: Vec::new(),
        })
    }

    #[test]
    fn lru_evicts_least_recently_used_entry() {
        let mut cache = ResultCache::new(2, 0);
        let empty = empty_result();
        cache.insert("a".into(), 0, Arc::clone(&empty));
        cache.insert("b".into(), 0, Arc::clone(&empty));
        assert!(cache.get("a", 0).is_some()); // refresh a; b is now LRU
        cache.insert("c".into(), 0, empty.clone());
        assert_eq!(cache.len(), 2);
        assert!(cache.get("b", 0).is_none());
        assert!(cache.get("a", 0).is_some());
        assert!(cache.get("c", 0).is_some());
    }

    #[test]
    fn cache_epoch_advance_discards_and_rejects_stale() {
        let mut cache = ResultCache::new(4, 0);
        let empty = empty_result();
        cache.insert("a".into(), 0, Arc::clone(&empty));
        // a reader showing a newer epoch advances the cache and clears it
        assert!(cache.get("a", 2).is_none());
        assert_eq!(cache.len(), 0);
        // stale lookups and inserts (older than the advanced epoch) are rejected
        assert!(cache.get("a", 1).is_none());
        cache.insert("stale".into(), 1, Arc::clone(&empty));
        assert_eq!(cache.len(), 0);
        // current-epoch traffic works again immediately
        cache.insert("b".into(), 2, empty);
        assert!(cache.get("b", 2).is_some());
    }

    #[test]
    fn poisoned_ticket_propagates_worker_panic() {
        let cell = Arc::new(TicketCell::default());
        cell.poison();
        let ticket = Ticket { cell: Arc::clone(&cell) };
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| ticket.wait()));
        assert!(caught.is_err(), "wait on a poisoned ticket must panic, not hang");
        let ticket = Ticket { cell };
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| ticket.try_take()));
        assert!(caught.is_err());
    }

    #[test]
    fn redeeming_a_ticket_twice_panics_instead_of_hanging() {
        let cell = Arc::new(TicketCell::default());
        cell.deliver(empty_result());
        let ticket = Ticket { cell };
        assert!(ticket.try_take().is_some());
        // a second redemption is a caller bug: it must fail fast, not block forever
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| ticket.try_take()));
        assert!(caught.is_err());
    }

    #[test]
    fn publishing_a_different_system_at_equal_epoch_clears_the_cache() {
        // Two distinct systems with identical epochs but different contents: the
        // publish must not let epoch-keyed entries from the first survive.
        let sys_a = sample_system(6); // 6 annotations, 2 matching
        let mut sys_b = Graphitti::new();
        let seq = sys_b.register_sequence("s", DataType::DnaSequence, 100_000, "chr1");
        sys_b.ontology_mut().add_concept("X");
        for i in 0..6 {
            sys_b
                .annotate()
                .comment("protease motif everywhere")
                .mark(seq, Marker::interval(i * 50, i * 50 + 25))
                .commit()
                .unwrap();
        }
        assert_eq!(sys_a.epoch(), sys_b.epoch(), "test setup: epochs must collide");

        let service = QueryService::new(
            sys_a.snapshot(),
            ServiceConfig::default().with_workers(1).with_cache_capacity(8),
        );
        let from_a = service.run(phrase_query());
        assert_eq!(from_a, Executor::new(&sys_a).run(&phrase_query()));

        service.publish(sys_b.snapshot());
        let from_b = service.run(phrase_query());
        assert_eq!(from_b, Executor::new(&sys_b).run(&phrase_query()));
        assert_ne!(from_a, from_b);
        assert_eq!(service.metrics().cache_hits, 0);
    }

    #[test]
    fn parallel_verify_config_is_byte_identical() {
        let sys = sample_system(64);
        let expected = Executor::new(&sys).run(&phrase_query());
        let service = QueryService::new(
            sys.snapshot(),
            ServiceConfig::default()
                .with_workers(2)
                .with_verify_workers(4)
                .with_parallel_threshold(1)
                .with_cache_capacity(0),
        );
        assert_eq!(service.run(phrase_query()), expected);
        assert_eq!(service.run_now(&phrase_query()), expected);
    }

    #[test]
    fn many_concurrent_clients_all_get_correct_results() {
        let sys = sample_system(40);
        let term_query = Query::new(Target::AnnotationContents)
            .with_ontology(OntologyFilter::CitesTerm(ontology::ConceptId(0)));
        let expected_phrase = ReferenceExecutor::new(&sys).run(&phrase_query());
        let expected_term = ReferenceExecutor::new(&sys).run(&term_query);
        let service = Arc::new(QueryService::new(
            sys.snapshot(),
            ServiceConfig::default().with_workers(4).with_cache_capacity(4),
        ));
        std::thread::scope(|scope| {
            for client in 0..6 {
                let service = Arc::clone(&service);
                let term_query = term_query.clone();
                let expected_phrase = &expected_phrase;
                let expected_term = &expected_term;
                scope.spawn(move || {
                    for round in 0..10 {
                        if (client + round) % 2 == 0 {
                            assert_eq!(&service.run(phrase_query()), expected_phrase);
                        } else {
                            assert_eq!(&service.run(term_query.clone()), expected_term);
                        }
                    }
                });
            }
        });
        let m = service.metrics();
        assert_eq!(m.completed, 60);
        // Every execution that starts before the first insert for its key lands is a
        // legal miss, so the worst case is workers × distinct keys = 4 × 2 misses.
        assert!(m.cache_hits >= 52, "expected mostly hits, got {m:?}");
    }

    #[test]
    fn drop_completes_queued_work() {
        let sys = sample_system(15);
        let service =
            QueryService::new(sys.snapshot(), ServiceConfig::default().with_workers(1));
        let tickets: Vec<Ticket> = (0..5).map(|_| service.submit(phrase_query())).collect();
        drop(service); // graceful: queued jobs still complete
        for t in tickets {
            assert!(t.try_take().is_some());
        }
    }
}
