//! [`QueryService`] — the concurrent query-serving layer.
//!
//! The service owns a `std::thread` worker pool and serves queries against one
//! *published* [`Snapshot`] of the system:
//!
//! * **Independent queries run in parallel.**  [`QueryService::submit`] enqueues a
//!   query and returns a [`Ticket`] immediately; pool workers drain the queue, each
//!   executing against a clone of the current snapshot (an `Arc` bump), so a slow
//!   query never blocks an unrelated fast one and no query ever blocks a writer.
//! * **One large query can fan out.**  Worker executors inherit the service's
//!   `verify_workers` setting, so the verify phase of a big candidate set is split
//!   into contiguous chunks across scoped threads and re-merged in order (see
//!   [`Executor::with_verify_workers`]) — results stay byte-identical to the
//!   sequential pass.
//! * **A normalized-query result cache sits in front.**  Results are cached under the
//!   query's canonical form ([`Query::cache_key`]) and are valid for exactly one
//!   published snapshot (identity: epoch **and** view, never the bare number), so
//!   semantically equal queries — different conjunct order, keyword case or
//!   duplicate conjuncts — share one entry.  The cache is LRU-evicted at a fixed
//!   capacity and invalidated wholesale when a new snapshot is published.
//!
//! Writers keep mutating their [`graphitti_core::Graphitti`] as usual and make new
//! state visible to the service explicitly via [`QueryService::publish`]; until then,
//! every in-flight and future query observes the previously published epoch —
//! snapshot isolation, not read-your-writes.
//!
//! **Sustained write streams** pair the service with the core's batched write API:
//! the writer stages a burst of registers / annotates through
//! [`Graphitti::batch`](graphitti_core::Graphitti::batch) (one epoch bump per batch),
//! then publishes the post-batch snapshot once.  Because cache invalidation is
//! epoch-keyed, the whole batch costs **one** cache invalidation (observable via
//! [`ServiceMetrics::cache_invalidations`]) instead of one per call, and because the
//! view is a tree of per-component `Arc`s, the writer's first post-publish commit
//! copies only the components it touches — readers keep structurally sharing the
//! rest.  That is what lets a register/annotate stream run concurrently with the
//! worker pool at a bounded publish stall (measured by the `mixed_rw` bench).

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;

use graphitti_core::Snapshot;

use crate::ast::Query;
use crate::exec::{Executor, DEFAULT_PARALLEL_VERIFY_THRESHOLD};
use crate::result::QueryResult;

/// Tuning knobs for a [`QueryService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Pool size: number of worker threads draining the submission queue.
    pub workers: usize,
    /// Result-cache capacity in entries; `0` disables caching entirely.
    pub cache_capacity: usize,
    /// Verify-phase fan-out *within* one query (1 = sequential verify).
    pub verify_workers: usize,
    /// Candidate-count threshold above which a verify pass is chunked across
    /// `verify_workers` threads.
    pub parallel_threshold: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2);
        ServiceConfig {
            workers: cores,
            cache_capacity: 256,
            verify_workers: 1,
            parallel_threshold: DEFAULT_PARALLEL_VERIFY_THRESHOLD,
        }
    }
}

impl ServiceConfig {
    /// Builder: set the worker-pool size.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Builder: set the result-cache capacity (`0` disables caching).
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Builder: set the per-query verify fan-out.
    pub fn with_verify_workers(mut self, verify_workers: usize) -> Self {
        self.verify_workers = verify_workers.max(1);
        self
    }

    /// Builder: set the parallel-verify candidate threshold.
    pub fn with_parallel_threshold(mut self, threshold: usize) -> Self {
        self.parallel_threshold = threshold.max(1);
        self
    }
}

/// Counters describing what the service has done so far (all monotonic).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceMetrics {
    /// Queries submitted (via [`QueryService::submit`] / [`QueryService::run`] /
    /// [`QueryService::run_now`]).
    pub submitted: u64,
    /// Queries completed (result delivered).
    pub completed: u64,
    /// Queries answered from the result cache.
    pub cache_hits: u64,
    /// Queries executed because the cache had no valid entry.
    pub cache_misses: u64,
    /// Snapshot publishes observed.
    pub publishes: u64,
    /// Times the result cache was actually cleared for a newly published state.  A
    /// `CommitBatch` of any size followed by one publish costs exactly one
    /// invalidation; a cache-disabled service (capacity 0) counts none.
    pub cache_invalidations: u64,
}

/// A handle to one submitted query's pending result.
///
/// Obtained from [`QueryService::submit`]; redeem it with [`Ticket::wait`].
#[derive(Debug)]
pub struct Ticket {
    cell: Arc<TicketCell>,
}

#[derive(Debug, Default)]
enum SlotState {
    /// Not executed yet.
    #[default]
    Pending,
    /// Result delivered (shared with the cache when it was a hit).
    Ready(Arc<QueryResult>),
    /// The result was already redeemed by [`Ticket::try_take`]; redeeming again is a
    /// caller bug and panics rather than hanging on a result that will never arrive.
    Taken,
    /// The executing worker panicked; redeeming the ticket propagates the panic.
    Poisoned,
}

#[derive(Debug, Default)]
struct TicketCell {
    slot: Mutex<SlotState>,
    ready: Condvar,
}

impl Ticket {
    /// Block until the query has been executed and take its result.
    ///
    /// # Panics
    /// Panics if the worker executing this query panicked (the panic is propagated to
    /// the submitter rather than deadlocking it).
    pub fn wait(self) -> QueryResult {
        let mut slot = self.cell.slot.lock().expect("ticket lock poisoned");
        loop {
            match std::mem::replace(&mut *slot, SlotState::Taken) {
                SlotState::Pending => {
                    *slot = SlotState::Pending;
                    slot = self.cell.ready.wait(slot).expect("ticket lock poisoned");
                }
                SlotState::Ready(result) => {
                    return Arc::try_unwrap(result).unwrap_or_else(|shared| (*shared).clone());
                }
                SlotState::Taken => panic!("ticket result already taken"),
                SlotState::Poisoned => {
                    *slot = SlotState::Poisoned;
                    panic!("query worker panicked executing this query");
                }
            }
        }
    }

    /// Take the result if it is already available, without blocking.  Panics like
    /// [`Ticket::wait`] if the executing worker panicked, or if the result was
    /// already taken by an earlier `try_take`.
    pub fn try_take(&self) -> Option<QueryResult> {
        let mut slot = self.cell.slot.lock().expect("ticket lock poisoned");
        match std::mem::replace(&mut *slot, SlotState::Taken) {
            SlotState::Pending => {
                *slot = SlotState::Pending;
                None
            }
            SlotState::Ready(result) => {
                Some(Arc::try_unwrap(result).unwrap_or_else(|shared| (*shared).clone()))
            }
            SlotState::Taken => panic!("ticket result already taken"),
            SlotState::Poisoned => {
                *slot = SlotState::Poisoned;
                panic!("query worker panicked executing this query");
            }
        }
    }
}

impl TicketCell {
    fn deliver(&self, result: Arc<QueryResult>) {
        let mut slot = self.slot.lock().expect("ticket lock poisoned");
        *slot = SlotState::Ready(result);
        self.ready.notify_all();
    }

    fn poison(&self) {
        let mut slot = self.slot.lock().expect("ticket lock poisoned");
        *slot = SlotState::Poisoned;
        self.ready.notify_all();
    }
}

/// One queued unit of work: a query plus the ticket cell to deliver into.
struct Job {
    query: Query,
    cell: Arc<TicketCell>,
}

/// The normalized-query LRU result cache.
///
/// Keys are canonical query renderings ([`Query::cache_key`]); every entry belongs to
/// exactly one published snapshot.  Lookups and inserts carry the snapshot they were
/// computed against, and validity is snapshot *identity* ([`Snapshot::same_epoch`]:
/// epoch number **and** view pointer) — never the bare epoch number.  A rebuilt
/// system's epochs restart low (a whole [`StudySnapshot`](graphitti_core::StudySnapshot)
/// replay is one `CommitBatch`, so one bump), which means a worker still in flight on
/// the old system holds a *numerically higher* epoch than the freshly published one;
/// comparing numbers alone would let that worker advance the cache past the rebuilt
/// system's epochs and later serve its stale result once the numbers collide.  With
/// identity keying, a stale get or insert is a harmless miss / rejected write — it can
/// never surface another state's result, regress the cache, or pin the old view alive.
///
/// [`install`](ResultCache::install) is the only way `snap` moves, and it runs inside
/// [`QueryService::publish`] *while the snapshot write lock is still held* — no reader
/// can observe a published snapshot the cache has not been synced to, so "the cache
/// serves the published state" is an invariant, not a lock race to win.  Lookups and
/// inserts from in-flight stale snapshots are simply identity-rejected.
struct ResultCache {
    capacity: usize,
    /// The published snapshot this cache's entries were computed against.
    snap: Snapshot,
    tick: u64,
    /// Monotonic count of epoch-change clears (see
    /// [`ServiceMetrics::cache_invalidations`]).
    invalidations: u64,
    map: HashMap<String, CacheEntry>,
}

struct CacheEntry {
    /// Shared with every ticket the entry has served, so a hit is an `Arc` bump under
    /// the lock, never a deep copy of the result pages.
    result: Arc<QueryResult>,
    last_used: u64,
}

impl ResultCache {
    fn new(capacity: usize, snap: Snapshot) -> Self {
        ResultCache { capacity, snap, tick: 0, invalidations: 0, map: HashMap::new() }
    }

    /// Move the cache onto `published`, discarding every entry — a no-op when it
    /// already serves exactly this state (republishing an identical snapshot must not
    /// discard its entries or count an invalidation).
    ///
    /// **Contract:** `published` must be the *currently published* snapshot, and the
    /// service's snapshot write lock must be held across this call (as
    /// [`QueryService::publish`] does).  That is what makes this authoritative: a
    /// stale caller cannot exist, so any difference — forward publish, rebuilt system
    /// at a same-or-lower epoch — is a genuine state change and unconditionally wins.
    /// Deciding from a reader's *execution* snapshot instead (e.g. advancing on
    /// whichever epoch number is larger) would let a worker still in flight on a
    /// pre-rebuild system hijack the cache onto a superseded view.
    fn install(&mut self, published: &Snapshot) {
        if !published.same_epoch(&self.snap) {
            // Track the published snapshot even when caching is disabled — holding a
            // superseded one would pin its whole view alive for the service's life.
            self.snap = published.clone();
            if self.capacity > 0 {
                self.map.clear();
                self.invalidations += 1;
            }
        }
    }

    /// Look up a canonical key computed against `snap`, refreshing its recency.  A
    /// lookup from any snapshot that is not identical to the cache's — stale *or*
    /// newer — misses without disturbing current entries; it never moves the cache
    /// (only [`install`](Self::install) does).
    fn get(&mut self, key: &str, snap: &Snapshot) -> Option<Arc<QueryResult>> {
        if self.capacity == 0 {
            return None;
        }
        if !snap.same_epoch(&self.snap) {
            return None;
        }
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(key).map(|e| {
            e.last_used = tick;
            Arc::clone(&e.result)
        })
    }

    /// Insert a result computed against `snap`; rejected (harmlessly) unless the
    /// cache currently serves exactly that state — by the time an insert's snapshot
    /// mismatches, the result is stale by construction.  Evicts the
    /// least-recently-used entry when full.
    fn insert(&mut self, key: String, snap: &Snapshot, result: Arc<QueryResult>) {
        if self.capacity == 0 {
            return;
        }
        if !snap.same_epoch(&self.snap) {
            return;
        }
        self.tick += 1;
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            if let Some(lru) =
                self.map.iter().min_by_key(|(_, e)| e.last_used).map(|(k, _)| k.clone())
            {
                self.map.remove(&lru);
            }
        }
        self.map.insert(key, CacheEntry { result, last_used: self.tick });
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

/// Shared state between the service handle and its workers.
struct Inner {
    queue: Mutex<VecDeque<Job>>,
    queue_ready: Condvar,
    snapshot: RwLock<Snapshot>,
    cache: Mutex<ResultCache>,
    shutdown: AtomicBool,
    verify_workers: usize,
    parallel_threshold: usize,
    submitted: AtomicU64,
    completed: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    publishes: AtomicU64,
}

impl Inner {
    /// The current published snapshot (an `Arc` bump under a read lock).
    fn current_snapshot(&self) -> Snapshot {
        self.snapshot.read().expect("snapshot lock poisoned").clone()
    }

    /// Execute one query against the current snapshot, consulting the cache.  The
    /// query is canonicalized exactly once: the canonical rendering is the cache key
    /// and the canonical form is what the executor plans.
    fn execute(&self, query: &Query) -> Arc<QueryResult> {
        let canonical = query.canonicalize();
        let key = format!("{canonical:?}");
        let snap = self.current_snapshot();
        if let Some(hit) = self.cache.lock().expect("cache lock poisoned").get(&key, &snap) {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            return hit;
        }
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
        let result = Arc::new(
            Executor::new(&snap)
                .with_verify_workers(self.verify_workers)
                .with_parallel_threshold(self.parallel_threshold)
                .run_canonical(&canonical),
        );
        // Accepted iff this execution's snapshot is still the published one — publish
        // syncs the cache under the snapshot write lock, so the cache is never behind
        // what any reader can observe and a stale insert is identity-rejected here.
        self.cache.lock().expect("cache lock poisoned").insert(key, &snap, Arc::clone(&result));
        result
    }

    /// The worker loop: drain the queue until shutdown *and* the queue is empty, so
    /// every accepted ticket is always redeemed.  A panic during execution poisons
    /// that job's ticket (propagating the panic to the submitter) but never kills the
    /// worker — the pool keeps its size and the queue keeps draining.
    fn work(&self) {
        loop {
            let job = {
                let mut queue = self.queue.lock().expect("queue lock poisoned");
                loop {
                    if let Some(job) = queue.pop_front() {
                        break job;
                    }
                    if self.shutdown.load(Ordering::Acquire) {
                        return;
                    }
                    queue = self.queue_ready.wait(queue).expect("queue lock poisoned");
                }
            };
            let outcome =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.execute(&job.query)));
            match outcome {
                Ok(result) => {
                    job.cell.deliver(result);
                    self.completed.fetch_add(1, Ordering::Relaxed);
                }
                Err(_) => job.cell.poison(),
            }
        }
    }
}

/// The concurrent query service: a worker pool plus result cache over one published
/// [`Snapshot`].  See the [module docs](self) for the concurrency model.
pub struct QueryService {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

impl QueryService {
    /// Start a service over an initial snapshot with the given configuration.
    pub fn new(snapshot: Snapshot, config: ServiceConfig) -> Self {
        let cache = ResultCache::new(config.cache_capacity, snapshot.clone());
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            queue_ready: Condvar::new(),
            snapshot: RwLock::new(snapshot),
            cache: Mutex::new(cache),
            shutdown: AtomicBool::new(false),
            verify_workers: config.verify_workers.max(1),
            parallel_threshold: config.parallel_threshold.max(1),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            publishes: AtomicU64::new(0),
        });
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("graphitti-query-{i}"))
                    .spawn(move || inner.work())
                    .expect("spawn query worker")
            })
            .collect();
        QueryService { inner, workers }
    }

    /// Start a service with the default configuration.
    pub fn with_defaults(snapshot: Snapshot) -> Self {
        QueryService::new(snapshot, ServiceConfig::default())
    }

    /// Enqueue a query for execution on the pool; returns immediately with a
    /// [`Ticket`] redeemable for the result.
    pub fn submit(&self, query: Query) -> Ticket {
        self.inner.submitted.fetch_add(1, Ordering::Relaxed);
        let cell = Arc::new(TicketCell::default());
        {
            let mut queue = self.inner.queue.lock().expect("queue lock poisoned");
            queue.push_back(Job { query, cell: Arc::clone(&cell) });
        }
        self.inner.queue_ready.notify_one();
        Ticket { cell }
    }

    /// Submit a query and block for its result (convenience over
    /// [`submit`](Self::submit) + [`Ticket::wait`]).
    pub fn run(&self, query: Query) -> QueryResult {
        self.submit(query).wait()
    }

    /// Execute a query synchronously *on the calling thread* — cache-aware and with
    /// the service's verify fan-out, but bypassing the submission queue.  Use this for
    /// one latency-critical large query whose verify phase should use the machine,
    /// rather than for throughput.
    pub fn run_now(&self, query: &Query) -> QueryResult {
        self.inner.submitted.fetch_add(1, Ordering::Relaxed);
        let result = self.inner.execute(query);
        self.inner.completed.fetch_add(1, Ordering::Relaxed);
        Arc::try_unwrap(result).unwrap_or_else(|shared| (*shared).clone())
    }

    /// Publish a new snapshot: all queries executed from now on observe it, and the
    /// result cache is invalidated iff the published state actually changed.
    /// In-flight queries finish against the snapshot they already captured (snapshot
    /// isolation).
    ///
    /// The cache is installed while the snapshot write lock is still held, so a
    /// reader can never observe a published snapshot the cache has not been synced
    /// to: there is no window in which fresh results are rejected or a stale cache
    /// state lingers, and each published state costs exactly one invalidation.
    /// (Workers hold the cache mutex only for O(1) map operations, so the writer's
    /// wait under the lock is bounded.)
    ///
    /// Entry validity is snapshot *identity* (epoch + view pointer), so publishing a
    /// snapshot of a different or rebuilt system — even one whose epoch collides with
    /// or regresses below the current one — both clears the cache and makes any
    /// result a worker mid-flight on the old system later deposits unhittable: a
    /// stale get or insert can cause a miss, never a wrong answer.
    pub fn publish(&self, snapshot: Snapshot) {
        let mut current = self.inner.snapshot.write().expect("snapshot lock poisoned");
        *current = snapshot;
        self.inner.cache.lock().expect("cache lock poisoned").install(&current);
        drop(current);
        self.inner.publishes.fetch_add(1, Ordering::Relaxed);
    }

    /// The epoch of the currently published snapshot.
    pub fn current_epoch(&self) -> u64 {
        self.inner.current_snapshot().epoch()
    }

    /// A clone of the currently published snapshot.
    pub fn snapshot(&self) -> Snapshot {
        self.inner.current_snapshot()
    }

    /// Number of worker threads in the pool.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Number of live entries in the result cache.
    pub fn cache_len(&self) -> usize {
        self.inner.cache.lock().expect("cache lock poisoned").len()
    }

    /// A snapshot of the service counters.
    pub fn metrics(&self) -> ServiceMetrics {
        let cache_invalidations =
            self.inner.cache.lock().expect("cache lock poisoned").invalidations;
        ServiceMetrics {
            submitted: self.inner.submitted.load(Ordering::Relaxed),
            completed: self.inner.completed.load(Ordering::Relaxed),
            cache_hits: self.inner.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.inner.cache_misses.load(Ordering::Relaxed),
            publishes: self.inner.publishes.load(Ordering::Relaxed),
            cache_invalidations,
        }
    }
}

impl Drop for QueryService {
    /// Graceful shutdown: workers finish every queued job (so no ticket is ever
    /// abandoned), then exit and are joined.
    fn drop(&mut self) {
        // The store happens under the queue mutex so no worker can sit between its
        // shutdown check and `Condvar::wait` when the flag flips — otherwise the
        // notify below could be lost and the join would deadlock.
        {
            let _guard = self.inner.queue.lock().expect("queue lock poisoned");
            self.inner.shutdown.store(true, Ordering::Release);
        }
        self.inner.queue_ready.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{OntologyFilter, Target};
    use crate::reference::ReferenceExecutor;
    use graphitti_core::{DataType, Graphitti, Marker};

    fn sample_system(n: u64) -> Graphitti {
        let mut sys = Graphitti::new();
        let seq = sys.register_sequence("s", DataType::DnaSequence, 100_000, "chr1");
        let term = sys.ontology_mut().add_concept("T");
        for i in 0..n {
            let mut b = sys
                .annotate()
                .comment(if i % 3 == 0 { "protease motif" } else { "quiet region" })
                .mark(seq, Marker::interval(i * 50, i * 50 + 25));
            if i % 2 == 0 {
                b = b.cite_term(term);
            }
            b.commit().unwrap();
        }
        sys
    }

    fn phrase_query() -> Query {
        Query::new(Target::AnnotationContents).with_phrase("protease motif")
    }

    #[test]
    fn submitted_queries_match_direct_execution() {
        let sys = sample_system(30);
        let service = QueryService::new(sys.snapshot(), ServiceConfig::default().with_workers(3));
        let expected = Executor::new(&sys).run(&phrase_query());
        let tickets: Vec<Ticket> = (0..8).map(|_| service.submit(phrase_query())).collect();
        for t in tickets {
            assert_eq!(t.wait(), expected);
        }
        let m = service.metrics();
        assert_eq!(m.submitted, 8);
        assert_eq!(m.completed, 8);
    }

    #[test]
    fn cache_serves_equivalent_queries_from_one_entry() {
        let sys = sample_system(20);
        let service = QueryService::new(
            sys.snapshot(),
            ServiceConfig::default().with_workers(1).with_cache_capacity(16),
        );
        let a = Query::new(Target::AnnotationContents).with_keywords(["Protease", "motif"]);
        let b = Query::new(Target::AnnotationContents).with_keywords(["motif", "protease"]);
        let ra = service.run(a);
        let rb = service.run(b);
        assert_eq!(ra, rb);
        let m = service.metrics();
        assert_eq!(m.cache_misses, 1);
        assert_eq!(m.cache_hits, 1);
        assert_eq!(service.cache_len(), 1);
    }

    #[test]
    fn cache_disabled_always_executes() {
        let mut sys = sample_system(10);
        let service = QueryService::new(
            sys.snapshot(),
            ServiceConfig::default().with_workers(1).with_cache_capacity(0),
        );
        service.run(phrase_query());
        service.run(phrase_query());
        // a publish on a disabled cache must not report phantom invalidations
        sys.register_sequence("t", DataType::DnaSequence, 10, "chr2");
        service.publish(sys.snapshot());
        service.run(phrase_query());
        let m = service.metrics();
        assert_eq!(m.cache_hits, 0);
        assert_eq!(m.cache_misses, 3);
        assert_eq!(m.cache_invalidations, 0);
        assert_eq!(service.cache_len(), 0);
    }

    #[test]
    fn publish_invalidates_cache_and_serves_new_epoch() {
        let mut sys = sample_system(9);
        let service = QueryService::new(
            sys.snapshot(),
            ServiceConfig::default().with_workers(2).with_cache_capacity(8),
        );
        let before = service.run(phrase_query());

        // Writer commits a new matching annotation and publishes.
        let seq = sys.objects()[0].id;
        sys.annotate()
            .comment("protease motif, new")
            .mark(seq, Marker::interval(90_000, 90_100))
            .commit()
            .unwrap();
        service.publish(sys.snapshot());

        let after = service.run(phrase_query());
        assert_eq!(after.annotations.len(), before.annotations.len() + 1);
        assert_eq!(service.current_epoch(), sys.epoch());
        let m = service.metrics();
        assert_eq!(m.publishes, 1);
        // both executions were misses: the publish dropped the first entry
        assert_eq!(m.cache_misses, 2);
    }

    #[test]
    fn batched_writes_cost_one_invalidation_per_publish() {
        let mut sys = sample_system(9);
        let service = QueryService::new(
            sys.snapshot(),
            ServiceConfig::default().with_workers(1).with_cache_capacity(8),
        );
        let before = service.run(phrase_query());
        assert_eq!(service.metrics().cache_invalidations, 0);

        // A burst of 20 matching commits staged as one batch: one epoch, one publish,
        // one cache invalidation — not 20.
        let seq = sys.objects()[0].id;
        let epoch_before = sys.epoch();
        let mut batch = sys.batch();
        for i in 0..20u64 {
            batch
                .annotate()
                .comment("protease motif burst")
                .mark(seq, Marker::interval(90_000 + i * 10, 90_000 + i * 10 + 5))
                .commit()
                .unwrap();
        }
        assert_eq!(batch.commit(), 20);
        assert_eq!(sys.epoch(), epoch_before + 1);
        service.publish(sys.snapshot());

        let after = service.run(phrase_query());
        assert_eq!(after.annotations.len(), before.annotations.len() + 20);
        let m = service.metrics();
        assert_eq!(m.publishes, 1);
        assert_eq!(m.cache_invalidations, 1);
    }

    fn empty_result() -> Arc<QueryResult> {
        Arc::new(QueryResult {
            pages: Vec::new(),
            annotations: Vec::new(),
            referents: Vec::new(),
            objects: Vec::new(),
        })
    }

    /// Grow a fresh system until its epoch reaches `target`, capturing a snapshot at
    /// every intermediate epoch along the way.  Returns the system plus the snapshots
    /// indexed by epoch (so `snaps[e]` was captured at epoch `e`).
    fn system_with_epoch_snapshots(target: u64) -> (Graphitti, Vec<Snapshot>) {
        let mut sys = Graphitti::new();
        let mut snaps = vec![sys.snapshot()];
        while sys.epoch() < target {
            let n = sys.epoch();
            sys.register_sequence(format!("s{n}"), DataType::DnaSequence, 100, "chr1");
            snaps.push(sys.snapshot());
        }
        assert_eq!(sys.epoch(), target, "test setup: epoch must be reachable one bump at a time");
        (sys, snaps)
    }

    #[test]
    fn lru_evicts_least_recently_used_entry() {
        let (sys, _) = system_with_epoch_snapshots(0);
        let snap = sys.snapshot();
        let mut cache = ResultCache::new(2, snap.clone());
        let empty = empty_result();
        cache.insert("a".into(), &snap, Arc::clone(&empty));
        cache.insert("b".into(), &snap, Arc::clone(&empty));
        assert!(cache.get("a", &snap).is_some()); // refresh a; b is now LRU
        cache.insert("c".into(), &snap, empty.clone());
        assert_eq!(cache.len(), 2);
        assert!(cache.get("b", &snap).is_none());
        assert!(cache.get("a", &snap).is_some());
        assert!(cache.get("c", &snap).is_some());
    }

    #[test]
    fn cache_install_discards_entries_and_gates_stale_traffic() {
        let (_sys, snaps) = system_with_epoch_snapshots(2);
        let mut cache = ResultCache::new(4, snaps[0].clone());
        let empty = empty_result();
        cache.insert("a".into(), &snaps[0], Arc::clone(&empty));
        assert_eq!(cache.invalidations, 0);
        // a publish of a newer snapshot clears the cache
        cache.install(&snaps[2]);
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.invalidations, 1);
        // re-publishing an identical snapshot is a no-op
        cache.install(&snaps[2]);
        assert_eq!(cache.invalidations, 1);
        // stale lookups and inserts are rejected without moving the cache
        assert!(cache.get("a", &snaps[1]).is_none());
        cache.insert("stale".into(), &snaps[1], Arc::clone(&empty));
        assert_eq!(cache.len(), 0);
        // current-snapshot traffic works immediately
        cache.insert("b".into(), &snaps[2], empty);
        assert!(cache.get("b", &snaps[2]).is_some());
    }

    #[test]
    fn stale_high_epoch_worker_cannot_hijack_cache_across_a_rebuild_publish() {
        // System A is at a high epoch and the cache serves one of its results.  An
        // operator then publishes a rebuilt system B whose epochs restart low (a
        // whole StudySnapshot replay is one batch, so one bump).  A worker still in
        // flight on A holds a *numerically higher* epoch than anything B will reach
        // for a while; neither its lookup nor its insert may move the cache or let
        // A's result be served again — in particular not when B's epoch later
        // collides with A's number.
        let (_sys_a, a_snaps) = system_with_epoch_snapshots(10);
        let a10 = &a_snaps[10];
        let mut cache = ResultCache::new(4, a10.clone());
        let stale = empty_result();
        cache.insert("q".into(), a10, Arc::clone(&stale));
        assert!(cache.get("q", a10).is_some());

        // The rebuild publish installs B at epoch 2.
        let (_sys_b, b_snaps) = system_with_epoch_snapshots(10);
        cache.install(&b_snaps[2]);

        // The stale worker finishes: its get misses (despite the numerically higher
        // epoch), and its insert is rejected — the cache stays on B throughout.
        assert!(cache.get("q", a10).is_none());
        cache.insert("q".into(), a10, stale);
        assert_eq!(cache.len(), 0);
        for snap in &b_snaps {
            assert!(
                cache.get("q", snap).is_none(),
                "B's epoch {} must never see A's entry",
                snap.epoch()
            );
        }

        // ... and B's current snapshot is served normally, undisturbed.
        cache.insert("q".into(), &b_snaps[2], empty_result());
        assert!(cache.get("q", &b_snaps[2]).is_some());
    }

    #[test]
    fn poisoned_ticket_propagates_worker_panic() {
        let cell = Arc::new(TicketCell::default());
        cell.poison();
        let ticket = Ticket { cell: Arc::clone(&cell) };
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| ticket.wait()));
        assert!(caught.is_err(), "wait on a poisoned ticket must panic, not hang");
        let ticket = Ticket { cell };
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| ticket.try_take()));
        assert!(caught.is_err());
    }

    #[test]
    fn redeeming_a_ticket_twice_panics_instead_of_hanging() {
        let cell = Arc::new(TicketCell::default());
        cell.deliver(empty_result());
        let ticket = Ticket { cell };
        assert!(ticket.try_take().is_some());
        // a second redemption is a caller bug: it must fail fast, not block forever
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| ticket.try_take()));
        assert!(caught.is_err());
    }

    #[test]
    fn publishing_a_different_system_at_equal_epoch_clears_the_cache() {
        // Two distinct systems with identical epochs but different contents: the
        // publish must not let epoch-keyed entries from the first survive.
        let sys_a = sample_system(6); // 6 annotations, 2 matching
        let mut sys_b = Graphitti::new();
        let seq = sys_b.register_sequence("s", DataType::DnaSequence, 100_000, "chr1");
        sys_b.ontology_mut().add_concept("X");
        for i in 0..6 {
            sys_b
                .annotate()
                .comment("protease motif everywhere")
                .mark(seq, Marker::interval(i * 50, i * 50 + 25))
                .commit()
                .unwrap();
        }
        assert_eq!(sys_a.epoch(), sys_b.epoch(), "test setup: epochs must collide");

        let service = QueryService::new(
            sys_a.snapshot(),
            ServiceConfig::default().with_workers(1).with_cache_capacity(8),
        );
        let from_a = service.run(phrase_query());
        assert_eq!(from_a, Executor::new(&sys_a).run(&phrase_query()));

        service.publish(sys_b.snapshot());
        let from_b = service.run(phrase_query());
        assert_eq!(from_b, Executor::new(&sys_b).run(&phrase_query()));
        assert_ne!(from_a, from_b);
        assert_eq!(service.metrics().cache_hits, 0);
    }

    #[test]
    fn parallel_verify_config_is_byte_identical() {
        let sys = sample_system(64);
        let expected = Executor::new(&sys).run(&phrase_query());
        let service = QueryService::new(
            sys.snapshot(),
            ServiceConfig::default()
                .with_workers(2)
                .with_verify_workers(4)
                .with_parallel_threshold(1)
                .with_cache_capacity(0),
        );
        assert_eq!(service.run(phrase_query()), expected);
        assert_eq!(service.run_now(&phrase_query()), expected);
    }

    #[test]
    fn many_concurrent_clients_all_get_correct_results() {
        let sys = sample_system(40);
        let term_query = Query::new(Target::AnnotationContents)
            .with_ontology(OntologyFilter::CitesTerm(ontology::ConceptId(0)));
        let expected_phrase = ReferenceExecutor::new(&sys).run(&phrase_query());
        let expected_term = ReferenceExecutor::new(&sys).run(&term_query);
        let service = Arc::new(QueryService::new(
            sys.snapshot(),
            ServiceConfig::default().with_workers(4).with_cache_capacity(4),
        ));
        std::thread::scope(|scope| {
            for client in 0..6 {
                let service = Arc::clone(&service);
                let term_query = term_query.clone();
                let expected_phrase = &expected_phrase;
                let expected_term = &expected_term;
                scope.spawn(move || {
                    for round in 0..10 {
                        if (client + round) % 2 == 0 {
                            assert_eq!(&service.run(phrase_query()), expected_phrase);
                        } else {
                            assert_eq!(&service.run(term_query.clone()), expected_term);
                        }
                    }
                });
            }
        });
        let m = service.metrics();
        assert_eq!(m.completed, 60);
        // Every execution that starts before the first insert for its key lands is a
        // legal miss, so the worst case is workers × distinct keys = 4 × 2 misses.
        assert!(m.cache_hits >= 52, "expected mostly hits, got {m:?}");
    }

    #[test]
    fn drop_completes_queued_work() {
        let sys = sample_system(15);
        let service = QueryService::new(sys.snapshot(), ServiceConfig::default().with_workers(1));
        let tickets: Vec<Ticket> = (0..5).map(|_| service.submit(phrase_query())).collect();
        drop(service); // graceful: queued jobs still complete
        for t in tickets {
            assert!(t.try_take().is_some());
        }
    }
}
