//! # graphitti-query — the query language, planner and executor
//!
//! "Queries in Graphitti are essentially graph queries that resemble SPARQL expressions
//! extended to handle (i) XQuery-like path expressions on a-graphs, (ii) type-specific
//! predicates on interval trees, (iii) XQuery fragments to retrieve fragments of
//! annotation.  The result of a query can be (a) a collection of heterogeneous
//! substructures, (b) fragments of XML documents and (c) connection subgraphs.  The
//! query processor operates by separating subqueries that belong to the different types
//! of data elements, finding a feasible order among these subqueries, and collating
//! partial results from these subqueries into a set of type-extended connection
//! subgraphs."
//!
//! This crate implements exactly that pipeline:
//!
//! * [`ast`] — the query model: a [`ast::Query`] is a target plus content, referent and
//!   ontology subqueries and graph constraints;
//! * [`plan`] — subquery separation and feasible (selectivity-based) ordering;
//! * [`exec`] — the executor that evaluates ordered subqueries and collates partial
//!   results by connecting them through the a-graph;
//! * [`result`] — the result model: connection subgraphs organised into result pages;
//! * [`parse`] — a small textual query DSL producing a [`ast::Query`].
//!
//! See `exec::Executor` for the entry point and the crate tests / the `bench` crate for
//! the two worked example queries from the paper.

pub mod ast;
pub mod exec;
pub mod parse;
pub mod plan;
pub mod result;

pub use ast::{
    ContentFilter, GraphConstraint, OntologyFilter, Query, ReferentFilter, Target,
};
pub use exec::Executor;
pub use parse::{parse_query, ParseError};
pub use plan::{Plan, SubQuery, SubQueryKind};
pub use result::{QueryResult, ResultPage};
