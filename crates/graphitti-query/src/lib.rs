//! # graphitti-query — the query language, planner and executor
//!
//! "Queries in Graphitti are essentially graph queries that resemble SPARQL expressions
//! extended to handle (i) XQuery-like path expressions on a-graphs, (ii) type-specific
//! predicates on interval trees, (iii) XQuery fragments to retrieve fragments of
//! annotation.  The result of a query can be (a) a collection of heterogeneous
//! substructures, (b) fragments of XML documents and (c) connection subgraphs.  The
//! query processor operates by separating subqueries that belong to the different types
//! of data elements, finding a feasible order among these subqueries, and collating
//! partial results from these subqueries into a set of type-extended connection
//! subgraphs."
//!
//! This crate implements exactly that pipeline:
//!
//! * [`ast`] — the query model: a [`ast::Query`] is a target plus content, referent and
//!   ontology subqueries and graph constraints;
//! * [`plan`] — subquery separation and feasible ordering, with selectivity estimated
//!   from the system's live statistics ([`graphitti_core::Stats`]);
//! * [`exec`] — the plan-driven pipelined executor: the most selective subquery seeds
//!   the candidate set from a persistent inverted index, later subqueries verify the
//!   survivors by membership probes, and collation connects the pruned set through the
//!   a-graph;
//! * [`setops`] — sorted candidate-set operations (galloping intersection, membership
//!   probes, k-way posting-list union);
//! * [`bitmap`] — roaring-style compressed candidate bitmaps (array/bits containers,
//!   block-skipping AND/OR/ANDNOT kernels) behind the [`bitmap::CandidateSet`]
//!   abstraction, with [`bitmap::CandidateRepr`] selecting bitmap vs sorted-`Vec`
//!   representation for ablation;
//! * [`service`] — the concurrent serving layer: a [`service::QueryService`] worker
//!   pool executing independent queries in parallel against a published
//!   [`graphitti_core::Snapshot`], with an LRU result cache keyed by the canonical
//!   query form and invalidated on snapshot publish;
//! * [`sharded`] — scatter-gather serving over a hash-partitioned
//!   [`graphitti_core::ShardedSystem`]: per-shard candidate pipelines merged into a
//!   global collation pass over a consistent [`graphitti_core::ShardCut`], plus
//!   [`sharded::ShardedQueryService`] with a cut-level, per-shard-epoch-validated
//!   result cache;
//! * [`resilience`] — the overload-resilience substrate: typed
//!   [`resilience::ServiceError`]s, per-query [`resilience::QueryBudget`]s threaded as
//!   cooperative [`resilience::CancelToken`]s through every execution loop, bounded
//!   retry with decorrelated-jitter backoff for the sharded scatter, and the
//!   [`resilience::ChaosConfig`] read-path fault-injection layer behind the chaos
//!   battery in `tests/chaos_resilience.rs`;
//! * [`reference`] — the scan-and-intersect reference executor: the correctness oracle
//!   for randomized equivalence tests and the index-free ablation baseline;
//! * [`result`] — the result model: connection subgraphs organised into result pages;
//! * [`parse`] — a small textual query DSL producing a [`ast::Query`].
//!
//! See `exec::Executor` for the entry point and the crate tests / the `bench` crate for
//! the two worked example queries from the paper.

pub mod ast;
pub mod bitmap;
pub mod exec;
pub mod parse;
pub mod plan;
pub mod reference;
pub mod resilience;
pub mod result;
pub mod service;
pub mod setops;
pub mod sharded;

pub use ast::{
    CacheKey, ContentFilter, GraphConstraint, OntologyFilter, Query, ReferentFilter, Target,
};
pub use bitmap::{Bitmap, CandidateRepr, CandidateSet};
pub use exec::{CollateView, Executor};
pub use parse::{parse_query, ParseError};
pub use plan::{Plan, SubQuery, SubQueryKind};
pub use reference::ReferenceExecutor;
pub use resilience::{CancelToken, ChaosConfig, Interrupt, QueryBudget, RetryPolicy, ServiceError};
pub use result::{Completeness, QueryResult, ResultPage, ResultTail};
pub use service::{InvalidationPolicy, QueryService, ServiceConfig, ServiceMetrics, Ticket};
pub use sharded::{ShardedExecutor, ShardedQueryService, ShardedServiceConfig};
