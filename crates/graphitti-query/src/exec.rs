//! The query executor.
//!
//! The executor realises the paper's pipeline: it builds a [`Plan`] (separating and
//! ordering subqueries), evaluates each subquery against the matching store, and
//! collates the partial results by connecting them through the a-graph into
//! type-extended connection subgraphs, enforcing the graph constraints.
//!
//! Candidate sets are represented as concrete entity ids (annotation / referent /
//! object), and the final collation walks the a-graph to assemble the witness subgraphs
//! that become result pages.

use std::collections::{BTreeSet, HashMap, HashSet};

use agraph::{NodeId, PathSearch, Subgraph};
use graphitti_core::{AnnotationId, Entity, Graphitti, Marker, ObjectId, ReferentId};
use interval_index::Interval;
use ontology::{ConceptId, RelationType};

use crate::ast::{
    ContentFilter, GraphConstraint, OntologyFilter, Query, ReferentFilter, Target,
};
use crate::plan::Plan;
use crate::result::{QueryResult, ResultPage};

/// The query executor, borrowing a [`Graphitti`] system immutably.
pub struct Executor<'g> {
    system: &'g Graphitti,
}

impl<'g> Executor<'g> {
    /// Create an executor over a system.
    pub fn new(system: &'g Graphitti) -> Self {
        Executor { system }
    }

    /// Build the plan for a query without executing it (for EXPLAIN-style inspection).
    pub fn plan(&self, query: &Query) -> Plan {
        Plan::build(query)
    }

    /// Execute a query and return its result.
    pub fn run(&self, query: &Query) -> QueryResult {
        let plan = Plan::build(query);
        // The plan's order guides which subquery drives; for correctness we compute all
        // candidate sets (they are ANDed) and then collate. Ordering affects cost, not
        // the result set.
        let _ = &plan;

        // Evaluate annotation-producing subqueries (content ∩ ontology).
        let content_anns = self.eval_content(query);
        let (onto_anns, onto_concepts) = self.eval_ontology(query);

        let annotation_candidates = intersect_opt(content_anns, onto_anns.clone());

        // Evaluate referent-producing subqueries.
        let referent_candidates = self.eval_referents(query);

        // Collate into qualifying objects / annotations / referents, applying graph
        // constraints, then build result pages. The ontology-only annotation set is
        // passed separately so constraints like "N regions annotated with term T" count
        // regions by the ontology condition, not by the (stricter) content filter.
        self.collate(query, annotation_candidates, referent_candidates, onto_anns, &onto_concepts)
    }

    // --- subquery evaluation ---

    /// Evaluate content filters. Returns `None` when there are none (unconstrained),
    /// else the set of annotation ids whose content satisfies *all* filters.
    fn eval_content(&self, query: &Query) -> Option<HashSet<AnnotationId>> {
        if query.content.is_empty() {
            return None;
        }
        let store = self.system.content_store();
        // map from doc id to annotation id
        let doc_to_ann: HashMap<_, _> = self
            .system
            .annotations()
            .iter()
            .map(|a| (a.doc_id, a.id))
            .collect();

        let mut acc: Option<HashSet<AnnotationId>> = None;
        for filter in &query.content {
            let matching: HashSet<AnnotationId> = match filter {
                ContentFilter::Phrase(p) => store
                    .containing_phrase(p)
                    .into_iter()
                    .filter_map(|d| doc_to_ann.get(&d).copied())
                    .collect(),
                ContentFilter::Keywords(ks) => {
                    let refs: Vec<&str> = ks.iter().map(String::as_str).collect();
                    store
                        .with_all_keywords(&refs)
                        .into_iter()
                        .filter_map(|d| doc_to_ann.get(&d).copied())
                        .collect()
                }
                ContentFilter::Path(expr) => store
                    .select(expr)
                    .into_iter()
                    .filter_map(|d| doc_to_ann.get(&d).copied())
                    .collect(),
            };
            acc = Some(match acc {
                None => matching,
                Some(prev) => prev.intersection(&matching).copied().collect(),
            });
        }
        acc
    }

    /// Evaluate ontology filters. Returns the annotation set (annotations citing a
    /// qualifying term) and the expanded set of qualifying concepts.
    fn eval_ontology(&self, query: &Query) -> (Option<HashSet<AnnotationId>>, HashSet<ConceptId>) {
        if query.ontology.is_empty() {
            return (None, HashSet::new());
        }
        let onto = self.system.ontology();
        let mut all_concepts: HashSet<ConceptId> = HashSet::new();
        let mut acc: Option<HashSet<AnnotationId>> = None;

        for filter in &query.ontology {
            let qualifying_concepts: HashSet<ConceptId> = match filter {
                OntologyFilter::CitesTerm(c) => {
                    let mut s = HashSet::new();
                    s.insert(*c);
                    s
                }
                OntologyFilter::InClass { concept, relations } => {
                    let rels: Vec<RelationType> = if relations.is_empty() {
                        vec![RelationType::IsA, RelationType::PartOf]
                    } else {
                        relations.clone()
                    };
                    // the class expands to the concept plus everything under it
                    let mut s: HashSet<ConceptId> = HashSet::new();
                    for r in &rels {
                        for c in onto.subtree(*concept, r) {
                            s.insert(c);
                        }
                    }
                    s.insert(*concept);
                    s
                }
            };
            all_concepts.extend(&qualifying_concepts);

            // annotations citing any qualifying concept
            let anns: HashSet<AnnotationId> = self
                .system
                .annotations()
                .iter()
                .filter(|a| a.terms.iter().any(|t| qualifying_concepts.contains(t)))
                .map(|a| a.id)
                .collect();
            acc = Some(match acc {
                None => anns,
                Some(prev) => prev.intersection(&anns).copied().collect(),
            });
        }
        (acc, all_concepts)
    }

    /// Evaluate referent filters. Returns `None` when there are none, else the set of
    /// referent ids satisfying *all* filters.
    fn eval_referents(&self, query: &Query) -> Option<HashSet<ReferentId>> {
        if query.referents.is_empty() {
            return None;
        }
        let mut acc: Option<HashSet<ReferentId>> = None;
        for filter in &query.referents {
            let matching: HashSet<ReferentId> = self.eval_one_referent_filter(filter);
            acc = Some(match acc {
                None => matching,
                Some(prev) => prev.intersection(&matching).copied().collect(),
            });
        }
        acc
    }

    fn eval_one_referent_filter(&self, filter: &ReferentFilter) -> HashSet<ReferentId> {
        match filter {
            ReferentFilter::OfType(t) => self
                .system
                .referents()
                .iter()
                .filter(|r| self.system.object(r.object).map(|o| o.data_type == *t).unwrap_or(false))
                .map(|r| r.id)
                .collect(),
            ReferentFilter::IntervalOverlaps { domain, interval } => match domain {
                Some(d) => self.system.overlapping_intervals(d, *interval).into_iter().collect(),
                None => self
                    .system
                    .intervals()
                    .overlapping_all_domains(*interval)
                    .into_iter()
                    .map(|(_, e)| ReferentId(e.payload))
                    .collect(),
            },
            ReferentFilter::RegionOverlaps { system, rect } => match system {
                Some(s) => self.system.overlapping_regions(s, *rect).into_iter().collect(),
                None => self
                    .system
                    .spatial()
                    .overlapping_all_systems(*rect)
                    .into_iter()
                    .map(|(_, e)| ReferentId(e.payload))
                    .collect(),
            },
            ReferentFilter::BlockContains(ids) => {
                let want: HashSet<u64> = ids.iter().copied().collect();
                self.system
                    .referents()
                    .iter()
                    .filter(|r| match &r.marker {
                        Marker::BlockSet(set) => set.iter().any(|id| want.contains(id)),
                        _ => false,
                    })
                    .map(|r| r.id)
                    .collect()
            }
        }
    }

    // --- collation ---

    fn collate(
        &self,
        query: &Query,
        annotation_candidates: Option<HashSet<AnnotationId>>,
        referent_candidates: Option<HashSet<ReferentId>>,
        onto_anns: Option<HashSet<AnnotationId>>,
        _onto_concepts: &HashSet<ConceptId>,
    ) -> QueryResult {
        // Resolve the effective annotation set.
        let annotations: Vec<AnnotationId> = match annotation_candidates {
            Some(set) => sorted_vec(set),
            None => self.system.annotations().iter().map(|a| a.id).collect(),
        };

        // Referents: either the explicit candidates, or (when none) all referents of the
        // qualifying annotations.
        let referents: Vec<ReferentId> = match &referent_candidates {
            Some(set) => {
                // keep only those linked to a qualifying annotation if annotation set is
                // constrained
                if query.content.is_empty() && query.ontology.is_empty() {
                    sorted_vec(set.clone())
                } else {
                    let ann_set: HashSet<AnnotationId> = annotations.iter().copied().collect();
                    let mut out = BTreeSet::new();
                    for &aid in &annotations {
                        if let Some(a) = self.system.annotation(aid) {
                            for &rid in &a.referents {
                                if set.contains(&rid) {
                                    out.insert(rid);
                                }
                            }
                        }
                    }
                    let _ = ann_set;
                    out.into_iter().collect()
                }
            }
            None => {
                let mut out = BTreeSet::new();
                for &aid in &annotations {
                    if let Some(a) = self.system.annotation(aid) {
                        out.extend(a.referents.iter().copied());
                    }
                }
                out.into_iter().collect()
            }
        };

        // Objects involved.
        let mut objects: BTreeSet<ObjectId> = BTreeSet::new();
        for &rid in &referents {
            if let Some(r) = self.system.referent(rid) {
                objects.insert(r.object);
            }
        }

        // The annotation set used to decide whether a referent is "annotated with term
        // T": the ontology-only set when the query has ontology filters, otherwise the
        // primary annotation set.
        let constraint_anns: Vec<AnnotationId> = match &onto_anns {
            Some(set) => sorted_vec(set.clone()),
            None => annotations.clone(),
        };

        // Apply graph constraints, narrowing objects / annotations.
        let mut objects: Vec<ObjectId> = objects.into_iter().collect();
        for c in &query.constraints {
            objects = self.apply_constraint(c, &objects, &annotations, &constraint_anns, &referents);
        }

        // Build result pages: one connection subgraph per connected witness component.
        let pages = self.build_pages(&annotations, &referents, &objects, query);

        // Flat result lists depend on the target.
        let (flat_anns, flat_refs, flat_objs) = match query.target {
            Target::AnnotationContents => {
                // annotations whose witness survived (those attached to surviving objects,
                // or all qualifying annotations when no referent/constraint narrowing)
                let surviving = self.annotations_touching_objects(&annotations, &objects, query);
                (surviving, Vec::new(), objects.clone())
            }
            Target::Referents => {
                let surviving_refs = self.referents_on_objects(&referents, &objects);
                (Vec::new(), surviving_refs, objects.clone())
            }
            Target::ConnectionGraphs => (annotations.clone(), referents.clone(), objects.clone()),
        };

        QueryResult { pages, annotations: flat_anns, referents: flat_refs, objects: flat_objs }
    }

    fn annotations_touching_objects(
        &self,
        annotations: &[AnnotationId],
        objects: &[ObjectId],
        query: &Query,
    ) -> Vec<AnnotationId> {
        if query.referents.is_empty() && query.constraints.is_empty() {
            return annotations.to_vec();
        }
        let obj_set: HashSet<ObjectId> = objects.iter().copied().collect();
        annotations
            .iter()
            .copied()
            .filter(|&aid| {
                self.system
                    .annotation(aid)
                    .map(|a| {
                        a.referents.iter().any(|&rid| {
                            self.system
                                .referent(rid)
                                .map(|r| obj_set.contains(&r.object))
                                .unwrap_or(false)
                        })
                    })
                    .unwrap_or(false)
            })
            .collect()
    }

    fn referents_on_objects(&self, referents: &[ReferentId], objects: &[ObjectId]) -> Vec<ReferentId> {
        let obj_set: HashSet<ObjectId> = objects.iter().copied().collect();
        referents
            .iter()
            .copied()
            .filter(|&rid| {
                self.system
                    .referent(rid)
                    .map(|r| obj_set.contains(&r.object))
                    .unwrap_or(false)
            })
            .collect()
    }

    fn apply_constraint(
        &self,
        constraint: &GraphConstraint,
        objects: &[ObjectId],
        annotations: &[AnnotationId],
        constraint_anns: &[AnnotationId],
        referents: &[ReferentId],
    ) -> Vec<ObjectId> {
        let ann_set: HashSet<AnnotationId> = annotations.iter().copied().collect();
        let constraint_ann_set: HashSet<AnnotationId> = constraint_anns.iter().copied().collect();
        let ref_set: HashSet<ReferentId> = referents.iter().copied().collect();
        match constraint {
            GraphConstraint::ConsecutiveIntervals { count, max_gap } => objects
                .iter()
                .copied()
                .filter(|&obj| {
                    self.has_consecutive_intervals(obj, *count, *max_gap, &ann_set, &ref_set)
                })
                .collect(),
            GraphConstraint::MinRegionCount { count, within, system } => objects
                .iter()
                .copied()
                .filter(|&obj| {
                    self.region_count_on_object(obj, *within, system, &constraint_ann_set) >= *count
                })
                .collect(),
            GraphConstraint::PathExists { max_len } => {
                // keep objects reachable from at least one qualifying annotation within
                // max_len hops in the a-graph
                objects
                    .iter()
                    .copied()
                    .filter(|&obj| self.object_reachable_from_annotations(obj, annotations, *max_len))
                    .collect()
            }
        }
    }

    /// Whether `object` has at least `count` interval referents — each annotated by a
    /// qualifying annotation — forming a consecutive, non-overlapping chain.
    fn has_consecutive_intervals(
        &self,
        object: ObjectId,
        count: usize,
        max_gap: u64,
        ann_set: &HashSet<AnnotationId>,
        ref_set: &HashSet<ReferentId>,
    ) -> bool {
        // collect qualifying interval referents on this object
        let mut intervals: Vec<Interval> = Vec::new();
        for rid in self.system.referents_of_object(object) {
            if !ref_set.is_empty() && !ref_set.contains(&rid) {
                continue;
            }
            // must be annotated by a qualifying annotation
            let annotated = self
                .system
                .annotations_of_referent(rid)
                .iter()
                .any(|a| ann_set.contains(a));
            if !annotated {
                continue;
            }
            if let Some(r) = self.system.referent(rid) {
                if let Marker::Interval(iv) = r.marker {
                    intervals.push(iv);
                }
            }
        }
        longest_consecutive_chain(&mut intervals, max_gap) >= count
    }

    fn region_count_on_object(
        &self,
        object: ObjectId,
        within: spatial_index::Rect,
        _system: &str,
        ann_set: &HashSet<AnnotationId>,
    ) -> usize {
        let mut count = 0;
        for rid in self.system.referents_of_object(object) {
            let annotated = self
                .system
                .annotations_of_referent(rid)
                .iter()
                .any(|a| ann_set.contains(a));
            if !annotated {
                continue;
            }
            if let Some(r) = self.system.referent(rid) {
                if let Marker::Region(rect) | Marker::Volume(rect) = r.marker {
                    if rect.if_overlap(&within) {
                        count += 1;
                    }
                }
            }
        }
        count
    }

    fn object_reachable_from_annotations(
        &self,
        object: ObjectId,
        annotations: &[AnnotationId],
        max_len: usize,
    ) -> bool {
        let Some(onode) = self.system.object_node(object) else { return false };
        let search = PathSearch::new().max_len(max_len);
        annotations.iter().any(|&aid| {
            self.system
                .annotation_node(aid)
                .map(|anode| search.exists(self.system.agraph(), anode, onode))
                .unwrap_or(false)
        })
    }

    fn build_pages(
        &self,
        annotations: &[AnnotationId],
        referents: &[ReferentId],
        objects: &[ObjectId],
        _query: &Query,
    ) -> Vec<ResultPage> {
        // Gather all witness node ids.
        let mut nodes: Vec<NodeId> = Vec::new();
        let obj_set: HashSet<ObjectId> = objects.iter().copied().collect();

        // Keep only referents/annotations touching surviving objects (when objects are
        // constrained).
        let keep_ref = |rid: ReferentId| -> bool {
            if obj_set.is_empty() {
                true
            } else {
                self.system
                    .referent(rid)
                    .map(|r| obj_set.contains(&r.object))
                    .unwrap_or(false)
            }
        };

        for &aid in annotations {
            // include the annotation only if it touches a surviving object (or no object
            // constraint is active)
            let touches = obj_set.is_empty()
                || self
                    .system
                    .annotation(aid)
                    .map(|a| a.referents.iter().any(|&r| keep_ref(r)))
                    .unwrap_or(false);
            if touches {
                if let Some(n) = self.system.annotation_node(aid) {
                    nodes.push(n);
                }
                if let Some(a) = self.system.annotation(aid) {
                    for &t in &a.terms {
                        if let Some(tn) = self.system.term_node(t) {
                            nodes.push(tn);
                        }
                    }
                }
            }
        }
        for &rid in referents {
            if keep_ref(rid) {
                if let Some(n) = self.system.referent_node(rid) {
                    nodes.push(n);
                }
            }
        }
        for &oid in objects {
            if let Some(n) = self.system.object_node(oid) {
                nodes.push(n);
            }
        }
        nodes.sort();
        nodes.dedup();
        if nodes.is_empty() {
            return Vec::new();
        }

        // Build the induced subgraph, then split into connected components — each is a
        // result page.
        let induced = Subgraph::induced(self.system.agraph(), nodes.iter().copied());
        let components = self.components_of(&induced);
        components
            .into_iter()
            .map(|comp| self.page_from_nodes(comp))
            .filter(|p| !p.subgraph.subgraph.is_empty())
            .collect()
    }

    /// Weakly connected components of an induced subgraph, restricted to its own nodes.
    fn components_of(&self, sub: &Subgraph) -> Vec<Vec<NodeId>> {
        let node_set: HashSet<NodeId> = sub.nodes.iter().copied().collect();
        // adjacency within the subgraph
        let mut adj: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
        for &e in &sub.edges {
            if let Some(rec) = self.system.agraph().edge(e) {
                adj.entry(rec.from).or_default().push(rec.to);
                adj.entry(rec.to).or_default().push(rec.from);
            }
        }
        let mut seen: HashSet<NodeId> = HashSet::new();
        let mut comps = Vec::new();
        for &start in &sub.nodes {
            if seen.contains(&start) {
                continue;
            }
            let mut stack = vec![start];
            let mut comp = Vec::new();
            while let Some(n) = stack.pop() {
                if !seen.insert(n) {
                    continue;
                }
                comp.push(n);
                if let Some(neighbors) = adj.get(&n) {
                    for &m in neighbors {
                        if node_set.contains(&m) && !seen.contains(&m) {
                            stack.push(m);
                        }
                    }
                }
            }
            comp.sort();
            comps.push(comp);
        }
        comps
    }

    fn page_from_nodes(&self, nodes: Vec<NodeId>) -> ResultPage {
        let subgraph = Subgraph::induced(self.system.agraph(), nodes.iter().copied());
        let terminals = nodes.clone();
        let mut annotations = Vec::new();
        let mut referents = Vec::new();
        let mut objects = Vec::new();
        let mut terms = Vec::new();
        for &n in &nodes {
            match self.system.entity_of(n) {
                Some(Entity::Annotation(a)) => annotations.push(a),
                Some(Entity::Referent(r)) => referents.push(r),
                Some(Entity::Object(o)) => objects.push(o),
                Some(Entity::Term(t)) => terms.push(t),
                None => {}
            }
        }
        ResultPage {
            subgraph: agraph::ConnectionSubgraph { terminals, subgraph },
            annotations,
            referents,
            objects,
            terms,
        }
    }
}

/// Length of the longest chain of consecutive, non-overlapping intervals (within
/// `max_gap`) obtainable from the given set. Greedy after sorting by start then end —
/// which is optimal for interval chaining by earliest finish.
fn longest_consecutive_chain(intervals: &mut [Interval], max_gap: u64) -> usize {
    if intervals.is_empty() {
        return 0;
    }
    intervals.sort_by_key(|i| (i.end, i.start));
    // greedy: pick earliest-finishing, then next whose start >= last end and gap ok
    let mut best = 0usize;
    // Try starting the chain from each interval to be safe for the gap constraint.
    for start_idx in 0..intervals.len() {
        let mut chain = 1usize;
        let mut last = intervals[start_idx];
        for cand in intervals.iter().skip(start_idx + 1) {
            if cand.start >= last.end && cand.start - last.end <= max_gap {
                chain += 1;
                last = *cand;
            }
        }
        best = best.max(chain);
    }
    best
}

fn intersect_opt<T: Eq + std::hash::Hash + Clone>(
    a: Option<HashSet<T>>,
    b: Option<HashSet<T>>,
) -> Option<HashSet<T>> {
    match (a, b) {
        (None, None) => None,
        (Some(s), None) | (None, Some(s)) => Some(s),
        (Some(x), Some(y)) => Some(x.intersection(&y).cloned().collect()),
    }
}

fn sorted_vec<T: Ord>(set: HashSet<T>) -> Vec<T> {
    let mut v: Vec<T> = set.into_iter().collect();
    v.sort();
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphitti_core::{DataType, Marker};

    fn seq_system() -> (Graphitti, ObjectId) {
        let mut sys = Graphitti::new();
        let seq = sys.register_sequence("seg4", DataType::DnaSequence, 2000, "chr-flu");
        (sys, seq)
    }

    #[test]
    fn phrase_query_returns_matching_annotations() {
        let (mut sys, seq) = seq_system();
        sys.annotate()
            .comment("polybasic protease cleavage site")
            .mark(seq, Marker::interval(100, 150))
            .commit()
            .unwrap();
        sys.annotate()
            .comment("a routine synonymous mutation")
            .mark(seq, Marker::interval(200, 250))
            .commit()
            .unwrap();
        let q = Query::new(Target::AnnotationContents).with_phrase("protease cleavage");
        let res = Executor::new(&sys).run(&q);
        assert_eq!(res.annotations.len(), 1);
    }

    #[test]
    fn referent_type_query() {
        let (mut sys, seq) = seq_system();
        sys.annotate().comment("x").mark(seq, Marker::interval(0, 10)).commit().unwrap();
        let q = Query::new(Target::Referents)
            .with_referent(ReferentFilter::OfType(DataType::DnaSequence));
        let res = Executor::new(&sys).run(&q);
        assert_eq!(res.referents.len(), 1);
        // no DNA referents of an image type
        let q2 = Query::new(Target::Referents)
            .with_referent(ReferentFilter::OfType(DataType::Image));
        assert!(Executor::new(&sys).run(&q2).referents.is_empty());
    }

    #[test]
    fn consecutive_intervals_constraint() {
        let (mut sys, seq) = seq_system();
        // four consecutive, disjoint protease intervals on the same sequence
        for i in 0..4 {
            let start = i * 100;
            sys.annotate()
                .comment("contains protease motif")
                .mark(seq, Marker::interval(start, start + 50))
                .commit()
                .unwrap();
        }
        // one non-protease interval elsewhere
        sys.annotate()
            .comment("unrelated")
            .mark(seq, Marker::interval(1000, 1050))
            .commit()
            .unwrap();

        let q = Query::new(Target::Referents)
            .with_phrase("protease")
            .with_constraint(GraphConstraint::ConsecutiveIntervals { count: 4, max_gap: 60 });
        let res = Executor::new(&sys).run(&q);
        assert_eq!(res.objects, vec![seq]);

        // requiring 5 fails
        let q5 = Query::new(Target::Referents)
            .with_phrase("protease")
            .with_constraint(GraphConstraint::ConsecutiveIntervals { count: 5, max_gap: 60 });
        assert!(Executor::new(&sys).run(&q5).objects.is_empty());
    }

    #[test]
    fn min_region_count_constraint() {
        let mut sys = Graphitti::new();
        let img = sys.register_image("brain", 1000, 1000, "confocal", "cs25");
        let dcn = sys.ontology_mut().add_concept("DeepCerebellarNuclei");
        // two regions annotated with the DCN term
        for i in 0..2 {
            let x = (i as f64) * 100.0;
            sys.annotate()
                .comment("region")
                .mark(img, Marker::region(x, 0.0, x + 50.0, 50.0))
                .cite_term(dcn)
                .commit()
                .unwrap();
        }
        let big = spatial_index::Rect::rect2(0.0, 0.0, 1000.0, 1000.0);
        let q = Query::new(Target::ConnectionGraphs)
            .with_ontology(OntologyFilter::CitesTerm(dcn))
            .with_constraint(GraphConstraint::MinRegionCount {
                count: 2,
                within: big,
                system: "cs25".into(),
            });
        let res = Executor::new(&sys).run(&q);
        assert_eq!(res.objects, vec![img]);
        // require 3 -> empty
        let q3 = Query::new(Target::ConnectionGraphs)
            .with_ontology(OntologyFilter::CitesTerm(dcn))
            .with_constraint(GraphConstraint::MinRegionCount {
                count: 3,
                within: big,
                system: "cs25".into(),
            });
        assert!(Executor::new(&sys).run(&q3).objects.is_empty());
    }

    #[test]
    fn connection_graph_pages() {
        let (mut sys, seq) = seq_system();
        let a = sys.annotate().comment("protease one").mark(seq, Marker::interval(0, 10)).commit().unwrap();
        let q = Query::new(Target::ConnectionGraphs).with_phrase("protease");
        let res = Executor::new(&sys).run(&q);
        assert!(res.page_count() >= 1);
        assert!(res.pages[0].contains_annotation(a));
        assert!(res.pages[0].contains_object(seq));
    }

    #[test]
    fn longest_chain_helper() {
        let mut ivs = vec![
            Interval::new(0, 10),
            Interval::new(10, 20),
            Interval::new(20, 30),
            Interval::new(5, 15), // overlaps, breaks a chain if chosen
        ];
        assert_eq!(longest_consecutive_chain(&mut ivs, 0), 3);
        let mut gapped = vec![Interval::new(0, 10), Interval::new(15, 25)];
        assert_eq!(longest_consecutive_chain(&mut gapped, 0), 1);
        assert_eq!(longest_consecutive_chain(&mut gapped, 5), 2);
    }

    #[test]
    fn unconstrained_query_returns_everything() {
        let (mut sys, seq) = seq_system();
        sys.annotate().comment("x").mark(seq, Marker::interval(0, 10)).commit().unwrap();
        let q = Query::new(Target::AnnotationContents);
        let res = Executor::new(&sys).run(&q);
        assert_eq!(res.annotations.len(), 1);
    }
}
