//! The plan-driven pipelined query executor.
//!
//! The executor realises the paper's pipeline in three stages:
//!
//! 1. **Seed** — build a [`Plan`] (separating subqueries and ordering them by
//!    selectivity estimated from live statistics) and evaluate the *most selective*
//!    subquery of each family first, producing the seed candidate set straight from a
//!    persistent inverted index (term postings, type / block postings, interval tree,
//!    R-tree, keyword index) — never by scanning the registries.
//! 2. **Verify** — every later subquery *verifies* the surviving candidates with
//!    per-candidate membership probes (binary searches on posting lists, `O(log n)`
//!    keyword-index probes, `O(1)` marker checks) instead of recomputing its full
//!    matching set.  Candidate sets are sorted `Vec`s of dense ids and posting-list
//!    intersection uses a galloping merge (see [`crate::setops`]).
//! 3. **Collate** — connect the pruned partial results through the a-graph into
//!    type-extended connection subgraphs, enforcing graph constraints; neighbor
//!    expansion starts from the pruned set, so collation cost tracks the result size,
//!    not the corpus size.
//!
//! The executor borrows a [`SystemView`] — the live system (via deref) or an isolated
//! [`graphitti_core::Snapshot`] work identically.  The verify phase of a large query
//! can be fanned across scoped worker threads ([`Executor::with_verify_workers`]):
//! candidates are split into contiguous chunks, each chunk is filtered independently,
//! and the chunks are re-concatenated in order, so the output is byte-identical to the
//! sequential pass.
//!
//! Every data structure a stage reads is covered by the plan's **read footprint**
//! ([`Plan::read_footprint`](crate::plan::Plan::read_footprint)) in the sense the
//! query service's result cache relies on: any publish that changes what seed, verify
//! or collate can observe also bumps a component in the footprint.  Extending the
//! executor to read a new store therefore means extending the footprint rules (and
//! the dirty sets in `graphitti-core`) in the same change — the
//! `partial_invalidation_props` tests in `tests/service_equivalence.rs` catch a
//! missed dependency by replaying random batch schedules against the reference.
//!
//! The pre-index scan-and-intersect implementation is preserved as
//! [`crate::reference::ReferenceExecutor`]; it is the correctness oracle for the
//! randomized equivalence tests and the baseline for the index-ablation benchmarks.

use std::borrow::Cow;
use std::collections::HashMap;

use agraph::{MultiGraph, NodeId, PathSearch, Subgraph};
use graphitti_core::{AnnotationId, Entity, Marker, ObjectId, ReferentId, ShardCut, SystemView};
use interval_index::Interval;
use ontology::{ConceptId, RelationType};

use crate::ast::{ContentFilter, GraphConstraint, OntologyFilter, Query, ReferentFilter, Target};
use crate::bitmap::{CandidateRepr, CandidateSet};
use crate::plan::{Plan, SubQueryKind};
use crate::resilience::{CancelToken, Interrupt};
use crate::result::{QueryResult, ResultPage};
use crate::setops;

/// Below this many candidates a verify pass always runs sequentially — chunking smaller
/// sets costs more in thread spawns than the probes themselves.
pub const DEFAULT_PARALLEL_VERIFY_THRESHOLD: usize = 4096;

/// How many per-candidate probes a verify or collate loop runs between cooperative
/// cancellation checkpoints.  Small enough that an expired query stops within
/// microseconds of its deadline; large enough that the relaxed-load check (plus one
/// `Instant::now()` when a deadline is set) is amortized to nothing.
pub(crate) const CANCEL_STRIDE: usize = 1024;

/// The annotation family's pipeline output: `(ann_cands, constraint_anns)` —
/// the candidate annotations (`None` = family unconstrained) and, when a
/// constraint needs it, the ontology-only qualifying set (materialized for the
/// collator's membership probes).
pub(crate) type AnnotationCandidates =
    (Option<CandidateSet<AnnotationId>>, Option<Vec<AnnotationId>>);

/// The query executor, borrowing a [`SystemView`] immutably (pass `&Graphitti` or a
/// `&Snapshot`; both deref coerce).
pub struct Executor<'g> {
    system: &'g SystemView,
    verify_workers: usize,
    parallel_threshold: usize,
    cancel: CancelToken,
    repr: CandidateRepr,
}

impl<'g> Executor<'g> {
    /// Create a single-threaded executor over a system view.
    pub fn new(system: &'g SystemView) -> Self {
        Executor {
            system,
            verify_workers: 1,
            parallel_threshold: DEFAULT_PARALLEL_VERIFY_THRESHOLD,
            cancel: CancelToken::unbounded(),
            repr: CandidateRepr::default(),
        }
    }

    /// Select the physical candidate-set representation: compressed bitmaps
    /// (default) or the legacy sorted-`Vec` runs. Results are byte-identical
    /// either way — both representations iterate in ascending id order — so
    /// this knob exists for ablation benchmarks and equivalence tests.
    pub fn with_candidate_repr(mut self, repr: CandidateRepr) -> Self {
        self.repr = repr;
        self
    }

    /// Fan the verify phase of large queries across up to `workers` scoped threads.
    /// `workers <= 1` keeps the sequential path; results are byte-identical either way.
    pub fn with_verify_workers(mut self, workers: usize) -> Self {
        self.verify_workers = workers.max(1);
        self
    }

    /// Override the candidate-count threshold above which a verify pass is chunked
    /// across workers (useful for testing the parallel path on small corpora).
    pub fn with_parallel_threshold(mut self, threshold: usize) -> Self {
        self.parallel_threshold = threshold.max(1);
        self
    }

    /// Attach a cancellation token: the seed/verify/collate loops check it at phase
    /// and chunk boundaries, and the fallible entry points
    /// ([`try_run`](Self::try_run) and friends) surface the [`Interrupt`].  The
    /// infallible entry points must not be used with a token that can fire.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }

    /// Build the plan for a query without executing it (for EXPLAIN-style inspection).
    /// Plans the canonicalized form, exactly as [`Self::run`] executes it.
    pub fn plan(&self, query: &Query) -> Plan {
        Plan::build(&query.canonicalize(), self.system)
    }

    /// Execute a query and return its result.
    ///
    /// The query is canonicalized first (commutative conjuncts sorted, keywords
    /// lowercased and deduplicated), so semantically equal queries take identical
    /// plans.  Subqueries then run in the plan's selectivity order: the first subquery
    /// of each family (annotation-producing: content / ontology; referent-producing:
    /// referent) seeds that family's candidate set from the indexes, and every later
    /// subquery verifies the candidates in place.
    pub fn run(&self, query: &Query) -> QueryResult {
        self.run_canonical(&query.canonicalize())
    }

    /// Execute a query that is **already in canonical form** (as produced by
    /// [`Query::canonicalize`]), skipping re-canonicalization.  Callers that
    /// canonicalize once for their own purposes — the query service does, for its
    /// cache key — use this to avoid paying the normalization twice.  Passing a
    /// non-canonical query gives the same results but an order-dependent plan.
    pub fn run_canonical(&self, query: &Query) -> QueryResult {
        self.try_run_canonical(query)
            // lint: allow(no-panic-serving) -- the cancel-free entry point attaches no CancelToken, so Interrupt is unreachable
            .expect("uninterruptible executor (no live CancelToken) cannot be interrupted")
    }

    /// Execute a canonical query along an **already built** [`Plan`] (as produced by
    /// [`Plan::build`] for this same query and system).  Callers that need the plan
    /// for their own purposes — the query service keys its cache entries on the
    /// plan's [`read footprint`](Plan::read_footprint) — use this to avoid planning
    /// (and re-estimating selectivities) twice per execution.
    pub fn run_plan(&self, query: &Query, plan: &Plan) -> QueryResult {
        self.try_run_plan(query, plan)
            // lint: allow(no-panic-serving) -- the cancel-free entry point attaches no CancelToken, so Interrupt is unreachable
            .expect("uninterruptible executor (no live CancelToken) cannot be interrupted")
    }

    /// [`run`](Self::run), surfacing a cancellation or deadline [`Interrupt`] from
    /// the attached [`CancelToken`](Self::with_cancel) instead of running to
    /// completion.
    pub fn try_run(&self, query: &Query) -> Result<QueryResult, Interrupt> {
        self.try_run_canonical(&query.canonicalize())
    }

    /// Fallible [`run_canonical`](Self::run_canonical) (see [`try_run`](Self::try_run)).
    pub fn try_run_canonical(&self, query: &Query) -> Result<QueryResult, Interrupt> {
        self.try_run_plan(query, &Plan::build(query, self.system))
    }

    /// Fallible [`run_plan`](Self::run_plan): the seed → verify → collate pipeline
    /// with the attached token checked at phase and chunk boundaries.
    pub fn try_run_plan(&self, query: &Query, plan: &Plan) -> Result<QueryResult, Interrupt> {
        let (ann_cands, constraint_anns) = self.annotation_candidates(query, plan)?;
        let ref_cands = self.referent_candidates(query, plan)?;
        Collator::new(self.system).with_cancel(self.cancel.clone()).try_collate(
            query,
            ann_cands.map(CandidateSet::into_sorted_vec),
            ref_cands.map(CandidateSet::into_sorted_vec),
            constraint_anns,
        )
    }

    /// The **annotation family**'s candidate pipeline: run the content and ontology
    /// subqueries in the plan's (per-family) selectivity order — the first seeds from
    /// an index, later ones verify — returning `(ann_cands, constraint_anns)`.
    /// `None` means the family is unconstrained.  The two families are independent
    /// until collation, which is what lets a scatter-gather executor evaluate each
    /// per shard and merge before collating globally.
    pub(crate) fn annotation_candidates(
        &self,
        query: &Query,
        plan: &Plan,
    ) -> Result<AnnotationCandidates, Interrupt> {
        // The `MinRegionCount` constraint counts regions "annotated with term T" by the
        // *ontology* conditions alone; when the query also has content filters that set
        // differs from `ann_cands`, so keep each ontology filter's qualifying set as the
        // pipeline computes it (no other constraint kind consumes it).
        let needs_onto_only = !query.ontology.is_empty()
            && !query.content.is_empty()
            && query
                .constraints
                .iter()
                .any(|c| matches!(c, GraphConstraint::MinRegionCount { .. }));
        let mut onto_sets: Vec<Option<CandidateSet<AnnotationId>>> =
            vec![None; query.ontology.len()];

        // Candidate set (ascending id order under either representation).
        // `None` = family unconstrained.
        let mut ann_cands: Option<CandidateSet<AnnotationId>> = None;

        for sub in &plan.order {
            // Phase boundary: one checkpoint per subquery stage; the bitmap
            // kernels re-check at every container-batch boundary.
            self.cancel.check()?;
            match sub.kind {
                SubQueryKind::Content => {
                    // lint: allow(no-panic-serving) -- Plan::build emits each subquery index exactly once
                    let f = &query.content[sub.index];
                    ann_cands = Some(match ann_cands.take() {
                        None => CandidateSet::from_sorted_vec(self.repr, self.seed_content(f)),
                        Some(c) if c.is_empty() => c,
                        Some(c) => {
                            // Content filters have no precomputable posting: fall
                            // back to per-id predicate probes over the sorted run.
                            let kept = self.verify_content(c.into_sorted_vec(), f)?;
                            CandidateSet::from_sorted_vec(self.repr, kept)
                        }
                    });
                }
                SubQueryKind::Ontology => {
                    // lint: allow(no-panic-serving) -- Plan::build emits each subquery index exactly once
                    let f = &query.ontology[sub.index];
                    ann_cands = Some(match ann_cands.take() {
                        None => {
                            let set = self.qualifying_annotations(f);
                            if needs_onto_only {
                                // lint: allow(no-panic-serving) -- Plan::build emits each subquery index exactly once
                                onto_sets[sub.index] = Some(set.clone());
                            }
                            set
                        }
                        Some(c) if c.is_empty() => c,
                        Some(c) => {
                            // Verify against the filter's posting set: a
                            // block-skipping AND under the bitmap repr, a
                            // galloping merge under the vec repr.
                            let set = self.qualifying_annotations(f);
                            let narrowed = c.intersect(&set, &mut || self.cancel.check())?;
                            if needs_onto_only {
                                // lint: allow(no-panic-serving) -- Plan::build emits each subquery index exactly once
                                onto_sets[sub.index] = Some(set);
                            }
                            narrowed
                        }
                    });
                }
                SubQueryKind::Referent => {}
            }
        }

        // Intersect the cached per-filter sets into the ontology-only annotation set;
        // filters the pipeline short-circuited past (empty candidates) are filled in
        // from their postings here.
        let constraint_anns: Option<Vec<AnnotationId>> = if needs_onto_only {
            let mut acc: Option<CandidateSet<AnnotationId>> = None;
            for (i, f) in query.ontology.iter().enumerate() {
                // lint: allow(no-panic-serving) -- onto_sets was sized to query.ontology.len() above
                let set = onto_sets[i].take().unwrap_or_else(|| self.qualifying_annotations(f));
                acc = Some(match acc {
                    None => set,
                    Some(prev) => prev.intersect(&set, &mut || self.cancel.check())?,
                });
            }
            acc.map(CandidateSet::into_sorted_vec)
        } else {
            None
        };

        Ok((ann_cands, constraint_anns))
    }

    /// The **referent family**'s candidate pipeline (see
    /// [`annotation_candidates`](Self::annotation_candidates)): seed from the most
    /// selective referent filter, verify with the rest.  `None` = unconstrained.
    pub(crate) fn referent_candidates(
        &self,
        query: &Query,
        plan: &Plan,
    ) -> Result<Option<CandidateSet<ReferentId>>, Interrupt> {
        let mut ref_cands: Option<CandidateSet<ReferentId>> = None;
        for sub in &plan.order {
            if sub.kind != SubQueryKind::Referent {
                continue;
            }
            self.cancel.check()?;
            // lint: allow(no-panic-serving) -- Plan::build emits each subquery index exactly once
            let f = &query.referents[sub.index];
            ref_cands = Some(match ref_cands.take() {
                None => self.seed_referents(f),
                Some(c) if c.is_empty() => c,
                Some(c) => self.verify_referents(c, f)?,
            });
        }
        Ok(ref_cands)
    }

    // --- seed: first subquery of a family, answered wholly from an index ---

    /// Annotations whose content matches a filter, mapped back through the persistent
    /// `doc → annotation` index (no per-query map rebuild).
    fn seed_content(&self, filter: &ContentFilter) -> Vec<AnnotationId> {
        let store = self.system.content_store();
        let idx = self.system.indexes();
        let docs = match filter {
            ContentFilter::Phrase(p) => store.containing_phrase(p),
            ContentFilter::Keywords(ks) => {
                let refs: Vec<&str> = ks.iter().map(String::as_str).collect();
                store.with_all_keywords(&refs)
            }
            ContentFilter::Path(expr) => store.select(expr),
        };
        let mut anns: Vec<AnnotationId> =
            docs.into_iter().filter_map(|d| idx.annotation_of_doc(d)).collect();
        anns.sort_unstable();
        anns.dedup();
        anns
    }

    /// The set of annotations citing any concept qualifying under an ontology filter —
    /// index postings are already ascending and deduplicated
    /// ([`graphitti_core::Indexes`] appends in commit order), so they materialize into
    /// either representation without re-sorting; `InClass` is a union of term postings
    /// (container-wise OR under the bitmap repr, k-way galloping merge otherwise).
    fn qualifying_annotations(&self, filter: &OntologyFilter) -> CandidateSet<AnnotationId> {
        let idx = self.system.indexes();
        match filter {
            OntologyFilter::CitesTerm(c) => {
                CandidateSet::from_posting(self.repr, idx.annotations_citing(*c))
            }
            OntologyFilter::InClass { concept, relations } => {
                let concepts = expand_class(self.system.ontology(), *concept, relations);
                let postings: Vec<&[AnnotationId]> =
                    concepts.iter().map(|&c| idx.annotations_citing(c)).collect();
                CandidateSet::union_postings(self.repr, &postings)
            }
        }
    }

    /// Referents matching a filter, answered from the matching index: type postings,
    /// interval tree, R-tree or block postings.  Index postings — including the
    /// per-object lists, strictly ascending by the `object_referents` ordering
    /// contract — convert without re-sorting; tree hits carry no order guarantee
    /// and are sorted + deduplicated first.
    fn seed_referents(&self, filter: &ReferentFilter) -> CandidateSet<ReferentId> {
        let idx = self.system.indexes();
        let unordered: Vec<ReferentId> = match filter {
            ReferentFilter::OfType(t) => {
                return CandidateSet::from_posting(self.repr, idx.referents_of_type(*t));
            }
            ReferentFilter::BlockContains(ids) => {
                let postings: Vec<&[ReferentId]> =
                    ids.iter().map(|&id| idx.referents_with_block(id)).collect();
                return CandidateSet::union_postings(self.repr, &postings);
            }
            ReferentFilter::OnObject(id) => {
                // Strictly ascending at both ends of the contract (insertion
                // debug_asserts it, `from_posting` re-asserts it): bridge without
                // the redundant sort + dedup the tree-hit arms below need.
                return CandidateSet::from_posting(self.repr, self.system.referents_of_object(*id));
            }
            ReferentFilter::IntervalOverlaps { domain, interval } => match domain {
                Some(d) => self.system.overlapping_intervals(d, *interval),
                None => self
                    .system
                    .intervals()
                    .overlapping_all_domains(*interval)
                    .into_iter()
                    .map(|(_, e)| ReferentId(e.payload))
                    .collect(),
            },
            ReferentFilter::RegionOverlaps { system, rect } => match system {
                Some(s) => self.system.overlapping_regions(s, *rect),
                None => self
                    .system
                    .spatial()
                    .overlapping_all_systems(*rect)
                    .into_iter()
                    .map(|(_, e)| ReferentId(e.payload))
                    .collect(),
            },
        };
        let mut out = unordered;
        out.sort_unstable();
        out.dedup();
        CandidateSet::from_sorted_vec(self.repr, out)
    }

    // --- verify: later subqueries probe surviving candidates in place ---

    /// Keep only the candidate annotations whose content document satisfies the filter
    /// (per-document index probes, no set materialisation).
    fn verify_content(
        &self,
        cands: Vec<AnnotationId>,
        filter: &ContentFilter,
    ) -> Result<Vec<AnnotationId>, Interrupt> {
        let keyword_refs: Vec<&str> = match filter {
            ContentFilter::Keywords(ks) => ks.iter().map(String::as_str).collect(),
            ContentFilter::Phrase(_) | ContentFilter::Path(_) => Vec::new(),
        };
        self.filter_candidates(cands, &|aid| self.content_matches(aid, filter, &keyword_refs))
    }

    /// Whether one candidate annotation's content satisfies the filter.
    fn content_matches(
        &self,
        aid: AnnotationId,
        filter: &ContentFilter,
        keyword_refs: &[&str],
    ) -> bool {
        let store = self.system.content_store();
        let Some(ann) = self.system.annotation(aid) else { return false };
        match filter {
            ContentFilter::Phrase(p) => store.doc_contains_phrase(ann.doc_id, p),
            ContentFilter::Keywords(_) => store.doc_has_all_keywords(ann.doc_id, keyword_refs),
            ContentFilter::Path(expr) => store.doc_matches(ann.doc_id, expr),
        }
    }

    /// Keep only the candidate referents satisfying the filter.  Filters with a
    /// precomputable posting (`OfType`, `BlockContains`) verify as a set
    /// intersection against the posting — a block-skipping bitmap AND under the
    /// bitmap repr — with cancellation checkpoints at container-batch boundaries;
    /// the rest fall back to `O(1)` per-candidate marker / domain probes.
    fn verify_referents(
        &self,
        cands: CandidateSet<ReferentId>,
        filter: &ReferentFilter,
    ) -> Result<CandidateSet<ReferentId>, Interrupt> {
        let idx = self.system.indexes();
        match filter {
            ReferentFilter::OfType(t) => {
                cands.intersect_posting(idx.referents_of_type(*t), &mut || self.cancel.check())
            }
            ReferentFilter::BlockContains(ids) => {
                let postings: Vec<&[ReferentId]> =
                    ids.iter().map(|&id| idx.referents_with_block(id)).collect();
                let set = CandidateSet::union_postings(self.repr, &postings);
                cands.intersect(&set, &mut || self.cancel.check())
            }
            ReferentFilter::OnObject(_)
            | ReferentFilter::IntervalOverlaps { .. }
            | ReferentFilter::RegionOverlaps { .. } => {
                let kept = self.filter_candidates(cands.into_sorted_vec(), &|rid| {
                    self.referent_matches(rid, filter)
                })?;
                Ok(CandidateSet::from_sorted_vec(self.repr, kept))
            }
        }
    }

    /// Shared verify driver: filter a sorted candidate vector by a per-candidate
    /// predicate, fanning contiguous chunks across scoped worker threads when the set
    /// is large enough to repay the spawns.  Chunks are re-concatenated in order, so
    /// the surviving candidates come back in exactly the sequential pass's order.
    /// The cancellation token is re-checked every [`CANCEL_STRIDE`] probes (and per
    /// chunk on the parallel path); the first interrupt any chunk observes wins.
    fn filter_candidates<T>(
        &self,
        cands: Vec<T>,
        keep: &(dyn Fn(T) -> bool + Sync),
    ) -> Result<Vec<T>, Interrupt>
    where
        T: Copy + Send + Sync,
    {
        if self.verify_workers <= 1 || cands.len() < self.parallel_threshold {
            let mut out = Vec::with_capacity(cands.len());
            for (i, &c) in cands.iter().enumerate() {
                if i % CANCEL_STRIDE == 0 {
                    self.cancel.check()?;
                }
                if keep(c) {
                    out.push(c);
                }
            }
            return Ok(out);
        }
        let workers = self.verify_workers.min(cands.len());
        let chunk = cands.len().div_ceil(workers);
        let mut out: Vec<T> = Vec::with_capacity(cands.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = cands
                .chunks(chunk)
                .map(|part| {
                    let cancel = &self.cancel;
                    scope.spawn(move || {
                        let mut kept = Vec::with_capacity(part.len());
                        for (i, &c) in part.iter().enumerate() {
                            if i % CANCEL_STRIDE == 0 {
                                cancel.check()?;
                            }
                            if keep(c) {
                                kept.push(c);
                            }
                        }
                        Ok(kept)
                    })
                })
                .collect();
            for handle in handles {
                // lint: allow(no-panic-serving) -- join only errs if the scoped worker panicked; re-raising its panic is the honest report
                out.extend(handle.join().expect("verify worker panicked")?);
            }
            Ok(())
        })?;
        Ok(out)
    }

    /// Whether one referent satisfies a referent filter.  Mirrors the semantics of the
    /// index searches in [`Self::seed_referents`] exactly (the interval tree and R-tree
    /// both report `if_overlap` hits).
    fn referent_matches(&self, rid: ReferentId, filter: &ReferentFilter) -> bool {
        let Some(r) = self.system.referent(rid) else { return false };
        match filter {
            ReferentFilter::OfType(t) => {
                self.system.object(r.object).map(|o| o.data_type == *t).unwrap_or(false)
            }
            ReferentFilter::OnObject(id) => r.object == *id,
            ReferentFilter::IntervalOverlaps { domain, interval } => {
                if domain.as_deref().is_some_and(|d| d != r.domain) {
                    return false;
                }
                matches!(&r.marker, Marker::Interval(iv) if iv.if_overlap(interval))
            }
            ReferentFilter::RegionOverlaps { system, rect } => {
                if system.as_deref().is_some_and(|s| s != r.domain) {
                    return false;
                }
                matches!(&r.marker, Marker::Region(rr) | Marker::Volume(rr) if rr.if_overlap(rect))
            }
            ReferentFilter::BlockContains(ids) => match &r.marker {
                Marker::BlockSet(set) => set.iter().any(|id| ids.contains(id)),
                _ => false,
            },
        }
    }
}

/// The read surface collation needs, abstracted from storage layout.
///
/// [`SystemView`] implements it by borrowing its registries directly (the `Cow`s are
/// all `Borrowed`, so the unsharded path pays nothing); [`ShardCut`] implements it by
/// routing each lookup to the owning shard, translating local ids to global, and
/// serving graph reads from the global collation mirror.  Because the [`Collator`] is
/// generic over this trait, sharded and unsharded execution share one collation code
/// path — page building and output ordering *cannot* diverge between them.
///
/// All ids are in the view's own id space (global ids for a [`ShardCut`]).
pub trait CollateView {
    /// Number of committed annotations (annotation ids are dense below this).
    fn annotation_count(&self) -> usize;
    /// The referents an annotation links, in link order; `None` for unknown ids.
    fn annotation_referents(&self, id: AnnotationId) -> Option<Cow<'_, [ReferentId]>>;
    /// The ontology terms an annotation cites, in citation order.
    fn annotation_terms(&self, id: AnnotationId) -> Option<Cow<'_, [ConceptId]>>;
    /// The object a referent marks.
    fn referent_object(&self, id: ReferentId) -> Option<ObjectId>;
    /// A referent's marker.
    fn referent_marker(&self, id: ReferentId) -> Option<Marker>;
    /// Every referent of an object, in creation (= ascending id) order.
    fn referents_of_object(&self, object: ObjectId) -> Cow<'_, [ReferentId]>;
    /// The annotations linking a referent, ascending.
    fn annotations_of_referent(&self, id: ReferentId) -> Vec<AnnotationId>;
    /// The a-graph node of an object.
    fn object_node(&self, id: ObjectId) -> Option<NodeId>;
    /// The a-graph node of a referent.
    fn referent_node(&self, id: ReferentId) -> Option<NodeId>;
    /// The a-graph node of an annotation.
    fn annotation_node(&self, id: AnnotationId) -> Option<NodeId>;
    /// The a-graph node of an ontology term, if cited.
    fn term_node(&self, concept: ConceptId) -> Option<NodeId>;
    /// The entity a node decodes to.
    fn entity_of(&self, node: NodeId) -> Option<Entity>;
    /// The a-graph the witness subgraphs are induced from.
    fn agraph(&self) -> &MultiGraph;
}

impl CollateView for SystemView {
    fn annotation_count(&self) -> usize {
        SystemView::annotation_count(self)
    }

    fn annotation_referents(&self, id: AnnotationId) -> Option<Cow<'_, [ReferentId]>> {
        self.annotation(id).map(|a| Cow::Borrowed(a.referents.as_slice()))
    }

    fn annotation_terms(&self, id: AnnotationId) -> Option<Cow<'_, [ConceptId]>> {
        self.annotation(id).map(|a| Cow::Borrowed(a.terms.as_slice()))
    }

    fn referent_object(&self, id: ReferentId) -> Option<ObjectId> {
        self.referent(id).map(|r| r.object)
    }

    fn referent_marker(&self, id: ReferentId) -> Option<Marker> {
        self.referent(id).map(|r| r.marker.clone())
    }

    fn referents_of_object(&self, object: ObjectId) -> Cow<'_, [ReferentId]> {
        Cow::Borrowed(SystemView::referents_of_object(self, object))
    }

    fn annotations_of_referent(&self, id: ReferentId) -> Vec<AnnotationId> {
        SystemView::annotations_of_referent(self, id)
    }

    fn object_node(&self, id: ObjectId) -> Option<NodeId> {
        SystemView::object_node(self, id)
    }

    fn referent_node(&self, id: ReferentId) -> Option<NodeId> {
        SystemView::referent_node(self, id)
    }

    fn annotation_node(&self, id: AnnotationId) -> Option<NodeId> {
        SystemView::annotation_node(self, id)
    }

    fn term_node(&self, concept: ConceptId) -> Option<NodeId> {
        SystemView::term_node(self, concept)
    }

    fn entity_of(&self, node: NodeId) -> Option<Entity> {
        SystemView::entity_of(self, node)
    }

    fn agraph(&self) -> &MultiGraph {
        SystemView::agraph(self)
    }
}

impl CollateView for ShardCut {
    fn annotation_count(&self) -> usize {
        ShardCut::annotation_count(self)
    }

    fn annotation_referents(&self, id: AnnotationId) -> Option<Cow<'_, [ReferentId]>> {
        ShardCut::annotation_referents(self, id).map(Cow::Owned)
    }

    fn annotation_terms(&self, id: AnnotationId) -> Option<Cow<'_, [ConceptId]>> {
        ShardCut::annotation_terms(self, id).map(Cow::Owned)
    }

    fn referent_object(&self, id: ReferentId) -> Option<ObjectId> {
        ShardCut::referent_object(self, id)
    }

    fn referent_marker(&self, id: ReferentId) -> Option<Marker> {
        ShardCut::referent_marker(self, id)
    }

    fn referents_of_object(&self, object: ObjectId) -> Cow<'_, [ReferentId]> {
        Cow::Owned(ShardCut::referents_of_object(self, object))
    }

    fn annotations_of_referent(&self, id: ReferentId) -> Vec<AnnotationId> {
        ShardCut::annotations_of_referent(self, id)
    }

    fn object_node(&self, id: ObjectId) -> Option<NodeId> {
        ShardCut::object_node(self, id)
    }

    fn referent_node(&self, id: ReferentId) -> Option<NodeId> {
        ShardCut::referent_node(self, id)
    }

    fn annotation_node(&self, id: AnnotationId) -> Option<NodeId> {
        ShardCut::annotation_node(self, id)
    }

    fn term_node(&self, concept: ConceptId) -> Option<NodeId> {
        ShardCut::term_node(self, concept)
    }

    fn entity_of(&self, node: NodeId) -> Option<Entity> {
        ShardCut::entity_of(self, node)
    }

    fn agraph(&self) -> &MultiGraph {
        ShardCut::agraph(self)
    }
}

/// Collation: the shared back half of query execution.  Takes the pruned candidate
/// sets, narrows them against each other, applies graph constraints, and builds result
/// pages by connecting the witnesses through the a-graph.  Used by the pipelined
/// [`Executor`], the scan-all [`crate::reference::ReferenceExecutor`] *and* the
/// scatter-gather [`crate::sharded::ShardedExecutor`] (generic over [`CollateView`]),
/// so the strategies can only differ in how candidates are *found*, never in how they
/// are collated.
pub(crate) struct Collator<'g, V: CollateView> {
    system: &'g V,
    cancel: CancelToken,
}

impl<'g, V: CollateView> Collator<'g, V> {
    pub(crate) fn new(system: &'g V) -> Self {
        Collator { system, cancel: CancelToken::unbounded() }
    }

    /// Attach a cancellation token, checked at collation phase boundaries and every
    /// [`CANCEL_STRIDE`] iterations of the narrowing / page-building loops.
    pub(crate) fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }

    /// Infallible [`try_collate`](Self::try_collate) for callers without a live
    /// token (the reference executor, plain `run` paths).
    pub(crate) fn collate(
        &self,
        query: &Query,
        ann_cands: Option<Vec<AnnotationId>>,
        ref_cands: Option<Vec<ReferentId>>,
        constraint_anns: Option<Vec<AnnotationId>>,
    ) -> QueryResult {
        self.try_collate(query, ann_cands, ref_cands, constraint_anns)
            // lint: allow(no-panic-serving) -- the cancel-free entry point attaches no CancelToken, so Interrupt is unreachable
            .expect("uninterruptible collator (no live CancelToken) cannot be interrupted")
    }

    /// Collate candidate sets into a [`QueryResult`].
    ///
    /// * `ann_cands` — sorted annotations satisfying all content + ontology filters
    ///   (`None` = unconstrained).
    /// * `ref_cands` — sorted referents satisfying all referent filters.
    /// * `constraint_anns` — sorted annotations satisfying the *ontology* filters only,
    ///   used by constraints like "N regions annotated with term T"; `None` means the
    ///   resolved annotation set already has that meaning.
    pub(crate) fn try_collate(
        &self,
        query: &Query,
        ann_cands: Option<Vec<AnnotationId>>,
        ref_cands: Option<Vec<ReferentId>>,
        constraint_anns: Option<Vec<AnnotationId>>,
    ) -> Result<QueryResult, Interrupt> {
        self.cancel.check()?;
        // Resolve the effective annotation set.
        let annotations: Vec<AnnotationId> = match ann_cands {
            Some(set) => set,
            None => (0..self.system.annotation_count() as u64).map(AnnotationId).collect(),
        };

        // Referents: either the explicit candidates narrowed to those linked from a
        // qualifying annotation, or (when unconstrained) all referents of the
        // qualifying annotations.  Neighbor expansion starts from the *pruned*
        // annotation set, so this is O(candidates), not O(corpus).
        let referents: Vec<ReferentId> = match &ref_cands {
            Some(set) => {
                if query.content.is_empty() && query.ontology.is_empty() {
                    set.clone()
                } else {
                    let mut out: Vec<ReferentId> = Vec::new();
                    for (i, &aid) in annotations.iter().enumerate() {
                        if i % CANCEL_STRIDE == 0 {
                            self.cancel.check()?;
                        }
                        if let Some(refs) = self.system.annotation_referents(aid) {
                            for &rid in refs.iter() {
                                if setops::contains_sorted(set, &rid) {
                                    out.push(rid);
                                }
                            }
                        }
                    }
                    out.sort_unstable();
                    out.dedup();
                    out
                }
            }
            None => {
                let mut out: Vec<ReferentId> = Vec::new();
                for (i, &aid) in annotations.iter().enumerate() {
                    if i % CANCEL_STRIDE == 0 {
                        self.cancel.check()?;
                    }
                    if let Some(refs) = self.system.annotation_referents(aid) {
                        out.extend(refs.iter().copied());
                    }
                }
                out.sort_unstable();
                out.dedup();
                out
            }
        };

        // Objects involved.
        let mut objects: Vec<ObjectId> = Vec::new();
        for &rid in &referents {
            if let Some(obj) = self.system.referent_object(rid) {
                objects.push(obj);
            }
        }
        objects.sort_unstable();
        objects.dedup();

        let constraint_anns: Vec<AnnotationId> = match constraint_anns {
            Some(set) => set,
            None => annotations.clone(),
        };

        // Apply graph constraints, narrowing objects (one checkpoint per constraint —
        // a phase boundary; constraints are per-object probes of bounded cost).
        for c in &query.constraints {
            self.cancel.check()?;
            objects =
                self.apply_constraint(c, &objects, &annotations, &constraint_anns, &referents);
        }

        // Build result pages: one connection subgraph per connected witness component.
        self.cancel.check()?;
        let pages = self.build_pages(&annotations, &referents, &objects)?;

        // Flat result lists depend on the target.
        let (flat_anns, flat_refs, flat_objs) = match query.target {
            Target::AnnotationContents => {
                let surviving = self.annotations_touching_objects(&annotations, &objects, query);
                (surviving, Vec::new(), objects.clone())
            }
            Target::Referents => {
                let surviving_refs = self.referents_on_objects(&referents, &objects);
                (Vec::new(), surviving_refs, objects.clone())
            }
            Target::ConnectionGraphs => (annotations.clone(), referents.clone(), objects.clone()),
        };

        Ok(QueryResult {
            pages,
            annotations: flat_anns,
            referents: flat_refs,
            objects: flat_objs,
            missing_shards: Vec::new(),
        })
    }

    fn annotations_touching_objects(
        &self,
        annotations: &[AnnotationId],
        objects: &[ObjectId],
        query: &Query,
    ) -> Vec<AnnotationId> {
        if query.referents.is_empty() && query.constraints.is_empty() {
            return annotations.to_vec();
        }
        annotations
            .iter()
            .copied()
            .filter(|&aid| {
                self.system
                    .annotation_referents(aid)
                    .map(|refs| {
                        refs.iter().any(|&rid| {
                            self.system
                                .referent_object(rid)
                                .map(|obj| setops::contains_sorted(objects, &obj))
                                .unwrap_or(false)
                        })
                    })
                    .unwrap_or(false)
            })
            .collect()
    }

    fn referents_on_objects(
        &self,
        referents: &[ReferentId],
        objects: &[ObjectId],
    ) -> Vec<ReferentId> {
        referents
            .iter()
            .copied()
            .filter(|&rid| {
                self.system
                    .referent_object(rid)
                    .map(|obj| setops::contains_sorted(objects, &obj))
                    .unwrap_or(false)
            })
            .collect()
    }

    fn apply_constraint(
        &self,
        constraint: &GraphConstraint,
        objects: &[ObjectId],
        annotations: &[AnnotationId],
        constraint_anns: &[AnnotationId],
        referents: &[ReferentId],
    ) -> Vec<ObjectId> {
        match constraint {
            GraphConstraint::ConsecutiveIntervals { count, max_gap } => objects
                .iter()
                .copied()
                .filter(|&obj| {
                    self.has_consecutive_intervals(obj, *count, *max_gap, annotations, referents)
                })
                .collect(),
            GraphConstraint::MinRegionCount { count, within, system } => objects
                .iter()
                .copied()
                .filter(|&obj| {
                    self.region_count_on_object(obj, *within, system, constraint_anns) >= *count
                })
                .collect(),
            GraphConstraint::PathExists { max_len } => {
                // keep objects reachable from at least one qualifying annotation within
                // max_len hops in the a-graph
                objects
                    .iter()
                    .copied()
                    .filter(|&obj| {
                        self.object_reachable_from_annotations(obj, annotations, *max_len)
                    })
                    .collect()
            }
        }
    }

    /// Whether `object` has at least `count` interval referents — each annotated by a
    /// qualifying annotation — forming a consecutive, non-overlapping chain.
    fn has_consecutive_intervals(
        &self,
        object: ObjectId,
        count: usize,
        max_gap: u64,
        ann_set: &[AnnotationId],
        ref_set: &[ReferentId],
    ) -> bool {
        // collect qualifying interval referents on this object
        let mut intervals: Vec<Interval> = Vec::new();
        for &rid in self.system.referents_of_object(object).iter() {
            if !ref_set.is_empty() && !setops::contains_sorted(ref_set, &rid) {
                continue;
            }
            // must be annotated by a qualifying annotation
            let annotated = self
                .system
                .annotations_of_referent(rid)
                .iter()
                .any(|a| setops::contains_sorted(ann_set, a));
            if !annotated {
                continue;
            }
            if let Some(Marker::Interval(iv)) = self.system.referent_marker(rid) {
                intervals.push(iv);
            }
        }
        longest_consecutive_chain(&mut intervals, max_gap) >= count
    }

    fn region_count_on_object(
        &self,
        object: ObjectId,
        within: spatial_index::Rect,
        _system: &str,
        ann_set: &[AnnotationId],
    ) -> usize {
        let mut count = 0;
        for &rid in self.system.referents_of_object(object).iter() {
            let annotated = self
                .system
                .annotations_of_referent(rid)
                .iter()
                .any(|a| setops::contains_sorted(ann_set, a));
            if !annotated {
                continue;
            }
            if let Some(Marker::Region(rect) | Marker::Volume(rect)) =
                self.system.referent_marker(rid)
            {
                if rect.if_overlap(&within) {
                    count += 1;
                }
            }
        }
        count
    }

    fn object_reachable_from_annotations(
        &self,
        object: ObjectId,
        annotations: &[AnnotationId],
        max_len: usize,
    ) -> bool {
        let Some(onode) = self.system.object_node(object) else { return false };
        let search = PathSearch::new().max_len(max_len);
        annotations.iter().any(|&aid| {
            self.system
                .annotation_node(aid)
                .map(|anode| search.exists(self.system.agraph(), anode, onode))
                .unwrap_or(false)
        })
    }

    fn build_pages(
        &self,
        annotations: &[AnnotationId],
        referents: &[ReferentId],
        objects: &[ObjectId],
    ) -> Result<Vec<ResultPage>, Interrupt> {
        // Gather all witness node ids.
        let mut nodes: Vec<NodeId> = Vec::new();

        // Keep only referents/annotations touching surviving objects (when objects are
        // constrained).
        let keep_ref = |rid: ReferentId| -> bool {
            if objects.is_empty() {
                true
            } else {
                self.system
                    .referent_object(rid)
                    .map(|obj| setops::contains_sorted(objects, &obj))
                    .unwrap_or(false)
            }
        };

        for (i, &aid) in annotations.iter().enumerate() {
            if i % CANCEL_STRIDE == 0 {
                self.cancel.check()?;
            }
            // include the annotation only if it touches a surviving object (or no object
            // constraint is active)
            let touches = objects.is_empty()
                || self
                    .system
                    .annotation_referents(aid)
                    .map(|refs| refs.iter().any(|&r| keep_ref(r)))
                    .unwrap_or(false);
            if touches {
                if let Some(n) = self.system.annotation_node(aid) {
                    nodes.push(n);
                }
                if let Some(terms) = self.system.annotation_terms(aid) {
                    for &t in terms.iter() {
                        if let Some(tn) = self.system.term_node(t) {
                            nodes.push(tn);
                        }
                    }
                }
            }
        }
        for &rid in referents {
            if keep_ref(rid) {
                if let Some(n) = self.system.referent_node(rid) {
                    nodes.push(n);
                }
            }
        }
        for &oid in objects {
            if let Some(n) = self.system.object_node(oid) {
                nodes.push(n);
            }
        }
        nodes.sort();
        nodes.dedup();
        nodes.retain(|&n| self.system.agraph().node_alive(n));
        if nodes.is_empty() {
            return Ok(Vec::new());
        }
        self.cancel.check()?;

        // Induce the witness subgraph ONCE: an edge is internal when both endpoints are
        // witness nodes (binary search on the sorted node list — no hashing).  Union
        // internal edges to find weakly connected components, then partition nodes and
        // edges per component in a single pass.  Each component is one result page; the
        // page's subgraph is exactly the induced subgraph of its nodes, so no per-page
        // re-induction is needed.
        let agraph = self.system.agraph();
        let mut edges: Vec<(agraph::EdgeId, usize, usize)> = Vec::new();
        let mut dsu = Dsu::new(nodes.len());
        for (i, &n) in nodes.iter().enumerate() {
            for &e in agraph.out_edges(n) {
                if let Some(rec) = agraph.edge(e) {
                    if let Ok(j) = nodes.binary_search(&rec.to) {
                        edges.push((e, i, j));
                        dsu.union(i, j);
                    }
                }
            }
        }

        // Components keyed by their minimal node (nodes are sorted, so the first node
        // seen for a root is the minimum): pages come out ordered by smallest node id,
        // matching a DFS over the sorted node list.
        let mut comp_of_root: HashMap<usize, usize> = HashMap::new();
        let mut comp_nodes: Vec<Vec<NodeId>> = Vec::new();
        let mut node_comp: Vec<usize> = vec![0; nodes.len()];
        for (i, &n) in nodes.iter().enumerate() {
            let root = dsu.find(i);
            let c = *comp_of_root.entry(root).or_insert_with(|| {
                comp_nodes.push(Vec::new());
                comp_nodes.len() - 1
            });
            // lint: allow(no-panic-serving) -- c was just minted by pushing onto comp_nodes
            comp_nodes[c].push(n);
            // lint: allow(no-panic-serving) -- node_comp was sized to nodes.len(), i enumerates nodes
            node_comp[i] = c;
        }
        let mut comp_edges: Vec<Vec<agraph::EdgeId>> = vec![Vec::new(); comp_nodes.len()];
        for (e, i, _) in edges {
            // lint: allow(no-panic-serving) -- edge endpoints index nodes; comp_edges spans every component
            comp_edges[node_comp[i]].push(e);
        }

        Ok(comp_nodes
            .into_iter()
            .zip(comp_edges)
            .map(|(nodes, mut edges)| {
                edges.sort_unstable();
                edges.dedup();
                self.page_from_component(nodes, edges)
            })
            .collect())
    }

    /// Assemble one result page from a connected component's (sorted) nodes and its
    /// internal edges.
    fn page_from_component(&self, nodes: Vec<NodeId>, edges: Vec<agraph::EdgeId>) -> ResultPage {
        let mut annotations = Vec::new();
        let mut referents = Vec::new();
        let mut objects = Vec::new();
        let mut terms = Vec::new();
        for &n in &nodes {
            match self.system.entity_of(n) {
                Some(Entity::Annotation(a)) => annotations.push(a),
                Some(Entity::Referent(r)) => referents.push(r),
                Some(Entity::Object(o)) => objects.push(o),
                Some(Entity::Term(t)) => terms.push(t),
                None => {}
            }
        }
        ResultPage {
            subgraph: agraph::ConnectionSubgraph {
                terminals: nodes.clone(),
                subgraph: Subgraph { nodes, edges },
            },
            annotations,
            referents,
            objects,
            terms,
        }
    }
}

/// A small union-find (path halving + union by size) over dense indices, used to split
/// the witness subgraph into connected components without hashing.
struct Dsu {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Dsu { parent: (0..n as u32).collect(), size: vec![1; n] }
    }

    // Dense union-find: callers only pass indices < n (the node-list positions the
    // structure was built over), and parents always store such indices, so every
    // subscript below stays in bounds by construction.
    fn find(&mut self, mut x: usize) -> usize {
        // lint: allow(no-panic-serving) -- dense DSU indices < n by construction
        while self.parent[x] as usize != x {
            // lint: allow(no-panic-serving) -- dense DSU indices < n by construction
            let gp = self.parent[self.parent[x] as usize];
            // lint: allow(no-panic-serving) -- dense DSU indices < n by construction
            self.parent[x] = gp;
            x = gp as usize;
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        // lint: allow(no-panic-serving) -- dense DSU indices < n by construction
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        // lint: allow(no-panic-serving) -- dense DSU indices < n by construction
        self.parent[rb] = ra as u32;
        // lint: allow(no-panic-serving) -- dense DSU indices < n by construction
        self.size[ra] += self.size[rb];
    }
}

/// Expand an ontology class to the sorted set of qualifying concepts: the concept plus
/// everything under it by the given relations (is-a + part-of when unspecified).  The
/// single definition of "in class" shared by the executor, the planner's cardinality
/// estimator and the reference executor — so the three can never disagree on which
/// terms a class covers.
pub(crate) fn expand_class(
    onto: &ontology::Ontology,
    concept: ConceptId,
    relations: &[RelationType],
) -> Vec<ConceptId> {
    let rels: &[RelationType] =
        if relations.is_empty() { &[RelationType::IsA, RelationType::PartOf] } else { relations };
    let mut out: Vec<ConceptId> = Vec::new();
    for r in rels {
        out.extend(onto.subtree(concept, r));
    }
    out.push(concept);
    out.sort_unstable();
    out.dedup();
    out
}

/// Length of the longest chain of consecutive, non-overlapping intervals (within
/// `max_gap`) obtainable from the given set. Greedy after sorting by start then end —
/// which is optimal for interval chaining by earliest finish.
pub(crate) fn longest_consecutive_chain(intervals: &mut [Interval], max_gap: u64) -> usize {
    if intervals.is_empty() {
        return 0;
    }
    intervals.sort_by_key(|i| (i.end, i.start));
    // greedy: pick earliest-finishing, then next whose start >= last end and gap ok
    let mut best = 0usize;
    // Try starting the chain from each interval to be safe for the gap constraint.
    for start_idx in 0..intervals.len() {
        let mut chain = 1usize;
        // lint: allow(no-panic-serving) -- start_idx ranges over 0..intervals.len()
        let mut last = intervals[start_idx];
        for cand in intervals.iter().skip(start_idx + 1) {
            if cand.start >= last.end && cand.start - last.end <= max_gap {
                chain += 1;
                last = *cand;
            }
        }
        best = best.max(chain);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::ReferenceExecutor;
    use graphitti_core::{DataType, Graphitti, Marker};

    fn seq_system() -> (Graphitti, ObjectId) {
        let mut sys = Graphitti::new();
        let seq = sys.register_sequence("seg4", DataType::DnaSequence, 2000, "chr-flu");
        (sys, seq)
    }

    #[test]
    fn phrase_query_returns_matching_annotations() {
        let (mut sys, seq) = seq_system();
        sys.annotate()
            .comment("polybasic protease cleavage site")
            .mark(seq, Marker::interval(100, 150))
            .commit()
            .unwrap();
        sys.annotate()
            .comment("a routine synonymous mutation")
            .mark(seq, Marker::interval(200, 250))
            .commit()
            .unwrap();
        let q = Query::new(Target::AnnotationContents).with_phrase("protease cleavage");
        let res = Executor::new(&sys).run(&q);
        assert_eq!(res.annotations.len(), 1);
    }

    #[test]
    fn referent_type_query() {
        let (mut sys, seq) = seq_system();
        sys.annotate().comment("x").mark(seq, Marker::interval(0, 10)).commit().unwrap();
        let q = Query::new(Target::Referents)
            .with_referent(ReferentFilter::OfType(DataType::DnaSequence));
        let res = Executor::new(&sys).run(&q);
        assert_eq!(res.referents.len(), 1);
        // no DNA referents of an image type
        let q2 =
            Query::new(Target::Referents).with_referent(ReferentFilter::OfType(DataType::Image));
        assert!(Executor::new(&sys).run(&q2).referents.is_empty());
    }

    #[test]
    fn consecutive_intervals_constraint() {
        let (mut sys, seq) = seq_system();
        // four consecutive, disjoint protease intervals on the same sequence
        for i in 0..4 {
            let start = i * 100;
            sys.annotate()
                .comment("contains protease motif")
                .mark(seq, Marker::interval(start, start + 50))
                .commit()
                .unwrap();
        }
        // one non-protease interval elsewhere
        sys.annotate()
            .comment("unrelated")
            .mark(seq, Marker::interval(1000, 1050))
            .commit()
            .unwrap();

        let q = Query::new(Target::Referents)
            .with_phrase("protease")
            .with_constraint(GraphConstraint::ConsecutiveIntervals { count: 4, max_gap: 60 });
        let res = Executor::new(&sys).run(&q);
        assert_eq!(res.objects, vec![seq]);

        // requiring 5 fails
        let q5 = Query::new(Target::Referents)
            .with_phrase("protease")
            .with_constraint(GraphConstraint::ConsecutiveIntervals { count: 5, max_gap: 60 });
        assert!(Executor::new(&sys).run(&q5).objects.is_empty());
    }

    #[test]
    fn min_region_count_constraint() {
        let mut sys = Graphitti::new();
        let img = sys.register_image("brain", 1000, 1000, "confocal", "cs25");
        let dcn = sys.ontology_mut().add_concept("DeepCerebellarNuclei");
        // two regions annotated with the DCN term
        for i in 0..2 {
            let x = (i as f64) * 100.0;
            sys.annotate()
                .comment("region")
                .mark(img, Marker::region(x, 0.0, x + 50.0, 50.0))
                .cite_term(dcn)
                .commit()
                .unwrap();
        }
        let big = spatial_index::Rect::rect2(0.0, 0.0, 1000.0, 1000.0);
        let q = Query::new(Target::ConnectionGraphs)
            .with_ontology(OntologyFilter::CitesTerm(dcn))
            .with_constraint(GraphConstraint::MinRegionCount {
                count: 2,
                within: big,
                system: "cs25".into(),
            });
        let res = Executor::new(&sys).run(&q);
        assert_eq!(res.objects, vec![img]);
        // require 3 -> empty
        let q3 = Query::new(Target::ConnectionGraphs)
            .with_ontology(OntologyFilter::CitesTerm(dcn))
            .with_constraint(GraphConstraint::MinRegionCount {
                count: 3,
                within: big,
                system: "cs25".into(),
            });
        assert!(Executor::new(&sys).run(&q3).objects.is_empty());
    }

    #[test]
    fn mixed_content_and_ontology_constraint_uses_ontology_only_set() {
        // The constraint "N regions annotated with term T" must count regions by the
        // ontology condition, not by the (stricter) content filter.
        let mut sys = Graphitti::new();
        let img = sys.register_image("brain", 1000, 1000, "confocal", "cs25");
        let dcn = sys.ontology_mut().add_concept("DCN");
        // one region carries the phrase AND the term; a second only the term
        sys.annotate()
            .comment("protein TP53 found here")
            .mark(img, Marker::region(0.0, 0.0, 50.0, 50.0))
            .cite_term(dcn)
            .commit()
            .unwrap();
        sys.annotate()
            .comment("plain region")
            .mark(img, Marker::region(100.0, 0.0, 150.0, 50.0))
            .cite_term(dcn)
            .commit()
            .unwrap();
        let big = spatial_index::Rect::rect2(0.0, 0.0, 1000.0, 1000.0);
        let q = Query::new(Target::ConnectionGraphs)
            .with_phrase("protein TP53")
            .with_ontology(OntologyFilter::CitesTerm(dcn))
            .with_constraint(GraphConstraint::MinRegionCount {
                count: 2,
                within: big,
                system: "cs25".into(),
            });
        // both regions cite the term, so the constraint passes even though only one
        // matches the phrase
        let res = Executor::new(&sys).run(&q);
        assert_eq!(res.objects, vec![img]);
        let reference = ReferenceExecutor::new(&sys).run(&q);
        assert_eq!(res, reference);
    }

    #[test]
    fn pipelined_seeds_from_most_selective_family_member() {
        // Regardless of which family member seeds, results must match the reference.
        let (mut sys, seq) = seq_system();
        let rare = sys.ontology_mut().add_concept("Rare");
        let common = sys.ontology_mut().add_concept("Common");
        for i in 0..10u64 {
            let mut b = sys
                .annotate()
                .comment(if i == 3 { "needle phrase" } else { "haystack text" })
                .mark(seq, Marker::interval(i * 100, i * 100 + 40))
                .cite_term(common);
            if i == 3 {
                b = b.cite_term(rare);
            }
            b.commit().unwrap();
        }
        let q = Query::new(Target::AnnotationContents)
            .with_phrase("haystack")
            .with_ontology(OntologyFilter::CitesTerm(rare));
        let res = Executor::new(&sys).run(&q);
        let reference = ReferenceExecutor::new(&sys).run(&q);
        assert_eq!(res, reference);
        assert!(res.annotations.is_empty()); // rare ann says "needle", not "haystack"
    }

    #[test]
    fn connection_graph_pages() {
        let (mut sys, seq) = seq_system();
        let a = sys
            .annotate()
            .comment("protease one")
            .mark(seq, Marker::interval(0, 10))
            .commit()
            .unwrap();
        let q = Query::new(Target::ConnectionGraphs).with_phrase("protease");
        let res = Executor::new(&sys).run(&q);
        assert!(res.page_count() >= 1);
        assert!(res.pages[0].contains_annotation(a));
        assert!(res.pages[0].contains_object(seq));
    }

    #[test]
    fn longest_chain_helper() {
        let mut ivs = vec![
            Interval::new(0, 10),
            Interval::new(10, 20),
            Interval::new(20, 30),
            Interval::new(5, 15), // overlaps, breaks a chain if chosen
        ];
        assert_eq!(longest_consecutive_chain(&mut ivs, 0), 3);
        let mut gapped = vec![Interval::new(0, 10), Interval::new(15, 25)];
        assert_eq!(longest_consecutive_chain(&mut gapped, 0), 1);
        assert_eq!(longest_consecutive_chain(&mut gapped, 5), 2);
    }

    #[test]
    fn unconstrained_query_returns_everything() {
        let (mut sys, seq) = seq_system();
        sys.annotate().comment("x").mark(seq, Marker::interval(0, 10)).commit().unwrap();
        let q = Query::new(Target::AnnotationContents);
        let res = Executor::new(&sys).run(&q);
        assert_eq!(res.annotations.len(), 1);
    }
}
