//! The resilience substrate for query serving: typed service errors, per-query
//! budgets, cooperative cancellation, bounded retry with decorrelated-jitter
//! backoff, and the read-path chaos-injection layer.
//!
//! The pieces compose into one contract, enforced end to end by the chaos battery
//! in `tests/chaos_resilience.rs`: **every submitted query ends in exactly one of**
//!
//! 1. a *complete* result, byte-identical to the reference executor's answer;
//! 2. a *degraded* result ([`QueryResult::missing_shards`] non-empty) that is
//!    byte-identical to the answer computed with the missing shards' candidate
//!    contributions absent — an exact, marked subset, never a torn mix; or
//! 3. a typed [`ServiceError`] — never a panic out of `wait`, never a hang.
//!
//! * [`QueryBudget`] is what callers state: an optional deadline plus whether a
//!   partial (shard-degraded) answer is acceptable.
//! * [`CancelToken`] is how the budget travels: one shared token per submitted
//!   query, checked at phase and chunk boundaries inside
//!   [`Executor`](crate::exec::Executor) seed/verify/collate loops, so an expired
//!   or abandoned query stops burning its worker mid-flight.
//! * [`RetryPolicy`] bounds how hard the sharded scatter fights a transient shard
//!   failure before declaring the shard down (decorrelated jitter, so concurrent
//!   retries against one struggling shard spread out instead of stampeding).
//! * [`ChaosConfig`] injects read-path faults — slow shard, failing shard, worker
//!   panic, worker abort, stuck query — mirroring the write path's
//!   `FaultStorage`/`CrashPoint` methodology from the durability work.
//!
//! [`QueryResult::missing_shards`]: crate::result::QueryResult::missing_shards

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Everything that can go wrong between `submit` and a redeemed ticket, as a typed
/// error instead of a panic or a hang.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// Admission control shed the query: the submission queue already held `depth`
    /// jobs, at or past the configured capacity.  Nothing was enqueued; back off
    /// and resubmit.
    Overloaded {
        /// Queue depth observed at rejection.
        depth: usize,
    },
    /// The query's [`QueryBudget`] deadline passed before a result was produced
    /// (at admission, at dequeue, or mid-execution at a cancellation checkpoint).
    DeadlineExceeded,
    /// The query was cancelled via [`Ticket::cancel`](crate::service::Ticket::cancel)
    /// (or its token) before completing.
    Cancelled,
    /// The worker executing this query panicked.  The pool respawns the worker
    /// (size invariant); the submitter gets this error instead of a propagated
    /// panic or an abandoned ticket.
    WorkerPanicked,
    /// A shard stayed unresponsive through every retry and the caller did not
    /// opt into a partial answer (`allow_partial`).
    ShardUnavailable {
        /// The first shard that exhausted its retries.
        shard: usize,
        /// Attempts made against it (1 = no retries configured).
        attempts: u32,
    },
    /// The ticket's result was already redeemed by an earlier `wait`/`try_take`;
    /// a second redemption is a caller bug surfaced as an error, not a panic.
    AlreadyTaken,
    /// Publish-time WAL flush failed: the new snapshot was **not** installed
    /// (durable-before-visible is preserved) and the failure is surfaced instead
    /// of being a silent loss of the guarantee.
    WalFlush(String),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Overloaded { depth } => {
                write!(f, "overloaded: submission queue at depth {depth}")
            }
            ServiceError::DeadlineExceeded => write!(f, "query deadline exceeded"),
            ServiceError::Cancelled => write!(f, "query cancelled"),
            ServiceError::WorkerPanicked => write!(f, "query worker panicked"),
            ServiceError::ShardUnavailable { shard, attempts } => {
                write!(f, "shard {shard} unavailable after {attempts} attempt(s)")
            }
            ServiceError::AlreadyTaken => write!(f, "ticket result already taken"),
            ServiceError::WalFlush(e) => write!(f, "durable publish: WAL flush failed: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// Why a cooperative checkpoint stopped an execution mid-flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interrupt {
    /// The query's [`CancelToken`] was cancelled.
    Cancelled,
    /// The query's deadline passed.
    DeadlineExceeded,
}

impl From<Interrupt> for ServiceError {
    fn from(i: Interrupt) -> ServiceError {
        match i {
            Interrupt::Cancelled => ServiceError::Cancelled,
            Interrupt::DeadlineExceeded => ServiceError::DeadlineExceeded,
        }
    }
}

/// What a caller is willing to spend on one query: an optional wall-clock
/// deadline, and whether a shard-degraded partial answer is acceptable.
///
/// The default budget is unbounded and demands completeness — exactly the
/// pre-resilience behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryBudget {
    /// Absolute deadline; `None` = unbounded.
    pub deadline: Option<Instant>,
    /// Accept a [`Degraded`](crate::result::Completeness::Degraded) result when
    /// shards stay down, instead of failing with
    /// [`ServiceError::ShardUnavailable`].
    pub allow_partial: bool,
}

impl QueryBudget {
    /// An unbounded budget demanding a complete answer (the default).
    pub fn unbounded() -> Self {
        QueryBudget::default()
    }

    /// Builder: set the deadline `timeout` from now.
    pub fn with_deadline(mut self, timeout: Duration) -> Self {
        self.deadline = Some(Instant::now() + timeout);
        self
    }

    /// Builder: set an absolute deadline.
    pub fn with_deadline_at(mut self, at: Instant) -> Self {
        self.deadline = Some(at);
        self
    }

    /// Builder: accept shard-degraded partial results.
    pub fn with_allow_partial(mut self, allow: bool) -> Self {
        self.allow_partial = allow;
        self
    }
}

#[derive(Debug, Default)]
struct TokenState {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

/// A shared cancellation token: one per submitted query, cloned into every phase
/// of its execution (executor, collator, scatter workers).  Checked cooperatively
/// at phase and chunk boundaries — [`check`](CancelToken::check) is a relaxed
/// atomic load plus, when a deadline is set, one `Instant::now()`.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Arc<TokenState>,
}

impl CancelToken {
    /// A token that never fires (no deadline, not cancellable by anyone without
    /// a clone of it).
    pub fn unbounded() -> Self {
        CancelToken::default()
    }

    /// The token enforcing a budget's deadline.
    pub fn for_budget(budget: &QueryBudget) -> Self {
        CancelToken {
            inner: Arc::new(TokenState {
                cancelled: AtomicBool::new(false),
                deadline: budget.deadline,
            }),
        }
    }

    /// Cancel: every subsequent [`check`](CancelToken::check) on any clone fails
    /// with [`Interrupt::Cancelled`].
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether [`cancel`](CancelToken::cancel) has been called.
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Relaxed)
    }

    /// The deadline this token enforces, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.deadline
    }

    /// The cooperative checkpoint: `Err` once the token is cancelled or its
    /// deadline has passed.  Explicit cancellation wins over the deadline when
    /// both have fired.
    pub fn check(&self) -> Result<(), Interrupt> {
        if self.inner.cancelled.load(Ordering::Relaxed) {
            return Err(Interrupt::Cancelled);
        }
        if let Some(deadline) = self.inner.deadline {
            if Instant::now() >= deadline {
                return Err(Interrupt::DeadlineExceeded);
            }
        }
        Ok(())
    }
}

/// How the sharded scatter fights transient shard failures: up to `max_attempts`
/// tries per shard, sleeping a decorrelated-jitter backoff between them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per shard (1 = no retries).
    pub max_attempts: u32,
    /// Minimum backoff before a retry.
    pub base_delay: Duration,
    /// Cap on any single backoff sleep.
    pub max_delay: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_micros(500),
            max_delay: Duration::from_millis(20),
        }
    }
}

impl RetryPolicy {
    /// No retries: one attempt, fail fast.
    pub fn none() -> Self {
        RetryPolicy { max_attempts: 1, ..RetryPolicy::default() }
    }

    /// Builder: set total attempts per shard (min 1).
    pub fn with_max_attempts(mut self, attempts: u32) -> Self {
        self.max_attempts = attempts.max(1);
        self
    }

    /// Builder: set the minimum backoff.
    pub fn with_base_delay(mut self, delay: Duration) -> Self {
        self.base_delay = delay;
        self
    }

    /// Builder: set the backoff cap.
    pub fn with_max_delay(mut self, delay: Duration) -> Self {
        self.max_delay = delay;
        self
    }

    /// The next backoff after sleeping `prev`: decorrelated jitter,
    /// `min(max_delay, uniform(base_delay, prev * 3))`.  Jitter draws from the
    /// caller-held splitmix64 state, so concurrent scatters against one
    /// struggling shard decorrelate instead of stampeding in lockstep.
    pub fn next_backoff(&self, prev: Duration, rng: &mut u64) -> Duration {
        let base = self.base_delay.as_nanos().max(1) as u64;
        let prev = (prev.as_nanos() as u64).max(base);
        let hi = prev.saturating_mul(3).max(base + 1);
        let span = hi - base;
        let jittered = base + splitmix64(rng) % span;
        Duration::from_nanos(jittered.min(self.max_delay.as_nanos() as u64))
    }
}

/// The splitmix64 step: cheap, seedable, dependency-free randomness for backoff
/// jitter (the same generator the proptest shim uses).
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Why a cooperative sleep stopped early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SleepInterrupt {
    /// The query-level token fired (cancelled or query deadline passed).
    Query(Interrupt),
    /// The per-attempt deadline passed (the shard attempt timed out); the query
    /// itself may still proceed — this is a *shard* failure, not a query failure.
    AttemptTimeout,
}

/// Sleep `total`, sliced so the query token and an optional per-attempt deadline
/// are re-checked every couple of milliseconds — an injected slow shard or stuck
/// query can always be cancelled or timed out mid-sleep, never held to the full
/// injected delay.
pub(crate) fn cooperative_sleep(
    total: Duration,
    token: &CancelToken,
    attempt_deadline: Option<Instant>,
) -> Result<(), SleepInterrupt> {
    const SLICE: Duration = Duration::from_millis(2);
    let end = Instant::now() + total;
    loop {
        token.check().map_err(SleepInterrupt::Query)?;
        let now = Instant::now();
        if attempt_deadline.is_some_and(|d| now >= d) {
            return Err(SleepInterrupt::AttemptTimeout);
        }
        if now >= end {
            return Ok(());
        }
        let mut nap = SLICE.min(end - now);
        if let Some(d) = attempt_deadline {
            nap = nap.min(d.saturating_duration_since(now).max(Duration::from_micros(100)));
        }
        // lint: allow(lock-discipline) -- the sleep IS the mechanism: 2ms slices between deadline re-checks
        std::thread::sleep(nap);
    }
}

/// What the chaos layer injects into one query execution on a pool worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub(crate) enum ChaosExec {
    /// No fault.
    #[default]
    None,
    /// Panic inside the worker's `catch_unwind` (the query fails typed; the
    /// worker thread survives).
    Panic,
    /// Panic *outside* the worker's `catch_unwind` (the worker thread dies; the
    /// pool must respawn it and still resolve the in-flight ticket).
    Abort,
    /// Stall the execution for the given duration before running (cooperatively:
    /// the stall honours cancellation and deadlines).
    Stuck(Duration),
}

/// What the chaos layer injects into one shard attempt during a scatter.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct ShardFault {
    /// Delay this attempt by the given duration before executing (a slow shard).
    pub delay: Option<Duration>,
    /// Fail this attempt outright (a shard error).
    pub fail: bool,
}

#[derive(Debug, Default)]
struct ChaosState {
    /// Executions started on pool workers (drives the `*_on` nth-query triggers).
    executed: AtomicU64,
    /// Attempts made per shard (drives `fail_shard` / `slow_shard` attempt
    /// budgets).
    shard_attempts: Mutex<Vec<u64>>,
}

/// Read-path fault injection, mirroring the write path's `FaultStorage` /
/// `CrashPoint` methodology: configure which fault fires where, hand the config
/// to a service (`ServiceConfig::with_chaos` / `ShardedServiceConfig::with_chaos`),
/// and assert the resilience contract holds under it.  Clones share one trigger
/// state, so a test can keep a handle and inspect attempt counts.
///
/// All triggers compose; an unset trigger never fires.  Chaos is a test/bench
/// facility — a service without a `ChaosConfig` pays zero overhead on these paths.
#[derive(Debug, Clone, Default)]
pub struct ChaosConfig {
    slow_shard: Option<(usize, Duration, u64)>,
    fail_shard: Option<(usize, u64)>,
    worker_panic_on: Option<u64>,
    worker_abort_on: Option<u64>,
    stuck_query_on: Option<(u64, Duration)>,
    state: Arc<ChaosState>,
}

impl ChaosConfig {
    /// No faults configured.
    pub fn new() -> Self {
        ChaosConfig::default()
    }

    /// Builder: delay `shard`'s first `attempts` scatter attempts by `delay`
    /// each (`u64::MAX` = every attempt, a permanently slow shard).
    pub fn with_slow_shard(mut self, shard: usize, delay: Duration, attempts: u64) -> Self {
        self.slow_shard = Some((shard, delay, attempts));
        self
    }

    /// Builder: fail `shard`'s first `attempts` scatter attempts outright
    /// (`u64::MAX` = every attempt, a down shard).
    pub fn with_shard_outage(mut self, shard: usize, attempts: u64) -> Self {
        self.fail_shard = Some((shard, attempts));
        self
    }

    /// Builder: the `nth` (1-based) pool execution panics inside the worker's
    /// catch — the query fails typed, the worker thread survives.
    pub fn with_worker_panic_on(mut self, nth: u64) -> Self {
        self.worker_panic_on = Some(nth);
        self
    }

    /// Builder: the `nth` (1-based) pool execution panics *outside* the worker's
    /// catch — the worker thread dies and the pool must respawn it.
    pub fn with_worker_abort_on(mut self, nth: u64) -> Self {
        self.worker_abort_on = Some(nth);
        self
    }

    /// Builder: the `nth` (1-based) pool execution stalls for `delay` before
    /// running (cooperatively — cancellation and deadlines still fire mid-stall).
    pub fn with_stuck_query_on(mut self, nth: u64, delay: Duration) -> Self {
        self.stuck_query_on = Some((nth, delay));
        self
    }

    /// Consume one pool-execution trigger slot and say what to inject.
    pub(crate) fn next_execution(&self) -> ChaosExec {
        let n = self.state.executed.fetch_add(1, Ordering::Relaxed) + 1;
        if self.worker_abort_on == Some(n) {
            return ChaosExec::Abort;
        }
        if self.worker_panic_on == Some(n) {
            return ChaosExec::Panic;
        }
        if let Some((nth, delay)) = self.stuck_query_on {
            if nth == n {
                return ChaosExec::Stuck(delay);
            }
        }
        ChaosExec::None
    }

    /// Record one attempt against `shard` and say what fault it suffers.
    pub(crate) fn shard_attempt(&self, shard: usize) -> ShardFault {
        let mut attempts =
            self.state.shard_attempts.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if attempts.len() <= shard {
            attempts.resize(shard + 1, 0);
        }
        // lint: allow(no-panic-serving) -- the vec was just resized to cover `shard`
        attempts[shard] += 1;
        // lint: allow(no-panic-serving) -- the vec was just resized to cover `shard`
        let nth = attempts[shard];
        drop(attempts);
        let mut fault = ShardFault::default();
        if let Some((s, delay, budget)) = self.slow_shard {
            if s == shard && nth <= budget {
                fault.delay = Some(delay);
            }
        }
        if let Some((s, budget)) = self.fail_shard {
            if s == shard && nth <= budget {
                fault.fail = true;
            }
        }
        fault
    }

    /// Attempts made against `shard` so far (for test assertions on retry
    /// behaviour).
    pub fn attempts_against(&self, shard: usize) -> u64 {
        let attempts =
            self.state.shard_attempts.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        attempts.get(shard).copied().unwrap_or(0)
    }

    /// Pool executions started so far.
    pub fn executions(&self) -> u64 {
        self.state.executed.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_token_never_fires() {
        let token = CancelToken::unbounded();
        assert!(token.check().is_ok());
        assert!(!token.is_cancelled());
        assert!(token.deadline().is_none());
    }

    #[test]
    fn cancel_fires_on_every_clone() {
        let token = CancelToken::for_budget(&QueryBudget::unbounded());
        let clone = token.clone();
        token.cancel();
        assert_eq!(clone.check(), Err(Interrupt::Cancelled));
        assert_eq!(ServiceError::from(Interrupt::Cancelled), ServiceError::Cancelled);
    }

    #[test]
    fn expired_deadline_fires_and_cancellation_wins_over_it() {
        let budget = QueryBudget::unbounded().with_deadline(Duration::ZERO);
        let token = CancelToken::for_budget(&budget);
        assert_eq!(token.check(), Err(Interrupt::DeadlineExceeded));
        token.cancel();
        assert_eq!(token.check(), Err(Interrupt::Cancelled));
    }

    #[test]
    fn backoff_is_bounded_and_jittered() {
        let policy = RetryPolicy::default()
            .with_base_delay(Duration::from_micros(100))
            .with_max_delay(Duration::from_millis(5));
        let mut rng = 42u64;
        let mut prev = policy.base_delay;
        for _ in 0..64 {
            let next = policy.next_backoff(prev, &mut rng);
            assert!(next >= policy.base_delay, "below base: {next:?}");
            assert!(next <= policy.max_delay, "above cap: {next:?}");
            prev = next;
        }
    }

    #[test]
    fn cooperative_sleep_honours_token_and_attempt_deadline() {
        let token = CancelToken::for_budget(&QueryBudget::unbounded());
        token.cancel();
        assert_eq!(
            cooperative_sleep(Duration::from_secs(5), &token, None),
            Err(SleepInterrupt::Query(Interrupt::Cancelled))
        );
        let fresh = CancelToken::unbounded();
        let past = Instant::now() - Duration::from_millis(1);
        assert_eq!(
            cooperative_sleep(Duration::from_secs(5), &fresh, Some(past)),
            Err(SleepInterrupt::AttemptTimeout)
        );
        assert_eq!(cooperative_sleep(Duration::ZERO, &fresh, None), Ok(()));
    }

    #[test]
    fn chaos_triggers_fire_on_configured_slots_only() {
        let chaos = ChaosConfig::new()
            .with_worker_panic_on(2)
            .with_stuck_query_on(3, Duration::from_millis(1));
        assert_eq!(chaos.next_execution(), ChaosExec::None);
        assert_eq!(chaos.next_execution(), ChaosExec::Panic);
        assert_eq!(chaos.next_execution(), ChaosExec::Stuck(Duration::from_millis(1)));
        assert_eq!(chaos.next_execution(), ChaosExec::None);
        assert_eq!(chaos.executions(), 4);

        let shard_chaos = ChaosConfig::new().with_shard_outage(1, 2).with_slow_shard(
            0,
            Duration::from_millis(1),
            u64::MAX,
        );
        assert!(shard_chaos.shard_attempt(0).delay.is_some());
        assert!(!shard_chaos.shard_attempt(0).fail);
        assert!(shard_chaos.shard_attempt(1).fail);
        assert!(shard_chaos.shard_attempt(1).fail);
        assert!(!shard_chaos.shard_attempt(1).fail, "outage budget exhausted");
        assert_eq!(shard_chaos.attempts_against(1), 3);
    }
}
