//! Shared helpers for the randomized equivalence suites: a seeded random-query
//! generator covering every subquery family and constraint kind, over the `datagen`
//! workloads.

use datagen::rng::WorkloadRng;
use graphitti_core::{DataType, Graphitti, ObjectId};
use graphitti_query::{GraphConstraint, OntologyFilter, Query, ReferentFilter, Target};
use interval_index::Interval;
use ontology::{ConceptId, RelationType};
use spatial_index::Rect;
use xmlstore::PathExpr;

pub const PHRASES: &[&str] = &[
    "protease",
    "protease cleavage",
    "protein TP53",
    "strong staining",
    "background expression",
    "synonymous",
    "zebra unicorn griffin", // matches nothing
];

pub const KEYWORD_SETS: &[&[&str]] =
    &[&["protease"], &["protein", "tp53"], &["staining", "region"], &["nonexistent-token"]];

pub const PATHS: &[&str] = &["//dc:subject", "//dc:title", "/annotation/dc:description", "//nope"];

pub const TYPES: &[DataType] = &[
    DataType::DnaSequence,
    DataType::ProteinSequence,
    DataType::Image,
    DataType::MultipleAlignment,
    DataType::RelationalRecord,
];

/// Draw a random query touching any mix of subquery families and constraints.
pub fn random_query(rng: &mut WorkloadRng, sys: &Graphitti, domains: &[String]) -> Query {
    let target = match rng.range_u64(0, 3) {
        0 => Target::AnnotationContents,
        1 => Target::Referents,
        _ => Target::ConnectionGraphs,
    };
    let mut q = Query::new(target);

    for _ in 0..rng.range_u64(0, 3) {
        q = match rng.range_u64(0, 3) {
            0 => q.with_phrase(PHRASES[rng.range_usize(0, PHRASES.len())]),
            1 => {
                let ks = KEYWORD_SETS[rng.range_usize(0, KEYWORD_SETS.len())];
                q.with_keywords(ks.iter().copied())
            }
            _ => q.with_path(
                PathExpr::parse(PATHS[rng.range_usize(0, PATHS.len())]).expect("test path parses"),
            ),
        };
    }

    for _ in 0..rng.range_u64(0, 3) {
        let f = match rng.range_u64(0, 5) {
            0 => ReferentFilter::OfType(TYPES[rng.range_usize(0, TYPES.len())]),
            4 => {
                // The id-bearing filter (sometimes an unknown object, which must
                // match nothing).
                ReferentFilter::OnObject(ObjectId(rng.range_u64(0, sys.object_count() as u64 + 2)))
            }
            1 => {
                let domain = if rng.chance(0.6) && !domains.is_empty() {
                    Some(domains[rng.range_usize(0, domains.len())].clone())
                } else {
                    None
                };
                let start = rng.range_u64(0, 2_000);
                ReferentFilter::IntervalOverlaps {
                    domain,
                    interval: Interval::new(start, start + rng.range_u64(1, 500)),
                }
            }
            2 => {
                let system = if rng.chance(0.6) && !domains.is_empty() {
                    Some(domains[rng.range_usize(0, domains.len())].clone())
                } else {
                    None
                };
                let x = rng.range_f64(0.0, 800.0);
                let y = rng.range_f64(0.0, 800.0);
                ReferentFilter::RegionOverlaps {
                    system,
                    rect: Rect::rect2(x, y, x + 200.0, y + 200.0),
                }
            }
            _ => ReferentFilter::BlockContains(
                (0..rng.range_u64(1, 4)).map(|_| rng.range_u64(0, 50)).collect(),
            ),
        };
        q = q.with_referent(f);
    }

    let concepts = sys.ontology().concept_count() as u64;
    if concepts > 0 {
        for _ in 0..rng.range_u64(0, 3) {
            let c = ConceptId(rng.range_u64(0, concepts + 2) as u32); // may be unknown
            let f = if rng.chance(0.5) {
                OntologyFilter::CitesTerm(c)
            } else {
                OntologyFilter::InClass {
                    concept: c,
                    relations: if rng.chance(0.5) { vec![] } else { vec![RelationType::IsA] },
                }
            };
            q = q.with_ontology(f);
        }
    }

    if rng.chance(0.3) {
        let c = match rng.range_u64(0, 3) {
            0 => GraphConstraint::ConsecutiveIntervals {
                count: rng.range_usize(1, 4),
                max_gap: rng.range_u64(0, 100),
            },
            1 => GraphConstraint::MinRegionCount {
                count: rng.range_usize(1, 4),
                within: Rect::rect2(0.0, 0.0, 1_000.0, 1_000.0),
                system: domains.first().cloned().unwrap_or_else(|| "cs".to_string()),
            },
            _ => GraphConstraint::PathExists { max_len: rng.range_usize(1, 5) },
        };
        q = q.with_constraint(c);
    }
    q
}

/// The distinct, sorted coordinate domains of a system's objects.
pub fn object_domains(sys: &Graphitti) -> Vec<String> {
    let mut ds: Vec<String> =
        sys.objects().iter().map(|o| o.domain.clone()).filter(|d| !d.is_empty()).collect();
    ds.sort();
    ds.dedup();
    ds
}
