//! The crash-point fault-injection battery for the durability subsystem.
//!
//! Each scenario runs a deterministic op schedule through a durable system whose
//! storage is a [`FaultStorage`] planned to fail at one enumerated [`CrashPoint`]
//! (mid-record truncation, in-place corruption, a lying fsync, or a power cut
//! between checkpoint and log truncation).  The frozen [`CrashImage`] — exactly the
//! bytes a power cut would leave behind — is then recovered, and the battery
//! asserts the durability contract:
//!
//! * **Prefix.**  The recovered state is the state after the first `v` published
//!   batches for a known `v`: never torn mid-batch, never reordered, never a guess.
//! * **Byte identity.**  Random queries against the recovered system (unsharded via
//!   [`ReferenceExecutor`], sharded via [`ShardedExecutor`] over a captured cut)
//!   answer byte-for-byte like a reference oracle replayed to version `v` through
//!   the same checkpoint-then-tail structure, from independently fabricated bytes
//!   (a genesis-derived checkpoint snapshot plus re-encoded tail records).
//! * **Cut invariants.**  A recovered [`ShardedSystem`] passes `verify_integrity`,
//!   and its captured [`ShardCut`] agrees with the oracle on every global count.
//!
//! The file also carries the checkpoint round-trip suite (checkpoint + empty tail
//! is byte-identical; checkpoint + tail equals a full-log replay) and the bounded
//! `crash_matrix_quick` subset the CI workflow gates on.

mod common;

use common::{object_domains, random_query};
use datagen::rng::WorkloadRng;
use graphitti_core::wal::batch_dirty;
use graphitti_core::xmlstore::DublinCore;
use graphitti_core::{
    Checkpoint, CrashImage, CrashPoint, DataType, DurabilityMode, DurableShardedSystem,
    DurableSystem, FaultStorage, LogOp, LogReferent, Marker, MemStorage, ObjectId, ReferentId,
    WalRecord, WalStorage,
};
use graphitti_query::{QueryResult, ReferenceExecutor, ShardedExecutor};

fn result_bytes(result: &QueryResult) -> Vec<u8> {
    serde_json::to_string(result).expect("result serializes").into_bytes()
}

/// A deterministic schedule of published batches: registers, new-mark annotations,
/// single-referent reuse (which routes identically sharded and unsharded), and
/// ontology curation.  The same schedule drives the doomed run, the recovery
/// oracle, and every shard count.
fn schedule(seed: u64, batches: usize) -> Vec<Vec<LogOp>> {
    let mut rng = WorkloadRng::new(seed);
    let mut objects = 0u64;
    let mut referents = 0u64;
    let mut terms = 0u64;
    let mut out = Vec::with_capacity(batches);
    for step in 0..batches {
        let mut ops = Vec::new();
        if step == 0 {
            // Guarantee an object and a term so every later op kind has a target.
            ops.push(LogOp::register_sequence("seed-seq", DataType::DnaSequence, 2_000, "chr0"));
            objects += 1;
            ops.push(LogOp::DefineTerm { name: "seed-term".into() });
            terms += 1;
        }
        for k in 0..1 + rng.range_u64(0, 3) {
            match rng.range_u64(0, 8) {
                0 => {
                    ops.push(LogOp::register_sequence(
                        format!("seq-{step}-{k}"),
                        DataType::DnaSequence,
                        2_000,
                        format!("chr{}", rng.range_u64(0, 3)),
                    ));
                    objects += 1;
                }
                1 if referents > 0 => {
                    ops.push(LogOp::Annotate {
                        content: DublinCore::new()
                            .field("description", format!("reuse note {step}-{k}")),
                        referents: vec![LogReferent::Existing(ReferentId(
                            rng.range_u64(0, referents),
                        ))],
                        terms: vec![],
                    });
                }
                2 => {
                    ops.push(LogOp::DefineTerm { name: format!("term-{step}-{k}") });
                    terms += 1;
                }
                _ => {
                    let start = rng.range_u64(0, 1_500);
                    let cite = rng.chance(0.4);
                    ops.push(LogOp::Annotate {
                        content: DublinCore::new()
                            .field("description", format!("protease observation {step}-{k}"))
                            .user_tag("curator", format!("u{}", rng.range_u64(0, 3))),
                        referents: vec![LogReferent::New {
                            object: ObjectId(rng.range_u64(0, objects)),
                            marker: Marker::interval(start, start + 5 + rng.range_u64(0, 60)),
                        }],
                        terms: if cite {
                            vec![
                                graphitti_core::ontology::ConceptId(rng.range_u64(0, terms) as u32),
                            ]
                        } else {
                            vec![]
                        },
                    });
                    referents += 1;
                }
            }
        }
        out.push(ops);
    }
    out
}

/// One crash-point scenario: the fault plan, the checkpoint cadence of the doomed
/// run, and the exact logical version recovery must land on.
struct Scenario {
    name: &'static str,
    plan: CrashPoint,
    checkpoint_every: u64,
    expected_version: u64,
    expect_torn: bool,
}

/// The full matrix over an 8-batch schedule: every crash-point kind, with and
/// without checkpoints in flight.
fn full_scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "torn append mid-record",
            plan: CrashPoint::TornAppend { record: 5, keep: 21 },
            checkpoint_every: 0,
            expected_version: 5,
            expect_torn: true,
        },
        Scenario {
            name: "torn append after a checkpoint",
            plan: CrashPoint::TornAppend { record: 4, keep: 33 },
            checkpoint_every: 3,
            expected_version: 4,
            expect_torn: true,
        },
        Scenario {
            name: "corrupted record",
            plan: CrashPoint::CorruptRecord { record: 3, offset: 17, xor: 0x40 },
            checkpoint_every: 0,
            expected_version: 3,
            expect_torn: true,
        },
        Scenario {
            name: "corrupted record after a checkpoint",
            plan: CrashPoint::CorruptRecord { record: 6, offset: 5, xor: 0x81 },
            checkpoint_every: 4,
            expected_version: 6,
            expect_torn: true,
        },
        Scenario {
            name: "lost fsync",
            plan: CrashPoint::LostSync { sync: 6 },
            checkpoint_every: 0,
            expected_version: 6,
            expect_torn: false,
        },
        Scenario {
            name: "lost fsync after a checkpoint",
            plan: CrashPoint::LostSync { sync: 4 },
            checkpoint_every: 3,
            expected_version: 3,
            expect_torn: false,
        },
        Scenario {
            name: "crash between checkpoint and truncation",
            plan: CrashPoint::CheckpointNoTruncate { checkpoint: 1 },
            checkpoint_every: 3,
            expected_version: 6,
            expect_torn: false,
        },
    ]
}

/// Drive the schedule into a doomed unsharded system and return what survives.
fn doomed_unsharded(plan: CrashPoint, checkpoint_every: u64, batches: &[Vec<LogOp>]) -> CrashImage {
    let (storage, handle) = FaultStorage::with_plan(plan);
    let mut sys = DurableSystem::create(Box::new(storage), DurabilityMode::Sync)
        .with_checkpoint_every(checkpoint_every);
    for ops in batches {
        sys.apply(ops).expect("apply never errors on fault storage");
    }
    handle.crash_image().expect("the planned crash point must trigger")
}

/// Drive the schedule into a doomed sharded system and return what survives.
fn doomed_sharded(
    plan: CrashPoint,
    checkpoint_every: u64,
    batches: &[Vec<LogOp>],
    shards: usize,
) -> CrashImage {
    let (storage, handle) = FaultStorage::with_plan(plan);
    let mut sys = DurableShardedSystem::create(Box::new(storage), DurabilityMode::Sync, shards)
        .with_checkpoint_every(checkpoint_every);
    for ops in batches {
        sys.apply(ops).expect("apply never errors on fault storage");
    }
    handle.crash_image().expect("the planned crash point must trigger")
}

/// The semantic oracle: a fresh unsharded system with the first `version` batches
/// applied through the identical replay path (no logging, no checkpoint).
fn oracle_at(batches: &[Vec<LogOp>], version: u64) -> DurableSystem {
    let mut oracle = DurableSystem::create(Box::new(MemStorage::new()), DurabilityMode::Off);
    for ops in &batches[..version as usize] {
        oracle.apply(ops).expect("oracle replay");
    }
    oracle
}

/// The byte-identity oracle: independently fabricated storage (a genesis-derived
/// checkpoint at `checkpoint_version` plus re-encoded tail records) recovered
/// unsharded.  Replaying through the same checkpoint-then-tail structure keeps the
/// a-graph node ids comparable — `from_study_snapshot` registers checkpointed
/// objects up front, so a genesis replay is state-equal but not node-id-equal.
fn oracle_replayed(batches: &[Vec<LogOp>], checkpoint_version: u64, version: u64) -> DurableSystem {
    let mut storage = MemStorage::new();
    if checkpoint_version > 0 {
        let base = oracle_at(batches, checkpoint_version);
        let checkpoint = Checkpoint {
            version: checkpoint_version,
            shards: 0,
            snapshot: base.system().study_snapshot(),
        };
        storage.write_checkpoint(&checkpoint.encode()).expect("oracle checkpoint");
    }
    for (i, ops) in batches[checkpoint_version as usize..version as usize].iter().enumerate() {
        let record = WalRecord {
            version: checkpoint_version + i as u64 + 1,
            dirty: batch_dirty(ops).bits(),
            ops: ops.clone(),
        };
        storage.append(&record.encode()).expect("oracle append");
    }
    let (oracle, report) =
        DurableSystem::open(Box::new(storage), DurabilityMode::Off).expect("oracle recovery");
    assert_eq!(report.recovered_version, version, "oracle must land on the target version");
    oracle
}

/// Recover an unsharded crash image and hold it to the contract.
fn verify_unsharded(scenario: &Scenario, batches: &[Vec<LogOp>], queries: usize) {
    let image = doomed_unsharded(scenario.plan, scenario.checkpoint_every, batches);
    let (mut recovered, report) =
        DurableSystem::open(Box::new(MemStorage::from_image(image)), DurabilityMode::Sync)
            .expect("recovery succeeds");
    assert_eq!(
        report.recovered_version, scenario.expected_version,
        "{}: recovered version (report {report:?})",
        scenario.name
    );
    assert_eq!(report.torn_tail, scenario.expect_torn, "{}: torn flag", scenario.name);
    assert_eq!(recovered.version(), report.recovered_version);

    let genesis = oracle_at(batches, report.recovered_version);
    assert_eq!(
        recovered.system().study_snapshot(),
        genesis.system().study_snapshot(),
        "{}: recovered state must equal the published prefix",
        scenario.name
    );
    assert_eq!(recovered.system().to_json(), genesis.system().to_json(), "{}", scenario.name);

    let oracle = oracle_replayed(batches, report.checkpoint_version, report.recovered_version);
    let reference = ReferenceExecutor::new(oracle.system());
    let replayed = ReferenceExecutor::new(recovered.system());
    let domains = object_domains(oracle.system());
    let mut rng = WorkloadRng::new(0xBEEF ^ scenario.expected_version);
    for i in 0..queries {
        let q = random_query(&mut rng, oracle.system(), &domains);
        assert_eq!(
            result_bytes(&replayed.run(&q)),
            result_bytes(&reference.run(&q)),
            "{}: query {i} diverged from the oracle",
            scenario.name
        );
    }

    // The recovered system keeps accepting and logging new batches.
    let next = recovered.apply(&batches[0]).expect("post-recovery apply");
    assert_eq!(next, report.recovered_version + 1, "{}", scenario.name);
}

/// Recover a sharded crash image and hold it to the contract (including the
/// collation mirror and the captured cut's invariants).
fn verify_sharded(scenario: &Scenario, batches: &[Vec<LogOp>], shards: usize, queries: usize) {
    let image = doomed_sharded(scenario.plan, scenario.checkpoint_every, batches, shards);
    let (mut recovered, report) = DurableShardedSystem::open(
        Box::new(MemStorage::from_image(image)),
        DurabilityMode::Sync,
        shards,
    )
    .expect("recovery succeeds");
    assert_eq!(
        report.recovered_version, scenario.expected_version,
        "{} @ {shards} shards: recovered version (report {report:?})",
        scenario.name
    );
    assert_eq!(report.torn_tail, scenario.expect_torn, "{} @ {shards} shards", scenario.name);
    assert_eq!(recovered.system().shard_count(), shards);

    // Every shard and the collation mirror landed on the same consistent state as
    // the unsharded oracle at the recovered version.
    let genesis = oracle_at(batches, report.recovered_version);
    assert_eq!(
        recovered.system().study_snapshot(),
        genesis.system().study_snapshot(),
        "{} @ {shards} shards: recovered state must equal the published prefix",
        scenario.name
    );
    let problems = recovered.system().verify_integrity();
    assert!(problems.is_empty(), "{} @ {shards} shards: {problems:?}", scenario.name);

    // ShardCut invariants: the captured cut is whole and agrees with the oracle on
    // every global count.
    let cut = recovered.system().capture_cut();
    assert_eq!(cut.shard_count(), shards);
    assert_eq!(cut.object_count(), genesis.system().object_count());
    assert_eq!(cut.annotation_count(), genesis.system().annotation_count());
    assert_eq!(cut.referent_count(), genesis.system().referent_count());
    assert!(cut.same_cut(&recovered.system().capture_cut()), "quiescent recapture differs");

    let oracle = oracle_replayed(batches, report.checkpoint_version, report.recovered_version);
    let reference = ReferenceExecutor::new(oracle.system());
    let domains = object_domains(oracle.system());
    let mut rng = WorkloadRng::new(0xFACE ^ scenario.expected_version ^ shards as u64);
    for i in 0..queries {
        let q = random_query(&mut rng, oracle.system(), &domains);
        assert_eq!(
            result_bytes(&ShardedExecutor::new(&cut).run(&q)),
            result_bytes(&reference.run(&q)),
            "{} @ {shards} shards: query {i} diverged from the oracle",
            scenario.name
        );
    }

    // The recovered sharded system keeps accepting and logging new batches.
    let next = recovered.apply(&batches[0]).expect("post-recovery apply");
    assert_eq!(next, report.recovered_version + 1, "{} @ {shards} shards", scenario.name);
}

/// The full matrix: every crash point × unsharded + shards {1, 2, 4}.
#[test]
fn crash_matrix_full() {
    let batches = schedule(0xD00D, 8);
    for scenario in full_scenarios() {
        verify_unsharded(&scenario, &batches, 6);
        for shards in [1, 2, 4] {
            verify_sharded(&scenario, &batches, shards, 6);
        }
    }
}

/// The bounded CI gate: one scenario per crash-point kind, shards {1, 4}.
#[test]
fn crash_matrix_quick() {
    let batches = schedule(0xC1, 6);
    let scenarios = vec![
        Scenario {
            name: "quick torn append",
            plan: CrashPoint::TornAppend { record: 3, keep: 17 },
            checkpoint_every: 0,
            expected_version: 3,
            expect_torn: true,
        },
        Scenario {
            name: "quick corrupted record",
            plan: CrashPoint::CorruptRecord { record: 2, offset: 11, xor: 0x20 },
            checkpoint_every: 0,
            expected_version: 2,
            expect_torn: true,
        },
        Scenario {
            name: "quick lost fsync",
            plan: CrashPoint::LostSync { sync: 4 },
            checkpoint_every: 0,
            expected_version: 4,
            expect_torn: false,
        },
        Scenario {
            name: "quick checkpoint without truncation",
            plan: CrashPoint::CheckpointNoTruncate { checkpoint: 0 },
            checkpoint_every: 3,
            expected_version: 3,
            expect_torn: false,
        },
    ];
    for scenario in scenarios {
        for shards in [1, 4] {
            verify_sharded(&scenario, &batches, shards, 3);
        }
    }
}

/// Randomized crash positions: truncate each record at pseudo-random byte offsets
/// and corrupt pseudo-random bytes; recovery must always land exactly on the
/// published prefix before the damaged record.
#[test]
fn randomized_crash_positions_always_recover_a_prefix() {
    let batches = schedule(0x5EED, 6);
    let mut rng = WorkloadRng::new(0x0FF5E7);
    for case in 0..24u64 {
        let record = rng.range_u64(0, batches.len() as u64);
        let torn = rng.chance(0.5);
        let plan = if torn {
            CrashPoint::TornAppend { record, keep: rng.range_usize(1, 64) }
        } else {
            CrashPoint::CorruptRecord {
                record,
                offset: rng.range_usize(0, 4_096),
                xor: 1 + rng.range_u64(0, 255) as u8,
            }
        };
        let scenario = Scenario {
            name: if torn { "random torn" } else { "random corrupt" },
            plan,
            checkpoint_every: 0,
            expected_version: record,
            expect_torn: true,
        };
        let shards = [1usize, 2, 4][case as usize % 3];
        verify_sharded(&scenario, &batches, shards, 2);
    }
}

/// Checkpoint + empty tail recovers byte-identically, at shards {1, 4}.
#[test]
fn checkpoint_with_empty_tail_round_trips() {
    let batches = schedule(0xCAFE, 6);
    for shards in [1usize, 4] {
        let (storage, handle) = FaultStorage::reliable();
        let mut sys = DurableShardedSystem::create(Box::new(storage), DurabilityMode::Sync, shards);
        for ops in &batches {
            sys.apply(ops).expect("apply");
        }
        sys.checkpoint().expect("checkpoint");
        let image = handle.image_now();
        assert!(image.log.is_empty(), "checkpoint must truncate the log");

        let (recovered, report) = DurableShardedSystem::open(
            Box::new(MemStorage::from_image(image)),
            DurabilityMode::Sync,
            shards,
        )
        .expect("recover");
        assert_eq!(report.checkpoint_version, batches.len() as u64);
        assert_eq!(report.replayed_records, 0);
        assert_eq!(report.recovered_version, batches.len() as u64);
        assert_eq!(
            recovered.system().study_snapshot(),
            sys.system().study_snapshot(),
            "{shards} shards: checkpoint round-trip must be byte-identical"
        );
        assert!(recovered.system().verify_integrity().is_empty());
    }
}

/// Checkpoint + non-empty tail equals a full-log replay, at shards {1, 4}.
#[test]
fn checkpoint_plus_tail_equals_full_log_replay() {
    let batches = schedule(0xF00D, 9);
    for shards in [1usize, 4] {
        let (storage, handle) = FaultStorage::reliable();
        let mut sys = DurableShardedSystem::create(Box::new(storage), DurabilityMode::Sync, shards);
        for ops in &batches[..6] {
            sys.apply(ops).expect("apply");
        }
        sys.checkpoint().expect("checkpoint");
        for ops in &batches[6..] {
            sys.apply(ops).expect("apply");
        }
        let image = handle.image_now();
        assert!(!image.log.is_empty(), "the tail must be on disk");

        let (recovered, report) = DurableShardedSystem::open(
            Box::new(MemStorage::from_image(image)),
            DurabilityMode::Sync,
            shards,
        )
        .expect("recover");
        assert_eq!(report.checkpoint_version, 6);
        assert_eq!(report.replayed_records, 3);
        assert_eq!(report.recovered_version, 9);

        // Equal to the same schedule replayed from an empty log, no checkpoint.
        let mut full =
            DurableShardedSystem::create(Box::new(MemStorage::new()), DurabilityMode::Off, shards);
        for ops in &batches {
            full.apply(ops).expect("full replay");
        }
        assert_eq!(
            recovered.system().study_snapshot(),
            full.system().study_snapshot(),
            "{shards} shards: checkpoint+tail must equal the full-log replay"
        );
        assert_eq!(
            recovered.system().study_snapshot(),
            sys.system().study_snapshot(),
            "{shards} shards: and both must equal the live system"
        );
    }
}
