//! Randomized equivalence and isolation for the concurrent serving layer.
//!
//! 1. **Equivalence** — a [`QueryService`] must return results *byte-identical* to the
//!    single-threaded [`ReferenceExecutor`] on arbitrary queries over the `datagen`
//!    workloads, for any worker count, with the cache on or off, and with the
//!    parallel-verify fan-out forced on.  Results are compared both as structured
//!    values and as serialized bytes, so page ordering and subgraph contents cannot
//!    drift silently.
//! 2. **Snapshot isolation** — readers querying the service while a writer commits
//!    and publishes must each observe exactly one published epoch's answer, never a
//!    torn intermediate state.
//! 3. **Batched publishes** — a writer streaming [`CommitBatch`]es (many commits, one
//!    epoch bump and one publish per batch) interleaved with in-flight queries: every
//!    result a reader observes must be byte-identical to the [`ReferenceExecutor`]'s
//!    answer at one published epoch, epochs observed in non-decreasing order, and the
//!    cache invalidated once per batch — never once per commit.
//! 4. **Partial invalidation** — batches whose dirty set is disjoint from the read
//!    mix's footprints publish mid-flight: results stay byte-identical to the
//!    reference at a published epoch *and* the cache entries survive every such
//!    publish (zero evictions, bounded misses), while a footprint-intersecting batch
//!    still evicts; plus a randomized invariant tying entry survival to per-component
//!    structural sharing (`Arc::ptr_eq`) between the pre-batch snapshot and the
//!    published view.

mod common;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use common::{object_domains, random_query};
use datagen::influenza::{self, InfluenzaConfig};
use datagen::neuro::{self, NeuroConfig};
use datagen::rng::WorkloadRng;
use graphitti_core::{Graphitti, Marker};
use graphitti_query::{
    Executor, Query, QueryResult, QueryService, ReferenceExecutor, ServiceConfig, Target, Ticket,
};

/// Serialize a result to its canonical byte form (serde shim JSON) for byte-level
/// comparison.
fn result_bytes(result: &QueryResult) -> Vec<u8> {
    serde_json::to_string(result).expect("result serializes").into_bytes()
}

/// Every service configuration under test: worker counts straddling the core count,
/// cache off and on, and the chunked parallel-verify path forced on (threshold 1).
fn service_configs() -> Vec<ServiceConfig> {
    vec![
        ServiceConfig::default().with_workers(1).with_cache_capacity(0),
        ServiceConfig::default().with_workers(2).with_cache_capacity(64),
        ServiceConfig::default()
            .with_workers(4)
            .with_cache_capacity(0)
            .with_verify_workers(3)
            .with_parallel_threshold(1),
        ServiceConfig::default()
            .with_workers(8)
            .with_cache_capacity(32)
            .with_verify_workers(2)
            .with_parallel_threshold(1),
    ]
}

fn assert_service_matches_reference(sys: &Graphitti, seed: u64, queries: usize) {
    let mut rng = WorkloadRng::new(seed);
    let domains = object_domains(sys);
    let reference = ReferenceExecutor::new(sys);

    // Draw the query set once, with the expected answer for each.
    let cases: Vec<(Query, QueryResult)> = (0..queries)
        .map(|_| {
            let q = random_query(&mut rng, sys, &domains);
            let expected = reference.run(&q);
            (q, expected)
        })
        .collect();

    for config in service_configs() {
        let label = format!(
            "workers={} cache={} verify_workers={}",
            config.workers, config.cache_capacity, config.verify_workers
        );
        let service = QueryService::new(sys.snapshot(), config);
        // Submit everything up front so queries genuinely overlap on the pool, then
        // redeem in order.  Submit each query twice when the cache is on, so hits are
        // exercised too.
        let tickets: Vec<(usize, Ticket)> = cases
            .iter()
            .enumerate()
            .flat_map(|(i, (q, _))| {
                [(i, service.submit(q.clone()).unwrap()), (i, service.submit(q.clone()).unwrap())]
            })
            .collect();
        for (i, ticket) in tickets {
            let got = ticket.wait().unwrap();
            let (q, expected) = &cases[i];
            assert_eq!(&got, expected, "[{label}] diverged on query #{i}: {q:#?}");
            assert_eq!(
                result_bytes(&got),
                result_bytes(expected),
                "[{label}] serialized bytes diverged on query #{i}"
            );
        }
    }
}

#[test]
fn influenza_service_matches_reference() {
    let sys = influenza::build(&InfluenzaConfig::small().with_annotations(300));
    assert_service_matches_reference(&sys, 0x5E41u64, 60);
}

#[test]
fn neuro_service_matches_reference() {
    let w = neuro::build(&NeuroConfig {
        seed: 7,
        images: 40,
        regions_per_image: 6,
        coordinate_systems: 3,
        dcn_prob: 0.4,
        tp53_prob: 0.25,
        canvas: 1_000.0,
    });
    assert_service_matches_reference(&w.system, 0x5E42u64, 60);
}

#[test]
fn empty_system_service_matches_reference() {
    let sys = Graphitti::new();
    assert_service_matches_reference(&sys, 0x5E43u64, 25);
}

/// Writer annotates and publishes mid-flight; concurrent readers must only ever see a
/// result belonging to one published epoch (no torn state, no partially applied
/// commit), and epochs must be observed in non-decreasing order per reader.
#[test]
fn readers_see_consistent_epochs_while_writer_publishes() {
    let mut sys = Graphitti::new();
    let seq = sys.register_sequence("s", graphitti_core::DataType::DnaSequence, 1_000_000, "chr1");
    for i in 0..10u64 {
        sys.annotate()
            .comment(format!("protease motif {i}"))
            .mark(seq, Marker::interval(i * 100, i * 100 + 50))
            .commit()
            .unwrap();
    }

    let query = Query::new(Target::AnnotationContents).with_phrase("protease motif");
    let service = Arc::new(QueryService::new(
        sys.snapshot(),
        ServiceConfig::default().with_workers(3).with_cache_capacity(16),
    ));

    // The set of legal answers: one per published epoch.  Each publish appends one
    // matching annotation, so the answers are pairwise distinct and a torn read (a
    // result matching no published epoch) is detectable.
    let mut legal: Vec<QueryResult> = vec![Executor::new(&sys).run(&query)];
    let publishes = 12u64;

    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let mut readers = Vec::new();
        for _ in 0..3 {
            let service = Arc::clone(&service);
            let query = query.clone();
            let stop = &stop;
            readers.push(scope.spawn(move || {
                let mut observed = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    observed.push(service.run(query.clone()).unwrap());
                }
                observed
            }));
        }

        for i in 0..publishes {
            sys.annotate()
                .comment(format!("protease motif late {i}"))
                .mark(seq, Marker::interval(500_000 + i * 100, 500_000 + i * 100 + 50))
                .commit()
                .unwrap();
            service.publish(sys.snapshot()).unwrap();
            legal.push(Executor::new(&sys).run(&query));
            std::thread::yield_now();
        }
        stop.store(true, Ordering::Relaxed);

        let base_count = legal[0].annotations.len();
        for reader in readers {
            let observed = reader.join().expect("reader panicked");
            assert!(!observed.is_empty());
            let mut last_epoch_idx = 0usize;
            for result in observed {
                let idx = legal.iter().position(|l| l == &result).unwrap_or_else(|| {
                    panic!(
                        "reader saw a result matching no published epoch: {} annotations, \
                         legal counts are {base_count}..={}",
                        result.annotations.len(),
                        base_count + publishes as usize
                    )
                });
                // published state only ever moves forward, so must each reader's view
                assert!(
                    idx >= last_epoch_idx,
                    "reader went back in time: epoch #{idx} after #{last_epoch_idx}"
                );
                last_epoch_idx = idx;
            }
        }
    });

    assert_eq!(service.metrics().publishes, publishes);
    assert_eq!(service.current_epoch(), sys.epoch());
}

/// Writer streams `CommitBatch`es (one epoch bump + one publish per batch of several
/// commits) while readers keep queries in flight.  Gates, at every observed epoch:
/// results byte-identical to the `ReferenceExecutor`, epochs non-decreasing per
/// reader, and exactly one cache invalidation per published batch.
#[test]
fn batched_publishes_interleave_with_inflight_queries() {
    let mut sys = Graphitti::new();
    let seq = sys.register_sequence("s", graphitti_core::DataType::DnaSequence, 1_000_000, "chr1");
    for i in 0..10u64 {
        sys.annotate()
            .comment(format!("protease motif {i}"))
            .mark(seq, Marker::interval(i * 100, i * 100 + 50))
            .commit()
            .unwrap();
    }

    let query = Query::new(Target::AnnotationContents).with_phrase("protease motif");
    let service = Arc::new(QueryService::new(
        sys.snapshot(),
        ServiceConfig::default().with_workers(3).with_cache_capacity(16),
    ));

    // Per published epoch, the reference answer in canonical bytes.  Every batch adds
    // exactly one matching annotation (plus non-matching noise), so the per-epoch
    // answers are pairwise distinct and both torn reads *and* mid-batch reads (a
    // coalesced epoch must never expose intermediate batch states) are detectable.
    let mut legal: Vec<Vec<u8>> = vec![result_bytes(&ReferenceExecutor::new(&sys).run(&query))];
    let batches = 10u64;
    let writes_per_batch = 6u64;

    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let mut readers = Vec::new();
        for _ in 0..3 {
            let service = Arc::clone(&service);
            let query = query.clone();
            let stop = &stop;
            readers.push(scope.spawn(move || {
                let mut observed = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    observed.push(result_bytes(&service.run(query.clone()).unwrap()));
                }
                observed
            }));
        }

        for b in 0..batches {
            let epoch_before = sys.epoch();
            let mut batch = sys.batch();
            batch
                .annotate()
                .comment(format!("protease motif batched {b}"))
                .mark(seq, Marker::interval(500_000 + b * 100, 500_000 + b * 100 + 50))
                .commit()
                .unwrap();
            for i in 1..writes_per_batch {
                batch
                    .annotate()
                    .comment(format!("noise {b}-{i}"))
                    .mark(
                        seq,
                        Marker::interval(
                            700_000 + (b * 10 + i) * 70,
                            700_000 + (b * 10 + i) * 70 + 30,
                        ),
                    )
                    .commit()
                    .unwrap();
            }
            assert_eq!(batch.commit(), writes_per_batch);
            // the whole batch is one version...
            assert_eq!(sys.epoch(), epoch_before + 1);
            // ...published once
            service.publish(sys.snapshot()).unwrap();
            legal.push(result_bytes(&ReferenceExecutor::new(&sys).run(&query)));
            std::thread::yield_now();
        }
        stop.store(true, Ordering::Relaxed);

        for reader in readers {
            let observed = reader.join().expect("reader panicked");
            assert!(!observed.is_empty());
            let mut last_epoch_idx = 0usize;
            for bytes in observed {
                let idx = legal
                    .iter()
                    .position(|l| l == &bytes)
                    .expect("reader saw a result matching no published epoch's reference answer");
                assert!(
                    idx >= last_epoch_idx,
                    "reader went back in time: epoch #{idx} after #{last_epoch_idx}"
                );
                last_epoch_idx = idx;
            }
        }
    });

    let m = service.metrics();
    assert_eq!(m.publishes, batches);
    // one invalidation per published batch — 60 commits must not cause 60 clears
    assert_eq!(m.cache_invalidations, batches);
    assert_eq!(service.current_epoch(), sys.epoch());
    // final state still serves byte-identical to the reference
    assert_eq!(
        result_bytes(&service.run(query.clone()).unwrap()),
        result_bytes(&ReferenceExecutor::new(&sys).run(&query))
    );
}

/// Footprint-disjoint (ingest-only) batches publish mid-flight while readers keep a
/// content query and an ontology query hot.  Registrations dirty no component either
/// footprint reads, so every observed result must stay byte-identical to the
/// reference answer (which such publishes cannot change), the cache entries must
/// survive every publish (zero evictions, misses bounded by the initial
/// key-population races), and each publish must be accounted a *partial*
/// invalidation.  A footprint-intersecting annotation commit afterwards must still
/// evict and refresh.
#[test]
fn footprint_disjoint_batches_preserve_entries_mid_flight() {
    let mut sys = Graphitti::new();
    let seq = sys.register_sequence("s", graphitti_core::DataType::DnaSequence, 1_000_000, "chr1");
    let term = sys.ontology_mut().add_concept("Motif");
    for i in 0..10u64 {
        sys.annotate()
            .comment(format!("protease motif {i}"))
            .mark(seq, Marker::interval(i * 100, i * 100 + 50))
            .cite_term(term)
            .commit()
            .unwrap();
    }

    let phrase_query = Query::new(Target::AnnotationContents).with_phrase("protease motif");
    let term_query = Query::new(Target::AnnotationContents)
        .with_ontology(graphitti_query::OntologyFilter::CitesTerm(term));
    let workers = 3usize;
    let service = Arc::new(QueryService::new(
        sys.snapshot(),
        ServiceConfig::default().with_workers(workers).with_cache_capacity(16),
    ));

    // Ingest-only publishes cannot change either answer, so the legal set is a
    // single reference result per query for the whole run.
    let expected_phrase = result_bytes(&ReferenceExecutor::new(&sys).run(&phrase_query));
    let expected_term = result_bytes(&ReferenceExecutor::new(&sys).run(&term_query));

    let publishes = 12u64;
    let stop = AtomicBool::new(false);
    let observed: u64 = std::thread::scope(|scope| {
        let mut readers = Vec::new();
        for r in 0..3 {
            let service = Arc::clone(&service);
            let phrase_query = phrase_query.clone();
            let term_query = term_query.clone();
            let (expected_phrase, expected_term) = (&expected_phrase, &expected_term);
            let stop = &stop;
            readers.push(scope.spawn(move || {
                let mut count = 0u64;
                let mut i = r;
                while !stop.load(Ordering::Relaxed) {
                    let (q, expected) = if i % 2 == 0 {
                        (&phrase_query, expected_phrase)
                    } else {
                        (&term_query, expected_term)
                    };
                    assert_eq!(
                        &result_bytes(&service.run(q.clone()).unwrap()),
                        expected,
                        "ingest-only publishes must never change a served answer"
                    );
                    count += 1;
                    i += 1;
                }
                count
            }));
        }

        for b in 0..publishes {
            let mut batch = sys.batch();
            for i in 0..5 {
                batch.register_sequence(
                    format!("ingest-{b}-{i}"),
                    graphitti_core::DataType::DnaSequence,
                    500,
                    "chr2",
                );
            }
            batch.commit();
            service.publish(sys.snapshot()).unwrap();
            std::thread::yield_now();
        }
        stop.store(true, Ordering::Relaxed);
        readers.into_iter().map(|r| r.join().expect("reader panicked")).sum()
    });

    let m = service.metrics();
    assert_eq!(m.publishes, publishes);
    // Entries with footprints disjoint from every published dirty set survived: no
    // publish evicted anything, and every publish was partial.
    assert_eq!(m.cache_entries_evicted, 0, "ingest-only publishes must evict nothing");
    assert_eq!(m.cache_partial_invalidations, publishes);
    assert_eq!(m.cache_full_invalidations, 0);
    assert_eq!(service.cache_len(), 2);
    // Misses are bounded by the initial population races (each of the `workers` pool
    // threads can at worst miss each of the two keys once before the first insert
    // lands) — publishes add none on top.
    assert!(m.cache_misses <= (workers as u64) * 2, "publishes must not force re-execution: {m:?}");
    assert_eq!(m.cache_hits + m.cache_misses, observed);

    // A footprint-intersecting commit still evicts both entries and refreshes.
    sys.annotate()
        .comment("protease motif late")
        .mark(seq, Marker::interval(900_000, 900_050))
        .commit()
        .unwrap();
    service.publish(sys.snapshot()).unwrap();
    let m = service.metrics();
    assert_eq!(m.cache_entries_evicted, 2);
    assert_eq!(m.cache_full_invalidations, 1);
    assert_eq!(
        result_bytes(&service.run(phrase_query.clone()).unwrap()),
        result_bytes(&ReferenceExecutor::new(&sys).run(&phrase_query))
    );
}
mod partial_invalidation_props {
    use super::*;
    use graphitti_core::{Component, ComponentSet, DataType};
    use graphitti_query::Plan;
    use proptest::prelude::*;

    /// The three batch kinds the randomized schedule draws from (sampled as `0..3`
    /// — the proptest shim has no enum strategies).
    #[derive(Debug, Clone, Copy)]
    enum Kind {
        Ingest,
        Ontology,
        Annotate,
    }

    impl Kind {
        fn from_index(i: u8) -> Kind {
            match i % 3 {
                0 => Kind::Ingest,
                1 => Kind::Ontology,
                _ => Kind::Annotate,
            }
        }
    }

    /// The invariant body (a plain function so the `proptest!` macro stays thin):
    /// for any schedule of homogeneous batches, an entry survives a publish iff its
    /// footprint is disjoint from the batch's dirty set (observed via miss metrics
    /// on a single-worker service), served results always match the reference, and
    /// every footprint component of a *surviving* entry is `Arc::ptr_eq`-shared
    /// between the pre-batch snapshot and the published view.
    fn check(extra: u64, kinds: &[Kind]) {
        let mut sys = Graphitti::new();
        let seq = sys.register_sequence("s", DataType::DnaSequence, 1_000_000, "chr1");
        let term = sys.ontology_mut().add_concept("Motif");
        for i in 0..(3 + extra) {
            sys.annotate()
                .comment(format!("protease motif {i}"))
                .mark(seq, Marker::interval(i * 100, i * 100 + 50))
                .cite_term(term)
                .commit()
                .unwrap();
        }

        let phrase_query = Query::new(Target::AnnotationContents).with_phrase("protease motif");
        let term_query = Query::new(Target::AnnotationContents)
            .with_ontology(graphitti_query::OntologyFilter::CitesTerm(term));
        let cases = [&phrase_query, &term_query];
        let footprints: Vec<ComponentSet> =
            cases.iter().map(|q| Plan::read_footprint(&q.canonicalize())).collect();

        let service = QueryService::new(
            sys.snapshot(),
            ServiceConfig::default().with_workers(1).with_cache_capacity(8),
        );
        for q in cases {
            service.run(q.clone()).unwrap(); // populate one entry per query
        }

        let mut annotations = 0u64;
        for (b, kind) in kinds.iter().enumerate() {
            let before = sys.snapshot();
            let mut batch = sys.batch();
            match kind {
                Kind::Ingest => {
                    for i in 0..3 {
                        batch.register_sequence(
                            format!("ingest-{b}-{i}"),
                            DataType::DnaSequence,
                            500,
                            "chr2",
                        );
                    }
                }
                Kind::Ontology => {
                    batch.ontology_mut().add_concept(format!("term-{b}"));
                }
                Kind::Annotate => {
                    batch
                        .annotate()
                        .comment(format!("protease motif batch {b}"))
                        .mark(
                            seq,
                            Marker::interval(
                                500_000 + annotations * 100,
                                500_000 + annotations * 100 + 50,
                            ),
                        )
                        .cite_term(term)
                        .commit()
                        .unwrap();
                    annotations += 1;
                }
            }
            batch.commit();
            service.publish(sys.snapshot()).unwrap();
            let published = sys.snapshot();
            let dirty = published.changed_components(&before);
            prop_assert!(!dirty.is_empty(), "every batch kind writes something");

            for (q, fp) in cases.iter().zip(&footprints) {
                let survives = !fp.intersects(dirty);
                let misses_before = service.metrics().cache_misses;
                let got = service.run((*q).clone()).unwrap();
                let was_hit = service.metrics().cache_misses == misses_before;
                prop_assert_eq!(
                    was_hit,
                    survives,
                    "entry survival must equal footprint disjointness (dirty {:?}, fp {:?})",
                    dirty,
                    fp
                );
                // Served bytes always match the reference on the published state.
                prop_assert_eq!(
                    result_bytes(&got),
                    result_bytes(&ReferenceExecutor::new(&sys).run(q))
                );
                if survives {
                    // The entry's whole read footprint is structurally shared
                    // between the pre-batch snapshot and the published view — the
                    // proof the cached answer is still reading identical state.
                    for c in Component::ALL.into_iter().filter(|&c| fp.contains(c)) {
                        prop_assert!(
                            published.view().shares_component(before.view(), c),
                            "surviving entry's footprint component {:?} not shared",
                            c
                        );
                    }
                }
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn surviving_entries_share_their_footprint_components(
            extra in 0u64..8,
            kind_indices in prop::collection::vec(0u8..3, 1..8),
        ) {
            let kinds: Vec<Kind> = kind_indices.iter().map(|&i| Kind::from_index(i)).collect();
            check(extra, &kinds);
        }
    }
}
