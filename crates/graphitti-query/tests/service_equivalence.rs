//! Randomized equivalence and isolation for the concurrent serving layer.
//!
//! 1. **Equivalence** — a [`QueryService`] must return results *byte-identical* to the
//!    single-threaded [`ReferenceExecutor`] on arbitrary queries over the `datagen`
//!    workloads, for any worker count, with the cache on or off, and with the
//!    parallel-verify fan-out forced on.  Results are compared both as structured
//!    values and as serialized bytes, so page ordering and subgraph contents cannot
//!    drift silently.
//! 2. **Snapshot isolation** — readers querying the service while a writer commits
//!    and publishes must each observe exactly one published epoch's answer, never a
//!    torn intermediate state.
//! 3. **Batched publishes** — a writer streaming [`CommitBatch`]es (many commits, one
//!    epoch bump and one publish per batch) interleaved with in-flight queries: every
//!    result a reader observes must be byte-identical to the [`ReferenceExecutor`]'s
//!    answer at one published epoch, epochs observed in non-decreasing order, and the
//!    cache invalidated once per batch — never once per commit.

mod common;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use common::{object_domains, random_query};
use datagen::influenza::{self, InfluenzaConfig};
use datagen::neuro::{self, NeuroConfig};
use datagen::rng::WorkloadRng;
use graphitti_core::{Graphitti, Marker};
use graphitti_query::{
    Executor, Query, QueryResult, QueryService, ReferenceExecutor, ServiceConfig, Target, Ticket,
};

/// Serialize a result to its canonical byte form (serde shim JSON) for byte-level
/// comparison.
fn result_bytes(result: &QueryResult) -> Vec<u8> {
    serde_json::to_string(result).expect("result serializes").into_bytes()
}

/// Every service configuration under test: worker counts straddling the core count,
/// cache off and on, and the chunked parallel-verify path forced on (threshold 1).
fn service_configs() -> Vec<ServiceConfig> {
    vec![
        ServiceConfig::default().with_workers(1).with_cache_capacity(0),
        ServiceConfig::default().with_workers(2).with_cache_capacity(64),
        ServiceConfig::default()
            .with_workers(4)
            .with_cache_capacity(0)
            .with_verify_workers(3)
            .with_parallel_threshold(1),
        ServiceConfig::default()
            .with_workers(8)
            .with_cache_capacity(32)
            .with_verify_workers(2)
            .with_parallel_threshold(1),
    ]
}

fn assert_service_matches_reference(sys: &Graphitti, seed: u64, queries: usize) {
    let mut rng = WorkloadRng::new(seed);
    let domains = object_domains(sys);
    let reference = ReferenceExecutor::new(sys);

    // Draw the query set once, with the expected answer for each.
    let cases: Vec<(Query, QueryResult)> = (0..queries)
        .map(|_| {
            let q = random_query(&mut rng, sys, &domains);
            let expected = reference.run(&q);
            (q, expected)
        })
        .collect();

    for config in service_configs() {
        let label = format!(
            "workers={} cache={} verify_workers={}",
            config.workers, config.cache_capacity, config.verify_workers
        );
        let service = QueryService::new(sys.snapshot(), config);
        // Submit everything up front so queries genuinely overlap on the pool, then
        // redeem in order.  Submit each query twice when the cache is on, so hits are
        // exercised too.
        let tickets: Vec<(usize, Ticket)> = cases
            .iter()
            .enumerate()
            .flat_map(|(i, (q, _))| {
                [(i, service.submit(q.clone())), (i, service.submit(q.clone()))]
            })
            .collect();
        for (i, ticket) in tickets {
            let got = ticket.wait();
            let (q, expected) = &cases[i];
            assert_eq!(&got, expected, "[{label}] diverged on query #{i}: {q:#?}");
            assert_eq!(
                result_bytes(&got),
                result_bytes(expected),
                "[{label}] serialized bytes diverged on query #{i}"
            );
        }
    }
}

#[test]
fn influenza_service_matches_reference() {
    let sys = influenza::build(&InfluenzaConfig::small().with_annotations(300));
    assert_service_matches_reference(&sys, 0x5E41u64, 60);
}

#[test]
fn neuro_service_matches_reference() {
    let w = neuro::build(&NeuroConfig {
        seed: 7,
        images: 40,
        regions_per_image: 6,
        coordinate_systems: 3,
        dcn_prob: 0.4,
        tp53_prob: 0.25,
        canvas: 1_000.0,
    });
    assert_service_matches_reference(&w.system, 0x5E42u64, 60);
}

#[test]
fn empty_system_service_matches_reference() {
    let sys = Graphitti::new();
    assert_service_matches_reference(&sys, 0x5E43u64, 25);
}

/// Writer annotates and publishes mid-flight; concurrent readers must only ever see a
/// result belonging to one published epoch (no torn state, no partially applied
/// commit), and epochs must be observed in non-decreasing order per reader.
#[test]
fn readers_see_consistent_epochs_while_writer_publishes() {
    let mut sys = Graphitti::new();
    let seq = sys.register_sequence("s", graphitti_core::DataType::DnaSequence, 1_000_000, "chr1");
    for i in 0..10u64 {
        sys.annotate()
            .comment(format!("protease motif {i}"))
            .mark(seq, Marker::interval(i * 100, i * 100 + 50))
            .commit()
            .unwrap();
    }

    let query = Query::new(Target::AnnotationContents).with_phrase("protease motif");
    let service = Arc::new(QueryService::new(
        sys.snapshot(),
        ServiceConfig::default().with_workers(3).with_cache_capacity(16),
    ));

    // The set of legal answers: one per published epoch.  Each publish appends one
    // matching annotation, so the answers are pairwise distinct and a torn read (a
    // result matching no published epoch) is detectable.
    let mut legal: Vec<QueryResult> = vec![Executor::new(&sys).run(&query)];
    let publishes = 12u64;

    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let mut readers = Vec::new();
        for _ in 0..3 {
            let service = Arc::clone(&service);
            let query = query.clone();
            let stop = &stop;
            readers.push(scope.spawn(move || {
                let mut observed = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    observed.push(service.run(query.clone()));
                }
                observed
            }));
        }

        for i in 0..publishes {
            sys.annotate()
                .comment(format!("protease motif late {i}"))
                .mark(seq, Marker::interval(500_000 + i * 100, 500_000 + i * 100 + 50))
                .commit()
                .unwrap();
            service.publish(sys.snapshot());
            legal.push(Executor::new(&sys).run(&query));
            std::thread::yield_now();
        }
        stop.store(true, Ordering::Relaxed);

        let base_count = legal[0].annotations.len();
        for reader in readers {
            let observed = reader.join().expect("reader panicked");
            assert!(!observed.is_empty());
            let mut last_epoch_idx = 0usize;
            for result in observed {
                let idx = legal.iter().position(|l| l == &result).unwrap_or_else(|| {
                    panic!(
                        "reader saw a result matching no published epoch: {} annotations, \
                         legal counts are {base_count}..={}",
                        result.annotations.len(),
                        base_count + publishes as usize
                    )
                });
                // published state only ever moves forward, so must each reader's view
                assert!(
                    idx >= last_epoch_idx,
                    "reader went back in time: epoch #{idx} after #{last_epoch_idx}"
                );
                last_epoch_idx = idx;
            }
        }
    });

    assert_eq!(service.metrics().publishes, publishes);
    assert_eq!(service.current_epoch(), sys.epoch());
}

/// Writer streams `CommitBatch`es (one epoch bump + one publish per batch of several
/// commits) while readers keep queries in flight.  Gates, at every observed epoch:
/// results byte-identical to the `ReferenceExecutor`, epochs non-decreasing per
/// reader, and exactly one cache invalidation per published batch.
#[test]
fn batched_publishes_interleave_with_inflight_queries() {
    let mut sys = Graphitti::new();
    let seq = sys.register_sequence("s", graphitti_core::DataType::DnaSequence, 1_000_000, "chr1");
    for i in 0..10u64 {
        sys.annotate()
            .comment(format!("protease motif {i}"))
            .mark(seq, Marker::interval(i * 100, i * 100 + 50))
            .commit()
            .unwrap();
    }

    let query = Query::new(Target::AnnotationContents).with_phrase("protease motif");
    let service = Arc::new(QueryService::new(
        sys.snapshot(),
        ServiceConfig::default().with_workers(3).with_cache_capacity(16),
    ));

    // Per published epoch, the reference answer in canonical bytes.  Every batch adds
    // exactly one matching annotation (plus non-matching noise), so the per-epoch
    // answers are pairwise distinct and both torn reads *and* mid-batch reads (a
    // coalesced epoch must never expose intermediate batch states) are detectable.
    let mut legal: Vec<Vec<u8>> = vec![result_bytes(&ReferenceExecutor::new(&sys).run(&query))];
    let batches = 10u64;
    let writes_per_batch = 6u64;

    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let mut readers = Vec::new();
        for _ in 0..3 {
            let service = Arc::clone(&service);
            let query = query.clone();
            let stop = &stop;
            readers.push(scope.spawn(move || {
                let mut observed = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    observed.push(result_bytes(&service.run(query.clone())));
                }
                observed
            }));
        }

        for b in 0..batches {
            let epoch_before = sys.epoch();
            let mut batch = sys.batch();
            batch
                .annotate()
                .comment(format!("protease motif batched {b}"))
                .mark(seq, Marker::interval(500_000 + b * 100, 500_000 + b * 100 + 50))
                .commit()
                .unwrap();
            for i in 1..writes_per_batch {
                batch
                    .annotate()
                    .comment(format!("noise {b}-{i}"))
                    .mark(
                        seq,
                        Marker::interval(
                            700_000 + (b * 10 + i) * 70,
                            700_000 + (b * 10 + i) * 70 + 30,
                        ),
                    )
                    .commit()
                    .unwrap();
            }
            assert_eq!(batch.commit(), writes_per_batch);
            // the whole batch is one version...
            assert_eq!(sys.epoch(), epoch_before + 1);
            // ...published once
            service.publish(sys.snapshot());
            legal.push(result_bytes(&ReferenceExecutor::new(&sys).run(&query)));
            std::thread::yield_now();
        }
        stop.store(true, Ordering::Relaxed);

        for reader in readers {
            let observed = reader.join().expect("reader panicked");
            assert!(!observed.is_empty());
            let mut last_epoch_idx = 0usize;
            for bytes in observed {
                let idx = legal
                    .iter()
                    .position(|l| l == &bytes)
                    .expect("reader saw a result matching no published epoch's reference answer");
                assert!(
                    idx >= last_epoch_idx,
                    "reader went back in time: epoch #{idx} after #{last_epoch_idx}"
                );
                last_epoch_idx = idx;
            }
        }
    });

    let m = service.metrics();
    assert_eq!(m.publishes, batches);
    // one invalidation per published batch — 60 commits must not cause 60 clears
    assert_eq!(m.cache_invalidations, batches);
    assert_eq!(service.current_epoch(), sys.epoch());
    // final state still serves byte-identical to the reference
    assert_eq!(
        result_bytes(&service.run(query.clone())),
        result_bytes(&ReferenceExecutor::new(&sys).run(&query))
    );
}
