//! Property battery for the compressed candidate bitmaps: every kernel must be
//! byte-identical to the sorted-`Vec` oracle at sparse, dense and mixed densities,
//! container promotion/demotion must round-trip, and `from_sorted_slice ∘ to_vec`
//! must be the identity.

use std::collections::BTreeSet;

use graphitti_core::AnnotationId;
use graphitti_query::bitmap::{Bitmap, CandidateRepr, CandidateSet, ARRAY_MAX};
use proptest::prelude::*;

/// Deterministic pseudo-random sorted id set. `density_sel` picks the regime:
/// 0 = sparse scatter over a wide universe, 1 = dense contiguous-ish block
/// (well past the promotion threshold), 2 = mixed (a dense chunk plus sparse
/// spill across several chunks).
fn gen_ids(seed: u64, density_sel: u8) -> Vec<u64> {
    let mut state = seed.wrapping_mul(2654435761).wrapping_add(99991);
    let mut next = || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        state >> 33
    };
    let mut set: BTreeSet<u64> = BTreeSet::new();
    match density_sel % 3 {
        0 => {
            // Sparse: ~200 ids over a ~2^21 universe (every chunk an array).
            let n = 50 + (next() % 150) as usize;
            for _ in 0..n {
                set.insert(next() % (1 << 21));
            }
        }
        1 => {
            // Dense: a stride-1..3 run crossing the ARRAY_MAX promotion
            // threshold inside one or two chunks.
            let base = next() % (1 << 18);
            let n = ARRAY_MAX + 1000 + (next() % 4000) as usize;
            let mut v = base;
            for _ in 0..n {
                set.insert(v);
                v += 1 + next() % 3;
            }
        }
        _ => {
            // Mixed: one dense chunk plus a sparse tail over later chunks.
            let base = (next() % 8) << 16;
            for i in 0..(ARRAY_MAX as u64 + 512) {
                set.insert(base + i * 2 % 65536 + (i / 32768) * 65536);
            }
            let n = (next() % 300) as usize;
            for _ in 0..n {
                set.insert((1 << 20) + next() % (1 << 20));
            }
        }
    }
    set.into_iter().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn from_sorted_slice_to_vec_is_identity(seed in any::<u64>(), d in 0u8..3) {
        let ids = gen_ids(seed, d);
        let bm = Bitmap::from_sorted_slice(&ids);
        prop_assert!(bm.invariants_ok());
        prop_assert_eq!(bm.len() as usize, ids.len());
        prop_assert_eq!(bm.to_vec(), ids);
    }

    #[test]
    fn iteration_matches_sorted_vec(seed in any::<u64>(), d in 0u8..3) {
        let ids = gen_ids(seed, d);
        let bm = Bitmap::from_sorted_slice(&ids);
        let via_iter: Vec<u64> = bm.iter().collect();
        prop_assert_eq!(via_iter, ids);
    }

    #[test]
    fn kernels_match_set_oracle(seed in any::<u64>(), da in 0u8..3, db in 0u8..3) {
        let a = gen_ids(seed, da);
        let b = gen_ids(seed.wrapping_add(0x9e3779b97f4a7c15), db);
        let (ba, bb) = (Bitmap::from_sorted_slice(&a), Bitmap::from_sorted_slice(&b));
        let sa: BTreeSet<u64> = a.iter().copied().collect();
        let sb: BTreeSet<u64> = b.iter().copied().collect();
        let and = ba.and(&bb);
        let or = ba.or(&bb);
        let and_not = ba.and_not(&bb);
        prop_assert!(and.invariants_ok());
        prop_assert!(or.invariants_ok());
        prop_assert!(and_not.invariants_ok());
        prop_assert_eq!(and.to_vec(), sa.intersection(&sb).copied().collect::<Vec<u64>>());
        prop_assert_eq!(or.to_vec(), sa.union(&sb).copied().collect::<Vec<u64>>());
        prop_assert_eq!(and_not.to_vec(), sa.difference(&sb).copied().collect::<Vec<u64>>());
    }

    #[test]
    fn contains_and_rank_match_oracle(seed in any::<u64>(), d in 0u8..3) {
        let ids = gen_ids(seed, d);
        let bm = Bitmap::from_sorted_slice(&ids);
        // Probe every member plus a deterministic sample of non-members.
        let mut state = seed ^ 0xdead_beef;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 33
        };
        for &v in ids.iter().take(512) {
            prop_assert!(bm.contains(v));
        }
        for _ in 0..256 {
            let probe = next() % (1 << 22);
            prop_assert_eq!(bm.contains(probe), ids.binary_search(&probe).is_ok());
            let expect_rank = ids.partition_point(|&x| x <= probe) as u64;
            prop_assert_eq!(bm.rank(probe), expect_rank);
        }
    }

    #[test]
    fn promotion_demotion_round_trips(seed in any::<u64>()) {
        // A dense set (bits containers) ANDed with a sparse one demotes back to
        // arrays; OR of the demoted result with the dense set re-promotes.
        let dense = gen_ids(seed, 1);
        let sparse = gen_ids(seed.wrapping_add(1), 0);
        let (bd, bs) = (Bitmap::from_sorted_slice(&dense), Bitmap::from_sorted_slice(&sparse));
        let narrowed = bd.and(&bs);
        prop_assert!(narrowed.invariants_ok());
        let widened = narrowed.or(&bd);
        prop_assert!(widened.invariants_ok());
        // Round trip: narrowing then re-widening with the dense set restores it.
        prop_assert_eq!(widened.to_vec(), dense);
        // Structural equality follows from the normalize invariant.
        prop_assert_eq!(widened, bd);
    }

    #[test]
    fn candidate_set_reprs_byte_identical(seed in any::<u64>(), da in 0u8..3, db in 0u8..3) {
        let a: Vec<AnnotationId> = gen_ids(seed, da).into_iter().map(AnnotationId).collect();
        let b: Vec<AnnotationId> =
            gen_ids(seed.wrapping_add(7), db).into_iter().map(AnnotationId).collect();
        let mut ok = || Ok::<(), ()>(());
        let mut outs: Vec<Vec<AnnotationId>> = Vec::new();
        let mut unions: Vec<Vec<AnnotationId>> = Vec::new();
        for repr in [CandidateRepr::Bitmap, CandidateRepr::SortedVec] {
            let set = CandidateSet::from_posting(repr, &a);
            prop_assert_eq!(set.len(), a.len());
            let narrowed = set.intersect_posting(&b, &mut ok).unwrap();
            outs.push(narrowed.into_sorted_vec());
            let union = CandidateSet::union_postings(repr, &[&a[..], &b[..]]);
            unions.push(union.into_sorted_vec());
        }
        prop_assert_eq!(&outs[0], &outs[1]);
        prop_assert_eq!(&unions[0], &unions[1]);
    }
}
