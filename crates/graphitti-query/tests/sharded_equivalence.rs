//! The randomized cross-shard equivalence battery and the sharded concurrency tests.
//!
//! 1. **Cross-shard equivalence** — a [`ShardedSystem`] built by replaying the same
//!    write stream as an unsharded oracle must serve **byte-identical** results
//!    (serialized [`QueryResult`]s, result-page node ids included) for arbitrary
//!    random queries, at shard counts {1, 2, 3, 8}, with the scatter sequential or
//!    shard-parallel, the per-shard verify fan-out forced on, and the cut-level
//!    cache on or off.  The oracle is the single-threaded [`ReferenceExecutor`] on
//!    the equivalent unsharded system.
//! 2. **Routing / merge invariants** — (proptest) every annotation and referent
//!    lands on exactly one shard, re-routing is deterministic, and the
//!    scatter-gather union of the disjoint per-shard runs preserves global id order
//!    with no duplicates or drops under arbitrary partition skews.
//! 3. **Concurrency** — per-shard publishes interleaved with in-flight
//!    scatter-gather reads: every observed result is byte-identical to the
//!    reference answer at one *published* cut (a consistent cut — never a mix of
//!    shard states), observed cut versions are non-decreasing per reader, and
//!    footprint-disjoint publishes evict nothing from the cut-level cache.

mod common;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use common::{object_domains, random_query};
use datagen::influenza::{self, InfluenzaConfig};
use datagen::neuro::{self, NeuroConfig};
use datagen::rng::WorkloadRng;
use graphitti_core::{DataType, Graphitti, Marker, ObjectId, ShardedSystem};
use graphitti_query::{
    OntologyFilter, Query, QueryResult, ReferenceExecutor, ShardedExecutor, ShardedQueryService,
    ShardedServiceConfig, Target,
};

const SHARD_COUNTS: [usize; 4] = [1, 2, 3, 8];

fn result_bytes(result: &QueryResult) -> Vec<u8> {
    serde_json::to_string(result).expect("result serializes").into_bytes()
}

/// Replay `base` into a fresh unsharded oracle and an N-shard system (both from the
/// same study snapshot, so global ids *and a-graph node ids* coincide), then append
/// a deterministic streamed tail of mixed writes to both.
fn replayed_pair(base: &Graphitti, shards: usize, tail_seed: u64) -> (Graphitti, ShardedSystem) {
    let study = base.study_snapshot();
    let mut oracle = Graphitti::from_study_snapshot(&study).expect("oracle replay");
    let mut sharded = ShardedSystem::from_study_snapshot(&study, shards).expect("sharded replay");

    // A streamed tail: registers, annotations (some reusing committed referents) and
    // an ontology term, applied identically to both systems.
    let mut rng = WorkloadRng::new(tail_seed);
    let objects = oracle.object_count() as u64;
    let linear: Vec<ObjectId> =
        oracle.objects().iter().filter(|o| o.data_type.is_linear()).map(|o| o.id).collect();
    oracle.ontology_mut().add_concept("tail-term");
    sharded.ontology_edit(|o| {
        o.add_concept("tail-term");
    });
    for i in 0..8u64 {
        let name = format!("tail-seq-{i}");
        oracle.register_sequence(name.clone(), DataType::DnaSequence, 1_500, "tail-chr");
        sharded.register_sequence(name, DataType::DnaSequence, 1_500, "tail-chr");
    }
    for i in 0..24u64 {
        let obj = if rng.chance(0.5) && !linear.is_empty() {
            *rng.choose(&linear)
        } else {
            ObjectId(objects + rng.range_u64(0, 8))
        };
        let start = rng.range_u64(0, 1_200);
        let marker = Marker::interval(start, start + rng.range_u64(10, 80));
        let comment = if rng.chance(0.4) {
            format!("tail protease observation {i}")
        } else {
            format!("tail neutral note {i}")
        };
        let reuse = rng.chance(0.3) && oracle.referent_count() > 0;
        if reuse {
            let rid = graphitti_core::ReferentId(rng.range_u64(0, oracle.referent_count() as u64));
            let a = oracle.annotate().comment(comment.clone()).mark_existing(rid).commit();
            let b = sharded.annotate().comment(comment).mark_existing(rid).commit();
            assert_eq!(a, b, "reuse commit outcome must match the oracle");
        } else {
            let a = oracle.annotate().comment(comment.clone()).mark(obj, marker.clone()).commit();
            let b = sharded.annotate().comment(comment).mark(obj, marker).commit();
            assert_eq!(a, b, "commit outcome must match the oracle");
        }
    }
    assert!(sharded.verify_integrity().is_empty(), "{:?}", sharded.verify_integrity());
    (oracle, sharded)
}

/// The battery core: random queries, every execution mode, byte comparison.
fn assert_sharded_matches_reference(base: &Graphitti, seed: u64, queries: usize) {
    for shards in SHARD_COUNTS {
        let (oracle, sharded) = replayed_pair(base, shards, seed ^ 0xA11CE);
        let reference = ReferenceExecutor::new(&oracle);
        let domains = object_domains(&oracle);
        let mut rng = WorkloadRng::new(seed);
        let cases: Vec<(Query, Vec<u8>)> = (0..queries)
            .map(|_| {
                let q = random_query(&mut rng, &oracle, &domains);
                let expected = result_bytes(&reference.run(&q));
                (q, expected)
            })
            .collect();

        let cut = sharded.capture_cut();
        let cached = ShardedQueryService::new(
            cut.clone(),
            ShardedServiceConfig::default().with_cache_capacity(64).with_shard_parallel(true),
        );
        let uncached = ShardedQueryService::new(
            cut.clone(),
            ShardedServiceConfig::default()
                .with_cache_capacity(0)
                .with_verify_workers(2)
                .with_parallel_threshold(1),
        );
        for (i, (q, expected)) in cases.iter().enumerate() {
            let label = format!("shards={shards} query #{i}");
            let sequential = ShardedExecutor::new(&cut).run(q);
            assert_eq!(&result_bytes(&sequential), expected, "[{label}] sequential scatter");
            let parallel = ShardedExecutor::new(&cut)
                .with_shard_parallel(true)
                .with_forced_scatter(true)
                .with_verify_workers(3)
                .with_parallel_threshold(1)
                .run(q);
            assert_eq!(&result_bytes(&parallel), expected, "[{label}] parallel scatter");
            // Service with cache: first run misses, second must hit and stay equal.
            assert_eq!(&result_bytes(&cached.run(q).unwrap()), expected, "[{label}] cached miss");
            assert_eq!(&result_bytes(&cached.run(q).unwrap()), expected, "[{label}] cached hit");
            assert_eq!(&result_bytes(&uncached.run(q).unwrap()), expected, "[{label}] uncached");
        }
        assert!(
            cached.metrics().cache_hits >= queries as u64,
            "second pass must be served from the cut cache"
        );
    }
}

#[test]
fn influenza_sharded_matches_reference() {
    let base = influenza::build(&InfluenzaConfig::small().with_annotations(150));
    assert_sharded_matches_reference(&base, 0x5A4D_0001, 30);
}

#[test]
fn neuro_sharded_matches_reference() {
    let w = neuro::build(&NeuroConfig {
        seed: 11,
        images: 24,
        regions_per_image: 5,
        coordinate_systems: 3,
        dcn_prob: 0.4,
        tp53_prob: 0.3,
        canvas: 1_000.0,
    });
    assert_sharded_matches_reference(&w.system, 0x5A4D_0002, 30);
}

#[test]
fn empty_sharded_system_matches_reference() {
    // No corpus at all: every shard count must still agree with the oracle on
    // arbitrary queries (all empty).
    let mut rng = WorkloadRng::new(0x5A4D_0003);
    let oracle = Graphitti::new();
    let reference = ReferenceExecutor::new(&oracle);
    for shards in SHARD_COUNTS {
        let sharded = ShardedSystem::new(shards);
        let cut = sharded.capture_cut();
        for _ in 0..15 {
            let q = random_query(&mut rng, &oracle, &[]);
            assert_eq!(
                result_bytes(&ShardedExecutor::new(&cut).with_forced_scatter(true).run(&q)),
                result_bytes(&reference.run(&q)),
            );
        }
    }
}

mod routing_and_merge_props {
    use super::*;
    use proptest::prelude::*;

    /// Invariant body: for any schedule of annotations over a skewed object
    /// population, every annotation/referent has exactly one home, re-routing is
    /// deterministic (a second identical build produces identical homes), and the
    /// merged global candidate runs are sorted, duplicate-free and complete.
    fn check(shards: usize, object_picks: &[u8], protease_flags: &[bool]) {
        let build = || {
            let mut oracle = Graphitti::new();
            let mut sharded = ShardedSystem::new(shards);
            for i in 0..4u64 {
                oracle.register_sequence(format!("s{i}"), DataType::DnaSequence, 2_000, "chr1");
                sharded.register_sequence(format!("s{i}"), DataType::DnaSequence, 2_000, "chr1");
            }
            for (i, (&pick, &protease)) in object_picks.iter().zip(protease_flags).enumerate() {
                // Arbitrary skew: `pick` concentrates annotations on few objects.
                let obj = ObjectId(u64::from(pick % 4));
                let comment =
                    if protease { format!("protease motif {i}") } else { format!("quiet {i}") };
                let marker = Marker::interval(i as u64 * 20, i as u64 * 20 + 10);
                oracle
                    .annotate()
                    .comment(comment.clone())
                    .mark(obj, marker.clone())
                    .commit()
                    .unwrap();
                sharded.annotate().comment(comment).mark(obj, marker).commit().unwrap();
            }
            (oracle, sharded)
        };
        let (oracle, sharded) = build();
        let (_, sharded2) = build();

        // Exactly-one-home partition + deterministic re-routing.
        prop_assert!(sharded.verify_integrity().is_empty());
        let mut seen = vec![0usize; sharded.annotation_count()];
        for g in 0..sharded.annotation_count() as u64 {
            let home = sharded.annotation_home(graphitti_core::AnnotationId(g)).unwrap();
            let home2 = sharded2.annotation_home(graphitti_core::AnnotationId(g)).unwrap();
            prop_assert_eq!(home, home2, "re-routing must be deterministic");
            prop_assert!(home.shard < shards);
            seen[g as usize] += 1;
        }
        prop_assert!(seen.iter().all(|&n| n == 1));

        // Merged candidate runs: sorted ascending, no duplicates, no drops — equal
        // to the oracle's candidate set whatever the partition skew.
        let cut = sharded.capture_cut();
        let q = Query::new(Target::AnnotationContents).with_phrase("protease motif");
        let merged = ShardedExecutor::new(&cut).with_forced_scatter(true).run(&q);
        let expected = ReferenceExecutor::new(&oracle).run(&q);
        prop_assert!(merged.annotations.windows(2).all(|w| w[0] < w[1]), "sorted, no dups");
        prop_assert_eq!(&merged.annotations, &expected.annotations, "no drops, no extras");
        prop_assert_eq!(result_bytes(&merged), result_bytes(&expected));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn partition_is_total_deterministic_and_merge_is_lossless(
            shards in 1usize..9,
            object_picks in prop::collection::vec(0u8..8, 1..24),
            protease_flags in prop::collection::vec(any::<bool>(), 24),
        ) {
            check(shards, &object_picks, &protease_flags);
        }
    }
}

/// Per-shard publishes interleave with in-flight scatter-gather reads: every
/// observed result must be byte-identical to the reference answer at one published
/// cut (each batch appends exactly one matching annotation, so per-cut answers are
/// pairwise distinct and a torn cross-shard read — some shards newer than others —
/// can match no published answer), and versions must be non-decreasing per reader.
#[test]
fn scatter_gather_reads_observe_one_consistent_cut_under_publishes() {
    let shards = 3usize;
    let mut oracle = Graphitti::new();
    let mut sharded = ShardedSystem::new(shards);
    for i in 0..6u64 {
        oracle.register_sequence(format!("s{i}"), DataType::DnaSequence, 1_000_000, "chr1");
        sharded.register_sequence(format!("s{i}"), DataType::DnaSequence, 1_000_000, "chr1");
    }
    for i in 0..10u64 {
        let obj = ObjectId(i % 6);
        let marker = Marker::interval(i * 100, i * 100 + 50);
        oracle
            .annotate()
            .comment(format!("protease motif {i}"))
            .mark(obj, marker.clone())
            .commit()
            .unwrap();
        sharded
            .annotate()
            .comment(format!("protease motif {i}"))
            .mark(obj, marker)
            .commit()
            .unwrap();
    }

    let query = Query::new(Target::AnnotationContents).with_phrase("protease motif");
    let service = Arc::new(ShardedQueryService::new(
        sharded.capture_cut(),
        ShardedServiceConfig::default().with_cache_capacity(16).with_shard_parallel(true),
    ));
    let mut legal: Vec<Vec<u8>> = vec![result_bytes(&ReferenceExecutor::new(&oracle).run(&query))];

    let publishes = 12u64;
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let mut readers = Vec::new();
        for _ in 0..3 {
            let service = Arc::clone(&service);
            let query = query.clone();
            let stop = &stop;
            readers.push(scope.spawn(move || {
                let mut observed = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    observed.push(result_bytes(&service.run(&query).unwrap()));
                }
                observed
            }));
        }

        for b in 0..publishes {
            // Each batch routes its writes to whichever shard the target object
            // hashes to — successive batches hit different shards, so the readers
            // race against genuinely per-shard publishes.
            let obj = ObjectId(b % 6);
            let marker = Marker::interval(500_000 + b * 100, 500_000 + b * 100 + 50);
            let mut ob = oracle.batch();
            ob.annotate()
                .comment(format!("protease motif late {b}"))
                .mark(obj, marker.clone())
                .commit()
                .unwrap();
            ob.annotate()
                .comment(format!("noise {b}"))
                .mark(obj, Marker::interval(700_000 + b * 70, 700_000 + b * 70 + 30))
                .commit()
                .unwrap();
            ob.commit();
            let mut sb = sharded.batch();
            sb.annotate()
                .comment(format!("protease motif late {b}"))
                .mark(obj, marker)
                .commit()
                .unwrap();
            sb.annotate()
                .comment(format!("noise {b}"))
                .mark(obj, Marker::interval(700_000 + b * 70, 700_000 + b * 70 + 30))
                .commit()
                .unwrap();
            sb.commit();
            service.publish(sharded.capture_cut()).unwrap();
            legal.push(result_bytes(&ReferenceExecutor::new(&oracle).run(&query)));
            std::thread::yield_now();
        }
        stop.store(true, Ordering::Relaxed);

        for reader in readers {
            let observed = reader.join().expect("reader panicked");
            assert!(!observed.is_empty());
            let mut last_idx = 0usize;
            for bytes in observed {
                let idx = legal.iter().position(|l| l == &bytes).expect(
                    "reader saw a result matching no published cut's reference answer \
                     (a torn cross-shard read)",
                );
                assert!(idx >= last_idx, "reader went back in time: cut #{idx} after #{last_idx}");
                last_idx = idx;
            }
        }
    });
    assert_eq!(service.metrics().publishes, publishes);
    assert_eq!(service.current_version(), sharded.version());
}

/// Footprint-disjoint publishes (replicated ingest batches) land mid-flight while
/// readers keep a content query and an ontology query hot: no entry is ever
/// evicted, every publish is accounted partial, misses stay bounded by the initial
/// population, and every served answer stays byte-identical to the (unchanged)
/// reference.  A footprint-intersecting annotation afterwards still evicts.
#[test]
fn shard_local_disjoint_publishes_evict_nothing_mid_flight() {
    let shards = 4usize;
    let mut oracle = Graphitti::new();
    let mut sharded = ShardedSystem::new(shards);
    let term = oracle.ontology_mut().add_concept("Motif");
    sharded.ontology_edit(|o| {
        o.add_concept("Motif");
    });
    for i in 0..6u64 {
        oracle.register_sequence(format!("s{i}"), DataType::DnaSequence, 1_000_000, "chr1");
        sharded.register_sequence(format!("s{i}"), DataType::DnaSequence, 1_000_000, "chr1");
    }
    for i in 0..10u64 {
        let obj = ObjectId(i % 6);
        let marker = Marker::interval(i * 100, i * 100 + 50);
        oracle
            .annotate()
            .comment(format!("protease motif {i}"))
            .mark(obj, marker.clone())
            .cite_term(term)
            .commit()
            .unwrap();
        sharded
            .annotate()
            .comment(format!("protease motif {i}"))
            .mark(obj, marker)
            .cite_term(term)
            .commit()
            .unwrap();
    }

    let phrase_query = Query::new(Target::AnnotationContents).with_phrase("protease motif");
    let term_query =
        Query::new(Target::AnnotationContents).with_ontology(OntologyFilter::CitesTerm(term));
    let expected_phrase = result_bytes(&ReferenceExecutor::new(&oracle).run(&phrase_query));
    let expected_term = result_bytes(&ReferenceExecutor::new(&oracle).run(&term_query));

    let service = Arc::new(ShardedQueryService::new(
        sharded.capture_cut(),
        ShardedServiceConfig::default().with_cache_capacity(16),
    ));
    let publishes = 10u64;
    let stop = AtomicBool::new(false);
    let observed: u64 = std::thread::scope(|scope| {
        let mut readers = Vec::new();
        for r in 0..3usize {
            let service = Arc::clone(&service);
            let phrase_query = phrase_query.clone();
            let term_query = term_query.clone();
            let (expected_phrase, expected_term) = (&expected_phrase, &expected_term);
            let stop = &stop;
            readers.push(scope.spawn(move || {
                let mut count = 0u64;
                let mut i = r;
                while !stop.load(Ordering::Relaxed) {
                    let (q, expected) = if i % 2 == 0 {
                        (&phrase_query, expected_phrase)
                    } else {
                        (&term_query, expected_term)
                    };
                    assert_eq!(
                        &result_bytes(&service.run(q).unwrap()),
                        expected,
                        "ingest publishes must never change a served answer"
                    );
                    count += 1;
                    i += 1;
                }
                count
            }));
        }

        for b in 0..publishes {
            // Applied to the oracle too: registrations cannot change either answer
            // (a fresh object has no referents), but they keep the oracle's a-graph
            // node numbering aligned for the post-stream annotation comparison.
            let mut batch = sharded.batch();
            let mut ob = oracle.batch();
            for i in 0..3 {
                batch.register_sequence(
                    format!("ingest-{b}-{i}"),
                    DataType::DnaSequence,
                    500,
                    "chr2",
                );
                ob.register_sequence(format!("ingest-{b}-{i}"), DataType::DnaSequence, 500, "chr2");
            }
            ob.commit();
            batch.commit();
            service.publish(sharded.capture_cut()).unwrap();
            std::thread::yield_now();
        }
        stop.store(true, Ordering::Relaxed);
        readers.into_iter().map(|r| r.join().expect("reader panicked")).sum()
    });

    let m = service.metrics();
    assert_eq!(m.publishes, publishes);
    assert_eq!(m.cache_entries_evicted, 0, "ingest publishes must evict nothing: {m:?}");
    assert_eq!(m.cache_partial_invalidations, publishes);
    assert_eq!(m.cache_full_invalidations, 0);
    assert_eq!(service.cache_len(), 2);
    // The service executes on the caller thread, so each of the 3 readers can miss
    // each of the two keys at most once before the first insert lands.
    assert!(m.cache_misses <= 6, "publishes must not force re-execution: {m:?}");
    assert_eq!(m.cache_hits + m.cache_misses, observed);

    // A footprint-intersecting annotation commit still evicts both entries.
    let obj = ObjectId(0);
    oracle
        .annotate()
        .comment("protease motif late")
        .mark(obj, Marker::interval(900_000, 900_050))
        .cite_term(term)
        .commit()
        .unwrap();
    sharded
        .annotate()
        .comment("protease motif late")
        .mark(obj, Marker::interval(900_000, 900_050))
        .cite_term(term)
        .commit()
        .unwrap();
    service.publish(sharded.capture_cut()).unwrap();
    assert_eq!(service.metrics().cache_entries_evicted, 2);
    assert_eq!(
        result_bytes(&service.run(&phrase_query).unwrap()),
        result_bytes(&ReferenceExecutor::new(&oracle).run(&phrase_query))
    );
}
