//! Property tests for the query engine: determinism, plan feasibility, and
//! monotonicity of filtering (adding a conjunct never grows the result).

use graphitti_core::{DataType, Graphitti, Marker};
use graphitti_query::{Executor, Query, ReferentFilter, Target};
use proptest::prelude::*;

/// A deterministic small system of protease / non-protease interval annotations.
fn build(seed: u64, n: usize) -> Graphitti {
    let mut state = seed.wrapping_mul(2654435761).wrapping_add(12345);
    let mut next = || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        state >> 33
    };
    let mut sys = Graphitti::new();
    let seq = sys.register_sequence("seq", DataType::DnaSequence, 100_000, "chr1");
    let img = sys.register_image("img", 1000, 1000, "confocal", "cs");
    for i in 0..n {
        let protease = next() % 2 == 0;
        let comment = if protease { "protease motif here" } else { "quiet region" };
        if next() % 3 == 0 {
            let x = (next() % 900) as f64;
            let _ = sys
                .annotate()
                .comment(comment)
                .mark(img, Marker::region(x, x, x + 30.0, x + 30.0))
                .commit();
        } else {
            let start = next() % 99000;
            let _ = sys
                .annotate()
                .comment(comment)
                .mark(seq, Marker::interval(start, start + 40))
                .commit();
        }
        let _ = i;
    }
    sys
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn query_is_deterministic(seed in any::<u64>(), n in 0usize..60) {
        let sys = build(seed, n);
        let q = Query::new(Target::AnnotationContents).with_phrase("protease");
        let r1 = Executor::new(&sys).run(&q);
        let r2 = Executor::new(&sys).run(&q);
        prop_assert_eq!(r1.annotations, r2.annotations);
        prop_assert_eq!(r1.objects, r2.objects);
    }

    #[test]
    fn plan_is_selectivity_ordered(seed in any::<u64>(), n in 1usize..40) {
        let sys = build(seed, n);
        let q = Query::new(Target::ConnectionGraphs)
            .with_phrase("protease motif")
            .with_referent(ReferentFilter::OfType(DataType::DnaSequence));
        let plan = Executor::new(&sys).plan(&q);
        for w in plan.order.windows(2) {
            prop_assert!(w[0].selectivity <= w[1].selectivity);
        }
    }

    #[test]
    fn random_plans_are_selectivity_ordered_and_complete(
        seed in any::<u64>(),
        n in 1usize..40,
        phrases in prop::collection::vec(0usize..4, 0..3),
        types in prop::collection::vec(0usize..2, 0..3),
        terms in prop::collection::vec(0u32..5, 0..3),
    ) {
        use graphitti_query::OntologyFilter;
        use ontology::ConceptId;
        const PHRASES: [&str; 4] = ["protease", "quiet region", "motif here", "absent words"];
        const TYPES: [DataType; 2] = [DataType::DnaSequence, DataType::Image];
        let sys = build(seed, n);
        let mut q = Query::new(Target::ConnectionGraphs);
        for p in &phrases {
            q = q.with_phrase(PHRASES[*p]);
        }
        for t in &types {
            q = q.with_referent(ReferentFilter::OfType(TYPES[*t]));
        }
        for t in &terms {
            q = q.with_ontology(OntologyFilter::CitesTerm(ConceptId(*t)));
        }
        let plan = Executor::new(&sys).plan(&q);
        // every canonical subquery appears exactly once (the executor canonicalizes
        // first, so duplicate conjuncts collapse before planning) …
        prop_assert_eq!(plan.order.len(), q.canonicalize().subquery_count());
        // … estimates are valid fractions, and the order is ascending selectivity
        for s in &plan.order {
            prop_assert!((0.0..=1.0).contains(&s.selectivity), "bad fraction {}", s.selectivity);
        }
        for w in plan.order.windows(2) {
            prop_assert!(w[0].selectivity <= w[1].selectivity);
        }
    }

    #[test]
    fn adding_conjunct_never_grows_results(seed in any::<u64>(), n in 1usize..50) {
        let sys = build(seed, n);
        let broad = Query::new(Target::Referents)
            .with_referent(ReferentFilter::OfType(DataType::DnaSequence));
        let narrow = Query::new(Target::Referents)
            .with_referent(ReferentFilter::OfType(DataType::DnaSequence))
            .with_phrase("protease");
        let rb = Executor::new(&sys).run(&broad);
        let rn = Executor::new(&sys).run(&narrow);
        prop_assert!(rn.referents.len() <= rb.referents.len());
    }

    #[test]
    fn phrase_results_actually_contain_phrase(seed in any::<u64>(), n in 0usize..60) {
        let sys = build(seed, n);
        let q = Query::new(Target::AnnotationContents).with_phrase("protease");
        let res = Executor::new(&sys).run(&q);
        for aid in res.annotations {
            let ann = sys.annotation(aid).unwrap();
            let text = ann.comment().unwrap_or("").to_lowercase();
            prop_assert!(text.contains("protease"));
        }
    }

    #[test]
    fn referent_type_filter_only_returns_that_type(seed in any::<u64>(), n in 0usize..60) {
        let sys = build(seed, n);
        let q = Query::new(Target::Referents)
            .with_referent(ReferentFilter::OfType(DataType::Image));
        let res = Executor::new(&sys).run(&q);
        for rid in res.referents {
            let r = sys.referent(rid).unwrap();
            let ty = sys.object(r.object).unwrap().data_type;
            prop_assert_eq!(ty, DataType::Image);
        }
    }
}
