//! The chaos battery: randomized fault injection on the read path, asserting the
//! resilience contract end to end (see `resilience` module docs):
//!
//! * **Liveness** — every accepted ticket resolves; a shed submission fails typed
//!   at the door.  No query ever hangs, whatever faults fire around it.
//! * **Correctness** — a non-degraded result is byte-identical to the
//!   [`ReferenceExecutor`]'s answer; a degraded result is byte-identical to the
//!   same query executed with the missing shards masked out — an exact, *marked*
//!   subset, never a torn mix of shard states.
//! * **Metric consistency** — `shed + completed + failed == submitted` once every
//!   ticket has resolved, and the pool-size invariant (`live_workers == workers`)
//!   is restored after every injected worker death.
//!
//! The `chaos_quick_*` tests are the bounded CI gate (slow shard, shard outage,
//! worker panic/abort, overload — at shard/worker counts 1 and 4); the battery
//! and the proptest block drive randomized schedules over the same contract.

mod common;

use std::time::{Duration, Instant};

use common::{object_domains, random_query};
use datagen::rng::WorkloadRng;
use graphitti_core::{DataType, Graphitti, Marker, ObjectId, ShardedSystem};
use graphitti_query::{
    ChaosConfig, Query, QueryBudget, QueryResult, QueryService, ReferenceExecutor, RetryPolicy,
    ServiceConfig, ServiceError, ShardedExecutor, ShardedQueryService, ShardedServiceConfig,
    Target,
};

fn result_bytes(result: &QueryResult) -> Vec<u8> {
    serde_json::to_string(result).expect("result serializes").into_bytes()
}

/// Build the same annotation corpus into an unsharded oracle and an N-shard
/// system by identical incremental replay (so global ids *and* a-graph node ids
/// coincide — see the sharded equivalence battery).
fn dual_corpus(shards: usize, n: u64) -> (Graphitti, ShardedSystem) {
    let mut oracle = Graphitti::new();
    let mut sharded = ShardedSystem::new(shards);
    let term = oracle.ontology_mut().add_concept("Motif");
    sharded.ontology_edit(|o| {
        o.add_concept("Motif");
    });
    for i in 0..6u64 {
        oracle.register_sequence(format!("s{i}"), DataType::DnaSequence, 100_000, "chr1");
        sharded.register_sequence(format!("s{i}"), DataType::DnaSequence, 100_000, "chr1");
    }
    for i in 0..n {
        let obj = ObjectId(i % 6);
        let marker = Marker::interval(i * 90, i * 90 + 40);
        let comment = if i % 2 == 0 {
            format!("protease motif {i}")
        } else {
            format!("quiet background note {i}")
        };
        let mut a = oracle.annotate().comment(comment.clone()).mark(obj, marker.clone());
        let mut b = sharded.annotate().comment(comment).mark(obj, marker);
        if i % 3 == 0 {
            a = a.cite_term(term);
            b = b.cite_term(term);
        }
        a.commit().unwrap();
        b.commit().unwrap();
    }
    (oracle, sharded)
}

fn corpus(n: u64) -> Graphitti {
    dual_corpus(1, n).0
}

/// A fast retry policy for tests: real retries, negligible backoff wall-clock.
fn quick_retry(attempts: u32) -> RetryPolicy {
    RetryPolicy::default()
        .with_max_attempts(attempts)
        .with_base_delay(Duration::from_micros(200))
        .with_max_delay(Duration::from_millis(2))
}

/// Poll (bounded) until `cond` holds — the respawn guard runs on the dying
/// worker thread *after* the in-flight ticket resolves, so pool-size assertions
/// must wait for it.
fn poll_until(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while !cond() {
        assert!(Instant::now() < deadline, "not reached within 5s: {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Shard outage under `allow_partial` degrades to the masked-reference answer
/// (the exact marked subset); without it, the same outage fails fast with
/// [`ServiceError::ShardUnavailable`] after the whole retry budget.
#[test]
fn chaos_quick_shard_outage_degrades_to_masked_reference() {
    for shards in [1usize, 4] {
        let (oracle, sharded) = dual_corpus(shards, 30);
        let cut = sharded.capture_cut();
        let reference = ReferenceExecutor::new(&oracle);
        let domains = object_domains(&oracle);
        let mut rng = WorkloadRng::new(0xD06 ^ shards as u64);
        let down = shards - 1;
        let service = ShardedQueryService::new(
            cut.clone(),
            ShardedServiceConfig::default()
                .with_cache_capacity(0)
                .with_retry(quick_retry(2))
                .with_chaos(ChaosConfig::new().with_shard_outage(down, u64::MAX)),
        );
        for i in 0..6 {
            let q = random_query(&mut rng, &oracle, &domains);
            let r = service
                .run_with_budget(&q, QueryBudget::unbounded().with_allow_partial(true))
                .expect("allow_partial turns the outage into a degraded answer");
            assert_eq!(r.missing_shards, vec![down], "shards={shards} query #{i}");
            let masked = ShardedExecutor::new(&cut)
                .with_allow_partial(true)
                .with_shard_mask(!(1u64 << down))
                .run(&q);
            assert_eq!(
                result_bytes(&r),
                result_bytes(&masked),
                "degraded answer must be the exact marked subset (shards={shards}, query #{i})"
            );
            assert_eq!(
                service.run(&q),
                Err(ServiceError::ShardUnavailable { shard: down, attempts: 2 }),
                "without allow_partial the outage must fail fast, typed"
            );
            // The same query with no fault in the way is complete and reference-exact.
            let clean = ShardedExecutor::new(&cut).run(&q);
            assert!(!clean.is_degraded());
            assert_eq!(result_bytes(&clean), result_bytes(&reference.run(&q)));
        }
        let m = service.metrics();
        assert_eq!(m.degraded, 6);
        assert_eq!(m.completed, 6);
        assert_eq!(m.failed, 6);
        assert_eq!(m.shed + m.completed + m.failed, m.submitted);
    }
}

/// A slow shard times out per attempt, is retried with backoff, and the query
/// completes (reference-exact) within the retry budget; a *permanently* slow
/// shard exhausts the budget and either degrades or fails typed.
#[test]
fn chaos_quick_slow_shard_times_out_retries_and_recovers() {
    for shards in [1usize, 4] {
        let (oracle, sharded) = dual_corpus(shards, 30);
        let cut = sharded.capture_cut();
        let slow = shards - 1;
        let q = Query::new(Target::AnnotationContents).with_phrase("protease motif");
        let expected = result_bytes(&ReferenceExecutor::new(&oracle).run(&q));

        // One slow attempt, then healthy: the retry rides it out.
        let chaos = ChaosConfig::new().with_slow_shard(slow, Duration::from_millis(60), 1);
        let service = ShardedQueryService::new(
            cut.clone(),
            ShardedServiceConfig::default()
                .with_cache_capacity(0)
                .with_shard_timeout(Duration::from_millis(10))
                .with_retry(quick_retry(3))
                .with_chaos(chaos.clone()),
        );
        let r = service.run(&q).expect("one timed-out attempt is within the retry budget");
        assert!(!r.is_degraded());
        assert_eq!(result_bytes(&r), expected, "shards={shards}");
        assert_eq!(chaos.attempts_against(slow), 2, "one timeout + one clean retry");

        // Permanently slow: the budget exhausts — typed fail-fast, or a marked
        // subset when the caller opted into partial answers.
        let strict = ShardedQueryService::new(
            cut.clone(),
            ShardedServiceConfig::default()
                .with_cache_capacity(0)
                .with_shard_timeout(Duration::from_millis(10))
                .with_retry(quick_retry(3))
                .with_chaos(ChaosConfig::new().with_slow_shard(
                    slow,
                    Duration::from_millis(60),
                    u64::MAX,
                )),
        );
        assert_eq!(
            strict.run(&q),
            Err(ServiceError::ShardUnavailable { shard: slow, attempts: 3 }),
            "shards={shards}"
        );
        let partial = strict
            .run_with_budget(&q, QueryBudget::unbounded().with_allow_partial(true))
            .expect("partial answer accepted");
        assert_eq!(partial.missing_shards, vec![slow]);
        let masked = ShardedExecutor::new(&cut)
            .with_allow_partial(true)
            .with_shard_mask(!(1u64 << slow))
            .run(&q);
        assert_eq!(result_bytes(&partial), result_bytes(&masked));
    }
}

/// Regression (retry-nap budget clamp): the backoff must never nap the query
/// budget away.  Unclamped, the 600–700ms decorrelated-jitter naps below would
/// sleep straight past the 1.2s deadline before the third attempt (≥1.2s of
/// accumulated backoff), converting a recoverable outage into
/// [`ServiceError::DeadlineExceeded`] with a retry still owed.  Clamped, the
/// final nap is pegged to `remaining - estimated attempt cost`, so the tight
/// deadline still gets every configured attempt and the query completes.
#[test]
fn tight_deadline_retry_schedule_gets_all_configured_attempts() {
    for shards in [1usize, 4] {
        let (oracle, sharded) = dual_corpus(shards, 24);
        let cut = sharded.capture_cut();
        let q = Query::new(Target::AnnotationContents).with_phrase("protease motif");
        let expected = result_bytes(&ReferenceExecutor::new(&oracle).run(&q));
        let down = shards - 1;
        let chaos = ChaosConfig::new().with_shard_outage(down, 2);
        let service = ShardedQueryService::new(
            cut,
            ShardedServiceConfig::default()
                .with_cache_capacity(0)
                .with_shard_timeout(Duration::from_millis(200))
                .with_retry(
                    RetryPolicy::default()
                        .with_max_attempts(3)
                        .with_base_delay(Duration::from_millis(600))
                        .with_max_delay(Duration::from_millis(700)),
                )
                .with_chaos(chaos.clone()),
        );
        let budget = QueryBudget::unbounded().with_deadline(Duration::from_millis(1_200));
        let r = service
            .run_with_budget(&q, budget)
            .expect("clamped backoffs leave room for the recovering third attempt");
        assert!(!r.is_degraded(), "shards={shards}");
        assert_eq!(result_bytes(&r), expected, "shards={shards}");
        assert_eq!(chaos.attempts_against(down), 3, "two outages + one clean retry");
    }
}

/// Regression (retry-nap budget clamp, the other edge): when the remaining
/// budget cannot fit even one more attempt, the retry loop reports the shard
/// down *now* — the consistent typed [`ServiceError::ShardUnavailable`] (or a
/// marked degraded subset under `allow_partial`) — instead of sleeping out the
/// budget and surfacing [`ServiceError::DeadlineExceeded`].
#[test]
fn exhausted_retry_budget_fails_fast_and_typed() {
    let (_oracle, sharded) = dual_corpus(2, 24);
    let cut = sharded.capture_cut();
    let q = Query::new(Target::AnnotationContents).with_phrase("protease motif");
    let config = ShardedServiceConfig::default()
        .with_cache_capacity(0)
        // The attempt-cost estimate (the shard timeout) exceeds the whole 300ms
        // budget: after the first failure there is provably no room for a
        // retry, so the loop must give up on the shard immediately.
        .with_shard_timeout(Duration::from_millis(500))
        .with_retry(quick_retry(3))
        .with_chaos(ChaosConfig::new().with_shard_outage(1, u64::MAX));
    let service = ShardedQueryService::new(cut.clone(), config);
    let started = Instant::now();
    let strict_budget = QueryBudget::unbounded().with_deadline(Duration::from_millis(300));
    match service.run_with_budget(&q, strict_budget) {
        Err(ServiceError::ShardUnavailable { shard, attempts }) => {
            assert_eq!(shard, 1);
            assert_eq!(attempts, 1, "no room for a retry: exactly the attempt that fit");
        }
        other => panic!("expected a fast typed shard failure, got {other:?}"),
    }
    assert!(
        started.elapsed() < Duration::from_millis(300),
        "fail fast — before the deadline, not by deadline-ing out"
    );
    let partial = service
        .run_with_budget(
            &q,
            QueryBudget::unbounded()
                .with_deadline(Duration::from_millis(300))
                .with_allow_partial(true),
        )
        .expect("opted-in callers get the marked subset, not an error");
    assert_eq!(partial.missing_shards, vec![1]);
    let masked =
        ShardedExecutor::new(&cut).with_allow_partial(true).with_shard_mask(!(1u64 << 1)).run(&q);
    assert_eq!(result_bytes(&partial), result_bytes(&masked));
}

/// An injected worker panic (inside the catch) and an injected worker abort
/// (escaping it) each fail exactly one query with a typed error; the pool keeps
/// serving reference-exact answers and keeps its size — respawning iff the
/// thread actually died.
#[test]
fn chaos_quick_worker_panic_and_abort_keep_pool_serving() {
    let sys = corpus(24);
    let domains = object_domains(&sys);
    let reference = ReferenceExecutor::new(&sys);
    for workers in [1usize, 4] {
        for abort in [false, true] {
            let chaos = if abort {
                ChaosConfig::new().with_worker_abort_on(2)
            } else {
                ChaosConfig::new().with_worker_panic_on(2)
            };
            let service = QueryService::new(
                sys.snapshot(),
                ServiceConfig::default()
                    .with_workers(workers)
                    .with_cache_capacity(0)
                    .with_chaos(chaos),
            );
            let mut rng = WorkloadRng::new(0xC0A5 ^ workers as u64);
            let mut panics = 0u64;
            for i in 0..6 {
                let q = random_query(&mut rng, &sys, &domains);
                match service.run(q.clone()) {
                    Ok(r) => assert_eq!(
                        result_bytes(&r),
                        result_bytes(&reference.run(&q)),
                        "workers={workers} abort={abort} query #{i}"
                    ),
                    Err(ServiceError::WorkerPanicked) => panics += 1,
                    Err(e) => panic!("workers={workers} abort={abort}: unexpected error: {e}"),
                }
            }
            assert_eq!(panics, 1, "exactly the injected execution fails");
            poll_until("pool size restored", || service.live_workers() == workers);
            let expect_respawns = u64::from(abort);
            poll_until("respawn accounted", || {
                service.metrics().workers_respawned == expect_respawns
            });
            let m = service.metrics();
            assert_eq!(m.worker_panics, 1);
            assert_eq!(m.shed + m.completed + m.failed, m.submitted);
        }
    }
}

/// Admission control under overload: once the bounded queue is full, submission
/// sheds with a typed [`ServiceError::Overloaded`] — and after the stall drains,
/// the service admits and serves again.  Every accepted ticket resolves.
#[test]
fn chaos_quick_overload_sheds_typed_and_recovers() {
    let sys = corpus(24);
    let q = Query::new(Target::AnnotationContents).with_phrase("protease motif");
    let expected = result_bytes(&ReferenceExecutor::new(&sys).run(&q));
    let service = QueryService::new(
        sys.snapshot(),
        ServiceConfig::default()
            .with_workers(1)
            .with_queue_capacity(1)
            .with_cache_capacity(0)
            .with_chaos(ChaosConfig::new().with_stuck_query_on(1, Duration::from_millis(150))),
    );
    // Fill the single-slot queue behind the stuck execution until admission sheds.
    let mut accepted = vec![service.submit(q.clone()).unwrap()];
    let shed_err = loop {
        match service.submit(q.clone()) {
            Ok(ticket) => accepted.push(ticket),
            Err(e) => break e,
        }
    };
    assert_eq!(shed_err, ServiceError::Overloaded { depth: 1 });
    // Liveness: the stall is bounded, every accepted ticket resolves correctly.
    for ticket in accepted {
        assert_eq!(result_bytes(&ticket.wait().unwrap()), expected);
    }
    // Recovery: the queue drained; a fresh submission is admitted and served.
    assert_eq!(result_bytes(&service.run(q.clone()).unwrap()), expected);
    let m = service.metrics();
    assert!(m.shed >= 1, "admission control must have shed: {m:?}");
    assert_eq!(m.failed, 0);
    assert_eq!(m.shed + m.completed + m.failed, m.submitted);
}

/// The randomized battery: random queries under random chaos schedules, budgets
/// and cancellations, on both serving layers.  Asserts the full contract —
/// liveness, correctness (reference- or masked-reference-exact), typed errors
/// only in their legal contexts, and metric consistency — every round.
#[test]
fn randomized_chaos_battery_liveness_correctness_and_metrics() {
    let mut rng = WorkloadRng::new(0x0BA7_7E41);

    // Pool rounds: stuck/panic/abort chaos + small bounded queues + deadlines +
    // ticket cancellation, sixteen submissions a round.
    let sys = corpus(40);
    let domains = object_domains(&sys);
    let reference = ReferenceExecutor::new(&sys);
    for round in 0..6u64 {
        let mut chaos = ChaosConfig::new()
            .with_stuck_query_on(1 + rng.range_u64(0, 4), Duration::from_millis(40));
        if rng.chance(0.5) {
            chaos = chaos.with_worker_panic_on(2 + rng.range_u64(0, 6));
        } else {
            chaos = chaos.with_worker_abort_on(2 + rng.range_u64(0, 6));
        }
        let workers = 1 + rng.range_usize(0, 3);
        let capacity = 1 + rng.range_usize(0, 3);
        let service = QueryService::new(
            sys.snapshot(),
            ServiceConfig::default()
                .with_workers(workers)
                .with_queue_capacity(capacity)
                .with_cache_capacity(0)
                .with_chaos(chaos),
        );
        let mut overloaded = 0u64;
        let mut tickets = Vec::new();
        for _ in 0..16 {
            let q = random_query(&mut rng, &sys, &domains);
            let budget = if rng.chance(0.15) {
                QueryBudget::unbounded().with_deadline(Duration::ZERO)
            } else {
                QueryBudget::unbounded()
            };
            match service.submit_with_budget(q.clone(), budget) {
                Ok(ticket) => {
                    let cancelled = rng.chance(0.1);
                    if cancelled {
                        ticket.cancel();
                    }
                    tickets.push((q, budget, cancelled, ticket));
                }
                Err(ServiceError::Overloaded { depth }) => {
                    assert_eq!(depth, capacity, "round {round}: shed depth is the full queue");
                    overloaded += 1;
                }
                Err(e) => panic!("round {round}: submission failed untyped-ly: {e}"),
            }
        }
        // Liveness + correctness: every accepted ticket resolves, each into a
        // reference-exact result or a typed error legal for its schedule.
        for (q, budget, cancelled, ticket) in tickets {
            match ticket.wait() {
                Ok(r) => {
                    assert!(!r.is_degraded(), "the unsharded pool never degrades");
                    assert_eq!(result_bytes(&r), result_bytes(&reference.run(&q)));
                }
                Err(ServiceError::DeadlineExceeded) => assert!(budget.deadline.is_some()),
                Err(ServiceError::Cancelled) => assert!(cancelled),
                Err(ServiceError::WorkerPanicked) => {}
                Err(e) => panic!("round {round}: illegal ticket error: {e}"),
            }
        }
        let m = service.metrics();
        assert_eq!(m.submitted, 16);
        assert_eq!(m.shed, overloaded);
        assert_eq!(m.shed + m.completed + m.failed, m.submitted, "round {round}: {m:?}");
        poll_until("pool size restored", || service.live_workers() == workers);
    }

    // Sharded rounds: outage/slow-shard chaos with finite or permanent fault
    // budgets, partiality on and off, at shard counts 1/2/4.
    for round in 0..4u64 {
        let shards = [1usize, 2, 4][rng.range_usize(0, 3)];
        let (oracle, sharded) = dual_corpus(shards, 24);
        let cut = sharded.capture_cut();
        let reference = ReferenceExecutor::new(&oracle);
        let domains = object_domains(&oracle);
        let target = rng.range_usize(0, shards);
        let fault_budget = if rng.chance(0.5) { u64::MAX } else { rng.range_u64(1, 3) };
        let chaos = if rng.chance(0.5) {
            ChaosConfig::new().with_shard_outage(target, fault_budget)
        } else {
            ChaosConfig::new().with_slow_shard(target, Duration::from_millis(40), fault_budget)
        };
        let service = ShardedQueryService::new(
            cut.clone(),
            ShardedServiceConfig::default()
                .with_cache_capacity(0)
                .with_shard_timeout(Duration::from_millis(8))
                .with_retry(quick_retry(2))
                .with_chaos(chaos),
        );
        let mut degraded = 0u64;
        for i in 0..6 {
            let q = random_query(&mut rng, &oracle, &domains);
            let allow = rng.chance(0.6);
            match service.run_with_budget(&q, QueryBudget::unbounded().with_allow_partial(allow)) {
                Ok(r) if !r.is_degraded() => {
                    assert_eq!(
                        result_bytes(&r),
                        result_bytes(&reference.run(&q)),
                        "round {round} shards={shards} query #{i}"
                    );
                }
                Ok(r) => {
                    degraded += 1;
                    assert!(allow, "degraded answers require opt-in");
                    assert_eq!(r.missing_shards, vec![target]);
                    let masked = ShardedExecutor::new(&cut)
                        .with_allow_partial(true)
                        .with_shard_mask(!(1u64 << target))
                        .run(&q);
                    assert_eq!(
                        result_bytes(&r),
                        result_bytes(&masked),
                        "round {round} shards={shards} query #{i}: not the marked subset"
                    );
                }
                Err(ServiceError::ShardUnavailable { shard, attempts }) => {
                    assert!(!allow, "opted-in callers degrade instead of failing");
                    assert_eq!(shard, target);
                    assert_eq!(attempts, 2);
                }
                Err(e) => panic!("round {round} shards={shards}: illegal error: {e}"),
            }
        }
        let m = service.metrics();
        assert_eq!(m.submitted, 6);
        assert_eq!(m.degraded, degraded);
        assert_eq!(m.shed + m.completed + m.failed, m.submitted, "round {round}: {m:?}");
    }
}

/// Regression: a query that panics its worker must neither take the pool down
/// nor leak its ticket — subsequent submissions on the *same* service keep
/// completing, at pool size 1 (no spare worker to hide behind) and 4.
#[test]
fn pool_survives_panicking_query_and_keeps_completing() {
    let sys = corpus(16);
    let q = Query::new(Target::AnnotationContents).with_phrase("protease motif");
    let expected = result_bytes(&ReferenceExecutor::new(&sys).run(&q));
    for workers in [1usize, 4] {
        let service = QueryService::new(
            sys.snapshot(),
            ServiceConfig::default()
                .with_workers(workers)
                .with_cache_capacity(0)
                .with_chaos(ChaosConfig::new().with_worker_panic_on(1).with_worker_abort_on(3)),
        );
        assert_eq!(service.run(q.clone()), Err(ServiceError::WorkerPanicked));
        assert_eq!(result_bytes(&service.run(q.clone()).unwrap()), expected);
        assert_eq!(service.run(q.clone()), Err(ServiceError::WorkerPanicked));
        for _ in 0..4 {
            assert_eq!(result_bytes(&service.run(q.clone()).unwrap()), expected);
        }
        poll_until("pool size restored", || service.live_workers() == workers);
        let m = service.metrics();
        assert_eq!(m.worker_panics, 2);
        assert_eq!(m.shed + m.completed + m.failed, m.submitted);
    }
}

mod resilience_props {
    use super::*;
    use proptest::prelude::*;

    /// The trichotomy property on the sharded path (a plain function so the
    /// `proptest!` macro stays thin): under an arbitrary chaos schedule, budget
    /// and deadline, every query ends in exactly one of (1) a complete result
    /// byte-identical to the reference, (2) a marked-degraded subset identical
    /// to the masked reference, or (3) a typed error legal for the schedule.
    fn check_sharded(
        seed: u64,
        shards: usize,
        n: u64,
        chaos_pick: u8,
        target: usize,
        allow_partial: bool,
        expire: bool,
    ) {
        let target = target % shards;
        let (oracle, sharded) = dual_corpus(shards, n);
        let cut = sharded.capture_cut();
        let reference = ReferenceExecutor::new(&oracle);
        let domains = object_domains(&oracle);
        let mut rng = WorkloadRng::new(seed);
        let mut config =
            ShardedServiceConfig::default().with_cache_capacity(0).with_retry(quick_retry(2));
        match chaos_pick {
            1 => {
                config = config.with_chaos(ChaosConfig::new().with_shard_outage(target, 1));
            }
            2 => {
                config = config.with_chaos(ChaosConfig::new().with_shard_outage(target, u64::MAX));
            }
            3 => {
                config = config
                    .with_chaos(ChaosConfig::new().with_slow_shard(
                        target,
                        Duration::from_millis(40),
                        u64::MAX,
                    ))
                    .with_shard_timeout(Duration::from_millis(8));
            }
            _ => {}
        }
        let service = ShardedQueryService::new(cut.clone(), config);
        let mut budget = QueryBudget::unbounded().with_allow_partial(allow_partial);
        if expire {
            budget = budget.with_deadline(Duration::ZERO);
        }
        for _ in 0..3 {
            let q = random_query(&mut rng, &oracle, &domains);
            match service.run_with_budget(&q, budget) {
                Ok(r) => {
                    if r.missing_shards.is_empty() {
                        prop_assert_eq!(result_bytes(&r), result_bytes(&reference.run(&q)));
                    } else {
                        prop_assert!(allow_partial, "degraded answers require opt-in");
                        prop_assert_eq!(r.missing_shards.clone(), vec![target]);
                        let masked = ShardedExecutor::new(&cut)
                            .with_allow_partial(true)
                            .with_shard_mask(!(1u64 << target))
                            .run(&q);
                        prop_assert_eq!(result_bytes(&r), result_bytes(&masked));
                    }
                }
                Err(ServiceError::DeadlineExceeded) => prop_assert!(expire),
                Err(ServiceError::ShardUnavailable { shard, .. }) => {
                    prop_assert!(!allow_partial);
                    prop_assert!(chaos_pick == 2 || chaos_pick == 3, "a healthy scatter failed");
                    prop_assert_eq!(shard, target);
                }
                Err(e) => prop_assert!(false, "illegal error for this schedule: {:?}", e),
            }
        }
        let m = service.metrics();
        prop_assert_eq!(m.submitted, 3);
        prop_assert_eq!(m.shed + m.completed + m.failed, m.submitted);
    }

    /// The trichotomy property on the pool path: random worker faults, one
    /// expired deadline and arbitrary ticket cancellations — every ticket
    /// resolves into a reference-exact answer or a typed error legal for its
    /// schedule, and the pool-size invariant is restored.
    fn check_pool(seed: u64, workers: usize, nth: u64, kind: u8, cancel_mask: u64) {
        let sys = corpus(16);
        let domains = object_domains(&sys);
        let reference = ReferenceExecutor::new(&sys);
        let mut rng = WorkloadRng::new(seed);
        let chaos = match kind {
            0 => ChaosConfig::new().with_worker_panic_on(nth),
            1 => ChaosConfig::new().with_worker_abort_on(nth),
            _ => ChaosConfig::new().with_stuck_query_on(nth, Duration::from_millis(30)),
        };
        let service = QueryService::new(
            sys.snapshot(),
            ServiceConfig::default().with_workers(workers).with_cache_capacity(0).with_chaos(chaos),
        );
        let mut tickets = Vec::new();
        for i in 0..6u64 {
            let q = random_query(&mut rng, &sys, &domains);
            let budget = if i == 2 {
                QueryBudget::unbounded().with_deadline(Duration::ZERO)
            } else {
                QueryBudget::unbounded()
            };
            let ticket =
                service.submit_with_budget(q.clone(), budget).expect("unbounded queue never sheds");
            let cancelled = i < 3 && cancel_mask & (1 << i) != 0;
            if cancelled {
                ticket.cancel();
            }
            tickets.push((q, i == 2, cancelled, ticket));
        }
        for (q, deadlined, cancelled, ticket) in tickets {
            match ticket.wait() {
                Ok(r) => {
                    prop_assert!(!r.is_degraded());
                    prop_assert_eq!(result_bytes(&r), result_bytes(&reference.run(&q)));
                }
                Err(ServiceError::DeadlineExceeded) => prop_assert!(deadlined),
                Err(ServiceError::Cancelled) => prop_assert!(cancelled),
                Err(ServiceError::WorkerPanicked) => prop_assert!(kind < 2),
                Err(e) => prop_assert!(false, "illegal error for this schedule: {:?}", e),
            }
        }
        let m = service.metrics();
        prop_assert_eq!(m.submitted, 6);
        prop_assert_eq!(m.shed, 0);
        prop_assert_eq!(m.shed + m.completed + m.failed, m.submitted);
        poll_until("pool size restored", || service.live_workers() == workers);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        #[test]
        fn sharded_queries_end_complete_degraded_or_typed(
            seed in any::<u64>(),
            shards in 1usize..5,
            n in 4u64..20,
            chaos_pick in 0u8..4,
            target in 0usize..4,
            allow_partial in any::<bool>(),
            expire in any::<bool>(),
        ) {
            check_sharded(seed, shards, n, chaos_pick, target, allow_partial, expire);
        }

        #[test]
        fn pool_queries_end_complete_or_typed(
            seed in any::<u64>(),
            workers in 1usize..4,
            nth in 1u64..6,
            kind in 0u8..3,
            cancel_mask in 0u64..8,
        ) {
            check_pool(seed, workers, nth, kind, cancel_mask);
        }
    }
}
