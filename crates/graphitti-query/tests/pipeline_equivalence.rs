//! Randomized equivalence: the plan-driven pipelined [`Executor`] must return results
//! identical to the scan-all [`ReferenceExecutor`] on arbitrary queries over the
//! `datagen` workloads.  The two executors share collation, so any divergence points
//! at the seed-from-index / verify-by-probe pipeline (or the indexes themselves).

mod common;

use common::{object_domains, random_query};
use datagen::influenza::{self, InfluenzaConfig};
use datagen::neuro::{self, NeuroConfig};
use datagen::rng::WorkloadRng;
use graphitti_core::Graphitti;
use graphitti_query::{Executor, ReferenceExecutor};

fn assert_equivalent_on(sys: &Graphitti, seed: u64, queries: usize) {
    let mut rng = WorkloadRng::new(seed);
    let domains = object_domains(sys);
    let fast = Executor::new(sys);
    let slow = ReferenceExecutor::new(sys);
    for i in 0..queries {
        let q = random_query(&mut rng, sys, &domains);
        let a = fast.run(&q);
        let b = slow.run(&q);
        assert_eq!(
            a,
            b,
            "pipelined and reference executors diverged on query #{i}: {q:#?}\nplan: {}",
            fast.plan(&q).explain()
        );
    }
}

#[test]
fn influenza_randomized_queries_match_reference() {
    let sys = influenza::build(&InfluenzaConfig::small().with_annotations(300));
    assert_equivalent_on(&sys, 0xF1u64, 120);
}

#[test]
fn neuro_randomized_queries_match_reference() {
    let w = neuro::build(&NeuroConfig {
        seed: 7,
        images: 40,
        regions_per_image: 6,
        coordinate_systems: 3,
        dcn_prob: 0.4,
        tp53_prob: 0.25,
        canvas: 1_000.0,
    });
    assert_equivalent_on(&w.system, 0x2008u64, 120);
}

#[test]
fn empty_system_randomized_queries_match_reference() {
    let sys = Graphitti::new();
    assert_equivalent_on(&sys, 3, 40);
}
