//! Structural-sharing tests for the per-component copy-on-write `SystemView`.
//!
//! After a snapshot capture, every component of the live view shares storage with the
//! snapshot (`Arc::ptr_eq` at the component level).  A mutation must un-share exactly
//! the components it touches: these tests pin the dirty set of each mutation kind, so
//! a regression that silently widens a write's copy footprint (or, worse, mutates a
//! still-shared component in place) fails loudly.  Randomized cases check the
//! invariant that holds for *every* mutation: a component is either shared and
//! bit-identical, or unshared — never shared and diverged.

use graphitti_core::{Component, DataType, Graphitti, Marker, Snapshot};
use proptest::prelude::*;

fn annotated_system() -> Graphitti {
    let mut sys = Graphitti::new();
    let seq = sys.register_sequence("s", DataType::DnaSequence, 100_000, "chr1");
    let img = sys.register_image("brain", 512, 512, "mri", "cs25");
    let term = sys.ontology_mut().add_concept("Protease");
    sys.annotate()
        .comment("protease site")
        .mark(seq, Marker::interval(10, 60))
        .cite_term(term)
        .commit()
        .unwrap();
    sys.annotate()
        .comment("region of interest")
        .mark(img, Marker::region(1.0, 1.0, 50.0, 50.0))
        .commit()
        .unwrap();
    sys
}

/// The components `snap` still shares with the live system, as a sorted label list
/// (readable assertion failures).
fn shared(sys: &Graphitti, snap: &Snapshot) -> Vec<Component> {
    sys.view().shared_components(snap.view())
}

fn assert_sharing(sys: &Graphitti, snap: &Snapshot, expect_dirty: &[Component]) {
    for c in Component::ALL {
        let is_shared = sys.view().shares_component(snap.view(), c);
        if expect_dirty.contains(&c) {
            assert!(!is_shared, "{c:?} should have been copied by this mutation");
        } else {
            assert!(is_shared, "{c:?} was copied although the mutation never touches it");
        }
    }
}

#[test]
fn capture_shares_every_component() {
    let sys = annotated_system();
    let snap = sys.snapshot();
    assert_eq!(shared(&sys, &snap).len(), Component::ALL.len());
}

#[test]
fn annotate_after_snapshot_copies_only_the_annotation_path() {
    let mut sys = annotated_system();
    let seq = sys.objects()[0].id;
    let snap = sys.snapshot();
    sys.annotate()
        .comment("single post-snapshot annotate")
        .mark(seq, Marker::interval(500, 550))
        .commit()
        .unwrap();
    // The annotate path touches: content store, a-graph, node maps, the referent /
    // annotation registries, the interval index (interval marker), object→referents
    // and the inverted indexes.  Everything else — catalog, spatial, ontology, the
    // object registry — must still be shared with the snapshot.
    assert_sharing(
        &sys,
        &snap,
        &[
            Component::Content,
            Component::Intervals,
            Component::Agraph,
            Component::Referents,
            Component::Annotations,
            Component::NodeMaps,
            Component::ObjectReferents,
            Component::Indexes,
        ],
    );
    // In particular the big untouched substrates stay put:
    assert!(sys.view().shares_component(snap.view(), Component::Catalog));
    assert!(sys.view().shares_component(snap.view(), Component::Ontology));
    assert!(sys.view().shares_component(snap.view(), Component::Spatial));
}

#[test]
fn spatial_annotate_leaves_interval_index_shared() {
    let mut sys = annotated_system();
    let img = sys.objects()[1].id;
    let snap = sys.snapshot();
    sys.annotate()
        .comment("late region")
        .mark(img, Marker::region(60.0, 60.0, 80.0, 80.0))
        .commit()
        .unwrap();
    assert!(sys.view().shares_component(snap.view(), Component::Intervals));
    assert!(!sys.view().shares_component(snap.view(), Component::Spatial));
    assert!(sys.view().shares_component(snap.view(), Component::Catalog));
}

#[test]
fn register_after_snapshot_copies_only_the_registration_path() {
    let mut sys = annotated_system();
    let snap = sys.snapshot();
    sys.register_sequence("late", DataType::ProteinSequence, 500, "chr2");
    assert_sharing(
        &sys,
        &snap,
        &[
            Component::Catalog,
            Component::Agraph,
            Component::Objects,
            Component::NodeMaps,
            Component::Indexes,
        ],
    );
    // registration creates no referent, annotation or content
    assert!(sys.view().shares_component(snap.view(), Component::Content));
    assert!(sys.view().shares_component(snap.view(), Component::Referents));
    assert!(sys.view().shares_component(snap.view(), Component::Annotations));
}

#[test]
fn ontology_edit_after_snapshot_copies_only_the_ontology() {
    let mut sys = annotated_system();
    let snap = sys.snapshot();
    sys.ontology_mut().add_concept("LateConcept");
    assert_sharing(&sys, &snap, &[Component::Ontology]);
}

#[test]
fn term_node_registration_copies_graph_and_node_maps_only() {
    let mut sys = annotated_system();
    let term = sys.ontology_mut().add_concept("Uncited");
    let snap = sys.snapshot();
    sys.ensure_term_node(term);
    assert_sharing(&sys, &snap, &[Component::Agraph, Component::NodeMaps]);
}

#[test]
fn whole_batch_shares_one_copy_footprint() {
    let mut sys = annotated_system();
    let seq = sys.objects()[0].id;
    let snap = sys.snapshot();
    let mut batch = sys.batch();
    for i in 0..50u64 {
        batch
            .annotate()
            .comment("burst")
            .mark(seq, Marker::interval(1_000 + i * 20, 1_000 + i * 20 + 10))
            .commit()
            .unwrap();
    }
    batch.commit();
    // 50 writes, but the dirty set is the same as for one annotate: after the first
    // write un-shares a component, the rest of the batch mutates it in place.
    assert!(sys.view().shares_component(snap.view(), Component::Catalog));
    assert!(sys.view().shares_component(snap.view(), Component::Ontology));
    assert!(sys.view().shares_component(snap.view(), Component::Spatial));
    assert!(sys.view().shares_component(snap.view(), Component::Objects));
    assert!(!sys.view().shares_component(snap.view(), Component::Annotations));
    assert_eq!(snap.annotation_count() + 50, sys.annotation_count());
}

#[test]
fn second_snapshot_restores_full_sharing() {
    let mut sys = annotated_system();
    let seq = sys.objects()[0].id;
    let old = sys.snapshot();
    sys.annotate().comment("x").mark(seq, Marker::interval(0, 5)).commit().unwrap();
    let fresh = sys.snapshot();
    // the old snapshot keeps its partial sharing; the fresh one shares everything
    assert!(shared(&sys, &old).len() < Component::ALL.len());
    assert_eq!(shared(&sys, &fresh).len(), Component::ALL.len());
}

#[test]
fn deep_copy_shares_nothing() {
    let sys = annotated_system();
    let copy = sys.view().deep_copy();
    assert!(sys.view().shared_components(&copy).is_empty());
    // ... while being an equivalent system state
    assert_eq!(copy.annotation_count(), sys.annotation_count());
    assert!(copy.verify_integrity().is_empty());
}

/// One random mutation step applied to the system.
#[derive(Debug, Clone)]
enum Step {
    Annotate { start: u64, len: u64, spatial: bool },
    Register { linear: bool },
    Ontology,
}

fn arb_step() -> impl Strategy<Value = Step> {
    (0u64..10, 0u64..5_000, 1u64..100, any::<bool>()).prop_map(
        |(kind, start, len, flag)| match kind {
            0..=5 => Step::Annotate { start, len, spatial: flag },
            6 | 7 => Step::Register { linear: flag },
            _ => Step::Ontology,
        },
    )
}

/// Apply one random step to the live system.
fn apply_step(sys: &mut Graphitti, step: &Step) {
    match *step {
        Step::Annotate { start, len, spatial } => {
            let (obj, marker) = if spatial {
                let s = start as f64 % 400.0;
                (sys.objects()[1].id, Marker::region(s, s, s + len as f64, s + len as f64))
            } else {
                (sys.objects()[0].id, Marker::interval(start, start + len))
            };
            let _ = sys.annotate().comment("prop step").mark(obj, marker).commit();
        }
        Step::Register { linear } => {
            if linear {
                let name = format!("p{}", sys.object_count());
                sys.register_sequence(name, DataType::DnaSequence, 1_000, "chr1");
            } else {
                let name = format!("i{}", sys.object_count());
                sys.register_image(name, 64, 64, "mri", "cs25");
            }
        }
        Step::Ontology => {
            let name = format!("c{}", sys.object_count());
            sys.ontology_mut().add_concept(name);
        }
    }
}

/// For any mutation sequence: a component still shared with a pre-mutation snapshot
/// implies the snapshot observed no change through it (sharing is only ever broken
/// *by* a write, never written through), and both sides stay internally consistent.
fn check_sharing_invariant(steps: &[Step]) {
    let mut sys = annotated_system();
    let snap = sys.snapshot();
    let objects_before = snap.object_count();
    let annotations_before = snap.annotation_count();
    let referents_before = snap.referent_count();

    for step in steps {
        apply_step(&mut sys, step);
    }

    // the snapshot never moves, whatever stayed shared
    prop_assert_eq!(snap.object_count(), objects_before);
    prop_assert_eq!(snap.annotation_count(), annotations_before);
    prop_assert_eq!(snap.referent_count(), referents_before);
    prop_assert!(snap.verify_integrity().is_empty());
    prop_assert!(sys.verify_integrity().is_empty());

    // every mutation sequence above includes at least one write, so at least one
    // component must have been copied — and the registries can only be unshared if
    // their contents actually diverged
    let shared_now = sys.view().shared_components(snap.view());
    prop_assert!(shared_now.len() < Component::ALL.len());
    if sys.view().shares_component(snap.view(), Component::Annotations) {
        prop_assert_eq!(sys.annotation_count(), snap.annotation_count());
    }
    if sys.view().shares_component(snap.view(), Component::Objects) {
        prop_assert_eq!(sys.object_count(), snap.object_count());
    }
    if sys.view().shares_component(snap.view(), Component::Referents) {
        prop_assert_eq!(sys.referent_count(), snap.referent_count());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn shared_components_are_never_written_through(steps in prop::collection::vec(arb_step(), 1..12)) {
        check_sharing_invariant(&steps);
    }
}
