//! Property tests for the WAL record format: encode/decode round-trips over
//! arbitrary op batches, and the corruption contract — flipping any byte of a
//! framed log is *detected* (the scan stops at the damaged frame), never
//! *misdecoded* (every surviving record is byte-identical to the original).

use graphitti_core::ontology::ConceptId;
use graphitti_core::wal::{encode_frame, scan_frames, FRAME_HEADER};
use graphitti_core::{DataType, LogOp, LogReferent, Marker, ObjectId, ReferentId, WalRecord};
use proptest::prelude::*;

/// An arbitrary op, decoded from a handful of random bytes so the generator needs
/// no bespoke strategies for the nested content types.
fn arb_op() -> impl Strategy<Value = LogOp> {
    prop::collection::vec(any::<u8>(), 6..16).prop_map(|bytes| {
        let pick = |i: usize| bytes[i % bytes.len()] as u64;
        match bytes[0] % 3 {
            0 => {
                let data_type = match bytes[1] % 4 {
                    0 => DataType::DnaSequence,
                    1 => DataType::RnaSequence,
                    2 => DataType::ProteinSequence,
                    _ => DataType::MultipleAlignment,
                };
                LogOp::register_sequence(
                    format!("seq-{}", pick(2)),
                    data_type,
                    1 + pick(3) * 97,
                    format!("chr{}", pick(4) % 5),
                )
            }
            1 => {
                let referents = (0..1 + bytes[1] % 3)
                    .map(|k| {
                        let k = k as usize;
                        if bytes[(2 + k) % bytes.len()] % 4 == 0 {
                            LogReferent::Existing(ReferentId(pick(3 + k)))
                        } else {
                            let start = pick(4 + k) * 13;
                            LogReferent::New {
                                object: ObjectId(pick(5 + k) % 7),
                                marker: Marker::interval(start, start + 1 + pick(k) % 50),
                            }
                        }
                    })
                    .collect();
                let terms: Vec<ConceptId> = (0..bytes[2] % 3)
                    .map(|k| ConceptId((pick(k as usize + 3) % 11) as u32))
                    .collect();
                LogOp::Annotate {
                    content: xmlstore::DublinCore::new()
                        .field("description", format!("note {}", pick(5)))
                        .user_tag("curator", format!("u{}", pick(1) % 4)),
                    referents,
                    terms,
                }
            }
            _ => LogOp::DefineTerm { name: format!("term-{}", pick(2)) },
        }
    })
}

fn arb_record(version: u64) -> impl Strategy<Value = WalRecord> {
    prop::collection::vec(arb_op(), 1..5).prop_map(move |ops| WalRecord {
        version,
        dirty: graphitti_core::wal::batch_dirty(&ops).bits(),
        ops,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Encode → decode is the identity on records, through the same framed payload
    // bytes the log stores.
    #[test]
    fn record_round_trips(record in arb_record(1)) {
        let framed = record.encode();
        let scan = scan_frames(&framed);
        prop_assert!(!scan.torn);
        prop_assert_eq!(scan.payloads.len(), 1);
        let decoded = WalRecord::decode(&scan.payloads[0]).expect("valid frame decodes");
        prop_assert_eq!(decoded, record);
    }

    // Flip any single byte anywhere in a multi-record log: the scan must stop at the
    // damaged frame, every record it does return must be byte-identical to the
    // original at that position, and the damage must be flagged — corruption is
    // detected, never misdecoded into a different record.
    #[test]
    fn corruption_is_detected_never_misdecoded(
        records in prop::collection::vec(arb_op(), 2..6).prop_map(|ops| {
            ops.into_iter()
                .enumerate()
                .map(|(i, op)| WalRecord { version: i as u64 + 1, dirty: op.dirty().bits(), ops: vec![op] })
                .collect::<Vec<_>>()
        }),
        position in any::<u16>(),
        raw_xor in 0u8..255,
    ) {
        let xor = raw_xor + 1; // any non-zero flip mask
        let mut log = Vec::new();
        let mut frame_starts = Vec::new();
        for record in &records {
            frame_starts.push(log.len());
            log.extend_from_slice(&record.encode());
        }
        let flip_at = position as usize % log.len();
        log[flip_at] ^= xor;

        let scan = scan_frames(&log);
        // The frame containing the flipped byte must not survive the scan.
        let damaged_frame = frame_starts.iter().filter(|&&s| s <= flip_at).count() - 1;
        prop_assert_eq!(
            scan.payloads.len(),
            damaged_frame,
            "byte {} corrupts frame {}; the scan must keep exactly the frames before it",
            flip_at,
            damaged_frame
        );
        prop_assert!(scan.torn, "a flipped byte must mark the log torn");
        prop_assert_eq!(scan.valid_len, frame_starts[damaged_frame]);
        // Everything before the damage decodes to exactly the original records.
        for (i, payload) in scan.payloads.iter().enumerate() {
            let decoded = WalRecord::decode(payload).expect("undamaged frame decodes");
            prop_assert_eq!(&decoded, &records[i]);
        }
    }

    // A log assembled from raw frames (not via `WalRecord`) still scans cleanly and
    // preserves payload bytes — the framing layer is payload-agnostic.
    #[test]
    fn frame_layer_round_trips_arbitrary_payloads(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..64), 1..6),
    ) {
        let mut log = Vec::new();
        for payload in &payloads {
            log.extend_from_slice(&encode_frame(payload));
        }
        let scan = scan_frames(&log);
        prop_assert!(!scan.torn);
        prop_assert_eq!(scan.valid_len, log.len());
        prop_assert_eq!(&scan.payloads, &payloads);
        let framed_len: usize = payloads.iter().map(|p| FRAME_HEADER + p.len()).sum();
        prop_assert_eq!(framed_len, log.len());
    }
}
