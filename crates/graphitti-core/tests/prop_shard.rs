//! Property tests for the sharded router: the partition is total and deterministic,
//! id translation round-trips, the replicated stores agree, and the collation mirror
//! stays in lock-step with an unsharded oracle under arbitrary interleaved write
//! schedules (including failing commits and referent reuse).

use graphitti_core::{
    AnnotationId, CoreError, DataType, Graphitti, Marker, ObjectId, ReferentId, ShardedSystem,
};
use proptest::prelude::*;

/// One randomized write drawn from a compact encoding (the proptest shim has no enum
/// strategies): `kind % 4` selects register / annotate / reuse-annotate / failing
/// annotate, `pick` skews the target object.
fn apply_op(oracle: &mut Graphitti, sharded: &mut ShardedSystem, kind: u8, pick: u8, step: usize) {
    let objects = oracle.object_count() as u64;
    match kind % 4 {
        0 => {
            let name = format!("obj-{step}");
            let a = oracle.register_sequence(name.clone(), DataType::DnaSequence, 2_000, "chr1");
            let b = sharded.register_sequence(name, DataType::DnaSequence, 2_000, "chr1");
            assert_eq!(a, b);
        }
        1 => {
            let obj = ObjectId(u64::from(pick) % objects.max(1));
            let marker = Marker::interval(step as u64 * 10, step as u64 * 10 + 5);
            let a = oracle
                .annotate()
                .comment(format!("note {step}"))
                .mark(obj, marker.clone())
                .commit();
            let b = sharded.annotate().comment(format!("note {step}")).mark(obj, marker).commit();
            assert_eq!(a.is_ok(), b.is_ok());
            if let (Ok(a), Ok(b)) = (a, b) {
                assert_eq!(a, b);
            }
        }
        2 => {
            // Reuse a committed referent when one exists (shared-referent routing).
            let refs = oracle.referent_count() as u64;
            if refs == 0 {
                return;
            }
            let rid = ReferentId(u64::from(pick) % refs);
            let a = oracle.annotate().comment(format!("reuse {step}")).mark_existing(rid).commit();
            let b = sharded.annotate().comment(format!("reuse {step}")).mark_existing(rid).commit();
            assert_eq!(a.is_ok(), b.is_ok());
            if let (Ok(a), Ok(b)) = (a, b) {
                assert_eq!(a, b);
            }
        }
        _ => {
            // A failing commit (unknown object) with a preceding valid mark: both
            // systems must keep identical partial effects.
            let obj = ObjectId(u64::from(pick) % objects.max(1));
            let marker = Marker::interval(step as u64 * 10, step as u64 * 10 + 5);
            let bad = ObjectId(9_999);
            let a = oracle
                .annotate()
                .comment(format!("fail {step}"))
                .mark(obj, marker.clone())
                .mark(bad, Marker::interval(0, 1))
                .commit();
            let b = sharded
                .annotate()
                .comment(format!("fail {step}"))
                .mark(obj, marker)
                .mark(bad, Marker::interval(0, 1))
                .commit();
            assert_eq!(a.is_err(), b.is_err());
        }
    }
}

fn run_schedule(shards: usize, kinds: &[u8], picks: &[u8]) -> (Graphitti, ShardedSystem) {
    let mut oracle = Graphitti::new();
    let mut sharded = ShardedSystem::new(shards);
    // Guarantee at least one object so annotate ops have a target.
    oracle.register_sequence("seed", DataType::DnaSequence, 2_000, "chr1");
    sharded.register_sequence("seed", DataType::DnaSequence, 2_000, "chr1");
    for (step, (&kind, &pick)) in kinds.iter().zip(picks).enumerate() {
        apply_op(&mut oracle, &mut sharded, kind, pick, step);
    }
    (oracle, sharded)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn router_partitions_totally_and_mirror_tracks_oracle(
        shards in 1usize..9,
        kinds in prop::collection::vec(any::<u8>(), 1..30),
        picks in prop::collection::vec(any::<u8>(), 30),
    ) {
        let (oracle, sharded) = run_schedule(shards, &kinds, &picks);

        // Global counts agree with the oracle; internal maps are bijective.
        prop_assert_eq!(sharded.object_count(), oracle.object_count());
        prop_assert_eq!(sharded.annotation_count(), oracle.annotation_count());
        prop_assert_eq!(sharded.referent_count(), oracle.referent_count());
        let problems = sharded.verify_integrity();
        prop_assert!(problems.is_empty(), "{:?}", problems);

        // Every entity lands on exactly one shard, and the per-shard totals add up
        // (no duplicates, no drops, whatever the skew).
        let mut per_shard_anns = 0usize;
        let mut per_shard_refs = 0usize;
        for i in 0..sharded.shard_count() {
            per_shard_anns += sharded.shard(i).annotation_count();
            per_shard_refs += sharded.shard(i).referent_count();
        }
        prop_assert_eq!(per_shard_anns, sharded.annotation_count());
        prop_assert_eq!(per_shard_refs, sharded.referent_count());

        // The collation mirror is in lock-step with the oracle's a-graph.
        prop_assert_eq!(sharded.agraph().node_count(), oracle.agraph().node_count());
        prop_assert_eq!(sharded.agraph().edge_count(), oracle.agraph().edge_count());
        for node in oracle.agraph().nodes() {
            prop_assert_eq!(sharded.agraph().out_edges(node), oracle.agraph().out_edges(node));
        }

        // Annotation link lists translate back to the oracle's exactly.
        for g in 0..oracle.annotation_count() as u64 {
            let expected = &oracle.annotation(AnnotationId(g)).unwrap().referents;
            let got = sharded.annotation_referents(AnnotationId(g)).unwrap();
            prop_assert_eq!(&got, expected, "annotation {} link list", g);
        }
    }

    #[test]
    fn rerouting_is_deterministic(
        shards in 1usize..9,
        kinds in prop::collection::vec(any::<u8>(), 1..20),
        picks in prop::collection::vec(any::<u8>(), 20),
    ) {
        // Replaying the identical schedule yields identical homes for every entity.
        let (_, a) = run_schedule(shards, &kinds, &picks);
        let (_, b) = run_schedule(shards, &kinds, &picks);
        prop_assert_eq!(a.annotation_count(), b.annotation_count());
        for g in 0..a.annotation_count() as u64 {
            prop_assert_eq!(
                a.annotation_home(AnnotationId(g)),
                b.annotation_home(AnnotationId(g))
            );
        }
        for g in 0..a.referent_count() as u64 {
            prop_assert_eq!(a.referent_home(ReferentId(g)), b.referent_home(ReferentId(g)));
        }
    }

    #[test]
    fn cross_shard_reuse_error_names_both_shards(
        shards in 2usize..9,
        kinds in prop::collection::vec(any::<u8>(), 10..30),
        picks in prop::collection::vec(any::<u8>(), 30),
        first in any::<u8>(),
        second in any::<u8>(),
    ) {
        // Reusing two committed referents in one annotation must succeed exactly when
        // they share a home shard; a rejection must be the dedicated
        // `CoreError::CrossShardReuse` variant naming the routed shard (the first
        // reused referent's home) and the conflicting shard, in that order.
        let (_, mut sharded) = run_schedule(shards, &kinds, &picks);
        let refs = sharded.referent_count() as u64;
        if refs < 2 {
            return;
        }
        let r1 = ReferentId(u64::from(first) % refs);
        let r2 = ReferentId(u64::from(second) % refs);
        let home1 = sharded.referent_home(r1).expect("committed referent has a home").shard;
        let home2 = sharded.referent_home(r2).expect("committed referent has a home").shard;
        let result = sharded
            .annotate()
            .comment("pair reuse")
            .mark_existing(r1)
            .mark_existing(r2)
            .commit();
        if home1 == home2 {
            prop_assert!(result.is_ok(), "co-located reuse must commit: {:?}", result);
        } else {
            match result {
                Err(CoreError::CrossShardReuse { home, reused }) => {
                    prop_assert_eq!(home, home1, "routed shard is the first referent's home");
                    prop_assert_eq!(reused, home2, "conflicting shard is the second's home");
                }
                other => prop_assert!(false, "expected CrossShardReuse, got {:?}", other),
            }
        }
    }
}
