//! Property tests for the core system: SubX operator laws, and snapshot round-trip
//! invariance over randomly constructed systems.

use graphitti_core::{DataType, Graphitti, Marker, SubX};
use proptest::prelude::*;

fn arb_interval_marker() -> impl Strategy<Value = Marker> {
    (0u64..1000, 1u64..100).prop_map(|(s, len)| Marker::interval(s, s + len))
}

fn arb_block_marker() -> impl Strategy<Value = Marker> {
    prop::collection::vec(0u64..50, 1..8).prop_map(Marker::block_set)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn ifoverlap_is_symmetric(a in arb_interval_marker(), b in arb_interval_marker()) {
        prop_assert_eq!(a.if_overlap(&b), b.if_overlap(&a));
    }

    #[test]
    fn intersect_implies_overlap(a in arb_interval_marker(), b in arb_interval_marker()) {
        let overlap = a.if_overlap(&b);
        let inter = a.intersect(&b);
        prop_assert_eq!(inter.is_some(), overlap);
    }

    #[test]
    fn block_intersect_is_subset(a in arb_block_marker(), b in arb_block_marker()) {
        if let Some(Marker::BlockSet(inter)) = a.intersect(&b) {
            if let (Marker::BlockSet(av), Marker::BlockSet(bv)) = (&a, &b) {
                for id in &inter {
                    prop_assert!(av.contains(id) && bv.contains(id));
                }
            }
        }
    }

    #[test]
    fn cross_kind_never_overlaps(a in arb_interval_marker(), b in arb_block_marker()) {
        prop_assert!(!a.if_overlap(&b));
        prop_assert!(a.intersect(&b).is_none());
    }

    #[test]
    fn next_is_after(
        markers in prop::collection::vec(arb_interval_marker(), 1..20),
        probe in arb_interval_marker(),
    ) {
        if let Some(nxt) = probe.next_in(&markers) {
            if let (Marker::Interval(p), Marker::Interval(n)) = (&probe, nxt) {
                prop_assert!(n.start >= p.end);
            }
        }
    }
}

/// Build a small random system of sequence annotations, some sharing referents.
fn build_random(seed: u64, n_objects: usize, n_anns: usize, share: bool) -> Graphitti {
    // deterministic pseudo-random via a simple LCG seeded by `seed`
    let mut state = seed.wrapping_mul(2654435761).wrapping_add(1);
    let mut next = || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        state >> 33
    };

    let mut sys = Graphitti::new();
    let objs: Vec<_> = (0..n_objects.max(1))
        .map(|i| {
            sys.register_sequence(
                format!("s{i}"),
                DataType::DnaSequence,
                10_000,
                format!("chr{}", i % 3),
            )
        })
        .collect();
    let mut referent_pool = Vec::new();
    for a in 0..n_anns {
        let obj = objs[(next() as usize) % objs.len()];
        let mut builder = sys.annotate().comment(format!("annotation {a} protease")).creator("t");
        if share && !referent_pool.is_empty() && next() % 2 == 0 {
            let rid = referent_pool[(next() as usize) % referent_pool.len()];
            builder = builder.mark_existing(rid);
            let _ = builder.commit();
        } else {
            let start = next() % 9000;
            builder = builder.mark(obj, Marker::interval(start, start + 30));
            if let Ok(aid) = builder.commit() {
                if let Some(ann) = sys.annotation(aid) {
                    if let Some(&rid) = ann.referents.first() {
                        referent_pool.push(rid);
                    }
                }
            }
        }
    }
    sys
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn snapshot_roundtrip_is_invariant(
        seed in any::<u64>(),
        n_objects in 1usize..6,
        n_anns in 0usize..40,
        share in any::<bool>(),
    ) {
        let sys = build_random(seed, n_objects, n_anns, share);
        let snap = sys.study_snapshot();
        let rebuilt = Graphitti::from_study_snapshot(&snap).unwrap();
        // the rebuilt system produces an identical snapshot
        prop_assert_eq!(rebuilt.study_snapshot(), snap);
        prop_assert_eq!(rebuilt.object_count(), sys.object_count());
        prop_assert_eq!(rebuilt.annotation_count(), sys.annotation_count());
        prop_assert_eq!(rebuilt.referent_count(), sys.referent_count());
    }

    #[test]
    fn related_annotations_are_symmetric(
        seed in any::<u64>(),
        n_anns in 2usize..40,
    ) {
        let sys = build_random(seed, 3, n_anns, true);
        for ann in sys.annotations() {
            for other in sys.related_annotations(ann.id) {
                // if a relates to b (shared referent), b relates to a
                prop_assert!(sys.related_annotations(other).contains(&ann.id));
            }
        }
    }

    #[test]
    fn transitive_closure_contains_direct(
        seed in any::<u64>(),
        n_anns in 2usize..40,
    ) {
        let sys = build_random(seed, 3, n_anns, true);
        for ann in sys.annotations() {
            let direct = sys.related_annotations(ann.id);
            let transitive = sys.transitively_related_annotations(ann.id);
            for d in direct {
                prop_assert!(transitive.contains(&d));
            }
        }
    }
}
