//! The heterogeneous data-type taxonomy.
//!
//! The demo registers "DNA sequences, RNA sequences, multiple sequence alignment
//! structures, phylogenetic trees, interaction graphs and relational records — a
//! representative subset of the types of data used in the study", plus the neuroscience
//! application's images and 3-D protein models.  Each type has a *dimensionality* that
//! determines which substructure index it uses (interval tree vs. R-tree) and a default
//! relational schema for its metadata.

use relstore::{Column, ColumnType, Schema};
use serde::{Deserialize, Serialize};

/// Whether a data type's substructures live on a 1-D line, a 2-D plane or in a 3-D
/// volume — or are non-spatial (block-set of relational records / graph nodes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dimensionality {
    /// 1-D: sequences, alignment columns — indexed by interval trees.
    Linear,
    /// 2-D: image regions — indexed by R-trees.
    Planar,
    /// 3-D: protein models, brain volumes — indexed by R-trees.
    Volumetric,
    /// Non-spatial: relational records, graph nodes — marked by a set of identifiers.
    Discrete,
}

/// A registered heterogeneous data type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// A DNA sequence (1-D over nucleotides).
    DnaSequence,
    /// An RNA sequence (1-D over nucleotides).
    RnaSequence,
    /// A protein sequence (1-D over residues).
    ProteinSequence,
    /// A multiple-sequence alignment (1-D over alignment columns).
    MultipleAlignment,
    /// A phylogenetic tree (discrete: its nodes / clades are marked).
    PhylogeneticTree,
    /// A molecular-interaction graph (discrete: nodes / edges are marked).
    InteractionGraph,
    /// A relational record set (discrete: a block-set of rows is marked).
    RelationalRecord,
    /// A 2-D image (e.g. protein-expression image; regions are marked).
    Image,
    /// A 3-D protein structure model (sub-volumes are marked).
    ProteinModel,
}

impl DataType {
    /// All data types in a stable order.
    pub const ALL: [DataType; 9] = [
        DataType::DnaSequence,
        DataType::RnaSequence,
        DataType::ProteinSequence,
        DataType::MultipleAlignment,
        DataType::PhylogeneticTree,
        DataType::InteractionGraph,
        DataType::RelationalRecord,
        DataType::Image,
        DataType::ProteinModel,
    ];

    /// The dimensionality of this type's substructures.
    pub fn dimensionality(self) -> Dimensionality {
        match self {
            DataType::DnaSequence
            | DataType::RnaSequence
            | DataType::ProteinSequence
            | DataType::MultipleAlignment => Dimensionality::Linear,
            DataType::Image => Dimensionality::Planar,
            DataType::ProteinModel => Dimensionality::Volumetric,
            DataType::PhylogeneticTree
            | DataType::InteractionGraph
            | DataType::RelationalRecord => Dimensionality::Discrete,
        }
    }

    /// The relational table name used for this type's metadata.
    pub fn table_name(self) -> &'static str {
        match self {
            DataType::DnaSequence => "dna_sequence",
            DataType::RnaSequence => "rna_sequence",
            DataType::ProteinSequence => "protein_sequence",
            DataType::MultipleAlignment => "multiple_alignment",
            DataType::PhylogeneticTree => "phylogenetic_tree",
            DataType::InteractionGraph => "interaction_graph",
            DataType::RelationalRecord => "relational_record",
            DataType::Image => "image",
            DataType::ProteinModel => "protein_model",
        }
    }

    /// A short lowercase tag used as the a-graph node-key prefix and in query syntax.
    pub fn tag(self) -> &'static str {
        match self {
            DataType::DnaSequence => "dna",
            DataType::RnaSequence => "rna",
            DataType::ProteinSequence => "protein",
            DataType::MultipleAlignment => "msa",
            DataType::PhylogeneticTree => "tree",
            DataType::InteractionGraph => "graph",
            DataType::RelationalRecord => "record",
            DataType::Image => "image",
            DataType::ProteinModel => "model",
        }
    }

    /// Parse a data type from its [`tag`](Self::tag).
    pub fn from_tag(tag: &str) -> Option<DataType> {
        DataType::ALL.into_iter().find(|t| t.tag() == tag)
    }

    /// True when this type's substructures are spatial (use an R-tree).
    pub fn is_spatial(self) -> bool {
        matches!(self.dimensionality(), Dimensionality::Planar | Dimensionality::Volumetric)
    }

    /// True when this type's substructures are linear (use an interval tree).
    pub fn is_linear(self) -> bool {
        self.dimensionality() == Dimensionality::Linear
    }

    /// The default metadata schema for this type's relational table.  Every schema
    /// shares a leading `name` identifier and a trailing `payload` blob holding the raw
    /// data "in its native format", with type-specific columns between.
    pub fn default_schema(self) -> Schema {
        let mut columns = vec![Column::new("name", ColumnType::Text)];
        match self {
            DataType::DnaSequence | DataType::RnaSequence => {
                columns.push(Column::new("length", ColumnType::Int));
                columns.push(Column::new("organism", ColumnType::Text));
                columns.push(Column::new("gc_content", ColumnType::Float));
                columns.push(Column::new("coordinate_domain", ColumnType::Text));
            }
            DataType::ProteinSequence => {
                columns.push(Column::new("length", ColumnType::Int));
                columns.push(Column::new("organism", ColumnType::Text));
                columns.push(Column::new("gene", ColumnType::Text));
                columns.push(Column::new("coordinate_domain", ColumnType::Text));
            }
            DataType::MultipleAlignment => {
                columns.push(Column::new("columns", ColumnType::Int));
                columns.push(Column::new("rows", ColumnType::Int));
                columns.push(Column::new("coordinate_domain", ColumnType::Text));
            }
            DataType::PhylogeneticTree => {
                columns.push(Column::new("leaves", ColumnType::Int));
                columns.push(Column::new("method", ColumnType::Text));
            }
            DataType::InteractionGraph => {
                columns.push(Column::new("nodes", ColumnType::Int));
                columns.push(Column::new("edges", ColumnType::Int));
            }
            DataType::RelationalRecord => {
                columns.push(Column::new("relation", ColumnType::Text));
                columns.push(Column::new("rows", ColumnType::Int));
            }
            DataType::Image => {
                columns.push(Column::new("width", ColumnType::Int));
                columns.push(Column::new("height", ColumnType::Int));
                columns.push(Column::new("modality", ColumnType::Text));
                columns.push(Column::new("coordinate_system", ColumnType::Text));
            }
            DataType::ProteinModel => {
                columns.push(Column::new("residues", ColumnType::Int));
                columns.push(Column::new("resolution", ColumnType::Float));
                columns.push(Column::new("coordinate_system", ColumnType::Text));
            }
        }
        columns.push(Column::new("payload", ColumnType::Blob));
        Schema::new(columns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimensionality_mapping() {
        assert_eq!(DataType::DnaSequence.dimensionality(), Dimensionality::Linear);
        assert_eq!(DataType::Image.dimensionality(), Dimensionality::Planar);
        assert_eq!(DataType::ProteinModel.dimensionality(), Dimensionality::Volumetric);
        assert_eq!(DataType::PhylogeneticTree.dimensionality(), Dimensionality::Discrete);
        assert!(DataType::DnaSequence.is_linear());
        assert!(DataType::Image.is_spatial());
        assert!(!DataType::RelationalRecord.is_spatial());
        assert!(!DataType::RelationalRecord.is_linear());
    }

    #[test]
    fn tags_roundtrip() {
        for t in DataType::ALL {
            assert_eq!(DataType::from_tag(t.tag()), Some(t));
        }
        assert_eq!(DataType::from_tag("bogus"), None);
    }

    #[test]
    fn table_names_unique() {
        let mut names: Vec<&str> = DataType::ALL.iter().map(|t| t.table_name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), DataType::ALL.len());
    }

    #[test]
    fn schemas_have_name_and_payload() {
        for t in DataType::ALL {
            let s = t.default_schema();
            assert_eq!(s.columns.first().unwrap().name, "name");
            assert_eq!(s.columns.last().unwrap().name, "payload");
            assert_eq!(s.columns.last().unwrap().ty, ColumnType::Blob);
        }
    }

    #[test]
    fn sequence_schema_has_coordinate_domain() {
        let s = DataType::DnaSequence.default_schema();
        assert!(s.column_index("coordinate_domain").is_some());
        assert!(s.column_index("gc_content").is_some());
    }

    #[test]
    fn image_schema_has_coordinate_system() {
        let s = DataType::Image.default_schema();
        assert!(s.column_index("coordinate_system").is_some());
        assert!(s.column_index("modality").is_some());
    }
}
