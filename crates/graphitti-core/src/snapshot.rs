//! [`Snapshot`] — the isolated read handle the concurrent query path executes against.
//!
//! A snapshot is a cheaply cloneable, `Send + Sync` handle to one published version of
//! the system state: an `Arc` over the full [`SystemView`] plus the epoch at which it
//! was captured.  Capturing ([`Graphitti::snapshot`]) is an `Arc` clone — O(1), no
//! locking; the first mutation after a capture copies the state out from under every
//! outstanding snapshot (`Arc::make_mut` copy-on-publish), so
//!
//! * **readers never block writers** — a query thread holding a snapshot costs the
//!   writer at most one deep copy, and only on its next commit;
//! * **readers never see torn state** — a snapshot is immutable for its whole life; a
//!   writer committing mid-query cannot change what the query observes;
//! * **epochs identify versions** — two snapshots with equal epochs from the same
//!   system are views of identical state, which is what the query service's result
//!   cache keys on for invalidation.
//!
//! Not to be confused with [`StudySnapshot`](crate::StudySnapshot), the serialisable
//! export format for saving and reloading a study.

use std::sync::Arc;

use crate::system::SystemView;

/// An isolated, immutable read snapshot of a Graphitti system.
///
/// Derefs to [`SystemView`], so the entire read API (lookups, exploration,
/// substructure queries) works on a snapshot exactly as on the live system.  Clone is
/// an `Arc` bump — hand one to every worker thread.
#[derive(Debug, Clone)]
pub struct Snapshot {
    view: Arc<SystemView>,
    epoch: u64,
}

impl std::ops::Deref for Snapshot {
    type Target = SystemView;

    fn deref(&self) -> &SystemView {
        &self.view
    }
}

impl Snapshot {
    /// Wrap a published view (called by [`Graphitti::snapshot`](crate::Graphitti::snapshot)).
    pub(crate) fn capture(view: Arc<SystemView>, epoch: u64) -> Snapshot {
        Snapshot { view, epoch }
    }

    /// The epoch of the system state this snapshot captured.  Mutations bump the
    /// system's epoch, so an outdated snapshot is detectable by comparing epochs.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The underlying shared view (rarely needed directly — `Snapshot` derefs to it).
    pub fn view(&self) -> &SystemView {
        &self.view
    }

    /// Whether two snapshots are views of the same published state.
    pub fn same_epoch(&self, other: &Snapshot) -> bool {
        self.epoch == other.epoch && Arc::ptr_eq(&self.view, &other.view)
    }
}

// Snapshots cross thread boundaries in the query service's worker pool.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Snapshot>();
};

#[cfg(test)]
mod tests {
    use crate::marker::Marker;
    use crate::system::Graphitti;
    use crate::types::DataType;

    fn annotated_system(n: u64) -> Graphitti {
        let mut sys = Graphitti::new();
        let seq = sys.register_sequence("s", DataType::DnaSequence, 10_000, "chr1");
        for i in 0..n {
            sys.annotate()
                .comment(format!("note {i}"))
                .mark(seq, Marker::interval(i * 10, i * 10 + 5))
                .commit()
                .unwrap();
        }
        sys
    }

    #[test]
    fn capture_is_zero_copy_until_mutation() {
        let sys = annotated_system(3);
        let snap = sys.snapshot();
        // same Arc: no clone happened at capture time
        assert!(std::ptr::eq(snap.view() as *const _, sys.view() as *const _));
        assert_eq!(snap.epoch(), sys.epoch());
        assert!(snap.same_epoch(&sys.snapshot()));
    }

    #[test]
    fn snapshot_is_isolated_from_later_mutations() {
        let mut sys = annotated_system(2);
        let snap = sys.snapshot();
        let epoch_before = sys.epoch();
        assert_eq!(snap.annotation_count(), 2);

        // writer commits mid-flight: the snapshot's state must not move
        let seq = snap.objects()[0].id;
        sys.annotate().comment("late").mark(seq, Marker::interval(500, 600)).commit().unwrap();
        sys.register_image("brain", 64, 64, "mri", "cs");

        assert_eq!(snap.annotation_count(), 2);
        assert_eq!(snap.object_count(), 1);
        assert_eq!(sys.annotation_count(), 3);
        assert_eq!(sys.object_count(), 2);
        assert!(sys.epoch() > epoch_before);
        assert_eq!(snap.epoch(), epoch_before);
        // the diverged copies are both internally consistent
        assert!(snap.verify_integrity().is_empty());
        assert!(sys.verify_integrity().is_empty());
    }

    #[test]
    fn epoch_bumps_on_every_commit_point() {
        let mut sys = Graphitti::new();
        let e0 = sys.epoch();
        let seq = sys.register_sequence("s", DataType::DnaSequence, 100, "chr1");
        let e1 = sys.epoch();
        assert!(e1 > e0);
        sys.annotate().comment("x").mark(seq, Marker::interval(0, 10)).commit().unwrap();
        assert!(sys.epoch() > e1);
    }

    #[test]
    fn clones_share_the_view() {
        let sys = annotated_system(1);
        let a = sys.snapshot();
        let b = a.clone();
        assert!(a.same_epoch(&b));
        assert_eq!(a.annotation_count(), b.annotation_count());
    }

    #[test]
    fn snapshot_usable_across_threads() {
        let sys = annotated_system(4);
        let snap = sys.snapshot();
        let counts: Vec<usize> = std::thread::scope(|s| {
            (0..3)
                .map(|_| {
                    let snap = snap.clone();
                    s.spawn(move || snap.annotation_count())
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        assert_eq!(counts, vec![4, 4, 4]);
    }
}
