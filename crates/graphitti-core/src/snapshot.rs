//! [`Snapshot`] — the isolated read handle the concurrent query path executes against.
//!
//! A snapshot is a cheaply cloneable, `Send + Sync` handle to one published version of
//! the system state: an `Arc` over the full [`SystemView`] plus the epoch at which it
//! was captured.  Capturing ([`Graphitti::snapshot`]) is an `Arc` clone — O(1), no
//! locking; the first mutation after a capture copies the state out from under every
//! outstanding snapshot (`Arc::make_mut` copy-on-publish), so
//!
//! * **readers never block writers** — a query thread holding a snapshot costs the
//!   writer at most one deep copy, and only on its next commit;
//! * **readers never see torn state** — a snapshot is immutable for its whole life; a
//!   writer committing mid-query cannot change what the query observes;
//! * **epochs identify versions** — two snapshots with equal epochs from the same
//!   system are views of identical state;
//! * **component epochs identify *partial* versions** — each snapshot carries the
//!   per-component [`EpochVector`](crate::EpochVector): two snapshots of one system
//!   agreeing on a component set's epochs observe identical query-visible state
//!   through those components, which is what lets the query service's result cache
//!   invalidate per dirtied component instead of wholesale on every publish.
//!
//! Not to be confused with [`StudySnapshot`](crate::StudySnapshot), the serialisable
//! export format for saving and reloading a study.

use std::sync::Arc;

use crate::epoch::{ComponentSet, EpochVector};
use crate::system::{Component, SystemView};

/// An isolated, immutable read snapshot of a Graphitti system.
///
/// Derefs to [`SystemView`], so the entire read API (lookups, exploration,
/// substructure queries) works on a snapshot exactly as on the live system.  Clone is
/// an `Arc` bump — hand one to every worker thread.
///
/// Besides the global epoch, a snapshot carries the system's per-component
/// [`EpochVector`] and lineage id at capture time: within one lineage, two snapshots
/// agreeing on a set of components' epochs observe identical query-visible state
/// through those components — the validity test a footprint-keyed result cache uses.
#[derive(Debug, Clone)]
pub struct Snapshot {
    view: Arc<SystemView>,
    epoch: u64,
    epochs: EpochVector,
    system_id: u64,
}

impl std::ops::Deref for Snapshot {
    type Target = SystemView;

    fn deref(&self) -> &SystemView {
        &self.view
    }
}

impl Snapshot {
    /// Wrap a published view (called by [`Graphitti::snapshot`](crate::Graphitti::snapshot)).
    pub(crate) fn capture(
        view: Arc<SystemView>,
        epoch: u64,
        epochs: EpochVector,
        system_id: u64,
    ) -> Snapshot {
        Snapshot { view, epoch, epochs, system_id }
    }

    /// The epoch of the system state this snapshot captured.  Mutations bump the
    /// system's epoch, so an outdated snapshot is detectable by comparing epochs.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The underlying shared view (rarely needed directly — `Snapshot` derefs to it).
    pub fn view(&self) -> &SystemView {
        &self.view
    }

    /// The per-component epoch vector at capture time: for each [`Component`], the
    /// global epoch of the last write that dirtied it.
    pub fn component_epochs(&self) -> EpochVector {
        self.epochs
    }

    /// The epoch of one component at capture time.
    pub fn component_epoch(&self, component: Component) -> u64 {
        self.epochs.get(component)
    }

    /// The lineage id of the system this snapshot was captured from (see
    /// [`Graphitti::system_id`](crate::Graphitti::system_id)).
    pub fn system_id(&self) -> u64 {
        self.system_id
    }

    /// Whether two snapshots are views of the same published state.
    pub fn same_epoch(&self, other: &Snapshot) -> bool {
        self.epoch == other.epoch && Arc::ptr_eq(&self.view, &other.view)
    }

    /// Whether two snapshots come from the same system lineage — the precondition for
    /// any epoch comparison between them.
    pub fn same_system(&self, other: &Snapshot) -> bool {
        self.system_id == other.system_id
    }

    /// The components whose epochs differ between the two snapshots: for snapshots of
    /// the same lineage, exactly the components dirtied by the writes between them.
    /// Meaningless across lineages — gate on [`same_system`](Self::same_system) first.
    pub fn changed_components(&self, other: &Snapshot) -> ComponentSet {
        self.epochs.changed(other.epochs)
    }

    /// Whether the two snapshots observe identical query-visible state through every
    /// component of `footprint`: same lineage and agreeing footprint epochs.  This is
    /// the result-cache validity test — a cached answer whose plan reads only
    /// `footprint` is still correct for `other` when this holds.
    pub fn agrees_on(&self, other: &Snapshot, footprint: ComponentSet) -> bool {
        self.same_system(other) && self.epochs.agrees_on(other.epochs, footprint)
    }
}

// Snapshots cross thread boundaries in the query service's worker pool.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Snapshot>();
};

#[cfg(test)]
mod tests {
    use crate::marker::Marker;
    use crate::system::Graphitti;
    use crate::types::DataType;

    fn annotated_system(n: u64) -> Graphitti {
        let mut sys = Graphitti::new();
        let seq = sys.register_sequence("s", DataType::DnaSequence, 10_000, "chr1");
        for i in 0..n {
            sys.annotate()
                .comment(format!("note {i}"))
                .mark(seq, Marker::interval(i * 10, i * 10 + 5))
                .commit()
                .unwrap();
        }
        sys
    }

    #[test]
    fn capture_is_zero_copy_until_mutation() {
        let sys = annotated_system(3);
        let snap = sys.snapshot();
        // same Arc: no clone happened at capture time
        assert!(std::ptr::eq(snap.view() as *const _, sys.view() as *const _));
        assert_eq!(snap.epoch(), sys.epoch());
        assert!(snap.same_epoch(&sys.snapshot()));
    }

    #[test]
    fn snapshot_is_isolated_from_later_mutations() {
        let mut sys = annotated_system(2);
        let snap = sys.snapshot();
        let epoch_before = sys.epoch();
        assert_eq!(snap.annotation_count(), 2);

        // writer commits mid-flight: the snapshot's state must not move
        let seq = snap.objects()[0].id;
        sys.annotate().comment("late").mark(seq, Marker::interval(500, 600)).commit().unwrap();
        sys.register_image("brain", 64, 64, "mri", "cs");

        assert_eq!(snap.annotation_count(), 2);
        assert_eq!(snap.object_count(), 1);
        assert_eq!(sys.annotation_count(), 3);
        assert_eq!(sys.object_count(), 2);
        assert!(sys.epoch() > epoch_before);
        assert_eq!(snap.epoch(), epoch_before);
        // the diverged copies are both internally consistent
        assert!(snap.verify_integrity().is_empty());
        assert!(sys.verify_integrity().is_empty());
    }

    #[test]
    fn epoch_bumps_on_every_commit_point() {
        let mut sys = Graphitti::new();
        let e0 = sys.epoch();
        let seq = sys.register_sequence("s", DataType::DnaSequence, 100, "chr1");
        let e1 = sys.epoch();
        assert!(e1 > e0);
        sys.annotate().comment("x").mark(seq, Marker::interval(0, 10)).commit().unwrap();
        assert!(sys.epoch() > e1);
    }

    #[test]
    fn clones_share_the_view() {
        let sys = annotated_system(1);
        let a = sys.snapshot();
        let b = a.clone();
        assert!(a.same_epoch(&b));
        assert_eq!(a.annotation_count(), b.annotation_count());
    }

    #[test]
    fn component_epochs_track_dirty_sets_per_publish() {
        use crate::epoch::ComponentSet;
        use crate::system::Component;

        let mut sys = annotated_system(1);
        let before = sys.snapshot();

        // A registration dirties exactly the registration path; everything a query
        // answer can depend on keeps its epoch.
        sys.register_sequence("late", DataType::DnaSequence, 500, "chr2");
        let after_register = sys.snapshot();
        assert!(before.same_system(&after_register));
        assert_eq!(
            after_register.changed_components(&before),
            ComponentSet::of([
                Component::Catalog,
                Component::Agraph,
                Component::Objects,
                Component::NodeMaps,
                Component::Indexes,
            ])
        );
        assert!(before.agrees_on(
            &after_register,
            ComponentSet::of([Component::Content, Component::Annotations, Component::Referents])
        ));

        // An annotate moves the annotation path — content entries can no longer agree.
        let seq = sys.objects()[0].id;
        sys.annotate().comment("x").mark(seq, Marker::interval(0, 9)).commit().unwrap();
        let after_annotate = sys.snapshot();
        let changed = after_annotate.changed_components(&after_register);
        assert!(changed.contains(Component::Content));
        assert!(changed.contains(Component::Annotations));
        assert!(changed.contains(Component::Referents));
        assert!(!changed.contains(Component::Catalog));
        assert!(
            !after_register.agrees_on(&after_annotate, ComponentSet::of([Component::Annotations]))
        );
        // ... while spatial-free systems never move the spatial index's epoch
        assert_eq!(after_annotate.component_epoch(Component::Spatial), 0);
    }

    #[test]
    fn distinct_systems_never_agree_on_any_footprint() {
        use crate::epoch::ComponentSet;

        let a = annotated_system(2).snapshot();
        let b = annotated_system(2).snapshot();
        assert!(!a.same_system(&b));
        // identical epoch vectors, but different lineages: agreement must be refused
        assert!(a.changed_components(&b).is_empty());
        assert!(!a.agrees_on(&b, ComponentSet::all()));
    }

    #[test]
    fn snapshot_usable_across_threads() {
        let sys = annotated_system(4);
        let snap = sys.snapshot();
        let counts: Vec<usize> = std::thread::scope(|s| {
            (0..3)
                .map(|_| {
                    let snap = snap.clone();
                    s.spawn(move || snap.annotation_count())
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        assert_eq!(counts, vec![4, 4, 4]);
    }
}
