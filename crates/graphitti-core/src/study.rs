//! Study snapshot export / import (serialisation).
//!
//! The demo lets a user view and edit an annotation "as an XML-structured object" before
//! committing, and a study is something you save and reload. This module serialises a
//! whole [`Graphitti`] system to a flat, `serde`-friendly [`StudySnapshot`] (no graph
//! node ids — those are regenerated) and rebuilds an equivalent system by replaying the
//! registrations and annotations, preserving shared referents so the a-graph connection
//! structure is reproduced exactly.
//!
//! Not to be confused with [`crate::Snapshot`], the in-memory isolated *read* snapshot
//! the concurrent query service executes against.

use bytes::Bytes;
use ontology::{ConceptId, Ontology};
use relstore::Value;
use serde::{Deserialize, Serialize};

use crate::annotation::AnnotationId;
use crate::marker::Marker;
use crate::referent::ReferentId;
use crate::system::{Graphitti, ObjectId};
use crate::types::DataType;
use crate::Result;
use xmlstore::DublinCore;

/// A registered object, captured for replay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObjectSnapshot {
    /// The object's data type.
    pub data_type: DataType,
    /// Its name / accession.
    pub name: String,
    /// Its coordinate domain / system.
    pub domain: String,
    /// The metadata columns between `name` and `payload`.
    pub metadata: Vec<Value>,
    /// The raw payload bytes.
    pub payload: Vec<u8>,
}

/// A referent, captured by the object it marks and the marker.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReferentSnapshot {
    /// Index into [`StudySnapshot::objects`].
    pub object: usize,
    /// The marker.
    pub marker: Marker,
}

/// An annotation, captured by its content, referent references and cited terms.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnnotationSnapshot {
    /// The Dublin Core content record.
    pub content: DublinCore,
    /// Indices into [`StudySnapshot::referents`] — shared indices encode shared referents.
    pub referents: Vec<usize>,
    /// Cited ontology concept ids.
    pub terms: Vec<ConceptId>,
}

/// A complete, serialisable snapshot of a Graphitti study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StudySnapshot {
    /// Registered objects, in id order.
    pub objects: Vec<ObjectSnapshot>,
    /// Referents, in id order.
    pub referents: Vec<ReferentSnapshot>,
    /// Annotations, in id order.
    pub annotations: Vec<AnnotationSnapshot>,
    /// The ontology store.
    pub ontology: Ontology,
}

impl StudySnapshot {
    /// Serialise to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot serialises")
    }

    /// Parse from JSON.
    pub fn from_json(json: &str) -> std::result::Result<StudySnapshot, serde_json::Error> {
        serde_json::from_str(json)
    }
}

impl Graphitti {
    /// Capture the current state as a serialisable [`StudySnapshot`].
    pub fn study_snapshot(&self) -> StudySnapshot {
        let objects = self
            .objects()
            .iter()
            .map(|info| {
                let (metadata, payload) =
                    self.object_metadata(info.id).unwrap_or_else(|| (Vec::new(), Bytes::new()));
                ObjectSnapshot {
                    data_type: info.data_type,
                    name: info.name.clone(),
                    domain: info.domain.clone(),
                    metadata,
                    payload: payload.to_vec(),
                }
            })
            .collect();

        let referents = self
            .referents()
            .iter()
            .map(|r| ReferentSnapshot { object: r.object.0 as usize, marker: r.marker.clone() })
            .collect();

        let annotations = self
            .annotations()
            .iter()
            .map(|a| AnnotationSnapshot {
                content: a.content.clone(),
                referents: a.referents.iter().map(|r| r.0 as usize).collect(),
                terms: a.terms.clone(),
            })
            .collect();

        StudySnapshot { objects, referents, annotations, ontology: self.ontology().clone() }
    }

    /// Rebuild an equivalent system from a snapshot, preserving shared referents.
    /// The whole replay — ontology included — runs inside one
    /// [`CommitBatch`](crate::CommitBatch), so the rebuilt system publishes as a
    /// single version: exactly one epoch bump for the whole replay, instead of one
    /// per registration / annotation.
    pub fn from_study_snapshot(snapshot: &StudySnapshot) -> Result<Graphitti> {
        let mut sys = Graphitti::new();
        let mut batch = sys.batch();
        *batch.ontology_mut() = snapshot.ontology.clone();

        // 1. register objects, mapping snapshot index -> new ObjectId.
        let mut object_map: Vec<ObjectId> = Vec::with_capacity(snapshot.objects.len());
        for obj in &snapshot.objects {
            let id = batch.register_object(
                obj.data_type,
                obj.name.clone(),
                obj.metadata.clone(),
                Bytes::from(obj.payload.clone()),
                obj.domain.clone(),
            )?;
            object_map.push(id);
        }

        // 2. replay annotations in order, materialising referents lazily and reusing
        //    shared ones.
        let mut referent_map: Vec<Option<ReferentId>> = vec![None; snapshot.referents.len()];
        for ann in &snapshot.annotations {
            let mut builder = batch.annotate().with_content(ann.content.clone());
            // which snapshot-referent-index each mark corresponds to, in order
            let mut fresh_indices: Vec<usize> = Vec::new();
            for &ref_idx in &ann.referents {
                match referent_map[ref_idx] {
                    Some(rid) => {
                        builder = builder.mark_existing(rid);
                    }
                    None => {
                        let snap = &snapshot.referents[ref_idx];
                        let object = object_map[snap.object];
                        builder = builder.mark(object, snap.marker.clone());
                        fresh_indices.push(ref_idx);
                    }
                }
            }
            for &term in &ann.terms {
                builder = builder.cite_term(term);
            }
            let aid = builder.commit()?;

            // Align the committed referent ids with the snapshot indices to record the
            // freshly-created ones for later sharing. The committed list is in mark order
            // (deduped), matching `ann.referents` order.
            let committed = batch.annotation(aid).map(|a| a.referents.clone()).unwrap_or_default();
            let mut fresh_iter = fresh_indices.iter();
            for (pos, &ref_idx) in ann.referents.iter().enumerate() {
                if referent_map[ref_idx].is_none() {
                    if let Some(&new_rid) = committed.get(pos) {
                        referent_map[ref_idx] = Some(new_rid);
                        let _ = fresh_iter.next();
                    }
                }
            }
        }
        batch.commit();
        Ok(sys)
    }

    /// Export the system directly to JSON.
    pub fn to_json(&self) -> String {
        self.study_snapshot().to_json()
    }

    /// Rebuild a system from JSON.
    pub fn from_json(json: &str) -> std::result::Result<Graphitti, String> {
        let snapshot = StudySnapshot::from_json(json).map_err(|e| e.to_string())?;
        Graphitti::from_study_snapshot(&snapshot).map_err(|e| e.to_string())
    }

    #[allow(unused)]
    fn _snapshot_uses(_: AnnotationId) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::DataType;

    fn sample_system() -> Graphitti {
        let mut sys = Graphitti::new();
        let seq = sys.register_sequence("seg4", DataType::DnaSequence, 2_000, "chr-flu");
        let img = sys.register_image("brain", 512, 512, "confocal", "cs25");
        let term = sys.ontology_mut().add_concept("Protease");

        let a1 = sys
            .annotate()
            .title("cleavage")
            .comment("polybasic protease cleavage site")
            .creator("condit")
            .mark(seq, Marker::interval(1_000, 1_050))
            .cite_term(term)
            .commit()
            .unwrap();
        // a2 shares a1's referent
        let shared = sys.annotation(a1).unwrap().referents[0];
        sys.annotate()
            .comment("second opinion")
            .creator("gupta")
            .mark_existing(shared)
            .commit()
            .unwrap();
        sys.annotate()
            .comment("region of interest")
            .creator("martone")
            .mark(img, Marker::region(10.0, 10.0, 60.0, 60.0))
            .commit()
            .unwrap();
        sys
    }

    #[test]
    fn snapshot_captures_counts() {
        let sys = sample_system();
        let snap = sys.study_snapshot();
        assert_eq!(snap.objects.len(), 2);
        assert_eq!(snap.annotations.len(), 3);
        assert_eq!(snap.referents.len(), sys.referent_count());
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let sys = sample_system();
        let snap = sys.study_snapshot();
        let rebuilt = Graphitti::from_study_snapshot(&snap).unwrap();
        assert_eq!(rebuilt.object_count(), sys.object_count());
        assert_eq!(rebuilt.annotation_count(), sys.annotation_count());
        assert_eq!(rebuilt.referent_count(), sys.referent_count());
        // shared referent preserved: a0 and a1 remain related
        assert_eq!(rebuilt.related_annotations(AnnotationId(0)), vec![AnnotationId(1)]);
    }

    #[test]
    fn roundtrip_preserves_queryability() {
        let sys = sample_system();
        let rebuilt = Graphitti::from_study_snapshot(&sys.study_snapshot()).unwrap();
        // the protease annotation is still findable by content
        assert_eq!(rebuilt.content_store().containing_phrase("protease cleavage").len(), 1);
        // the image region is still in the R-tree
        let hits =
            rebuilt.overlapping_regions("cs25", spatial_index::Rect::rect2(20.0, 20.0, 30.0, 30.0));
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn replay_takes_exactly_one_epoch() {
        // The whole rebuild — ontology assignment included — is one CommitBatch, so
        // a rebuilt system sits at epoch 1 regardless of how much it replays.
        // (Downstream epoch-keyed caches rely on rebuilt systems restarting low.)
        let rebuilt = Graphitti::from_study_snapshot(&sample_system().study_snapshot()).unwrap();
        assert_eq!(rebuilt.epoch(), 1);
    }

    #[test]
    fn json_roundtrip() {
        let sys = sample_system();
        let json = sys.to_json();
        assert!(json.contains("Protease") || json.contains("protease"));
        let rebuilt = Graphitti::from_json(&json).unwrap();
        assert_eq!(rebuilt.annotation_count(), 3);
        // snapshot of the rebuilt system equals the original snapshot
        assert_eq!(rebuilt.study_snapshot(), sys.study_snapshot());
    }

    #[test]
    fn empty_system_snapshot() {
        let sys = Graphitti::new();
        let snap = sys.study_snapshot();
        assert!(snap.objects.is_empty());
        let rebuilt = Graphitti::from_study_snapshot(&snap).unwrap();
        assert_eq!(rebuilt.object_count(), 0);
    }

    #[test]
    fn bad_json_errors() {
        assert!(Graphitti::from_json("{not valid").is_err());
    }
}
